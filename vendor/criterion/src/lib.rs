//! A tiny, dependency-free stand-in for the parts of
//! [`criterion`](https://crates.io/crates/criterion) this workspace uses.
//!
//! The build environment is hermetic (no crates.io access), so the real
//! criterion cannot be pulled in. This shim keeps the `benches/*.rs`
//! sources unchanged: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`Bencher::iter`], [`black_box`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros all exist with
//! compatible signatures. Measurement is a simple
//! warmup-then-median-of-samples loop printed to stdout — adequate for
//! smoke runs and regression eyeballing, not for paper-grade statistics.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Runs `f` as a named benchmark and prints the median iteration time.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.sample_size, f);
        self
    }

    /// Opens a named group; group members share the group's sample size.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_owned(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs `f` as `group/id`.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; times the routine.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `routine`, recording one sample per outer call.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(routine());
        }
        let total = start.elapsed();
        self.samples
            .push(total / u32::try_from(self.iters_per_sample).unwrap_or(1));
    }
}

fn run_one<F>(id: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Warmup + calibration: find an iteration count that makes one sample
    // take roughly a millisecond, so fast routines are not all jitter.
    let mut calib = Bencher {
        samples: Vec::new(),
        iters_per_sample: 1,
    };
    f(&mut calib);
    let per_iter = calib
        .samples
        .first()
        .copied()
        .unwrap_or(Duration::from_micros(1));
    let iters_per_sample = if per_iter >= Duration::from_millis(1) {
        1
    } else {
        (Duration::from_millis(1).as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 10_000) as u64
    };

    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        iters_per_sample,
    };
    for _ in 0..sample_size {
        f(&mut b);
    }
    b.samples.sort();
    let median = b
        .samples
        .get(b.samples.len() / 2)
        .copied()
        .unwrap_or_default();
    let (lo, hi) = (
        b.samples.first().copied().unwrap_or_default(),
        b.samples.last().copied().unwrap_or_default(),
    );
    println!("bench {id:<40} median {median:>12?}  (min {lo:?}, max {hi:?}, n={sample_size})");
}

/// Declares a function that runs each target against one [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("shim/self_test", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
        let mut g = c.benchmark_group("grp");
        g.sample_size(2)
            .bench_function("inner", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
    }
}
