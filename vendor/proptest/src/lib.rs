//! A tiny, dependency-free stand-in for the parts of
//! [`proptest`](https://crates.io/crates/proptest) this workspace uses.
//!
//! The build environment is hermetic (no crates.io access), so the real
//! proptest cannot be vendored wholesale. This shim keeps the property-test
//! sources byte-compatible by re-implementing the consumed surface:
//!
//! * [`Strategy`] with `prop_map` and `prop_recursive`;
//! * `Just`, ranges, `&str` regex-literal strategies, tuples,
//!   `prop::collection::vec`, `any::<T>()`;
//! * the [`proptest!`], [`prop_oneof!`], `prop_assert*!` macros;
//! * [`ProptestConfig::with_cases`].
//!
//! Differences from the real crate: generation is driven by a deterministic
//! xorshift PRNG seeded from the test name (so failures are reproducible
//! run-to-run), and there is **no shrinking** — a failing case asserts
//! directly with the offending values embedded in the panic message.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// Deterministic xorshift64* generator used to drive all strategies.
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds the generator from an arbitrary string (the test name).
    pub fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(h | 1)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform usize in `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below((hi - lo) as u64) as usize
    }
}

/// A generator of values of type `Self::Value`.
///
/// Unlike real proptest there is no value tree: a strategy is just a
/// deterministic function of the RNG state.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Recursive strategy: up to `depth` layers of `recurse` around `self`
    /// as the leaf. `_desired_size` and `_expected_branch` are accepted for
    /// signature compatibility and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let branch = recurse(current).boxed();
            let leaf = leaf.clone();
            current = BoxedStrategy::new(move |rng| {
                // Bias toward leaves so expected size stays bounded.
                if rng.below(3) == 0 {
                    leaf.gen_value(rng)
                } else {
                    branch.gen_value(rng)
                }
            });
        }
        current
    }

    /// Type-erases this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        let this = self;
        BoxedStrategy::new(move |rng| this.gen_value(rng))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> BoxedStrategy<T> {
    /// Wraps a generation function.
    pub fn new(f: impl Fn(&mut TestRng) -> T + 'static) -> BoxedStrategy<T> {
        BoxedStrategy(Rc::new(f))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn gen_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.gen_value(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

impl_range_strategy!(i64, i32, u64, u32, u8, usize);

impl Strategy for RangeInclusive<usize> {
    type Value = usize;
    fn gen_value(&self, rng: &mut TestRng) -> usize {
        rng.range_usize(*self.start(), *self.end() + 1)
    }
}

/// `&str` literals act as regex-like string generators, supporting the
/// subset `[class]` / literal chars, with optional `{n}` / `{m,n}` counts —
/// enough for patterns like `"[a-z_][a-z0-9_]{0,5}"` or `"t[0-9]"`.
impl Strategy for &'static str {
    type Value = String;
    fn gen_value(&self, rng: &mut TestRng) -> String {
        gen_from_pattern(self, rng)
    }
}

fn expand_class(spec: &str) -> Vec<char> {
    let chars: Vec<char> = spec.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            let (lo, hi) = (chars[i], chars[i + 2]);
            for c in lo..=hi {
                out.push(c);
            }
            i += 3;
        } else {
            out.push(chars[i]);
            i += 1;
        }
    }
    out
}

fn gen_from_pattern(pat: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pat.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // One atom: a character class or a literal character.
        let alphabet: Vec<char> = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .expect("unclosed class")
                + i;
            let class: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            expand_class(&class)
        } else {
            let c = chars[i];
            i += 1;
            vec![c]
        };
        // Optional {n} / {m,n} repetition.
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .expect("unclosed count")
                + i;
            let spec: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match spec.split_once(',') {
                Some((a, b)) => (a.parse().unwrap(), b.parse().unwrap()),
                None => {
                    let n: usize = spec.parse().unwrap();
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        let count = rng.range_usize(lo, hi + 1);
        for _ in 0..count {
            out.push(alphabet[rng.range_usize(0, alphabet.len())]);
        }
    }
    out
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.gen_value(rng), self.1.gen_value(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.gen_value(rng),
            self.1.gen_value(rng),
            self.2.gen_value(rng),
        )
    }
}

/// Types with a canonical "any value" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for i32 {
    fn arbitrary(rng: &mut TestRng) -> i32 {
        rng.next_u64() as i32
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> i64 {
        rng.next_u64() as i64
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.below(2) == 0
    }
}

/// Strategy for any value of an [`Arbitrary`] type.
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — mirror of `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Per-test configuration; only the case count is honoured.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Runs each property `cases` times.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length specifications accepted by [`vec()`] (mirror of `SizeRange`).
    pub trait IntoSizeRange {
        /// Converts to a half-open `[lo, hi)` length range.
        fn into_len_range(self) -> Range<usize>;
    }

    impl IntoSizeRange for Range<usize> {
        fn into_len_range(self) -> Range<usize> {
            self
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn into_len_range(self) -> Range<usize> {
            *self.start()..self.end() + 1
        }
    }

    impl IntoSizeRange for usize {
        fn into_len_range(self) -> Range<usize> {
            self..self + 1
        }
    }

    /// Vector of `inner`-generated elements with a length in `len`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        inner: S,
        len: Range<usize>,
    }

    /// Mirror of `proptest::collection::vec`.
    pub fn vec<S: Strategy>(inner: S, len: impl IntoSizeRange) -> VecStrategy<S> {
        VecStrategy {
            inner,
            len: len.into_len_range(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.range_usize(self.len.start, self.len.end);
            (0..n).map(|_| self.inner.gen_value(rng)).collect()
        }
    }
}

/// The `proptest::prelude` namespace.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };

    /// Mirror of the `proptest::prelude::prop` re-export.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let arms = vec![$($crate::Strategy::boxed($strat)),+];
        $crate::BoxedStrategy::new(move |rng| {
            let i = rng.range_usize(0, arms.len());
            $crate::Strategy::gen_value(&arms[i], rng)
        })
    }};
}

/// Assert within a property; panics with the message (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assertion within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Inequality assertion within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Defines `#[test]` functions that draw inputs from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg); $($rest)*);
    };
    (@cfg ($cfg:expr); $(#[test] fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                for _case in 0..cfg.cases {
                    $(let $pat = $crate::Strategy::gen_value(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    #[test]
    fn pattern_generation_matches_shape() {
        let mut rng = TestRng::from_name("pattern");
        for _ in 0..200 {
            let s = crate::Strategy::gen_value(&"[a-z_][a-z0-9_]{0,5}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 6, "bad sample {s:?}");
            let first = s.chars().next().unwrap();
            assert!(first == '_' || first.is_ascii_lowercase());
        }
        let mut rng = TestRng::from_name("fixed");
        let t = crate::Strategy::gen_value(&"t[0-9]", &mut rng);
        assert_eq!(t.len(), 2);
        assert!(t.starts_with('t'));
    }

    #[test]
    fn determinism_per_name() {
        let a: Vec<u64> = {
            let mut r = TestRng::from_name("x");
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::from_name("x");
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_compiles_and_draws(v in prop::collection::vec(0i64..5, 1..4), (a, b) in (0usize..3, 1usize..=2)) {
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assert!(v.iter().all(|x| (0..5).contains(x)));
            prop_assert!(a < 3);
            prop_assert!((1..=2).contains(&b));
        }
    }
}
