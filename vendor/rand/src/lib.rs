//! A tiny, dependency-free stand-in for the parts of
//! [`rand`](https://crates.io/crates/rand) 0.8 this workspace uses:
//! `rngs::StdRng`, [`SeedableRng::seed_from_u64`] and
//! [`Rng::gen_range`] over integer ranges. The generator is xorshift64*,
//! which is plenty for deterministic benchmark workloads (it is **not**
//! the real StdRng stream and must not be used for statistics-grade
//! sampling or anything security-sensitive).

use std::ops::Range;

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Random-value convenience methods (subset of `rand::Rng`).
pub trait Rng {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from `range`.
    fn gen_range<T: SampleRange>(&mut self, range: Range<T>) -> T {
        T::sample(self, range)
    }
}

/// Integer types samplable from a `Range` by [`Rng::gen_range`].
pub trait SampleRange: Sized {
    /// Draws a uniform value in `[range.start, range.end)`.
    fn sample<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R, range: Range<$t>) -> $t {
                assert!(range.start < range.end, "empty gen_range");
                let span = range.end.wrapping_sub(range.start) as u64;
                range.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_range!(i64, u64, i32, u32, usize);

/// Named generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xorshift64* generator standing in for `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng(u64);

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1)
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            let x = a.gen_range(0i64..10);
            assert_eq!(x, b.gen_range(0i64..10));
            assert!((0..10).contains(&x));
        }
    }
}
