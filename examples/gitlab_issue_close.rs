//! Gitlab's `Issue#close` (benchmark A7): effect-guided synthesis flips the
//! issue's state-machine column because the failing assertion *reads*
//! `Issue.state`, so the search inserts a hole filled by the `state=`
//! writer.
//!
//! ```text
//! cargo run --release --example gitlab_issue_close
//! ```

use rbsyn::core::Synthesizer;
use rbsyn::suite::benchmark;

fn main() {
    let b = benchmark("A7").expect("A7 is registered");
    let (env, problem) = (b.build)();
    let result = Synthesizer::new(env, problem, (b.options)())
        .run()
        .expect("Issue#close synthesizes");

    println!("Issue#close, synthesized in {:?}:", result.stats.elapsed);
    println!("{}", result.program);
}
