//! Solve a synthesis problem posed purely as data: load a `.rbspec` file
//! (a brand-new scenario, not one of the 19 Table 1 benchmarks), lower it
//! through the textual frontend, and synthesize — no Rust code describes
//! the problem.
//!
//! ```text
//! cargo run --release --example rbspec_frontend
//! ```

use rbsyn::core::Synthesizer;
use rbsyn::front;
use std::path::Path;

fn main() {
    let path = Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/examples/library_checkout.rbspec"
    ));
    let spec = match front::load_file(path) {
        Ok(s) => s,
        Err(rendered) => {
            // Diagnostics arrive pre-rendered: file:line:col + excerpt.
            eprint!("{rendered}");
            std::process::exit(3);
        }
    };
    println!(
        "loaded {} — {} spec(s), {} Σ constant(s), {} search-visible methods",
        spec.id(),
        spec.lowered.problem.specs.len(),
        spec.lowered.problem.consts.len(),
        spec.lowered.env.table.search_visible_count(),
    );

    let (env, problem) = spec.build();
    let result = Synthesizer::new(env, problem, spec.lowered.options.clone())
        .run()
        .expect("the library scenario synthesizes");

    println!(
        "solved in {:?} ({} candidates tested)",
        result.stats.elapsed, result.stats.search.tested
    );
    println!("{}", result.program);
}
