//! The §5.3 ablation in miniature: synthesize the `user_exists` benchmark
//! (S4) under the four guidance modes of Fig. 7 and compare search effort.
//!
//! ```text
//! cargo run --release --example guidance_modes
//! ```

use rbsyn::core::{Guidance, Options, Synthesizer};
use rbsyn::suite::benchmark;
use std::time::Duration;

fn main() {
    let b = benchmark("S4").expect("S4 is registered");
    println!(
        "{:<14} {:>10} {:>12} {:>10}",
        "mode", "time", "tested", "result"
    );
    for g in Guidance::all() {
        let (env, problem) = (b.build)();
        let opts = Options {
            guidance: g,
            timeout: Some(Duration::from_secs(20)),
            ..(b.options)()
        };
        match Synthesizer::new(env, problem, opts).run() {
            Ok(r) => println!(
                "{:<14} {:>10.3?} {:>12} {:>10}",
                g.label(),
                r.stats.elapsed,
                r.stats.search.tested,
                "ok"
            ),
            Err(e) => println!("{:<14} {:>10} {:>12} {:>10}", g.label(), "-", "-", e),
        }
    }
}
