//! Quickstart: synthesize a one-line method from a single spec.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! We ask for a method `greeting(name) → Str` that must satisfy one spec:
//! calling it with `"World"` returns `"World"` — the synthesizer discovers
//! the identity method `arg0` by pure type-guided search.

use rbsyn::prelude::*;
use rbsyn::stdlib::EnvBuilder;
use rbsyn_interp::Spec;
use rbsyn_suite::helpers::{eq, target, updated};

fn main() {
    // 1. An environment: the annotated Ruby core + ActiveRecord library.
    let env = EnvBuilder::with_stdlib().finish();

    // 2. A synthesis problem: type signature + specs (the paper's
    //    `define :greeting, "(Str) → Str" do … end`).
    let problem = SynthesisProblem::builder("greeting")
        .param("arg0", Ty::Str)
        .returns(Ty::Str)
        .base_consts()
        .spec(Spec::new(
            "echoes its argument",
            vec![target(vec![str_("World")])],
            vec![eq(updated(), str_("World"))],
        ))
        .build();

    // 3. Synthesize.
    let result = Synthesizer::new(env, problem, Options::default())
        .run()
        .expect("quickstart synthesizes");

    println!("synthesized in {:?}:", result.stats.elapsed);
    println!("{}", result.program);
}
