//! The paper's running example (§2, Fig. 1/2): synthesize `update_post`
//! for a blog app from three specs, producing a branching method that
//! updates a post's title (or slug) only when the caller authored it.
//!
//! ```text
//! cargo run --release --example blog_update_post
//! ```
//!
//! This is benchmark S6 ("overview (ext)") of Table 1 and exercises the
//! full pipeline: type-guided search, effect-guided hole insertion from the
//! failing assertions' read effects, branch-condition synthesis, and
//! SAT-backed merging.

use rbsyn::core::Synthesizer;
use rbsyn::suite::benchmark;

fn main() {
    let b = benchmark("S6").expect("S6 is registered");
    let (env, problem) = (b.build)();
    println!(
        "synthesizing update_post from {} specs…",
        problem.specs.len()
    );

    let result = Synthesizer::new(env, problem, (b.options)())
        .run()
        .expect("the overview benchmark synthesizes");

    println!(
        "done in {:?} ({} candidates tested)",
        result.stats.elapsed, result.stats.search.tested
    );
    println!("{}", result.program);
    println!(
        "\nsolution: {} AST nodes, {} paths",
        result.stats.solution_size, result.stats.solution_paths
    );
}
