//! Discourse's `User#activate` (benchmark A2): a two-branch method — known
//! users get activated (two database column writes driven by effect
//! guidance), unknown users get `false`. The branch condition
//! (`User.exists?(username: …)`) is synthesized during merging.
//!
//! ```text
//! cargo run --release --example discourse_activate
//! ```

use rbsyn::core::Synthesizer;
use rbsyn::suite::benchmark;

fn main() {
    let b = benchmark("A2").expect("A2 is registered");
    let (env, problem) = (b.build)();
    let result = Synthesizer::new(env, problem, (b.options)())
        .run()
        .expect("User#activate synthesizes");

    println!("User#activate, synthesized in {:?}:", result.stats.elapsed);
    println!("{}", result.program);
    println!("\npaths: {}", result.stats.solution_paths);
}
