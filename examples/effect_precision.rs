//! The §5.4 ablation in miniature: synthesize Gitlab's `Issue#close` under
//! the three effect-annotation precision levels and compare search effort.
//! Less precise annotations admit more candidate writers per effect hole,
//! so the search tests more programs (Fig. 8's slowdown).
//!
//! ```text
//! cargo run --release --example effect_precision
//! ```

use rbsyn::core::{Options, Synthesizer};
use rbsyn::prelude::EffectPrecision;
use rbsyn::suite::benchmark;

fn main() {
    let b = benchmark("A7").expect("A7 is registered");
    println!("{:<18} {:>10} {:>12}", "precision", "time", "tested");
    for p in EffectPrecision::all() {
        let (env, problem) = (b.build)();
        let opts = Options {
            precision: p,
            ..(b.options)()
        };
        match Synthesizer::new(env, problem, opts).run() {
            Ok(r) => println!(
                "{:<18} {:>10.3?} {:>12}",
                p.label(),
                r.stats.elapsed,
                r.stats.search.tested
            ),
            Err(e) => println!("{:<18} {:>10} {:>12}", p.label(), "-", e),
        }
    }
}
