//! # rbsyn
//!
//! A Rust reproduction of **RbSyn: Type- and Effect-Guided Program
//! Synthesis** (Guria, Foster, Van Horn — PLDI 2021).
//!
//! This facade crate re-exports the whole workspace so examples, tests and
//! downstream users need a single dependency:
//!
//! * [`lang`] — λ_syn syntax: values, expressions, holes, types, effects;
//! * [`ty`] — class lattice, subtyping, effect subsumption, method
//!   signatures with comp types, the class table;
//! * [`db`] — in-memory relational store;
//! * [`interp`] — effect-tracking interpreter and spec runner;
//! * [`sat`] — DPLL SAT solver for branch-condition implications;
//! * [`stdlib`] — the annotated "Ruby core + ActiveRecord" library;
//! * [`core`] — the synthesizer itself (goals, search, merging);
//! * [`front`] — the textual `.rbspec` frontend (problems as data);
//! * [`suite`] — the 19 evaluation benchmarks of the paper, buildable
//!   from the Rust registry or from `benchmarks/*.rbspec`.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the architecture.

pub use rbsyn_core as core;
pub use rbsyn_db as db;
pub use rbsyn_front as front;
pub use rbsyn_interp as interp;
pub use rbsyn_lang as lang;
pub use rbsyn_sat as sat;
pub use rbsyn_stdlib as stdlib;
pub use rbsyn_suite as suite;
pub use rbsyn_ty as ty;

/// Convenience prelude: the types needed to define and run a synthesis
/// problem.
pub mod prelude {
    pub use rbsyn_core::{Guidance, Options, SynthEnv, SynthResult, SynthesisProblem, Synthesizer};
    pub use rbsyn_lang::builder::*;
    pub use rbsyn_lang::{EffectSet, Expr, Program, Symbol, Ty, Value};
    pub use rbsyn_ty::EffectPrecision;
}
