//! Global string interner.
//!
//! Identifiers (variables, method names, hash keys, effect regions, class
//! names) appear everywhere in the synthesizer's inner loop, so they are
//! interned once into a [`Symbol`] — a `Copy` integer handle with O(1)
//! equality and hashing. The interner is a process-wide table guarded by a
//! [`std::sync::RwLock`]; interning the same string twice returns the same
//! handle for the lifetime of the process.

use std::collections::HashMap;
use std::fmt;
use std::sync::{OnceLock, RwLock};

/// An interned string.
///
/// Construct with [`Symbol::intern`] (or the `From<&str>` impl) and convert
/// back with [`Symbol::as_str`]. Symbols are ordered by their *string*
/// contents so that search exploration order is independent of interning
/// order.
///
/// # Example
///
/// ```
/// use rbsyn_lang::Symbol;
/// let a = Symbol::intern("title");
/// let b = Symbol::intern("title");
/// assert_eq!(a, b);
/// assert_eq!(a.as_str(), "title");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Symbol(u32);

struct Interner {
    map: HashMap<&'static str, u32>,
    strings: Vec<&'static str>,
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        RwLock::new(Interner {
            map: HashMap::new(),
            strings: Vec::new(),
        })
    })
}

impl Symbol {
    /// Interns `s`, returning its stable handle.
    pub fn intern(s: &str) -> Symbol {
        let lock = interner();
        if let Some(&id) = lock.read().expect("interner poisoned").map.get(s) {
            return Symbol(id);
        }
        let mut w = lock.write().expect("interner poisoned");
        if let Some(&id) = w.map.get(s) {
            return Symbol(id);
        }
        // Leaking is fine: the set of identifiers in a synthesis session is
        // small and bounded by the library surface plus spec text.
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let id = w.strings.len() as u32;
        w.strings.push(leaked);
        w.map.insert(leaked, id);
        Symbol(id)
    }

    /// Returns the interned string.
    pub fn as_str(self) -> &'static str {
        interner().read().expect("interner poisoned").strings[self.0 as usize]
    }

    /// Raw handle; exposed for dense indexing in tables.
    pub fn index(self) -> u32 {
        self.0
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Symbol {
        Symbol::intern(&s)
    }
}

impl PartialOrd for Symbol {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Symbol {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if self.0 == other.0 {
            std::cmp::Ordering::Equal
        } else {
            self.as_str().cmp(other.as_str())
        }
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({:?})", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::intern("hello");
        let b = Symbol::intern("hello");
        assert_eq!(a, b);
        assert_eq!(a.index(), b.index());
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        assert_ne!(Symbol::intern("foo"), Symbol::intern("bar"));
    }

    #[test]
    fn roundtrips_contents() {
        assert_eq!(Symbol::intern("Post.title").as_str(), "Post.title");
    }

    #[test]
    fn ordering_is_lexicographic() {
        // Intern in reverse order to make sure ordering ignores handles.
        let z = Symbol::intern("zzz_order");
        let a = Symbol::intern("aaa_order");
        assert!(a < z);
        assert_eq!(a.cmp(&a), std::cmp::Ordering::Equal);
    }

    #[test]
    fn display_and_debug() {
        let s = Symbol::intern("slug");
        assert_eq!(s.to_string(), "slug");
        assert_eq!(format!("{s:?}"), "Symbol(\"slug\")");
    }

    #[test]
    fn from_impls() {
        let a: Symbol = "x".into();
        let b: Symbol = String::from("x").into();
        assert_eq!(a, b);
    }
}
