//! Interners: the global string interner and the hash-consing
//! expression arena.
//!
//! Identifiers (variables, method names, hash keys, effect regions, class
//! names) appear everywhere in the synthesizer's inner loop, so they are
//! interned once into a [`Symbol`] — a `Copy` integer handle with O(1)
//! equality and hashing. The interner is a process-wide [`SymbolTable`]:
//! inserts are striped over independently locked shards, and *resolution*
//! ([`Symbol::as_str`], which every observation hash and every symbol
//! comparison hits) is a lock-free indexed load from an append-only
//! segment arena. Interning the same string twice returns the same handle
//! for the lifetime of the process.
//!
//! Candidate *expressions* get the same treatment via [`ExprArena`]:
//! structurally equal [`Expr`]s are hash-consed to one [`ExprId`], so the
//! search can deduplicate its work-list, compare candidates, and key memo
//! tables on a `Copy` integer instead of re-rendering or re-walking ASTs.
//! Unlike the string interner, expression arenas are *instantiable* (one
//! per search cache), so their memory is reclaimed when the cache is
//! dropped.

use crate::ast::Expr;
use crate::contention::{self, LockSite};
use crate::metrics::node_count;
use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// The rustc-style multiply-xor hasher (FxHash).
///
/// Candidate interning and memo lookups hash whole expression trees on the
/// search's hottest path; a keyed SipHash there costs more than the table
/// operations it guards. This hasher trades DoS resistance (irrelevant for
/// an in-process search cache) for ~5× faster tree hashing. Deterministic
/// within a process — do not persist its output.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(Self::SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let mut tail = 0u64;
        for (i, b) in chunks.remainder().iter().enumerate() {
            tail |= u64::from(*b) << (8 * i);
        }
        self.add(tail ^ (bytes.len() as u64) << 56);
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.add(v as u64);
        self.add((v >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`]-backed maps.
pub type FxBuild = BuildHasherDefault<FxHasher>;

/// A tagged 128-bit content digest: two independent 64-bit
/// [`std::collections::hash_map::DefaultHasher`] passes (fixed-seed, so
/// values are reproducible within a process) over `(tag, lane, content)`.
///
/// Used wherever a content fingerprint doubles as a cache key — class-table
/// identity, search-environment tokens, `Γ` fingerprints — where 64 bits
/// would leave accidental collisions within reach of a long-running
/// service. Do not persist the output: it is stable per process, not per
/// toolchain.
pub fn hash128(tag: &str, content: &impl std::hash::Hash) -> u128 {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::Hash;
    let mut lo = DefaultHasher::new();
    (tag, "lo", content).hash(&mut lo);
    let mut hi = DefaultHasher::new();
    (tag, "hi", content).hash(&mut hi);
    (u128::from(hi.finish()) << 64) | u128::from(lo.finish())
}

/// An interned string.
///
/// Construct with [`Symbol::intern`] (or the `From<&str>` impl) and convert
/// back with [`Symbol::as_str`]. Symbols are ordered by their *string*
/// contents so that search exploration order is independent of interning
/// order — and, since the table went sharded, independent of the shard
/// layout too.
///
/// # Example
///
/// ```
/// use rbsyn_lang::Symbol;
/// let a = Symbol::intern("title");
/// let b = Symbol::intern("title");
/// assert_eq!(a, b);
/// assert_eq!(a.as_str(), "title");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Symbol(u32);

/// Log₂ of the first segment's capacity: segment `i` holds
/// `512 << i` slots, so a shard's capacity doubles with each segment and
/// 24 segments cover the whole `u32` slot space.
const SEG0_BITS: u32 = 9;

/// Segments per shard (enough that `segment_of` can never run off the
/// end for any encodable slot).
const SEGMENTS: usize = 24;

/// `(segment, offset)` of a slot under the doubling layout: segment `s`
/// spans slots `[512·(2^s − 1), 512·(2^{s+1} − 1))`.
fn segment_of(slot: u32) -> (usize, usize) {
    let k = (slot >> SEG0_BITS) + 1;
    let seg = (31 - k.leading_zeros()) as usize;
    let base = ((1u32 << seg) - 1) << SEG0_BITS;
    (seg, (slot - base) as usize)
}

/// One stripe of a [`SymbolTable`]: a locked insert map plus a lock-free,
/// append-only resolution arena.
///
/// The arena is a chain of exponentially growing segments, each slot a
/// [`OnceLock`]: readers resolve with two atomic loads (segment pointer,
/// slot) and never block, writers fill slots strictly once while holding
/// the shard's insert lock. Nothing is ever moved or freed, so a published
/// `&'static str` stays valid for the process lifetime.
struct Shard {
    /// String → encoded [`Symbol`] id. Taken shared for the lookup fast
    /// path, exclusively for inserts; never touched by resolution.
    map: RwLock<HashMap<&'static str, u32, FxBuild>>,
    /// Lazily allocated resolution segments (see [`segment_of`]).
    segments: [OnceLock<Box<[OnceLock<&'static str>]>>; SEGMENTS],
    /// Published slot count (diagnostics; resolution trusts the slots).
    len: AtomicU32,
}

impl Shard {
    fn new() -> Shard {
        Shard {
            map: RwLock::new(HashMap::default()),
            segments: std::array::from_fn(|_| OnceLock::new()),
            len: AtomicU32::new(0),
        }
    }

    /// Lock-free resolution of a local slot.
    fn resolve(&self, slot: u32) -> &'static str {
        let (seg, off) = segment_of(slot);
        self.segments[seg]
            .get()
            .and_then(|s| s[off].get())
            .expect("symbol slot resolved before publication")
    }
}

/// A sharded string interner with lock-free resolution.
///
/// Interning stripes strings over independently
/// locked insert maps (striped by content hash, so two threads interning
/// different identifiers almost never touch the same lock), while
/// *resolution* — the hot direction, hit on every [`Symbol::as_str`],
/// every content-based observation hash and every [`Symbol`] comparison —
/// is a plain indexed load from an append-only segment arena with **no
/// lock at all**.
///
/// Ids encode `slot << shard_bits | shard`, so `id & (shards − 1)`
/// recovers the owning stripe. The encoding (and therefore the raw
/// [`Symbol::index`] values) varies with the shard count, but nothing
/// observable does: symbols compare, order, print and observation-hash by
/// string content. The process-wide table reads `RBSYN_INTERN_SHARDS`
/// once (power of two, clamped to `1..=64`, default 16); the determinism
/// CI matrix pins shard counts 1/4/16 against each other to enforce the
/// "layout is unobservable" contract end to end.
///
/// The table is instantiable for tests; everything else goes through the
/// process-wide instance behind [`Symbol::intern`].
pub struct SymbolTable {
    shards: Box<[Shard]>,
    shard_bits: u32,
}

impl SymbolTable {
    /// A table with `shards` stripes, rounded up to a power of two and
    /// clamped to `1..=64`.
    pub fn with_shards(shards: usize) -> SymbolTable {
        let n = shards.clamp(1, 64).next_power_of_two();
        SymbolTable {
            shards: (0..n).map(|_| Shard::new()).collect(),
            shard_bits: n.trailing_zeros(),
        }
    }

    /// The stripe count (always a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total symbols interned across all stripes (diagnostics).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.len.load(Ordering::Relaxed) as usize)
            .sum()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn shard_of(&self, s: &str) -> usize {
        let mut h = FxHasher::default();
        h.write(s.as_bytes());
        (h.finish() as usize) & (self.shards.len() - 1)
    }

    /// Interns `s`, returning its encoded id. Idempotent: equal strings
    /// always map to one id for the table's lifetime.
    pub fn intern(&self, s: &str) -> u32 {
        let shard_idx = self.shard_of(s);
        let shard = &self.shards[shard_idx];
        if let Some(&id) = contention::read(LockSite::InternShard, &shard.map).get(s) {
            return id;
        }
        let mut map = contention::write(LockSite::InternShard, &shard.map);
        if let Some(&id) = map.get(s) {
            // A racing intern published this string between our probes.
            return id;
        }
        // Leaking is fine: the set of identifiers in a synthesis session is
        // small and bounded by the library surface plus spec text.
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let slot = shard.len.load(Ordering::Relaxed);
        let (seg, off) = segment_of(slot);
        let segment = shard.segments[seg].get_or_init(|| {
            (0..(1usize << (SEG0_BITS as usize + seg)))
                .map(|_| OnceLock::new())
                .collect()
        });
        segment[off]
            .set(leaked)
            .expect("fresh slot filled twice (insert lock violated)");
        shard.len.store(slot + 1, Ordering::Release);
        let id = (slot << self.shard_bits) | (shard_idx as u32);
        map.insert(leaked, id);
        id
    }

    /// Lock-free resolution of an id produced by [`SymbolTable::intern`].
    ///
    /// # Panics
    ///
    /// Panics on an id this table never handed out.
    pub fn resolve(&self, id: u32) -> &'static str {
        let shard = (id as usize) & (self.shards.len() - 1);
        self.shards[shard].resolve(id >> self.shard_bits)
    }
}

/// The process-wide table behind [`Symbol`]. Shard count comes from
/// `RBSYN_INTERN_SHARDS`, read exactly once.
fn global() -> &'static SymbolTable {
    static GLOBAL: OnceLock<SymbolTable> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let shards = std::env::var("RBSYN_INTERN_SHARDS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(16);
        SymbolTable::with_shards(shards)
    })
}

/// The effective stripe count of the process-wide symbol table (after the
/// `RBSYN_INTERN_SHARDS` clamp-and-round) — host metadata for benchmark
/// reports. Forces table initialization on first call.
pub fn global_shard_count() -> usize {
    global().shard_count()
}

impl Symbol {
    /// Interns `s`, returning its stable handle.
    pub fn intern(s: &str) -> Symbol {
        Symbol(global().intern(s))
    }

    /// Returns the interned string (a lock-free indexed load).
    pub fn as_str(self) -> &'static str {
        global().resolve(self.0)
    }

    /// Raw encoded handle (`slot << shard_bits | shard`). Stable for the
    /// process lifetime but **sparse and layout-dependent** — key maps on
    /// the `Symbol` itself, or order by contents, never index dense arrays
    /// with this.
    pub fn index(self) -> u32 {
        self.0
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Symbol {
        Symbol::intern(&s)
    }
}

impl PartialOrd for Symbol {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Symbol {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if self.0 == other.0 {
            std::cmp::Ordering::Equal
        } else {
            self.as_str().cmp(other.as_str())
        }
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({:?})", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A hash-consed expression handle.
///
/// Two candidates intern to the same id in a given [`ExprArena`] exactly
/// when they are structurally equal; ids from *different* arenas are
/// unrelated and must not be mixed. Ids are `Copy` and hash/compare in
/// O(1), which is what makes them suitable as work-list entries and memo
/// keys.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ExprId(u32);

impl ExprId {
    /// Raw handle; exposed for dense indexing and sharding.
    pub fn index(self) -> u32 {
        self.0
    }
}

/// A hash-consing arena for [`Expr`]s.
///
/// Interning stores one shared copy of each distinct expression and
/// precomputes the two properties the search asks about on every work-list
/// operation: [`node_count`] (the size heuristic) and `evaluable` (the
/// hole-free predicate of Fig. 12). Candidates are interned *whole*; the
/// arena does not decompose subtrees.
///
/// Several arenas can interleave their id spaces via
/// [`ExprArena::with_stride`], which is how a sharded, thread-safe cache
/// hands out globally unique ids from independently locked shards.
///
/// # Example
///
/// ```
/// use rbsyn_lang::builder::*;
/// use rbsyn_lang::intern::ExprArena;
///
/// let mut arena = ExprArena::new();
/// let a = arena.intern(call(var("x"), "first", []));
/// let b = arena.intern(call(var("x"), "first", []));
/// let c = arena.intern(var("x"));
/// assert_eq!(a, b, "structurally equal candidates share an id");
/// assert_ne!(a, c);
/// assert_eq!(arena.size(c), 1);
/// assert!(arena.evaluable(a));
/// assert_eq!(arena.len(), 2);
/// ```
#[derive(Debug, Default)]
pub struct ExprArena {
    // Buckets keyed by the precomputed structural hash; values are entry
    // slots with that hash. One tree walk ([`ExprArena::hash_of`]) serves
    // shard selection, lookup and insertion alike — with 64-bit hashes the
    // chains are essentially always length one, and equality is confirmed
    // structurally on the rare collision.
    map: HashMap<u64, Bucket, FxBuild>,
    entries: Vec<ArenaEntry>,
    offset: u32,
    stride: u32,
}

/// A hash bucket that stays allocation-free in the overwhelmingly common
/// single-entry case (millions of buckets exist during a hard search).
#[derive(Debug)]
enum Bucket {
    One(u32),
    Many(Vec<u32>),
}

impl Bucket {
    fn slots(&self) -> &[u32] {
        match self {
            Bucket::One(s) => std::slice::from_ref(s),
            Bucket::Many(v) => v,
        }
    }

    fn push(&mut self, slot: u32) {
        match self {
            Bucket::One(s) => *self = Bucket::Many(vec![*s, slot]),
            Bucket::Many(v) => v.push(slot),
        }
    }
}

#[derive(Debug)]
struct ArenaEntry {
    expr: Arc<Expr>,
    size: u32,
    evaluable: bool,
}

impl ExprArena {
    /// An empty arena with the dense id space `0, 1, 2, …`.
    pub fn new() -> ExprArena {
        ExprArena::with_stride(0, 1)
    }

    /// An empty arena handing out ids `offset, offset+stride, …`.
    ///
    /// Shard `i` of an `n`-way sharded cache uses `with_stride(i, n)`, so
    /// ids remain globally unique and `id.index() % n` recovers the shard.
    ///
    /// # Panics
    ///
    /// Panics when `stride` is zero or `offset >= stride`.
    pub fn with_stride(offset: u32, stride: u32) -> ExprArena {
        assert!(stride > 0 && offset < stride, "invalid arena stride");
        ExprArena {
            map: HashMap::default(),
            entries: Vec::new(),
            offset,
            stride,
        }
    }

    /// The structural hash used by this arena's buckets (one tree walk).
    /// Compute it once and pass it to the `*_hashed` operations when both
    /// a pre-check and an insert may happen.
    pub fn hash_of(e: &Expr) -> u64 {
        let mut h = FxHasher::default();
        std::hash::Hash::hash(e, &mut h);
        h.finish()
    }

    /// Interns an expression, returning its stable handle.
    pub fn intern(&mut self, e: Expr) -> ExprId {
        let hash = Self::hash_of(&e);
        self.intern_hashed(hash, e)
    }

    /// [`ExprArena::intern`] with the [`ExprArena::hash_of`] value already
    /// in hand.
    pub fn intern_hashed(&mut self, hash: u64, e: Expr) -> ExprId {
        let slot = match self.map.entry(hash) {
            std::collections::hash_map::Entry::Occupied(mut occ) => {
                if let Some(&slot) = occ
                    .get()
                    .slots()
                    .iter()
                    .find(|&&slot| *self.entries[slot as usize].expr == e)
                {
                    return ExprId(self.offset + slot * self.stride);
                }
                let slot = self.entries.len() as u32;
                occ.get_mut().push(slot);
                slot
            }
            std::collections::hash_map::Entry::Vacant(vac) => {
                let slot = self.entries.len() as u32;
                vac.insert(Bucket::One(slot));
                slot
            }
        };
        let size = node_count(&e).min(u32::MAX as usize) as u32;
        let evaluable = e.evaluable();
        self.entries.push(ArenaEntry {
            expr: Arc::new(e),
            size,
            evaluable,
        });
        ExprId(self.offset + slot * self.stride)
    }

    /// Looks an expression up without interning it.
    pub fn lookup(&self, e: &Expr) -> Option<ExprId> {
        self.lookup_hashed(Self::hash_of(e), e)
    }

    /// [`ExprArena::lookup`] with the [`ExprArena::hash_of`] value already
    /// in hand.
    pub fn lookup_hashed(&self, hash: u64, e: &Expr) -> Option<ExprId> {
        self.map.get(&hash).and_then(|bucket| {
            bucket
                .slots()
                .iter()
                .find(|&&slot| *self.entries[slot as usize].expr == *e)
                .map(|&slot| ExprId(self.offset + slot * self.stride))
        })
    }

    fn slot(&self, id: ExprId) -> usize {
        debug_assert_eq!(id.0 % self.stride, self.offset, "foreign ExprId");
        ((id.0 - self.offset) / self.stride) as usize
    }

    /// The interned expression behind a handle (cheaply clonable `Arc`).
    ///
    /// # Panics
    ///
    /// Panics when `id` was produced by a different arena.
    pub fn get(&self, id: ExprId) -> &Arc<Expr> {
        &self.entries[self.slot(id)].expr
    }

    /// Precomputed [`node_count`] of the interned expression.
    pub fn size(&self, id: ExprId) -> usize {
        self.entries[self.slot(id)].size as usize
    }

    /// Precomputed `evaluable` (hole-free) flag of the interned expression.
    pub fn evaluable(&self, id: ExprId) -> bool {
        self.entries[self.slot(id)].evaluable
    }

    /// Both precomputed properties in one lookup: `(node count,
    /// evaluable)`. The work-list consults both per candidate, and behind
    /// a lock one roundtrip matters.
    pub fn meta(&self, id: ExprId) -> (usize, bool) {
        let e = &self.entries[self.slot(id)];
        (e.size as usize, e.evaluable)
    }

    /// Number of distinct expressions interned.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the arena empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::intern("hello");
        let b = Symbol::intern("hello");
        assert_eq!(a, b);
        assert_eq!(a.index(), b.index());
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        assert_ne!(Symbol::intern("foo"), Symbol::intern("bar"));
    }

    #[test]
    fn roundtrips_contents() {
        assert_eq!(Symbol::intern("Post.title").as_str(), "Post.title");
    }

    #[test]
    fn ordering_is_lexicographic() {
        // Intern in reverse order to make sure ordering ignores handles.
        let z = Symbol::intern("zzz_order");
        let a = Symbol::intern("aaa_order");
        assert!(a < z);
        assert_eq!(a.cmp(&a), std::cmp::Ordering::Equal);
    }

    #[test]
    fn display_and_debug() {
        let s = Symbol::intern("slug");
        assert_eq!(s.to_string(), "slug");
        assert_eq!(format!("{s:?}"), "Symbol(\"slug\")");
    }

    #[test]
    fn from_impls() {
        let a: Symbol = "x".into();
        let b: Symbol = String::from("x").into();
        assert_eq!(a, b);
    }

    mod arena {
        use super::super::*;
        use crate::builder::*;
        use crate::types::Ty;

        #[test]
        fn equal_exprs_share_an_id() {
            let mut a = ExprArena::new();
            let e1 = a.intern(call(var("x"), "m", [int(1)]));
            let e2 = a.intern(call(var("x"), "m", [int(1)]));
            assert_eq!(e1, e2);
            assert_eq!(a.len(), 1, "one entry despite two interns");
        }

        #[test]
        fn distinct_exprs_get_distinct_ids() {
            let mut a = ExprArena::new();
            let ids = [
                a.intern(var("x")),
                a.intern(var("y")),
                a.intern(str_("x")),
                a.intern(hole(Ty::Str)),
                a.intern(call(var("x"), "m", [])),
            ];
            for (i, x) in ids.iter().enumerate() {
                for y in &ids[i + 1..] {
                    assert_ne!(x, y);
                }
            }
            assert_eq!(a.len(), 5);
        }

        #[test]
        fn get_roundtrips_and_metrics_are_precomputed() {
            let mut a = ExprArena::new();
            let e = seq([hole(Ty::Int), call(var("x"), "m", [int(2)])]);
            let id = a.intern(e.clone());
            assert_eq!(**a.get(id), e);
            assert_eq!(a.size(id), node_count(&e));
            assert!(!a.evaluable(id), "expression has a hole");
            let done = a.intern(var("x"));
            assert!(a.evaluable(done));
        }

        #[test]
        fn lookup_does_not_intern() {
            let mut a = ExprArena::new();
            assert!(a.is_empty());
            assert_eq!(a.lookup(&var("x")), None);
            let id = a.intern(var("x"));
            assert_eq!(a.lookup(&var("x")), Some(id));
            assert_eq!(a.len(), 1);
        }

        #[test]
        fn strided_arenas_interleave_id_spaces() {
            let mut shard0 = ExprArena::with_stride(0, 4);
            let mut shard3 = ExprArena::with_stride(3, 4);
            let a = shard0.intern(var("a"));
            let b = shard0.intern(var("b"));
            let c = shard3.intern(var("c"));
            assert_eq!(a.index() % 4, 0);
            assert_eq!(b.index() % 4, 0);
            assert_eq!(c.index() % 4, 3);
            assert_ne!(a, b);
            assert_eq!(**shard3.get(c), var("c"));
        }

        #[test]
        #[should_panic(expected = "invalid arena stride")]
        fn bad_stride_is_rejected() {
            let _ = ExprArena::with_stride(4, 4);
        }
    }
}
