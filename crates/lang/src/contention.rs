//! Lock-contention telemetry: per-site wait/hold counters for every named
//! lock in the synthesis pipeline.
//!
//! The parallel drivers share a handful of synchronized structures — the
//! global [symbol table](crate::intern), the search cache's arena and memo
//! stripes, the executor queue, the speculation pool. When threads grind
//! on one of them, wall time *rises* with thread count while CPU time
//! explodes, and nothing in the solve stats says why. This module gives
//! every such lock a name ([`LockSite`]) and counts, per site:
//!
//! * **acquisitions** — lock round-trips;
//! * **contended** — acquisitions that could not take the lock immediately
//!   (a `try_lock` probe failed first);
//! * **wait_nanos** — wall-clock time spent blocked on contended
//!   acquisitions;
//! * **hold_nanos** — wall-clock time the lock was held (write/exclusive
//!   acquisitions through the [`Held`] guard only; reads are counted but
//!   not timed — shared holds overlap, so their sum is not wall time).
//!
//! The instrumentation is **feature-gated** behind `contention` and
//! zero-cost when the feature is off: every helper collapses to a plain
//! `lock()/read()/write()` call and the counters are never touched. The
//! reporting surface ([`snapshot`], [`enabled`]) is always compiled, so
//! harness code can embed a `contention` section unconditionally — it
//! reads all-zeros with `"enabled": false` in an uninstrumented build.
//!
//! Telemetry never participates in search decisions, so enabling the
//! feature cannot change synthesized programs or effort counters — only
//! the timing columns of the report.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// The named locks of the pipeline, in lock-hierarchy order (see
/// `CONCURRENCY.md`): a thread may acquire a site only while holding locks
/// of strictly *earlier* sites, which is what makes the set deadlock-free.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(usize)]
pub enum LockSite {
    /// Batch-driver result slots (one mutex per job; leaf).
    BatchSlot = 0,
    /// The shared executor's task queue.
    ExecutorQueue,
    /// A speculation pool's window state.
    SpeculationPool,
    /// Search-cache expansion-memo stripes.
    CacheExpand,
    /// Search-cache type-memo stripes.
    CacheTypes,
    /// Search-cache oracle-memo stripes.
    CacheOracle,
    /// Batch-shared template-memo stripes.
    CacheTemplates,
    /// Search-cache expression-arena shards.
    CacheArena,
    /// Global symbol-table shard insert maps (resolution is lock-free and
    /// never appears here).
    InternShard,
}

/// Number of [`LockSite`]s (the registry is a fixed array).
pub const SITE_COUNT: usize = 9;

/// Display names, indexed by `LockSite as usize`.
const SITE_NAMES: [&str; SITE_COUNT] = [
    "batch_slot",
    "executor_queue",
    "speculation_pool",
    "cache_expand",
    "cache_types",
    "cache_oracle",
    "cache_templates",
    "cache_arena",
    "intern_shard",
];

struct Counters {
    acquisitions: AtomicU64,
    contended: AtomicU64,
    wait_nanos: AtomicU64,
    hold_nanos: AtomicU64,
}

#[allow(clippy::declare_interior_mutable_const)]
const ZERO: Counters = Counters {
    acquisitions: AtomicU64::new(0),
    contended: AtomicU64::new(0),
    wait_nanos: AtomicU64::new(0),
    hold_nanos: AtomicU64::new(0),
};

static REGISTRY: [Counters; SITE_COUNT] = [ZERO; SITE_COUNT];

/// Is the `contention` feature compiled in?
pub const fn enabled() -> bool {
    cfg!(feature = "contention")
}

/// One site's accumulated counters (see the [module docs](self) for the
/// field semantics). Snapshots are process-lifetime totals; callers that
/// want per-phase numbers diff two snapshots.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SiteReport {
    /// Stable site name (`snake_case`, used as the JSON key).
    pub name: &'static str,
    /// Total lock round-trips.
    pub acquisitions: u64,
    /// Acquisitions that found the lock taken.
    pub contended: u64,
    /// Nanoseconds spent blocked acquiring.
    pub wait_nanos: u64,
    /// Nanoseconds exclusive guards were held.
    pub hold_nanos: u64,
}

impl SiteReport {
    /// Counter-wise difference vs an earlier snapshot of the same site
    /// (saturating, for safety against snapshot skew).
    pub fn since(&self, earlier: &SiteReport) -> SiteReport {
        SiteReport {
            name: self.name,
            acquisitions: self.acquisitions.saturating_sub(earlier.acquisitions),
            contended: self.contended.saturating_sub(earlier.contended),
            wait_nanos: self.wait_nanos.saturating_sub(earlier.wait_nanos),
            hold_nanos: self.hold_nanos.saturating_sub(earlier.hold_nanos),
        }
    }
}

/// A snapshot of every site's counters, in [`LockSite`] order. All-zero
/// when the `contention` feature is off.
pub fn snapshot() -> Vec<SiteReport> {
    REGISTRY
        .iter()
        .zip(SITE_NAMES)
        .map(|(c, name)| SiteReport {
            name,
            acquisitions: c.acquisitions.load(Ordering::Relaxed),
            contended: c.contended.load(Ordering::Relaxed),
            wait_nanos: c.wait_nanos.load(Ordering::Relaxed),
            hold_nanos: c.hold_nanos.load(Ordering::Relaxed),
        })
        .collect()
}

/// Site-wise [`SiteReport::since`] over two [`snapshot`]s.
pub fn snapshot_since(earlier: &[SiteReport]) -> Vec<SiteReport> {
    snapshot()
        .iter()
        .zip(earlier)
        .map(|(now, then)| now.since(then))
        .collect()
}

#[cfg(feature = "contention")]
fn bump(site: LockSite, contended: bool, wait_nanos: u64) {
    let c = &REGISTRY[site as usize];
    c.acquisitions.fetch_add(1, Ordering::Relaxed);
    if contended {
        c.contended.fetch_add(1, Ordering::Relaxed);
        c.wait_nanos.fetch_add(wait_nanos, Ordering::Relaxed);
    }
}

/// An exclusive guard that records its hold time on drop (instrumented
/// builds only; a transparent newtype otherwise).
pub struct Held<G> {
    guard: G,
    #[cfg(feature = "contention")]
    site: LockSite,
    #[cfg(feature = "contention")]
    taken: std::time::Instant,
}

impl<G: std::ops::Deref> std::ops::Deref for Held<G> {
    type Target = G::Target;

    fn deref(&self) -> &G::Target {
        &self.guard
    }
}

impl<G: std::ops::DerefMut> std::ops::DerefMut for Held<G> {
    fn deref_mut(&mut self) -> &mut G::Target {
        &mut self.guard
    }
}

#[cfg(feature = "contention")]
impl<G> Drop for Held<G> {
    fn drop(&mut self) {
        REGISTRY[self.site as usize]
            .hold_nanos
            .fetch_add(self.taken.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }
}

#[cfg(feature = "contention")]
fn held<G>(site: LockSite, guard: G) -> Held<G> {
    Held {
        guard,
        site,
        taken: std::time::Instant::now(),
    }
}

/// Shared (read) acquisition of an instrumented [`RwLock`].
///
/// Poisoned locks are recovered, not propagated: every structure behind
/// these sites is valid at rest (inserts either complete or don't), so a
/// panic elsewhere at worst loses one in-flight memo entry — always safe
/// to recompute. See CONCURRENCY.md's lock-poisoning policy.
#[inline(always)]
pub fn read<T>(site: LockSite, lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    #[cfg(feature = "contention")]
    {
        match lock.try_read() {
            Ok(g) => {
                bump(site, false, 0);
                return g;
            }
            Err(std::sync::TryLockError::Poisoned(p)) => {
                bump(site, false, 0);
                return p.into_inner();
            }
            Err(std::sync::TryLockError::WouldBlock) => {}
        }
        let t0 = std::time::Instant::now();
        let g = lock.read().unwrap_or_else(|p| p.into_inner());
        bump(site, true, t0.elapsed().as_nanos() as u64);
        g
    }
    #[cfg(not(feature = "contention"))]
    {
        let _ = site;
        lock.read().unwrap_or_else(|p| p.into_inner())
    }
}

/// Exclusive (write) acquisition of an instrumented [`RwLock`]; the
/// returned [`Held`] guard also records hold time. Poisoned locks are
/// recovered (see [`read`]).
#[inline(always)]
pub fn write<T>(site: LockSite, lock: &RwLock<T>) -> Held<RwLockWriteGuard<'_, T>> {
    #[cfg(feature = "contention")]
    {
        match lock.try_write() {
            Ok(g) => {
                bump(site, false, 0);
                return held(site, g);
            }
            Err(std::sync::TryLockError::Poisoned(p)) => {
                bump(site, false, 0);
                return held(site, p.into_inner());
            }
            Err(std::sync::TryLockError::WouldBlock) => {}
        }
        let t0 = std::time::Instant::now();
        let g = lock.write().unwrap_or_else(|p| p.into_inner());
        bump(site, true, t0.elapsed().as_nanos() as u64);
        held(site, g)
    }
    #[cfg(not(feature = "contention"))]
    {
        let _ = site;
        Held {
            guard: lock.write().unwrap_or_else(|p| p.into_inner()),
        }
    }
}

/// Acquisition of an instrumented [`Mutex`], returning the *plain* guard —
/// for sites whose guard must feed a [`std::sync::Condvar`] (hold time is
/// not recorded there; waiting on the condvar releases the lock, so a
/// wrapper would misreport idle parking as holding). Poisoned locks are
/// recovered (see [`read`]).
#[inline(always)]
pub fn lock<T>(site: LockSite, mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    #[cfg(feature = "contention")]
    {
        match mutex.try_lock() {
            Ok(g) => {
                bump(site, false, 0);
                return g;
            }
            Err(std::sync::TryLockError::Poisoned(p)) => {
                bump(site, false, 0);
                return p.into_inner();
            }
            Err(std::sync::TryLockError::WouldBlock) => {}
        }
        let t0 = std::time::Instant::now();
        let g = mutex.lock().unwrap_or_else(|p| p.into_inner());
        bump(site, true, t0.elapsed().as_nanos() as u64);
        g
    }
    #[cfg(not(feature = "contention"))]
    {
        let _ = site;
        mutex.lock().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_covers_every_site_in_order() {
        let s = snapshot();
        assert_eq!(s.len(), SITE_COUNT);
        assert_eq!(s[LockSite::InternShard as usize].name, "intern_shard");
        assert_eq!(s[LockSite::ExecutorQueue as usize].name, "executor_queue");
        assert_eq!(s[LockSite::CacheArena as usize].name, "cache_arena");
    }

    #[test]
    fn helpers_return_working_guards() {
        let rw = RwLock::new(1);
        assert_eq!(*read(LockSite::CacheTypes, &rw), 1);
        *write(LockSite::CacheTypes, &rw) = 2;
        assert_eq!(*read(LockSite::CacheTypes, &rw), 2);
        let m = Mutex::new(3);
        assert_eq!(*lock(LockSite::ExecutorQueue, &m), 3);
    }

    #[test]
    fn poisoned_locks_are_recovered() {
        use std::sync::Arc;
        let m = Arc::new(Mutex::new(7));
        let rw = Arc::new(RwLock::new(8));
        let (m2, rw2) = (Arc::clone(&m), Arc::clone(&rw));
        let _ = std::thread::spawn(move || {
            let _mg = m2.lock().expect("not yet poisoned");
            let _wg = rw2.write().expect("not yet poisoned");
            panic!("poison both on purpose");
        })
        .join();
        assert!(m.is_poisoned() && rw.is_poisoned());
        assert_eq!(*lock(LockSite::ExecutorQueue, &m), 7);
        assert_eq!(*read(LockSite::CacheTypes, &rw), 8);
        *write(LockSite::CacheTypes, &rw) = 9;
        assert_eq!(*read(LockSite::CacheTypes, &rw), 9);
    }

    #[test]
    fn uninstrumented_builds_report_zeros() {
        if !enabled() {
            let rw = RwLock::new(());
            drop(write(LockSite::CacheOracle, &rw));
            let s = snapshot();
            assert!(s.iter().all(|r| r.acquisitions == 0 && r.hold_nanos == 0));
        }
    }

    #[cfg(feature = "contention")]
    #[test]
    fn instrumented_builds_count_acquisitions_and_holds() {
        let before = snapshot();
        let rw = RwLock::new(());
        drop(read(LockSite::CacheOracle, &rw));
        drop(write(LockSite::CacheOracle, &rw));
        let delta = snapshot_since(&before);
        let site = &delta[LockSite::CacheOracle as usize];
        assert!(site.acquisitions >= 2);
        assert_eq!(site.contended, 0, "uncontended in a single thread");
    }

    #[test]
    fn since_is_saturating_and_named() {
        let a = SiteReport {
            name: "x",
            acquisitions: 1,
            contended: 0,
            wait_nanos: 5,
            hold_nanos: 0,
        };
        let b = SiteReport {
            name: "x",
            acquisitions: 3,
            contended: 1,
            wait_nanos: 2,
            hold_nanos: 9,
        };
        let d = b.since(&a);
        assert_eq!(d.acquisitions, 2);
        assert_eq!(d.wait_nanos, 0, "saturates instead of underflowing");
        assert_eq!(d.hold_nanos, 9);
    }
}
