//! The type syntax `τ` of λ_syn (Fig. 3), extended with the forms the
//! implementation needs (§4): finite hash types, singleton class types and
//! symbol-literal types.
//!
//! Only the *syntax* lives here. Subtyping (`τ₁ ≤ τ₂`) requires the class
//! lattice and is implemented in `rbsyn-ty`.

use crate::intern::Symbol;
use crate::value::ClassId;
use std::fmt;

/// One field of a finite hash type, e.g. the `title: ?Str` in
/// `{author: ?Str, title: ?Str}`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct HashField {
    /// Key symbol.
    pub key: Symbol,
    /// Value type.
    pub ty: Ty,
    /// Optional keys are written `?τ` in RDL; an optional key may be absent.
    pub optional: bool,
}

/// A finite hash type `{k₁: τ₁, k₂: ?τ₂, …}` describing `Hash` instances
/// with known symbol keys (RDL's finite hash types, §2).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct FiniteHash {
    /// Fields in declaration order.
    pub fields: Vec<HashField>,
}

impl FiniteHash {
    /// Builds a finite hash type; fields are kept in the given order.
    pub fn new(fields: Vec<HashField>) -> FiniteHash {
        FiniteHash { fields }
    }

    /// Looks up a field by key.
    pub fn field(&self, key: Symbol) -> Option<&HashField> {
        self.fields.iter().find(|f| f.key == key)
    }

    /// All keys, in order.
    pub fn keys(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.fields.iter().map(|f| f.key)
    }
}

/// λ_syn types.
///
/// The class lattice has `Nil` as bottom and `Obj` as top (Fig. 3); the
/// primitive classes (`Bool`, `Int`, `Str`, `Sym`, …) are immediate
/// subclasses of `Obj`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Ty {
    /// `Nil` — the class of `nil`; bottom of the lattice.
    Nil,
    /// Booleans (`TrueClass ∪ FalseClass`, collapsed).
    Bool,
    /// Integers.
    Int,
    /// Strings.
    Str,
    /// Any symbol.
    Sym,
    /// A specific symbol literal, e.g. `:title`. Subtype of [`Ty::Sym`];
    /// used to type the key argument of `Hash#[]` during synthesis (§2.1).
    SymLit(Symbol),
    /// An instance of class `A` (covers user-defined and model classes).
    Instance(ClassId),
    /// The singleton type `Class<A>` of the class object itself, used to
    /// type constants like `Post` so singleton (class) methods can be
    /// called on them.
    SingletonClass(ClassId),
    /// A finite hash type.
    FiniteHash(FiniteHash),
    /// An array whose elements have the given type.
    Array(Box<Ty>),
    /// Union `τ ∪ τ`, kept flattened and deduplicated by [`Ty::union`].
    Union(Vec<Ty>),
    /// `Obj` — top of the lattice.
    Obj,
    /// The type of `err(ε_r, ε_w)` results (Fig. 9). Never inhabited by a
    /// synthesized term; present so evaluation results are typeable.
    Err,
}

impl Ty {
    /// Builds a flattened, deduplicated union. Unions of zero and one
    /// element collapse to `Nil` and the element respectively.
    pub fn union(parts: Vec<Ty>) -> Ty {
        let mut flat: Vec<Ty> = Vec::new();
        fn push(flat: &mut Vec<Ty>, t: Ty) {
            match t {
                Ty::Union(inner) => {
                    for i in inner {
                        push(flat, i);
                    }
                }
                other => {
                    if !flat.contains(&other) {
                        flat.push(other);
                    }
                }
            }
        }
        for p in parts {
            push(&mut flat, p);
        }
        match flat.len() {
            0 => Ty::Nil,
            1 => flat.pop().expect("len checked"),
            _ => {
                if flat.contains(&Ty::Obj) {
                    Ty::Obj
                } else {
                    Ty::Union(flat)
                }
            }
        }
    }

    /// Is this (syntactically) the `Nil` type?
    pub fn is_nil(&self) -> bool {
        matches!(self, Ty::Nil)
    }

    /// Renders the type with a class-name resolver (the lattice lives
    /// elsewhere, so `Display` alone cannot name classes).
    pub fn render(&self, resolve: &dyn Fn(ClassId) -> String) -> String {
        match self {
            Ty::Nil => "Nil".into(),
            Ty::Bool => "Bool".into(),
            Ty::Int => "Int".into(),
            Ty::Str => "Str".into(),
            Ty::Sym => "Sym".into(),
            Ty::SymLit(s) => format!(":{s}"),
            Ty::Instance(c) => resolve(*c),
            Ty::SingletonClass(c) => format!("Class<{}>", resolve(*c)),
            Ty::FiniteHash(fh) => {
                let fields: Vec<String> = fh
                    .fields
                    .iter()
                    .map(|f| {
                        format!(
                            "{}: {}{}",
                            f.key,
                            if f.optional { "?" } else { "" },
                            f.ty.render(resolve)
                        )
                    })
                    .collect();
                format!("{{{}}}", fields.join(", "))
            }
            Ty::Array(t) => format!("Array<{}>", t.render(resolve)),
            Ty::Union(parts) => {
                let rendered: Vec<String> = parts.iter().map(|p| p.render(resolve)).collect();
                rendered.join(" ∪ ")
            }
            Ty::Obj => "Obj".into(),
            Ty::Err => "Err".into(),
        }
    }
}

impl fmt::Display for Ty {
    /// Renders using the class names carried by [`ClassId`]s.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render(&|c| c.name.as_str().to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_flattens_and_dedups() {
        let t = Ty::union(vec![Ty::Int, Ty::Union(vec![Ty::Str, Ty::Int]), Ty::Str]);
        assert_eq!(t, Ty::Union(vec![Ty::Int, Ty::Str]));
    }

    #[test]
    fn union_collapses_singletons() {
        assert_eq!(Ty::union(vec![Ty::Int]), Ty::Int);
        assert_eq!(Ty::union(vec![]), Ty::Nil);
        assert_eq!(Ty::union(vec![Ty::Int, Ty::Int]), Ty::Int);
    }

    #[test]
    fn union_absorbs_obj() {
        assert_eq!(Ty::union(vec![Ty::Int, Ty::Obj]), Ty::Obj);
    }

    #[test]
    fn finite_hash_lookup() {
        let fh = FiniteHash::new(vec![
            HashField {
                key: Symbol::intern("a"),
                ty: Ty::Int,
                optional: false,
            },
            HashField {
                key: Symbol::intern("b"),
                ty: Ty::Str,
                optional: true,
            },
        ]);
        assert!(fh.field(Symbol::intern("a")).is_some());
        assert!(fh.field(Symbol::intern("b")).unwrap().optional);
        assert!(fh.field(Symbol::intern("c")).is_none());
        assert_eq!(fh.keys().count(), 2);
    }

    #[test]
    fn rendering() {
        let fh = Ty::FiniteHash(FiniteHash::new(vec![HashField {
            key: Symbol::intern("slug"),
            ty: Ty::Str,
            optional: true,
        }]));
        assert_eq!(fh.to_string(), "{slug: ?Str}");
        assert_eq!(Ty::union(vec![Ty::Int, Ty::Nil]).to_string(), "Int ∪ Nil");
        assert_eq!(Ty::SymLit(Symbol::intern("title")).to_string(), ":title");
        assert_eq!(Ty::Array(Box::new(Ty::Int)).to_string(), "Array<Int>");
    }
}
