//! Crash-safe artifact writes: temp-file + atomic rename.
//!
//! Every artifact the pipeline persists — trace JSON, benchmark reports,
//! cache snapshots — goes through [`atomic_write`], so a reader can never
//! observe a half-written file: the bytes land in a sibling temp file
//! first and are renamed over the destination only once fully flushed
//! (`rename(2)` is atomic within a filesystem). A crash mid-write leaves
//! the previous version of the artifact intact plus at worst a stray
//! `.tmp.*` file, never a truncated artifact.

use std::fs;
use std::io::{self, Write};
use std::path::Path;

/// Writes `bytes` to `path` atomically: the data is written and flushed
/// to `path.tmp.<pid>` in the same directory, then renamed over `path`.
///
/// # Errors
///
/// Any underlying filesystem error (create, write, flush or rename). On
/// error the destination is untouched; the temp file is cleaned up on a
/// best-effort basis.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = match path.file_name().and_then(|n| n.to_str()) {
        Some(name) => path.with_file_name(format!("{name}.tmp.{}", std::process::id())),
        None => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("atomic_write target {} has no file name", path.display()),
            ))
        }
    };
    let write_all = (|| {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        // Contents must be durable before the rename makes them visible.
        f.sync_all()
    })();
    if let Err(e) = write_all {
        let _ = fs::remove_file(&tmp);
        return Err(e);
    }
    fs::rename(&tmp, path).inspect_err(|_| {
        let _ = fs::remove_file(&tmp);
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("rbsyn-persist-{}", std::process::id()));
        fs::create_dir_all(&dir).expect("scratch dir");
        dir.join(name)
    }

    #[test]
    fn writes_and_replaces() {
        let p = scratch("artifact.json");
        atomic_write(&p, b"first").expect("write");
        assert_eq!(fs::read(&p).expect("read"), b"first");
        atomic_write(&p, b"second version").expect("rewrite");
        assert_eq!(fs::read(&p).expect("read"), b"second version");
        // No temp residue after a successful write.
        let dir = p.parent().expect("has parent");
        let residue = fs::read_dir(dir)
            .expect("list")
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .count();
        assert_eq!(residue, 0);
        let _ = fs::remove_file(&p);
    }

    #[test]
    fn bad_target_is_an_error() {
        assert!(atomic_write(Path::new("/"), b"x").is_err());
    }
}
