//! Runtime values of λ_syn.
//!
//! The paper's values are `nil | true | false | [A]` (Fig. 3); the
//! implementation (§4) additionally manipulates integers, strings, symbols
//! and finite hashes, all of which appear in specs and synthesized code, so
//! they are first-class here.

use crate::intern::Symbol;
use std::fmt;
use std::sync::Arc;

/// Identifies a class in a `ClassHierarchy` (defined in `rbsyn-ty`).
///
/// A `ClassId` is a dense index assigned at class-definition time *plus*
/// the interned class name: the index drives lattice queries, the name
/// makes types, effects and synthesized programs render readably
/// (`Post.exists?` instead of `<class #9>`). Two ids are equal only when
/// both agree, so ids from different hierarchies never alias.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ClassId {
    /// Dense index within the defining hierarchy.
    pub idx: u32,
    /// Interned class name.
    pub name: Symbol,
}

impl ClassId {
    /// Builds an id (normally done by the hierarchy).
    pub fn new(idx: u32, name: Symbol) -> ClassId {
        ClassId { idx, name }
    }

    /// Dense index of this class.
    pub fn index(self) -> usize {
        self.idx as usize
    }
}

impl fmt::Display for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name.as_str())
    }
}

/// A reference to an object in a `World` heap (defined in `rbsyn-interp`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ObjRef(pub u32);

impl ObjRef {
    /// Dense index of the referenced heap slot.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A λ_syn runtime value.
///
/// Equality is *structural* for immediates, hashes and arrays, and
/// *reference* equality for heap objects; Ruby-level `==` (e.g. ActiveRecord
/// model equality by primary key) is implemented by native methods in the
/// interpreter, not here.
#[derive(Clone, Default, PartialEq, Eq, Hash, Debug)]
pub enum Value {
    /// `nil`, the sole inhabitant of class `Nil`.
    #[default]
    Nil,
    /// `true` / `false`.
    Bool(bool),
    /// Machine integer (Ruby `Integer`, unbounded in Ruby; `i64` here).
    Int(i64),
    /// Immutable string. `Arc` keeps candidate evaluation cheap to clone.
    Str(Arc<str>),
    /// Interned symbol, e.g. `:title`.
    Sym(Symbol),
    /// Insertion-ordered association list, as Ruby hashes are ordered.
    /// Keys in synthesized code are always symbols, but the representation
    /// is generic.
    Hash(Vec<(Value, Value)>),
    /// Array literal values.
    Array(Vec<Value>),
    /// A class used as a value (e.g. the constant `Post` used as the
    /// receiver of a singleton-method call). Has type `Class<A>`.
    Class(ClassId),
    /// Reference to a heap object `[A]`.
    Obj(ObjRef),
}

impl Value {
    /// Builds a string value.
    pub fn str(s: &str) -> Value {
        Value::Str(Arc::from(s))
    }

    /// Builds a symbol value.
    pub fn sym(s: &str) -> Value {
        Value::Sym(Symbol::intern(s))
    }

    /// Ruby truthiness: everything except `nil` and `false` is truthy.
    pub fn truthy(&self) -> bool {
        !matches!(self, Value::Nil | Value::Bool(false))
    }

    /// Is this `nil`?
    pub fn is_nil(&self) -> bool {
        matches!(self, Value::Nil)
    }

    /// Looks a key up in a hash value (`None` for absent keys or non-hashes).
    pub fn hash_get(&self, key: &Value) -> Option<&Value> {
        match self {
            Value::Hash(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Inserts or replaces a hash entry. Panics if `self` is not a hash.
    ///
    /// # Panics
    ///
    /// Panics when called on a non-hash value; callers in the interpreter
    /// guarantee the receiver shape.
    pub fn hash_insert(&mut self, key: Value, value: Value) {
        match self {
            Value::Hash(entries) => {
                if let Some(slot) = entries.iter_mut().find(|(k, _)| *k == key) {
                    slot.1 = value;
                } else {
                    entries.push((key, value));
                }
            }
            _ => panic!("hash_insert on non-hash value"),
        }
    }

    /// A short class-like tag used in error messages.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Value::Nil => "NilClass",
            Value::Bool(true) => "TrueClass",
            Value::Bool(false) => "FalseClass",
            Value::Int(_) => "Integer",
            Value::Str(_) => "String",
            Value::Sym(_) => "Symbol",
            Value::Hash(_) => "Hash",
            Value::Array(_) => "Array",
            Value::Class(_) => "Class",
            Value::Obj(_) => "Object",
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Value {
        Value::Int(i)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::str(s)
    }
}

impl From<Symbol> for Value {
    fn from(s: Symbol) -> Value {
        Value::Sym(s)
    }
}

impl fmt::Display for Value {
    /// Ruby `inspect`-style rendering, used by the pretty printer and tests.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Nil => write!(f, "nil"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Sym(s) => write!(f, ":{s}"),
            Value::Hash(entries) => {
                write!(f, "{{")?;
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    match k {
                        Value::Sym(s) => write!(f, "{s}: {v}")?,
                        other => write!(f, "{other} => {v}")?,
                    }
                }
                write!(f, "}}")
            }
            Value::Array(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Class(c) => write!(f, "{c}"),
            Value::Obj(o) => write!(f, "<obj #{}>", o.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness_matches_ruby() {
        assert!(!Value::Nil.truthy());
        assert!(!Value::Bool(false).truthy());
        assert!(Value::Bool(true).truthy());
        assert!(Value::Int(0).truthy(), "0 is truthy in Ruby");
        assert!(Value::str("").truthy(), "empty string is truthy in Ruby");
    }

    #[test]
    fn hash_get_and_insert() {
        let mut h = Value::Hash(vec![(Value::sym("a"), Value::Int(1))]);
        assert_eq!(h.hash_get(&Value::sym("a")), Some(&Value::Int(1)));
        assert_eq!(h.hash_get(&Value::sym("b")), None);
        h.hash_insert(Value::sym("a"), Value::Int(2));
        h.hash_insert(Value::sym("b"), Value::Int(3));
        assert_eq!(h.hash_get(&Value::sym("a")), Some(&Value::Int(2)));
        assert_eq!(h.hash_get(&Value::sym("b")), Some(&Value::Int(3)));
    }

    #[test]
    fn display_is_ruby_like() {
        let h = Value::Hash(vec![
            (Value::sym("slug"), Value::str("hello-world")),
            (Value::sym("n"), Value::Int(3)),
        ]);
        assert_eq!(h.to_string(), "{slug: \"hello-world\", n: 3}");
        assert_eq!(
            Value::Array(vec![Value::Nil, Value::Bool(true)]).to_string(),
            "[nil, true]"
        );
        assert_eq!(Value::sym("ok").to_string(), ":ok");
    }

    #[test]
    fn structural_equality_for_immediates() {
        assert_eq!(Value::str("a"), Value::str("a"));
        assert_ne!(Value::str("a"), Value::str("b"));
        assert_eq!(Value::sym("a"), Value::sym("a"));
        assert_ne!(Value::Int(1), Value::Bool(true));
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(7i64), Value::Int(7));
        assert_eq!(Value::from("hi"), Value::str("hi"));
    }

    #[test]
    fn kind_names() {
        assert_eq!(Value::Nil.kind_name(), "NilClass");
        assert_eq!(Value::Bool(true).kind_name(), "TrueClass");
        assert_eq!(Value::Hash(vec![]).kind_name(), "Hash");
    }
}
