//! λ_syn — the core object-oriented calculus of the RbSyn paper (Fig. 3).
//!
//! This crate defines the *syntax* layer shared by every other crate:
//!
//! * [`Symbol`] — interned identifiers (method names, variables, regions);
//! * [`Value`] — runtime values (`nil`, booleans, integers, strings,
//!   symbols, hashes, arrays, class objects, heap references);
//! * [`Ty`] — the type syntax `τ ::= A | τ ∪ τ | …` extended, as in the
//!   implementation (§4), with finite hash types, singleton class types and
//!   symbol-literal types;
//! * [`Effect`] / [`EffectSet`] — the effect syntax
//!   `ε ::= • | * | A.* | A.r | ε ∪ ε` plus the implementation's `self`
//!   region (§4);
//! * [`Expr`] — expressions, including the two kinds of synthesis holes:
//!   typed holes `□:τ` ([`Expr::Hole`]) and effect holes `◇:ε`
//!   ([`Expr::EffHole`]);
//! * [`Program`] — a single method definition `def m(x…) = e`;
//! * size and path metrics used by the search heuristics and by Table 1.
//!
//! Semantic *operations* on these (subtyping, effect subsumption, class
//! tables, evaluation) live in the `rbsyn-ty` and `rbsyn-interp` crates.
//!
//! # Example
//!
//! ```
//! use rbsyn_lang::builder::*;
//! use rbsyn_lang::Program;
//!
//! // def m(x) = if x then 1 else 0
//! let body = if_(var("x"), int(1), int(0));
//! let p = Program::new("m", ["x"], body);
//! assert_eq!(
//!     p.to_string(),
//!     "def m(x)\n  if x\n    1\n  else\n    0\n  end\nend"
//! );
//! ```

#![deny(missing_docs)]

pub mod ast;
pub mod builder;
pub mod contention;
pub mod effects;
pub mod failpoint;
pub mod intern;
pub mod metrics;
pub mod obs;
pub mod persist;
pub mod types;
pub mod value;

pub use ast::{Expr, Program};
pub use effects::{Effect, EffectPair, EffectSet};
pub use intern::{hash128, ExprArena, ExprId, FxBuild, FxHasher, Symbol, SymbolTable};
pub use obs::{unordered_obs_fold, ObsHasher};
pub use types::{FiniteHash, HashField, Ty};
pub use value::{ClassId, ObjRef, Value};
