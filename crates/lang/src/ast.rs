//! Expressions and programs of λ_syn (Fig. 3).
//!
//! Expressions carry the two kinds of synthesis holes — typed holes `□:τ`
//! and effect holes `◇:ε` — directly in the AST, exactly as in the paper's
//! rewriting semantics: synthesis proceeds by replacing the leftmost hole
//! with candidate terms until an expression is *evaluable* (hole-free,
//! Fig. 12).

use crate::effects::EffectSet;
use crate::intern::Symbol;
use crate::types::Ty;
use crate::value::Value;
use std::fmt;

/// A λ_syn expression.
///
/// `Expr` is structurally hashable so candidates can be hash-consed into an
/// [`crate::intern::ExprArena`]; two expressions are equal exactly when
/// their ASTs are.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Expr {
    /// A literal value: `nil`, `true`, `false`, integers, strings, symbols,
    /// and class constants (`Post`). Object literals `[A]` only arise at
    /// runtime and never appear in synthesized code.
    Lit(Value),
    /// Variable reference `x` (method parameters, `let`-bound temporaries,
    /// spec-setup bindings).
    Var(Symbol),
    /// Statement sequence `e₁; e₂; …` (n-ary for convenience; the paper's
    /// binary `e;e` is the two-element case).
    Seq(Vec<Expr>),
    /// Method call `e.m(e…)`.
    Call {
        /// Receiver expression.
        recv: Box<Expr>,
        /// Method name.
        meth: Symbol,
        /// Argument expressions.
        args: Vec<Expr>,
    },
    /// Conditional `if b then e₁ else e₂`.
    If {
        /// Guard `b` (an expression, possibly under [`Expr::Not`] /
        /// [`Expr::Or`], per the guard grammar of Fig. 3).
        cond: Box<Expr>,
        /// Then branch.
        then: Box<Expr>,
        /// Else branch (`nil` when synthesised without one).
        els: Box<Expr>,
    },
    /// `let x = e₁ in e₂`. Rendered as `x = e₁; e₂` in Ruby style.
    Let {
        /// Bound variable.
        var: Symbol,
        /// Bound expression.
        val: Box<Expr>,
        /// Body in which `var` is visible.
        body: Box<Expr>,
    },
    /// Hash literal `{k₁: e₁, …}` (symbol keys only, as synthesized code
    /// only builds keyword-argument-style hashes).
    HashLit(Vec<(Symbol, Expr)>),
    /// Guard negation `!b`.
    Not(Box<Expr>),
    /// Guard disjunction `b₁ ∨ b₂` (Ruby `||`).
    Or(Box<Expr>, Box<Expr>),
    /// Typed hole `□:τ` — must be filled by an expression of type ≤ τ.
    Hole(Ty),
    /// Effect hole `◇:ε` — must be filled by an expression whose *write*
    /// effect subsumes ε (or deleted via S-EffNil).
    EffHole(EffectSet),
}

impl Expr {
    /// `nil` literal.
    pub fn nil() -> Expr {
        Expr::Lit(Value::Nil)
    }

    /// Does the expression contain any hole? The paper's `evaluable`
    /// predicate (Fig. 12) is the negation of this.
    pub fn has_holes(&self) -> bool {
        match self {
            Expr::Hole(_) | Expr::EffHole(_) => true,
            Expr::Lit(_) | Expr::Var(_) => false,
            Expr::Seq(es) => es.iter().any(Expr::has_holes),
            Expr::Call { recv, args, .. } => recv.has_holes() || args.iter().any(Expr::has_holes),
            Expr::If { cond, then, els } => cond.has_holes() || then.has_holes() || els.has_holes(),
            Expr::Let { val, body, .. } => val.has_holes() || body.has_holes(),
            Expr::HashLit(entries) => entries.iter().any(|(_, e)| e.has_holes()),
            Expr::Not(b) => b.has_holes(),
            Expr::Or(a, b) => a.has_holes() || b.has_holes(),
        }
    }

    /// `evaluable e` (Fig. 12): true when the expression is hole-free.
    pub fn evaluable(&self) -> bool {
        !self.has_holes()
    }

    /// Number of holes (typed + effect) in the expression.
    pub fn hole_count(&self) -> usize {
        match self {
            Expr::Hole(_) | Expr::EffHole(_) => 1,
            Expr::Lit(_) | Expr::Var(_) => 0,
            Expr::Seq(es) => es.iter().map(Expr::hole_count).sum(),
            Expr::Call { recv, args, .. } => {
                recv.hole_count() + args.iter().map(Expr::hole_count).sum::<usize>()
            }
            Expr::If { cond, then, els } => {
                cond.hole_count() + then.hole_count() + els.hole_count()
            }
            Expr::Let { val, body, .. } => val.hole_count() + body.hole_count(),
            Expr::HashLit(entries) => entries.iter().map(|(_, e)| e.hole_count()).sum(),
            Expr::Not(b) => b.hole_count(),
            Expr::Or(a, b) => a.hole_count() + b.hole_count(),
        }
    }

    /// Collects every `let`/`Var` temporary name of the form `tN`, so the
    /// effect-guided wrap (S-Eff) can pick a fresh one.
    pub fn fresh_temp(&self) -> Symbol {
        fn max_temp(e: &Expr, cur: &mut i64) {
            let mut check = |s: Symbol| {
                let name = s.as_str();
                if let Some(rest) = name.strip_prefix('t') {
                    if let Ok(n) = rest.parse::<i64>() {
                        *cur = (*cur).max(n);
                    }
                }
            };
            match e {
                Expr::Var(s) => check(*s),
                Expr::Let { var, val, body } => {
                    check(*var);
                    max_temp(val, cur);
                    max_temp(body, cur);
                }
                Expr::Seq(es) => es.iter().for_each(|e| max_temp(e, cur)),
                Expr::Call { recv, args, .. } => {
                    max_temp(recv, cur);
                    args.iter().for_each(|e| max_temp(e, cur));
                }
                Expr::If { cond, then, els } => {
                    max_temp(cond, cur);
                    max_temp(then, cur);
                    max_temp(els, cur);
                }
                Expr::HashLit(entries) => entries.iter().for_each(|(_, e)| max_temp(e, cur)),
                Expr::Not(b) => max_temp(b, cur),
                Expr::Or(a, b) => {
                    max_temp(a, cur);
                    max_temp(b, cur);
                }
                Expr::Lit(_) | Expr::Hole(_) | Expr::EffHole(_) => {}
            }
        }
        let mut cur = -1;
        max_temp(self, &mut cur);
        temp_symbol((cur + 1) as usize)
    }

    /// Single-line rendering used as a canonical deduplication key and in
    /// search traces.
    pub fn compact(&self) -> String {
        let mut s = String::new();
        self.write_compact(&mut s);
        s
    }

    fn write_compact(&self, out: &mut String) {
        use std::fmt::Write;
        match self {
            Expr::Lit(v) => {
                let _ = write!(out, "{v}");
            }
            Expr::Var(x) => out.push_str(x.as_str()),
            Expr::Seq(es) => {
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        out.push_str("; ");
                    }
                    e.write_compact(out);
                }
            }
            Expr::Call { recv, meth, args } => {
                let name = meth.as_str();
                // Binary operators and index access render infix, as Ruby
                // would write them.
                if args.len() == 1 && is_operator(name) {
                    recv.write_compact(out);
                    if name == "[]" {
                        out.push('[');
                        args[0].write_compact(out);
                        out.push(']');
                    } else {
                        let _ = write!(out, " {name} ");
                        args[0].write_compact(out);
                    }
                    return;
                }
                recv.write_compact(out);
                let _ = write!(out, ".{meth}");
                if !args.is_empty() {
                    out.push('(');
                    for (i, a) in args.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        a.write_compact(out);
                    }
                    out.push(')');
                }
            }
            Expr::If { cond, then, els } => {
                out.push_str("if ");
                cond.write_compact(out);
                out.push_str(" then ");
                then.write_compact(out);
                out.push_str(" else ");
                els.write_compact(out);
                out.push_str(" end");
            }
            Expr::Let { var, val, body } => {
                let _ = write!(out, "{var} = ");
                val.write_compact(out);
                out.push_str("; ");
                body.write_compact(out);
            }
            Expr::HashLit(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(out, "{k}: ");
                    v.write_compact(out);
                }
                out.push('}');
            }
            Expr::Not(b) => {
                out.push('!');
                let needs_parens = matches!(**b, Expr::Or(..));
                if needs_parens {
                    out.push('(');
                }
                b.write_compact(out);
                if needs_parens {
                    out.push(')');
                }
            }
            Expr::Or(a, b) => {
                a.write_compact(out);
                out.push_str(" || ");
                b.write_compact(out);
            }
            Expr::Hole(t) => {
                let _ = write!(out, "(□:{t})");
            }
            Expr::EffHole(e) => {
                let _ = write!(out, "(◇:{e})");
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        match self {
            Expr::Seq(es) => {
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        out.push('\n');
                    }
                    e.write_pretty(out, indent);
                }
            }
            Expr::Let { var, val, body } => {
                out.push_str(&pad);
                out.push_str(var.as_str());
                out.push_str(" = ");
                out.push_str(&val.compact());
                out.push('\n');
                body.write_pretty(out, indent);
            }
            Expr::If { cond, then, els } => {
                out.push_str(&pad);
                out.push_str("if ");
                out.push_str(&cond.compact());
                out.push('\n');
                then.write_pretty(out, indent + 1);
                out.push('\n');
                out.push_str(&pad);
                out.push_str("else\n");
                els.write_pretty(out, indent + 1);
                out.push('\n');
                out.push_str(&pad);
                out.push_str("end");
            }
            other => {
                out.push_str(&pad);
                out.push_str(&other.compact());
            }
        }
    }
}

impl fmt::Display for Expr {
    /// Multi-line Ruby-style rendering (sequences and conditionals get their
    /// own lines); use [`Expr::compact`] for the one-line canonical form.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write_pretty(&mut s, 0);
        f.write_str(&s)
    }
}

/// Returns the symbol `tN`, serving low indices from a pre-interned pool.
///
/// `fresh_temp` runs once per S-Eff wrap in the expansion loop; without the
/// pool each call re-formats and re-interns a name from a tiny fixed set
/// (tens of millions of symbol-table probes per suite run, per the
/// `intern_shard` contention counters).
fn temp_symbol(n: usize) -> Symbol {
    const POOL: usize = 32;
    static TEMPS: std::sync::OnceLock<[Symbol; POOL]> = std::sync::OnceLock::new();
    let pool = TEMPS.get_or_init(|| std::array::from_fn(|i| Symbol::intern(&format!("t{i}"))));
    match pool.get(n) {
        Some(s) => *s,
        None => Symbol::intern(&format!("t{n}")),
    }
}

/// Is this method name rendered infix by the pretty printer?
fn is_operator(name: &str) -> bool {
    matches!(
        name,
        "==" | "!=" | "+" | "-" | "*" | "/" | "%" | "<" | ">" | "<=" | ">=" | "[]" | "&" | "|"
    )
}

/// A synthesized program `def m(x…) = e` (Fig. 3; multiple parameters as in
/// the implementation).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Program {
    /// Method name.
    pub name: Symbol,
    /// Parameter names, bound in `body`.
    pub params: Vec<Symbol>,
    /// Method body.
    pub body: Expr,
}

impl Program {
    /// Builds a program from a name, parameter names and a body.
    pub fn new<'a>(
        name: impl Into<Symbol>,
        params: impl IntoIterator<Item = &'a str>,
        body: Expr,
    ) -> Program {
        Program {
            name: name.into(),
            params: params.into_iter().map(Symbol::intern).collect(),
            body,
        }
    }

    /// Builds a program from already-interned parts. This is the hot-path
    /// constructor: the oracle wraps every candidate body in a `Program`,
    /// and re-interning the method and parameter names per candidate
    /// (hundreds of thousands of times per problem) is pure symbol-table
    /// traffic — callers intern once and clone the `Symbol`s.
    pub fn from_parts(name: Symbol, params: Vec<Symbol>, body: Expr) -> Program {
        Program { name, params, body }
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let params: Vec<&str> = self.params.iter().map(|p| p.as_str()).collect();
        writeln!(f, "def {}({})", self.name, params.join(", "))?;
        let mut s = String::new();
        self.body.write_pretty(&mut s, 1);
        writeln!(f, "{s}")?;
        write!(f, "end")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;

    #[test]
    fn holes_are_detected() {
        let e = call(hole(Ty::Obj), "first", []);
        assert!(e.has_holes());
        assert!(!e.evaluable());
        assert_eq!(e.hole_count(), 1);
        let done = call(var("x"), "first", []);
        assert!(done.evaluable());
    }

    #[test]
    fn hole_count_is_recursive() {
        let e = seq([
            hole(Ty::Int),
            call(
                hole(Ty::Str),
                "m",
                [hole(Ty::Bool), effhole(EffectSet::star())],
            ),
        ]);
        assert_eq!(e.hole_count(), 4);
    }

    #[test]
    fn fresh_temps_increment() {
        let e = let_("t0", int(1), var("t0"));
        assert_eq!(e.fresh_temp().as_str(), "t1");
        assert_eq!(int(5).fresh_temp().as_str(), "t0");
        let nested = let_("t0", int(1), let_("t3", int(2), var("t3")));
        assert_eq!(nested.fresh_temp().as_str(), "t4");
    }

    #[test]
    fn compact_rendering() {
        let e = call(
            call(var("Post_cls"), "where", [hash([("slug", var("arg1"))])]),
            "first",
            [],
        );
        assert_eq!(e.compact(), "Post_cls.where({slug: arg1}).first");
    }

    #[test]
    fn compact_guards() {
        let e = not(or(var("a"), var("b")));
        assert_eq!(e.compact(), "!(a || b)");
        let f = or(not(var("a")), var("b"));
        assert_eq!(f.compact(), "!a || b");
    }

    #[test]
    fn pretty_if_rendering() {
        let e = if_(var("b"), int(1), int(0));
        assert_eq!(e.to_string(), "if b\n  1\nelse\n  0\nend");
    }

    #[test]
    fn pretty_let_and_seq() {
        let e = let_("t0", int(1), seq([call(var("t0"), "bump", []), var("t0")]));
        assert_eq!(e.to_string(), "t0 = 1\nt0.bump\nt0");
    }

    #[test]
    fn program_display() {
        let p = Program::new("m", ["a", "b"], var("a"));
        assert_eq!(p.to_string(), "def m(a, b)\n  a\nend");
    }

    #[test]
    fn structural_equality() {
        assert_eq!(int(1), int(1));
        assert_ne!(var("x"), var("y"));
        assert_eq!(call(var("x"), "m", [int(1)]), call(var("x"), "m", [int(1)]));
    }

    #[test]
    fn hole_display_forms() {
        assert_eq!(hole(Ty::Int).compact(), "(□:Int)");
        assert_eq!(effhole(EffectSet::pure_()).compact(), "(◇:•)");
    }
}
