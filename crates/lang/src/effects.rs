//! The effect syntax `ε ::= • | * | A.* | A.r | ε ∪ ε` of Fig. 3, plus the
//! implementation's `self` regions (§4).
//!
//! An [`EffectSet`] is the canonical union-normal form: a sorted,
//! deduplicated set of [`Effect`] atoms, with `•` (pure) represented by the
//! empty set and `*` absorbing everything else. Subsumption `ε₁ ⊆ ε₂`
//! consults the class lattice and therefore lives in `rbsyn-ty`; the purely
//! syntactic operations (union, `self`-resolution, the precision-coarsening
//! transforms of §5.4) live here.

use crate::intern::Symbol;
use crate::value::ClassId;
use std::fmt;

/// An atomic effect.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Effect {
    /// `*` — may touch any state ("impure").
    Star,
    /// `A.*` — touches some state of class `A`.
    ClassStar(ClassId),
    /// `A.r` — touches the abstract region `r` of class `A`.
    Region(ClassId, Symbol),
    /// `self.*` — resolved to the receiver's class at the use site (§4).
    SelfStar,
    /// `self.r` — region `r` of the receiver's class.
    SelfRegion(Symbol),
}

/// A canonical union of effect atoms; the empty set is `•` (pure).
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct EffectSet {
    atoms: Vec<Effect>,
}

impl EffectSet {
    /// `•` — the pure effect.
    pub fn pure_() -> EffectSet {
        EffectSet { atoms: Vec::new() }
    }

    /// `*` — the top effect.
    pub fn star() -> EffectSet {
        EffectSet {
            atoms: vec![Effect::Star],
        }
    }

    /// A single-atom effect set.
    pub fn single(e: Effect) -> EffectSet {
        EffectSet { atoms: vec![e] }
    }

    /// Builds a canonical set from arbitrary atoms.
    pub fn from_atoms(atoms: impl IntoIterator<Item = Effect>) -> EffectSet {
        let mut v: Vec<Effect> = atoms.into_iter().collect();
        v.sort();
        v.dedup();
        if v.contains(&Effect::Star) {
            return EffectSet::star();
        }
        EffectSet { atoms: v }
    }

    /// Is this `•`?
    pub fn is_pure(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Is this exactly `*`?
    pub fn is_star(&self) -> bool {
        self.atoms == [Effect::Star]
    }

    /// The atoms, in canonical order.
    pub fn atoms(&self) -> &[Effect] {
        &self.atoms
    }

    /// `ε₁ ∪ ε₂`.
    pub fn union(&self, other: &EffectSet) -> EffectSet {
        EffectSet::from_atoms(self.atoms.iter().chain(other.atoms.iter()).copied())
    }

    /// Unions `other` into `self` in place.
    pub fn union_in_place(&mut self, other: &EffectSet) {
        if other.is_pure() {
            return;
        }
        *self = self.union(other);
    }

    /// Resolves `self.*` / `self.r` atoms against the receiver class `c`
    /// (the `self` region extension of §4).
    pub fn resolve_self(&self, c: ClassId) -> EffectSet {
        EffectSet::from_atoms(self.atoms.iter().map(|a| match a {
            Effect::SelfStar => Effect::ClassStar(c),
            Effect::SelfRegion(r) => Effect::Region(c, *r),
            other => *other,
        }))
    }

    /// Does any atom still mention `self`?
    pub fn mentions_self(&self) -> bool {
        self.atoms
            .iter()
            .any(|a| matches!(a, Effect::SelfStar | Effect::SelfRegion(_)))
    }

    /// §5.4 "Class Effects": drop region labels, keeping only class names
    /// (`A.r` becomes `A.*`).
    pub fn coarsen_to_class(&self) -> EffectSet {
        EffectSet::from_atoms(self.atoms.iter().map(|a| match a {
            Effect::Region(c, _) => Effect::ClassStar(*c),
            Effect::SelfRegion(_) => Effect::SelfStar,
            other => *other,
        }))
    }

    /// §5.4 "Purity Effects": any impure effect becomes `*`.
    pub fn coarsen_to_purity(&self) -> EffectSet {
        if self.is_pure() {
            EffectSet::pure_()
        } else {
            EffectSet::star()
        }
    }
}

impl FromIterator<Effect> for EffectSet {
    fn from_iter<I: IntoIterator<Item = Effect>>(iter: I) -> EffectSet {
        EffectSet::from_atoms(iter)
    }
}

impl fmt::Display for EffectSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_pure() {
            return write!(f, "•");
        }
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, " ∪ ")?;
            }
            match a {
                Effect::Star => write!(f, "*")?,
                Effect::ClassStar(c) => write!(f, "{c}.∗")?,
                Effect::Region(c, r) => write!(f, "{c}.{r}")?,
                Effect::SelfStar => write!(f, "self.∗")?,
                Effect::SelfRegion(r) => write!(f, "self.{r}")?,
            }
        }
        Ok(())
    }
}

/// A `⟨ε_r, ε_w⟩` read/write pair, as carried by method annotations and by
/// `err(ε_r, ε_w)` evaluation results.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct EffectPair {
    /// Read effect `ε_r`.
    pub read: EffectSet,
    /// Write effect `ε_w`.
    pub write: EffectSet,
}

impl EffectPair {
    /// `⟨•, •⟩`.
    pub fn pure_() -> EffectPair {
        EffectPair::default()
    }

    /// Builds a pair.
    pub fn new(read: EffectSet, write: EffectSet) -> EffectPair {
        EffectPair { read, write }
    }

    /// Pointwise union (Fig. 3: `⟨ε¹_r,ε¹_w⟩ ∪ ⟨ε²_r,ε²_w⟩`).
    pub fn union(&self, other: &EffectPair) -> EffectPair {
        EffectPair {
            read: self.read.union(&other.read),
            write: self.write.union(&other.write),
        }
    }

    /// Unions in place.
    pub fn union_in_place(&mut self, other: &EffectPair) {
        self.read.union_in_place(&other.read);
        self.write.union_in_place(&other.write);
    }

    /// Is this `⟨•, •⟩`?
    pub fn is_pure(&self) -> bool {
        self.read.is_pure() && self.write.is_pure()
    }

    /// Resolves `self` atoms in both components.
    pub fn resolve_self(&self, c: ClassId) -> EffectPair {
        EffectPair {
            read: self.read.resolve_self(c),
            write: self.write.resolve_self(c),
        }
    }
}

impl fmt::Display for EffectPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨{}, {}⟩", self.read, self.write)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cid(c: u32) -> ClassId {
        ClassId::new(c, Symbol::intern(&format!("C{c}")))
    }

    fn region(c: u32, r: &str) -> Effect {
        Effect::Region(cid(c), Symbol::intern(r))
    }

    #[test]
    fn pure_is_empty() {
        assert!(EffectSet::pure_().is_pure());
        assert!(!EffectSet::star().is_pure());
        assert_eq!(EffectSet::pure_().to_string(), "•");
    }

    #[test]
    fn star_absorbs() {
        let e = EffectSet::from_atoms([Effect::Star, region(0, "title")]);
        assert!(e.is_star());
    }

    #[test]
    fn union_is_canonical() {
        let a = EffectSet::from_atoms([region(0, "title"), region(1, "name")]);
        let b = EffectSet::from_atoms([region(1, "name"), region(0, "title")]);
        assert_eq!(a, b);
        assert_eq!(a.union(&b), a);
    }

    #[test]
    fn self_resolution() {
        let e = EffectSet::from_atoms([Effect::SelfStar, Effect::SelfRegion(Symbol::intern("r"))]);
        assert!(e.mentions_self());
        let r = e.resolve_self(cid(3));
        assert!(!r.mentions_self());
        assert!(r.atoms().contains(&Effect::ClassStar(cid(3))));
        assert!(r.atoms().contains(&region(3, "r")));
    }

    #[test]
    fn class_coarsening_drops_regions() {
        let e = EffectSet::from_atoms([region(2, "title")]);
        assert_eq!(
            e.coarsen_to_class(),
            EffectSet::single(Effect::ClassStar(cid(2)))
        );
    }

    #[test]
    fn purity_coarsening() {
        assert!(EffectSet::pure_().coarsen_to_purity().is_pure());
        let e = EffectSet::from_atoms([region(2, "title")]);
        assert!(e.coarsen_to_purity().is_star());
    }

    #[test]
    fn pair_union_is_pointwise() {
        let p1 = EffectPair::new(EffectSet::single(region(0, "a")), EffectSet::pure_());
        let p2 = EffectPair::new(EffectSet::pure_(), EffectSet::single(region(0, "b")));
        let u = p1.union(&p2);
        assert_eq!(u.read, EffectSet::single(region(0, "a")));
        assert_eq!(u.write, EffectSet::single(region(0, "b")));
        assert!(EffectPair::pure_().is_pure());
    }
}
