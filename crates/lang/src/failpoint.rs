//! Fault injection: named failpoints that can deterministically inject
//! panics, delays and I/O errors into the synthesis pipeline.
//!
//! A *failpoint* is a named site in production code — `interp::eval`,
//! `cache::load`, `guards::cover`, `executor::spawn`, `batch::claim` — at
//! which a test or a chaos harness can make the pipeline misbehave on
//! purpose. The chaos suite uses them to prove the robustness claims of
//! the serving path: a panicking candidate evaluation must convert to a
//! per-job failure, a stalled interpreter must be reaped by the watchdog,
//! a failing snapshot read must degrade to a cold cache.
//!
//! The facility is **feature-gated** behind `failpoints` and compiles to
//! nothing when the feature is off: every helper is an empty inline
//! function, no statics are consulted, and the eval hot path carries zero
//! extra work (the CI effort-regression gate holds this). With the feature
//! on but no profile configured, each site costs one relaxed atomic load.
//!
//! # Profiles
//!
//! A profile is a `;`-separated list of `site=action` rules, taken from
//! the `RBSYN_FAILPOINTS` environment variable (read once, lazily) or
//! installed programmatically with [`configure`]:
//!
//! ```text
//! interp::eval=panic@3;cache::load=error;guards::cover=delay(5)%2
//! ```
//!
//! Actions are `panic`, `delay(MILLIS)` and `error` (the latter only
//! fires at sites that ask for an injectable I/O error via [`io_error`]).
//! A rule fires on every hit by default; the suffix `@N` restricts it to
//! exactly the N-th hit of that site (1-based) and `%N` to every N-th
//! hit. Triggers count *hits per site*, so a profile is deterministic for
//! a deterministic execution — the same run hits the same sites in the
//! same order, which is what lets the chaos suite assert byte-identical
//! results for unaffected jobs.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
#[cfg(feature = "failpoints")]
use std::time::Duration;

/// Is the `failpoints` feature compiled in?
pub const fn enabled() -> bool {
    cfg!(feature = "failpoints")
}

/// What a matching rule does when it fires.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Action {
    /// Panic with a recognizable message.
    Panic,
    /// Sleep for the given number of milliseconds.
    Delay(u64),
    /// Report an injected I/O error from [`io_error`] sites.
    Error,
}

/// When a rule fires, relative to the per-site hit counter.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Trigger {
    /// Every hit.
    Always,
    /// Only the N-th hit (1-based).
    Nth(u64),
    /// Every N-th hit.
    Every(u64),
}

#[derive(Clone, Debug)]
// Only `fire` (feature-gated) reads the fields; the parser still builds
// them in uninstrumented builds to validate specs.
#[cfg_attr(not(feature = "failpoints"), allow(dead_code))]
struct Rule {
    site: String,
    action: Action,
    trigger: Trigger,
    hits: u64,
}

/// Fast path: false whenever no profile is installed, so un-faulted runs
/// pay one relaxed load per site.
static ACTIVE: AtomicBool = AtomicBool::new(false);

fn registry() -> &'static Mutex<Vec<Rule>> {
    static REGISTRY: OnceLock<Mutex<Vec<Rule>>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        let rules = std::env::var("RBSYN_FAILPOINTS")
            .ok()
            .and_then(|spec| parse(&spec).ok())
            .unwrap_or_default();
        ACTIVE.store(!rules.is_empty(), Ordering::Relaxed);
        Mutex::new(rules)
    })
}

fn parse(spec: &str) -> Result<Vec<Rule>, String> {
    let mut rules = Vec::new();
    for part in spec.split(';') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (site, action) = part
            .split_once('=')
            .ok_or_else(|| format!("failpoint rule {part:?} is missing `=`"))?;
        let (action, trigger) = if let Some((a, n)) = action.split_once('@') {
            let n: u64 = n
                .parse()
                .map_err(|_| format!("bad `@N` trigger in {part:?}"))?;
            (a, Trigger::Nth(n.max(1)))
        } else if let Some((a, n)) = action.split_once('%') {
            let n: u64 = n
                .parse()
                .map_err(|_| format!("bad `%N` trigger in {part:?}"))?;
            (a, Trigger::Every(n.max(1)))
        } else {
            (action, Trigger::Always)
        };
        let action = match action {
            "panic" => Action::Panic,
            "error" => Action::Error,
            a => {
                let ms = a
                    .strip_prefix("delay(")
                    .and_then(|rest| rest.strip_suffix(')'))
                    .and_then(|ms| ms.parse::<u64>().ok())
                    .ok_or_else(|| format!("unknown failpoint action {a:?} in {part:?}"))?;
                Action::Delay(ms)
            }
        };
        rules.push(Rule {
            site: site.trim().to_owned(),
            action,
            trigger,
            hits: 0,
        });
    }
    Ok(rules)
}

/// Decides what (if anything) fires at `site`, advancing hit counters.
/// The registry lock is released before the caller acts, so an injected
/// panic can never poison the failpoint state itself.
#[cfg(feature = "failpoints")]
fn fire(site: &str) -> Option<Action> {
    if !ACTIVE.load(Ordering::Relaxed) {
        // Force the lazy env read exactly once even on the fast path, so
        // a profile installed via the environment is never missed.
        static INIT: OnceLock<()> = OnceLock::new();
        INIT.get_or_init(|| {
            let _ = registry();
        });
        if !ACTIVE.load(Ordering::Relaxed) {
            return None;
        }
    }
    let mut rules = registry().lock().unwrap_or_else(|p| p.into_inner());
    let rule = rules.iter_mut().find(|r| r.site == site)?;
    rule.hits += 1;
    let firing = match rule.trigger {
        Trigger::Always => true,
        Trigger::Nth(n) => rule.hits == n,
        Trigger::Every(n) => rule.hits.is_multiple_of(n),
    };
    firing.then_some(rule.action)
}

/// Installs a fault profile, replacing any previous one (including one
/// taken from `RBSYN_FAILPOINTS`). An empty spec clears all rules.
///
/// # Errors
///
/// Returns the offending rule when the spec does not parse. With the
/// `failpoints` feature off the spec is validated but never installed.
pub fn configure(spec: &str) -> Result<(), String> {
    let rules = parse(spec)?;
    if enabled() {
        // Materialize the registry (and its one-time env read) *before*
        // flipping the fast-path flag, so lazy init cannot clobber it.
        let mut slot = registry().lock().unwrap_or_else(|p| p.into_inner());
        ACTIVE.store(!rules.is_empty(), Ordering::Relaxed);
        *slot = rules;
    }
    Ok(())
}

/// Removes every rule and resets all hit counters.
pub fn clear() {
    if enabled() {
        let mut slot = registry().lock().unwrap_or_else(|p| p.into_inner());
        ACTIVE.store(false, Ordering::Relaxed);
        slot.clear();
    }
}

/// A named failpoint. Panics or sleeps when a matching `panic` / `delay`
/// rule fires; `error` rules are ignored here (they only answer
/// [`io_error`]). A no-op without the `failpoints` feature.
///
/// # Panics
///
/// By design, when a matching `panic` rule fires.
#[inline(always)]
pub fn hit(site: &str) {
    #[cfg(feature = "failpoints")]
    {
        match fire(site) {
            Some(Action::Panic) => panic!("failpoint {site} injected panic"),
            Some(Action::Delay(ms)) => std::thread::sleep(Duration::from_millis(ms)),
            Some(Action::Error) | None => {}
        }
    }
    #[cfg(not(feature = "failpoints"))]
    {
        let _ = site;
    }
}

/// A named failpoint at an I/O boundary: returns an injected
/// [`std::io::Error`] when a matching `error` rule fires, and otherwise
/// behaves like [`hit`] (panics and delays also apply). Always `None`
/// without the `failpoints` feature.
///
/// # Panics
///
/// By design, when a matching `panic` rule fires.
#[inline(always)]
pub fn io_error(site: &str) -> Option<std::io::Error> {
    #[cfg(feature = "failpoints")]
    {
        match fire(site) {
            Some(Action::Error) => Some(std::io::Error::other(format!(
                "failpoint {site} injected i/o error"
            ))),
            Some(Action::Panic) => panic!("failpoint {site} injected panic"),
            Some(Action::Delay(ms)) => {
                std::thread::sleep(Duration::from_millis(ms));
                None
            }
            None => None,
        }
    }
    #[cfg(not(feature = "failpoints"))]
    {
        let _ = site;
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests in this binary that touch the global registry.
    static GATE: Mutex<()> = Mutex::new(());

    #[test]
    fn specs_parse_and_reject() {
        let _g = GATE.lock().unwrap_or_else(|p| p.into_inner());
        assert!(configure("a=panic;b=delay(5)%2;c=error@3").is_ok());
        assert!(configure("a").is_err(), "missing `=`");
        assert!(configure("a=explode").is_err(), "unknown action");
        assert!(configure("a=panic@x").is_err(), "bad trigger");
        assert!(configure("").is_ok(), "empty spec clears");
        clear();
    }

    #[test]
    fn disabled_builds_are_inert() {
        if !enabled() {
            let _g = GATE.lock().unwrap_or_else(|p| p.into_inner());
            configure("x=panic").expect("valid spec");
            hit("x"); // must not panic
            assert!(io_error("x").is_none());
            clear();
        }
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn rules_fire_by_site_and_trigger() {
        let _g = GATE.lock().unwrap_or_else(|p| p.into_inner());
        configure("t::boom=panic@2;t::io=error").expect("valid spec");
        hit("t::boom"); // first hit: no fire
        let err = std::panic::catch_unwind(|| hit("t::boom")).expect_err("second hit fires");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("t::boom"), "payload names the site: {msg:?}");
        hit("t::boom"); // third hit: @2 is exhausted
        assert!(io_error("t::io").is_some());
        hit("t::other"); // unknown site: no-op
        clear();
        hit("t::boom"); // cleared: no-op
        assert!(io_error("t::io").is_none());
    }
}
