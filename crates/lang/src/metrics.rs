//! Program metrics used by the search heuristics (§4) and by Table 1.
//!
//! * [`node_count`] — AST node count; the implementation's exploration
//!   order prefers smaller programs ("Program size is calculated as the
//!   number of AST nodes", §4), and Table 1's "Meth Size" column reports it
//!   for the synthesized method.
//! * [`call_size`] — the formal `size` of Fig. 12 (only method calls count);
//!   used by the `maxSize` bound of Algorithm 2.
//! * [`path_count`] — number of control-flow paths (1 for straight-line
//!   code, summed over conditional branches); Table 1's "# Orig Paths" and
//!   "# Syn Paths" columns.

use crate::ast::{Expr, Program};

/// Number of AST nodes in an expression. Every constructor — including
/// literals, variables and holes — counts as one node; hash entries count
/// their value expressions plus one node for the literal itself.
pub fn node_count(e: &Expr) -> usize {
    match e {
        Expr::Lit(_) | Expr::Var(_) | Expr::Hole(_) | Expr::EffHole(_) => 1,
        Expr::Seq(es) => 1 + es.iter().map(node_count).sum::<usize>(),
        Expr::Call { recv, args, .. } => {
            1 + node_count(recv) + args.iter().map(node_count).sum::<usize>()
        }
        Expr::If { cond, then, els } => 1 + node_count(cond) + node_count(then) + node_count(els),
        Expr::Let { val, body, .. } => 1 + node_count(val) + node_count(body),
        Expr::HashLit(entries) => 1 + entries.iter().map(|(_, v)| node_count(v)).sum::<usize>(),
        Expr::Not(b) => 1 + node_count(b),
        Expr::Or(a, b) => 1 + node_count(a) + node_count(b),
    }
}

/// The formal `size` of Fig. 12: method calls contribute 1, everything else
/// contributes the sum of its children (leaves contribute 0).
pub fn call_size(e: &Expr) -> usize {
    match e {
        Expr::Lit(_) | Expr::Var(_) | Expr::Hole(_) | Expr::EffHole(_) => 0,
        Expr::Seq(es) => es.iter().map(call_size).sum(),
        Expr::Call { recv, args, .. } => {
            1 + call_size(recv) + args.iter().map(call_size).sum::<usize>()
        }
        Expr::If { cond, then, els } => call_size(cond) + call_size(then) + call_size(els),
        Expr::Let { val, body, .. } => call_size(val) + call_size(body),
        Expr::HashLit(entries) => entries.iter().map(|(_, v)| call_size(v)).sum(),
        Expr::Not(b) => call_size(b),
        Expr::Or(a, b) => call_size(a) + call_size(b),
    }
}

/// Number of control-flow paths through an expression: conditionals sum
/// over their branches, sequential composition multiplies.
pub fn path_count(e: &Expr) -> usize {
    match e {
        Expr::Lit(_) | Expr::Var(_) | Expr::Hole(_) | Expr::EffHole(_) => 1,
        Expr::Seq(es) => es.iter().map(path_count).product(),
        Expr::Call { recv, args, .. } => {
            path_count(recv) * args.iter().map(path_count).product::<usize>()
        }
        Expr::If { cond, then, els } => path_count(cond) * (path_count(then) + path_count(els)),
        Expr::Let { val, body, .. } => path_count(val) * path_count(body),
        Expr::HashLit(entries) => entries.iter().map(|(_, v)| path_count(v)).product(),
        Expr::Not(b) => path_count(b),
        Expr::Or(a, b) => path_count(a) * path_count(b),
    }
}

/// [`node_count`] of a program body.
pub fn program_size(p: &Program) -> usize {
    node_count(&p.body)
}

/// [`path_count`] of a program body.
pub fn program_paths(p: &Program) -> usize {
    path_count(&p.body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;
    use crate::types::Ty;

    #[test]
    fn node_count_counts_everything() {
        // Post.where({slug: arg1}).first
        let e = call(
            call(var("Post"), "where", [hash([("slug", var("arg1"))])]),
            "first",
            [],
        );
        // first(1) + where(1) + Post(1) + hash(1) + arg1(1)
        assert_eq!(node_count(&e), 5);
    }

    #[test]
    fn call_size_matches_fig12() {
        let e = call(
            call(var("Post"), "where", [hash([("slug", var("arg1"))])]),
            "first",
            [],
        );
        assert_eq!(call_size(&e), 2); // where + first
        assert_eq!(call_size(&var("x")), 0);
        assert_eq!(call_size(&hole(Ty::Int)), 0);
    }

    #[test]
    fn straight_line_code_has_one_path() {
        let e = seq([int(1), call(var("x"), "m", []), var("x")]);
        assert_eq!(path_count(&e), 1);
    }

    #[test]
    fn conditionals_sum_paths() {
        let one_if = if_(var("b"), int(1), int(0));
        assert_eq!(path_count(&one_if), 2);
        let nested = if_(var("b"), one_if.clone(), int(2));
        assert_eq!(path_count(&nested), 3);
        let sequenced = seq([one_if.clone(), one_if]);
        assert_eq!(path_count(&sequenced), 4);
    }

    #[test]
    fn program_metrics_delegate_to_body() {
        let p = crate::Program::new("m", ["x"], if_(var("x"), int(1), int(0)));
        assert_eq!(program_paths(&p), 2);
        assert_eq!(program_size(&p), 4);
    }

    #[test]
    fn let_and_guard_metrics() {
        let e = let_("t0", int(1), not(or(var("t0"), false_())));
        assert_eq!(node_count(&e), 6);
        assert_eq!(path_count(&e), 1);
    }
}
