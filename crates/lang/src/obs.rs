//! Deterministic observation hashing for evaluation vectors.
//!
//! Observational-equivalence pruning compares *behavior fingerprints* of
//! candidates: the result value, effect trace and post-run state hash of a
//! candidate run against a spec's prepared test state. Those fingerprints
//! gate which frontier items the search explores, so they must be a pure
//! function of the observed behavior — **never** of process-local
//! accidents. The derived `Hash` impls in this crate are not good enough
//! for that: [`Symbol`] hashes its interner index, and interning order
//! varies with thread interleaving in a parallel batch, which would make
//! pruning decisions (and therefore synthesized programs) depend on the
//! thread count.
//!
//! This module provides an *observation hasher* that folds identifiers in
//! by **string content** and aggregates unordered collections (instance
//! variables, globals) with an order-independent combine, so a fingerprint
//! is identical across threads, processes and batch shapes. Fingerprints
//! are 128-bit (two independently seeded [`FxHasher`] lanes fed by one
//! traversal): at the million-candidate scale of a hard search, 64 bits
//! would put accidental collisions — which silently prune a genuinely
//! novel candidate — within reach.

use crate::effects::{Effect, EffectPair, EffectSet};
use crate::intern::{FxHasher, Symbol};
use crate::value::{ClassId, Value};
use std::hash::Hasher;

/// A two-lane 128-bit observation hasher.
///
/// Both lanes see the same write stream but start from distinct seeds, so
/// the lanes are effectively independent 64-bit digests. Use the `put_*`
/// helpers (or [`std::hash::Hasher::write_u64`] directly) and finish with
/// [`ObsHasher::finish128`].
pub struct ObsHasher {
    lo: FxHasher,
    hi: FxHasher,
}

impl Default for ObsHasher {
    fn default() -> ObsHasher {
        ObsHasher::new()
    }
}

impl ObsHasher {
    /// A fresh hasher with distinctly seeded lanes.
    pub fn new() -> ObsHasher {
        let mut lo = FxHasher::default();
        let mut hi = FxHasher::default();
        lo.write_u64(0x6f62_735f_6c6f_5f31); // "obs_lo_1"
        hi.write_u64(0x6f62_735f_6869_5f32); // "obs_hi_2"
        ObsHasher { lo, hi }
    }

    /// Folds raw bytes into both lanes.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.lo.write(bytes);
        self.hi.write(bytes);
    }

    /// Folds a word into both lanes.
    pub fn put_u64(&mut self, v: u64) {
        self.lo.write_u64(v);
        self.hi.write_u64(v);
    }

    /// Folds a signed word into both lanes.
    pub fn put_i64(&mut self, v: i64) {
        self.put_u64(v as u64);
    }

    /// Folds a 128-bit word into both lanes.
    pub fn put_u128(&mut self, v: u128) {
        self.put_u64(v as u64);
        self.put_u64((v >> 64) as u64);
    }

    /// Folds a symbol by its **string content** (interner indices are not
    /// stable across thread interleavings; strings are).
    pub fn put_symbol(&mut self, s: Symbol) {
        let str_ = s.as_str();
        self.put_u64(str_.len() as u64);
        self.put_bytes(str_.as_bytes());
    }

    /// Folds a class identity by dense index *and* name string (ids from
    /// one environment build are deterministic; the name guards against
    /// cross-hierarchy aliasing).
    pub fn put_class(&mut self, c: ClassId) {
        self.put_u64(u64::from(c.idx));
        self.put_symbol(c.name);
    }

    /// Folds a runtime value. Heap references hash by slot index, which is
    /// deterministic for a fixed (snapshot, candidate) pair — allocation
    /// order is part of the observed behavior.
    pub fn put_value(&mut self, v: &Value) {
        match v {
            Value::Nil => self.put_u64(0),
            Value::Bool(b) => {
                self.put_u64(1);
                self.put_u64(u64::from(*b));
            }
            Value::Int(i) => {
                self.put_u64(2);
                self.put_i64(*i);
            }
            Value::Str(s) => {
                self.put_u64(3);
                self.put_u64(s.len() as u64);
                self.put_bytes(s.as_bytes());
            }
            Value::Sym(s) => {
                self.put_u64(4);
                self.put_symbol(*s);
            }
            Value::Hash(entries) => {
                self.put_u64(5);
                self.put_u64(entries.len() as u64);
                for (k, val) in entries {
                    self.put_value(k);
                    self.put_value(val);
                }
            }
            Value::Array(items) => {
                self.put_u64(6);
                self.put_u64(items.len() as u64);
                for item in items {
                    self.put_value(item);
                }
            }
            Value::Class(c) => {
                self.put_u64(7);
                self.put_class(*c);
            }
            Value::Obj(r) => {
                self.put_u64(8);
                self.put_u64(u64::from(r.0));
            }
        }
    }

    /// Folds an effect atom (regions by class + string).
    pub fn put_effect(&mut self, e: Effect) {
        match e {
            Effect::Star => self.put_u64(0),
            Effect::ClassStar(c) => {
                self.put_u64(1);
                self.put_class(c);
            }
            Effect::Region(c, r) => {
                self.put_u64(2);
                self.put_class(c);
                self.put_symbol(r);
            }
            Effect::SelfStar => self.put_u64(3),
            Effect::SelfRegion(r) => {
                self.put_u64(4);
                self.put_symbol(r);
            }
        }
    }

    /// Folds a canonical effect set (atoms are already sorted).
    pub fn put_effect_set(&mut self, e: &EffectSet) {
        self.put_u64(e.atoms().len() as u64);
        for a in e.atoms() {
            self.put_effect(*a);
        }
    }

    /// Folds a read/write effect pair.
    pub fn put_effect_pair(&mut self, e: &EffectPair) {
        self.put_effect_set(&e.read);
        self.put_effect_set(&e.write);
    }

    /// The 128-bit digest.
    pub fn finish128(&self) -> u128 {
        (u128::from(self.hi.finish()) << 64) | u128::from(self.lo.finish())
    }
}

/// Order-independent combine for unordered collections (instance-variable
/// maps, globals): fingerprint each item with `f`, fold with wrapping adds
/// so iteration order — which `std::collections::HashMap` randomizes per
/// instance — cannot leak into the digest.
pub fn unordered_obs_fold<T>(
    items: impl IntoIterator<Item = T>,
    f: impl Fn(&mut ObsHasher, T),
) -> u128 {
    let mut acc: u128 = 0;
    let mut n: u64 = 0;
    for item in items {
        let mut h = ObsHasher::new();
        f(&mut h, item);
        acc = acc.wrapping_add(h.finish128());
        n += 1;
    }
    let mut h = ObsHasher::new();
    h.put_u64(n);
    h.put_u128(acc);
    h.finish128()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(f: impl Fn(&mut ObsHasher)) -> u128 {
        let mut h = ObsHasher::new();
        f(&mut h);
        h.finish128()
    }

    #[test]
    fn values_hash_by_content() {
        assert_eq!(
            fp(|h| h.put_value(&Value::str("a"))),
            fp(|h| h.put_value(&Value::str("a")))
        );
        assert_ne!(
            fp(|h| h.put_value(&Value::str("a"))),
            fp(|h| h.put_value(&Value::str("b")))
        );
        assert_ne!(
            fp(|h| h.put_value(&Value::Int(0))),
            fp(|h| h.put_value(&Value::Bool(false)))
        );
        assert_ne!(
            fp(|h| h.put_value(&Value::Nil)),
            fp(|h| h.put_value(&Value::Array(vec![])))
        );
    }

    #[test]
    fn symbols_hash_by_string_not_index() {
        // Two symbols with distinct interner indices but we only check the
        // positive property available here: equal strings, equal digests.
        let a = Symbol::intern("obs_test_sym");
        let b = Symbol::intern("obs_test_sym");
        assert_eq!(fp(|h| h.put_symbol(a)), fp(|h| h.put_symbol(b)));
        let c = Symbol::intern("obs_test_other");
        assert_ne!(fp(|h| h.put_symbol(a)), fp(|h| h.put_symbol(c)));
    }

    #[test]
    fn unordered_fold_ignores_order() {
        let items = [("a", 1i64), ("b", 2), ("c", 3)];
        let rev: Vec<_> = items.iter().rev().collect();
        let fwd: Vec<_> = items.iter().collect();
        let digest = |v: &[&(&str, i64)]| {
            unordered_obs_fold(v.iter(), |h, (k, n)| {
                h.put_bytes(k.as_bytes());
                h.put_i64(*n);
            })
        };
        assert_eq!(digest(&fwd), digest(&rev));
        // Not order-independent to the point of ignoring content.
        assert_ne!(
            digest(&fwd),
            digest(&[&("a", 1), &("b", 2)]),
            "missing items change the digest"
        );
    }

    #[test]
    fn effects_distinguish_atoms() {
        let c = ClassId::new(3, Symbol::intern("Post"));
        let r1 = Effect::Region(c, Symbol::intern("title"));
        let r2 = Effect::Region(c, Symbol::intern("slug"));
        assert_ne!(fp(|h| h.put_effect(r1)), fp(|h| h.put_effect(r2)));
        assert_ne!(
            fp(|h| h.put_effect(Effect::Star)),
            fp(|h| h.put_effect(Effect::ClassStar(c)))
        );
    }
}
