//! Ergonomic constructors for λ_syn expressions.
//!
//! Specs, benchmarks and tests build a lot of AST; these free functions keep
//! that code close to the Ruby it transliterates:
//!
//! ```
//! use rbsyn_lang::builder::*;
//! // Post.where(slug: arg1).first
//! let e = call(call(var("Post"), "where", [hash([("slug", var("arg1"))])]), "first", []);
//! assert_eq!(e.compact(), "Post.where({slug: arg1}).first");
//! ```

use crate::ast::Expr;
use crate::effects::EffectSet;
use crate::types::Ty;
use crate::value::{ClassId, Value};

/// `nil` literal.
pub fn nil() -> Expr {
    Expr::Lit(Value::Nil)
}

/// `true` literal.
pub fn true_() -> Expr {
    Expr::Lit(Value::Bool(true))
}

/// `false` literal.
pub fn false_() -> Expr {
    Expr::Lit(Value::Bool(false))
}

/// Integer literal.
pub fn int(i: i64) -> Expr {
    Expr::Lit(Value::Int(i))
}

/// String literal.
pub fn str_(s: &str) -> Expr {
    Expr::Lit(Value::str(s))
}

/// Symbol literal `:s`.
pub fn sym(s: &str) -> Expr {
    Expr::Lit(Value::sym(s))
}

/// Class constant (e.g. the `Post` in `Post.where(...)`).
pub fn cls(c: ClassId) -> Expr {
    Expr::Lit(Value::Class(c))
}

/// Variable reference.
pub fn var(name: &str) -> Expr {
    Expr::Var(name.into())
}

/// Method call `recv.meth(args…)`.
pub fn call(recv: Expr, meth: &str, args: impl IntoIterator<Item = Expr>) -> Expr {
    Expr::Call {
        recv: Box::new(recv),
        meth: meth.into(),
        args: args.into_iter().collect(),
    }
}

/// Statement sequence.
pub fn seq(es: impl IntoIterator<Item = Expr>) -> Expr {
    Expr::Seq(es.into_iter().collect())
}

/// `if cond then then_ else els end`.
pub fn if_(cond: Expr, then_: Expr, els: Expr) -> Expr {
    Expr::If {
        cond: Box::new(cond),
        then: Box::new(then_),
        els: Box::new(els),
    }
}

/// `let var = val in body` (rendered `var = val; body`).
pub fn let_(name: &str, val: Expr, body: Expr) -> Expr {
    Expr::Let {
        var: name.into(),
        val: Box::new(val),
        body: Box::new(body),
    }
}

/// Hash literal with symbol keys: `{k: v, …}`.
pub fn hash<'a>(entries: impl IntoIterator<Item = (&'a str, Expr)>) -> Expr {
    Expr::HashLit(entries.into_iter().map(|(k, v)| (k.into(), v)).collect())
}

/// Guard negation `!b`.
pub fn not(b: Expr) -> Expr {
    Expr::Not(Box::new(b))
}

/// Guard disjunction `a || b`.
pub fn or(a: Expr, b: Expr) -> Expr {
    Expr::Or(Box::new(a), Box::new(b))
}

/// Typed hole `□:τ`.
pub fn hole(t: Ty) -> Expr {
    Expr::Hole(t)
}

/// Effect hole `◇:ε`.
pub fn effhole(e: EffectSet) -> Expr {
    Expr::EffHole(e)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let e = if_(
            call(
                cls(ClassId::new(0, "Post".into())),
                "exists?",
                [hash([("author", var("arg0"))])],
            ),
            seq([let_("t0", nil(), var("t0"))]),
            nil(),
        );
        assert!(e.compact().contains("exists?"));
    }

    #[test]
    fn literal_builders() {
        assert_eq!(nil().compact(), "nil");
        assert_eq!(true_().compact(), "true");
        assert_eq!(false_().compact(), "false");
        assert_eq!(int(42).compact(), "42");
        assert_eq!(str_("hi").compact(), "\"hi\"");
        assert_eq!(sym("ok").compact(), ":ok");
    }
}
