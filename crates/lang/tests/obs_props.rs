//! Property tests for observation hashing, the foundation of both
//! observational-equivalence pruning and specgen's differential gate:
//!
//! - [`unordered_obs_fold`] must be insensitive to *any* permutation of
//!   its input (HashMap iteration order must not leak into fingerprints);
//! - [`ObsHasher`] digests must be process-independent — a fingerprint
//!   computed today must equal one computed in CI last month, so the
//!   golden constants below are hard-coded, not recomputed.

use rbsyn_lang::obs::{unordered_obs_fold, ObsHasher};
use rbsyn_lang::{Symbol, Value};

/// Minimal deterministic generator for shuffling (kept local so this test
/// has no dependencies beyond the crate under test).
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

fn shuffle<T>(items: &mut [T], rng: &mut XorShift) {
    for i in (1..items.len()).rev() {
        let j = (rng.next() % (i as u64 + 1)) as usize;
        items.swap(i, j);
    }
}

fn fold_pairs(pairs: &[(String, i64)]) -> u128 {
    unordered_obs_fold(pairs.iter(), |h, (k, n)| {
        h.put_bytes(k.as_bytes());
        h.put_i64(*n);
    })
}

#[test]
fn unordered_fold_is_permutation_invariant() {
    let base: Vec<(String, i64)> = (0..32).map(|i| (format!("ivar_{i}"), i * 7 - 3)).collect();
    let expected = fold_pairs(&base);
    let mut rng = XorShift(0x5eed);
    let mut shuffled = base.clone();
    for round in 0..50 {
        shuffle(&mut shuffled, &mut rng);
        assert_eq!(
            fold_pairs(&shuffled),
            expected,
            "permutation round {round} changed the digest"
        );
    }
    // Rotations too (a systematic family the shuffle may under-sample).
    let mut rotated = base.clone();
    for round in 0..base.len() {
        rotated.rotate_left(1);
        assert_eq!(
            fold_pairs(&rotated),
            expected,
            "rotation {round} changed the digest"
        );
    }
}

#[test]
fn unordered_fold_is_content_sensitive() {
    let base: Vec<(String, i64)> = (0..8).map(|i| (format!("k{i}"), i)).collect();
    let expected = fold_pairs(&base);
    // Dropping an item, duplicating an item, or changing one value must
    // all change the digest (order-independence must not collapse into
    // content-independence).
    let mut dropped = base.clone();
    dropped.pop();
    assert_ne!(fold_pairs(&dropped), expected);
    let mut duplicated = base.clone();
    duplicated.push(base[0].clone());
    assert_ne!(fold_pairs(&duplicated), expected);
    let mut changed = base.clone();
    changed[3].1 += 1;
    assert_ne!(fold_pairs(&changed), expected);
}

#[test]
fn empty_fold_is_distinguished_from_missing() {
    let empty = fold_pairs(&[]);
    let one = fold_pairs(&[("k".to_owned(), 0)]);
    assert_ne!(empty, 0, "empty fold must still be a real digest");
    assert_ne!(empty, one);
}

/// Golden fingerprints. These constants were computed once and pinned;
/// they must never change, because cached fingerprints and cross-process
/// comparisons (parallel batch workers, specgen's gate re-deriving a
/// reference in a fresh process) assume digests are a pure function of
/// observed content. If this test fails, the hash function changed — that
/// invalidates every persisted fingerprint and must be an explicit,
/// documented decision, not an accident.
#[test]
fn fingerprints_are_process_independent_golden() {
    let fp = |f: &dyn Fn(&mut ObsHasher)| {
        let mut h = ObsHasher::new();
        f(&mut h);
        h.finish128()
    };
    assert_eq!(
        fp(&|h| h.put_value(&Value::Nil)),
        0x29fc59ea2f969825_6fb746a16f3d60c4_u128
    );
    assert_eq!(
        fp(&|h| h.put_value(&Value::Int(42))),
        0x5a02948e148415cf_2af94006ef6f9808_u128
    );
    assert_eq!(
        fp(&|h| h.put_value(&Value::str("hello"))),
        0xb54d5ba9c642b985_2fb333f249447751_u128
    );
    assert_eq!(
        fp(&|h| h.put_symbol(Symbol::intern("updated"))),
        0x1d3c8948a465cbb1_dcb009669d938c4e_u128
    );
    assert_eq!(
        fp(&|h| {
            h.put_value(&Value::Array(vec![
                Value::Int(1),
                Value::Bool(true),
                Value::str("x"),
            ]))
        }),
        0x95835a4e713cb1d3_653d6d43576e9043_u128
    );
    assert_eq!(
        fold_pairs(&[("state".to_owned(), 3), ("title".to_owned(), -1)]),
        0xfdc48432db9576a5_72fd284d2a04bf03_u128
    );
}
