//! Property tests for the λ_syn syntax layer.

use proptest::prelude::*;
use rbsyn_lang::builder::*;
use rbsyn_lang::metrics::{call_size, node_count, path_count};
use rbsyn_lang::{EffectSet, Expr, Ty, Value};

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        Just(nil()),
        Just(true_()),
        Just(false_()),
        any::<i32>().prop_map(|i| int(i as i64)),
        "[a-z_][a-z0-9_]{0,5}".prop_map(|s| var(&s)),
        "[a-zA-Z0-9 ]{0,8}".prop_map(|s| str_(&s)),
        "[a-z]{1,5}".prop_map(|s| sym(&s)),
        Just(hole(Ty::Int)),
        Just(effhole(EffectSet::star())),
    ];
    leaf.prop_recursive(3, 32, 3, |inner| {
        prop_oneof![
            (
                inner.clone(),
                "[a-z]{1,4}",
                prop::collection::vec(inner.clone(), 0..2)
            )
                .prop_map(|(r, m, a)| call(r, &m, a)),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(c, t, e)| if_(c, t, e)),
            ("t[0-9]", inner.clone(), inner.clone()).prop_map(|(n, v, b)| let_(&n, v, b)),
            prop::collection::vec(inner.clone(), 1..4).prop_map(seq),
            prop::collection::vec(("[a-z]{1,4}", inner.clone()), 0..3)
                .prop_map(|kvs| hash(kvs.iter().map(|(k, v)| (k.as_str(), v.clone())))),
            inner.clone().prop_map(not),
            (inner.clone(), inner).prop_map(|(a, b)| or(a, b)),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn node_count_dominates_call_size(e in arb_expr()) {
        prop_assert!(call_size(&e) <= node_count(&e));
    }

    #[test]
    fn hole_detection_is_consistent(e in arb_expr()) {
        prop_assert_eq!(e.has_holes(), e.hole_count() > 0);
        prop_assert_eq!(e.evaluable(), !e.has_holes());
    }

    #[test]
    fn paths_at_least_one_and_bounded_by_exponent(e in arb_expr()) {
        let p = path_count(&e);
        prop_assert!(p >= 1);
        // Each node can at most double the path count.
        let bound = 1usize.checked_shl(node_count(&e).min(40) as u32).unwrap_or(usize::MAX);
        prop_assert!(p <= bound);
    }

    #[test]
    fn compact_rendering_is_total_and_deterministic(e in arb_expr()) {
        let a = e.compact();
        let b = e.compact();
        prop_assert_eq!(&a, &b);
        prop_assert!(!a.is_empty());
        // Multi-line display is total too.
        let _ = e.to_string();
    }

    #[test]
    fn fresh_temps_never_collide(e in arb_expr()) {
        let t = e.fresh_temp();
        // Binding the fresh temp and referencing it must not capture any
        // existing variable: the temp must not appear in the rendering.
        let body = e.compact();
        for tok in body.split(|c: char| !c.is_alphanumeric()) {
            prop_assert_ne!(tok, t.as_str());
        }
    }

    #[test]
    fn value_display_roundtrips_symbols(s in "[a-z]{1,8}") {
        let v = Value::sym(&s);
        prop_assert_eq!(v.to_string(), format!(":{s}"));
    }
}
