//! Property and stress tests for the sharded, lock-free symbol table.
//!
//! The table's contract: interning is idempotent and race-free (equal
//! strings always agree on one id, no matter which thread wins the insert
//! race), resolution round-trips every published id without locking, and
//! none of this depends on the shard count — shard layout may change the
//! raw id encoding, never any observable property.

use proptest::prelude::*;
use rbsyn_lang::{Symbol, SymbolTable};
use std::collections::HashMap;
use std::sync::{Arc, Barrier};

/// A mixed identifier corpus with deliberate shard-collision pressure:
/// realistic method/region names plus numbered families that hash all
/// over the stripe space.
fn corpus(n: usize) -> Vec<String> {
    let stems = [
        "title",
        "slug",
        "author",
        "state",
        "Post.create",
        "find_by",
        "==",
        "count",
        "exists?",
        "save!",
    ];
    (0..n)
        .map(|i| format!("{}_{}", stems[i % stems.len()], i / stems.len()))
        .collect()
}

#[test]
fn concurrent_overlapping_interns_agree_on_ids() {
    let table = Arc::new(SymbolTable::with_shards(4));
    let strings = Arc::new(corpus(400));
    const THREADS: usize = 8;
    let barrier = Arc::new(Barrier::new(THREADS));
    let maps: Vec<HashMap<String, u32>> = std::thread::scope(|scope| {
        (0..THREADS)
            .map(|t| {
                let table = Arc::clone(&table);
                let strings = Arc::clone(&strings);
                let barrier = Arc::clone(&barrier);
                scope.spawn(move || {
                    // Every thread interns every string, but walks the
                    // corpus from a different offset so first-toucher
                    // varies per string — the overlap is the point.
                    barrier.wait();
                    let mut ids = HashMap::new();
                    for i in 0..strings.len() {
                        let s = &strings[(i + t * 53) % strings.len()];
                        ids.insert(s.clone(), table.intern(s));
                    }
                    ids
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("interning thread panicked"))
            .collect()
    });
    let first = &maps[0];
    for other in &maps[1..] {
        assert_eq!(first, other, "threads disagree on interned ids");
    }
    for (s, &id) in first {
        assert_eq!(table.resolve(id), s.as_str(), "resolution must round-trip");
    }
    assert_eq!(table.len(), strings.len());
}

#[test]
fn barrier_race_on_the_insert_path_is_single_publication() {
    // Rounds of maximal insert contention: every thread releases from a
    // barrier straight into interning the SAME brand-new string, so the
    // insert-race arm (double-checked write lock) runs constantly. All
    // racers must observe one id, and the table must grow by exactly one
    // slot per round.
    let table = Arc::new(SymbolTable::with_shards(16));
    const THREADS: usize = 8;
    const ROUNDS: usize = 200;
    let barrier = Arc::new(Barrier::new(THREADS));
    let winners: Vec<Vec<u32>> = std::thread::scope(|scope| {
        (0..THREADS)
            .map(|_| {
                let table = Arc::clone(&table);
                let barrier = Arc::clone(&barrier);
                scope.spawn(move || {
                    (0..ROUNDS)
                        .map(|r| {
                            let s = format!("race_round_{r}");
                            barrier.wait();
                            let id = table.intern(&s);
                            assert_eq!(table.resolve(id), s, "published id must resolve at once");
                            id
                        })
                        .collect()
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("racing thread panicked"))
            .collect()
    });
    for round in 0..ROUNDS {
        let id = winners[0][round];
        assert!(
            winners.iter().all(|w| w[round] == id),
            "round {round}: racers saw different ids"
        );
    }
    assert_eq!(table.len(), ROUNDS, "each round must publish exactly once");
}

#[test]
fn shard_count_is_unobservable() {
    // Raw encodings legitimately differ across layouts; every observable
    // property (round-trip, idempotence, distinctness) must not.
    let strings = corpus(300);
    for shards in [1, 4, 16] {
        let table = SymbolTable::with_shards(shards);
        assert_eq!(table.shard_count(), shards);
        let ids: Vec<u32> = strings.iter().map(|s| table.intern(s)).collect();
        let again: Vec<u32> = strings.iter().map(|s| table.intern(s)).collect();
        assert_eq!(ids, again, "{shards}-shard interning must be idempotent");
        for (s, &id) in strings.iter().zip(&ids) {
            assert_eq!(table.resolve(id), s.as_str());
        }
        let distinct: std::collections::HashSet<u32> = ids.iter().copied().collect();
        assert_eq!(
            distinct.len(),
            strings.len(),
            "distinct strings, distinct ids"
        );
        assert_eq!(table.len(), strings.len());
    }
}

#[test]
fn segment_growth_survives_thousands_of_symbols_per_shard() {
    // A 1-shard table forces every insert through one stripe, marching the
    // arena across several segment boundaries (512, 1536, 3584, …).
    let table = SymbolTable::with_shards(1);
    let strings = corpus(5000);
    let ids: Vec<u32> = strings.iter().map(|s| table.intern(s)).collect();
    for (s, &id) in strings.iter().zip(&ids) {
        assert_eq!(table.resolve(id), s.as_str());
    }
    assert_eq!(table.len(), 5000);
}

#[test]
fn global_symbols_order_by_content_not_layout() {
    // The process-wide table may run at any RBSYN_INTERN_SHARDS; ordering
    // must come from string contents alone.
    let mut syms: Vec<Symbol> = ["zeta", "alpha", "mu", "beta"]
        .iter()
        .map(|s| Symbol::intern(s))
        .collect();
    syms.sort();
    let sorted: Vec<&str> = syms.iter().map(|s| s.as_str()).collect();
    assert_eq!(sorted, ["alpha", "beta", "mu", "zeta"]);
}

proptest! {
    #[test]
    fn intern_resolve_roundtrips_arbitrary_strings(s in ".{0,64}") {
        let sym = Symbol::intern(&s);
        prop_assert_eq!(sym.as_str(), s.as_str());
        prop_assert_eq!(Symbol::intern(&s), sym);
    }

    #[test]
    fn instantiated_tables_roundtrip_and_agree_across_layouts(
        strings in proptest::collection::vec(".{0,32}", 1..40),
        shards_a in 1usize..=16,
        shards_b in 1usize..=16,
    ) {
        let a = SymbolTable::with_shards(shards_a);
        let b = SymbolTable::with_shards(shards_b);
        for s in &strings {
            let (ia, ib) = (a.intern(s), b.intern(s));
            prop_assert_eq!(a.resolve(ia), s.as_str());
            prop_assert_eq!(b.resolve(ib), s.as_str());
        }
        // Observable state agrees even when the raw encodings differ.
        prop_assert_eq!(a.len(), b.len());
    }
}
