//! Synthesis failure modes.

use std::error::Error;
use std::fmt;

/// Why synthesis stopped without a solution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SynthError {
    /// Deadline exceeded (the experiment harness's per-run timeout).
    Timeout,
    /// The bounded search space was exhausted for one spec.
    NoSolution {
        /// Which spec could not be solved.
        spec: String,
    },
    /// Per-spec solutions exist but no merged program passes every spec.
    MergeFailed,
    /// A needed branch condition could not be synthesized.
    GuardNotFound,
    /// The problem is malformed (no specs, bad arity, …).
    BadProblem(String),
}

impl fmt::Display for SynthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthError::Timeout => write!(f, "synthesis timed out"),
            SynthError::NoSolution { spec } => {
                write!(
                    f,
                    "no candidate satisfies spec {spec:?} within the search bounds"
                )
            }
            SynthError::MergeFailed => write!(f, "no merged program passes all specs"),
            SynthError::GuardNotFound => write!(f, "no branch condition distinguishes the specs"),
            SynthError::BadProblem(msg) => write!(f, "malformed synthesis problem: {msg}"),
        }
    }
}

impl Error for SynthError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_concise() {
        assert_eq!(SynthError::Timeout.to_string(), "synthesis timed out");
        assert!(SynthError::NoSolution { spec: "s1".into() }
            .to_string()
            .contains("s1"));
    }
}
