//! Synthesis failure modes.

use std::error::Error;
use std::fmt;

/// Why synthesis stopped without a solution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SynthError {
    /// Deadline exceeded (the experiment harness's per-run timeout).
    Timeout,
    /// The bounded search space was exhausted for one spec.
    NoSolution {
        /// Which spec could not be solved.
        spec: String,
    },
    /// Per-spec solutions exist but no merged program passes every spec.
    MergeFailed,
    /// A needed branch condition could not be synthesized.
    GuardNotFound,
    /// The problem is malformed (no specs, bad arity, …).
    BadProblem(String),
    /// The synthesizer itself failed — a panic inside the search,
    /// contained at the job boundary and converted to a per-job error so
    /// one faulty job can never abort its batch (see
    /// [`crate::batch::run_batch`]).
    Internal(String),
    /// The batch's admission-control gate refused to start this job: the
    /// projected completion time of the remaining queue exceeded the
    /// global deadline, so the job was shed instead of started (see
    /// [`crate::batch::BatchPolicy`]).
    Shed,
}

impl SynthError {
    /// Converts a caught panic payload into [`SynthError::Internal`],
    /// preserving `&str`/`String` messages (the common cases).
    pub fn from_panic(panic: &(dyn std::any::Any + Send)) -> SynthError {
        let msg = panic
            .downcast_ref::<&str>()
            .map(|s| (*s).to_owned())
            .or_else(|| panic.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "opaque panic".to_owned());
        SynthError::Internal(format!("job panicked: {msg}"))
    }
}

impl fmt::Display for SynthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthError::Timeout => write!(f, "synthesis timed out"),
            SynthError::NoSolution { spec } => {
                write!(
                    f,
                    "no candidate satisfies spec {spec:?} within the search bounds"
                )
            }
            SynthError::MergeFailed => write!(f, "no merged program passes all specs"),
            SynthError::GuardNotFound => write!(f, "no branch condition distinguishes the specs"),
            SynthError::BadProblem(msg) => write!(f, "malformed synthesis problem: {msg}"),
            SynthError::Internal(msg) => write!(f, "internal error: {msg}"),
            SynthError::Shed => write!(f, "shed by admission control (global deadline)"),
        }
    }
}

impl Error for SynthError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_concise() {
        assert_eq!(SynthError::Timeout.to_string(), "synthesis timed out");
        assert!(SynthError::NoSolution { spec: "s1".into() }
            .to_string()
            .contains("s1"));
    }
}
