//! **RbSyn** — the type- and effect-guided synthesis engine (the paper's
//! primary contribution, §3–§4).
//!
//! Given a [`SynthesisProblem`] — a method type signature, a constant set
//! `Σ`, and a list of specs — the [`Synthesizer`]:
//!
//! 1. solves each spec independently with the work-list search of
//!    Algorithm 2 ([`generate()`]): typed holes are filled by type-guided
//!    rules (S-Const / S-Var / S-App, Fig. 4), and failing candidates whose
//!    assertions read region `ε_r` are wrapped with effect holes (S-Eff)
//!    filled by methods that *write* `ε_r` (S-EffApp, Fig. 5);
//! 2. synthesizes branch conditions that distinguish the specs' setups
//!    ([`guards`]);
//! 3. merges per-spec solutions into one branching program with the rewrite
//!    rules of Fig. 6/Fig. 13, deciding implications with a SAT solver
//!    (Algorithm 1, [`merge`]).
//!
//! The search is deterministic; candidates are explored by (passed
//! assertions ↓, AST size ↑, insertion order) exactly as §4 describes. The
//! §5.3 guidance ablation ([`Guidance`]) and the §5.4 effect-precision
//! ablation ([`rbsyn_ty::EffectPrecision`]) are configuration switches on
//! [`Options`].
//!
//! All of the above runs through a memoized [`SearchCache`] ([`cache`]):
//! candidates are hash-consed, and expansion / type-check / oracle work is
//! computed at most once per distinct candidate — per run by default,
//! across batch jobs when shared, never when `Options::cache` is off.
//!
//! The search's moving parts — frontier, exploration strategy, scheduler
//! and the shared task [`engine::Executor`] pool behind both
//! inter-problem (`--parallel`) and intra-problem (`--intra`) parallelism
//! — live in [`engine`].

#![deny(missing_docs)]

pub mod batch;
pub mod cache;
pub mod engine;
pub mod error;
pub mod exit;
pub mod expand;
pub mod generate;
pub mod goal;
pub mod guards;
pub mod infer;
pub mod merge;
pub mod options;
pub mod snapshot;
pub mod synthesizer;

pub use batch::{
    run_batch, run_batch_with, BatchJob, BatchOutcome, BatchPolicy, BatchReport, BatchStats,
};
pub use cache::{CacheHandle, EnvToken, ExpandItem, OracleToken, SearchCache};
pub use engine::{Executor, Scheduler, SearchStats, SearchStrategy, StrategyKind};
pub use error::SynthError;
pub use generate::{generate, GenerateOutcome, Oracle};
pub use goal::{ProblemBuilder, SynthesisProblem};
pub use options::{Guidance, Options};
pub use synthesizer::{SynthResult, SynthStats, Synthesizer};

/// The synthesis environment is the interpreter environment: class table
/// with annotations, native method bodies, and the pristine database.
pub type SynthEnv = rbsyn_interp::InterpEnv;
