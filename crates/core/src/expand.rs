//! One-step candidate expansion: the S-rules.
//!
//! * Typed holes `□:τ` are filled by constants (S-Const), variables
//!   (S-Var), method-call templates (S-App), hash literals over schema key
//!   subsets, and symbol literals for `SymLit` hole types (§2.1's
//!   `arg2[:title]` key holes).
//! * Effect holes `◇:ε` are filled by `nil` (S-EffNil) or by a call to a
//!   method whose write effect subsumes `ε`, preceded by a fresh effect
//!   hole for that method's own read effect when impure (S-EffApp).
//!
//! Expansion always rewrites the *leftmost* hole, mirroring the paper's
//! deterministic implementation of the non-deterministic rules.

use crate::infer::Gamma;
use crate::options::Options;
use rbsyn_lang::{EffectSet, Expr, FxBuild, Symbol, Ty, Value};
use rbsyn_ty::{is_subtype, ClassTable};
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;

/// Source of memoized S-App/S-EffApp call-template lists.
///
/// Template lists are pure functions of the class table, the goal
/// type/effect and the seed set, so *where* they are memoized is a free
/// choice: the shared [`crate::cache::CacheHandle`] implements this for
/// normal searches (templates shared across specs, merge attempts and
/// batch jobs), while the guard pool substitutes a pool-local store so its
/// single-threaded enumeration never takes a lock.
pub trait TemplateStore {
    /// The template list for `key`, computing it via `compute` on a miss.
    fn templates(&self, key: String, compute: &mut dyn FnMut() -> Vec<Expr>) -> Arc<Vec<Expr>>;
}

/// One-step expander over a class table.
///
/// Candidate enumeration (instantiating every library method at every
/// model class, S-App / S-EffApp) is the hot path of the search; the
/// resulting call templates are memoized through the [`TemplateStore`] per
/// goal type / effect and seed set, which is sound because the template
/// list is a pure function of the class table — the shared store's
/// environment token fingerprints the table, so templates are shared
/// across every search over the same library (other specs, other batch
/// jobs) and never leak between different configurations.
pub struct Expander<'a> {
    /// Class table (with `Σ` configured).
    pub table: &'a ClassTable,
    /// Search options (guidance switches, hash-literal arity).
    pub opts: &'a Options,
    search: &'a dyn TemplateStore,
    fill_memo: Option<&'a FillMemo>,
}

/// Memo of complete `Expander::fill_typed` results per goal type, for
/// callers whose `Γ` is **fixed** for the expander's whole lifetime.
///
/// `fill_typed` is deterministic in `(goal, Γ, Σ, class table, options)`;
/// when the caller guarantees everything but `goal` is constant — the
/// guard pool's boolean stream, whose candidates contain no binders, so
/// `Γ` is never pushed or popped during enumeration — the entire filling
/// list (constants, variables, hash/symbol literals *and* the call
/// templates) collapses to a pure function of the goal and can be served
/// from this map, skipping the per-call subtype scans, seed-set
/// stringification and memo-key formatting. Callers whose `Γ` changes
/// between holes (phase-1 `Let` bodies) must NOT pass one.
pub struct FillMemo(RefCell<HashMap<Ty, Arc<Vec<Expr>>, FxBuild>>);

impl FillMemo {
    /// An empty memo.
    pub fn new() -> FillMemo {
        FillMemo(RefCell::new(HashMap::default()))
    }
}

impl Default for FillMemo {
    fn default() -> FillMemo {
        FillMemo::new()
    }
}

impl<'a> Expander<'a> {
    /// Builds an expander memoizing through `search`.
    pub fn new(
        table: &'a ClassTable,
        opts: &'a Options,
        search: &'a dyn TemplateStore,
    ) -> Expander<'a> {
        Expander {
            table,
            opts,
            search,
            fill_memo: None,
        }
    }

    /// [`Expander::new`] plus a [`FillMemo`] — only sound when the
    /// caller's `Γ` is identical across every expansion this expander
    /// (and every other expander sharing `memo`) will perform.
    pub fn with_fill_memo(
        table: &'a ClassTable,
        opts: &'a Options,
        search: &'a dyn TemplateStore,
        memo: &'a FillMemo,
    ) -> Expander<'a> {
        Expander {
            table,
            opts,
            search,
            fill_memo: Some(memo),
        }
    }

    fn seeds_key(seeds: &[Ty]) -> String {
        seeds
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(";")
    }

    /// All one-step rewrites of the leftmost hole of `e`, or `None` when
    /// `e` is hole-free (evaluable).
    pub fn expand_first(&self, e: &Expr, gamma: &mut Gamma) -> Option<Vec<Expr>> {
        match e {
            Expr::Hole(t) => Some(self.fill_typed(t, gamma)),
            Expr::EffHole(eps) => Some(self.fill_effect(eps, gamma)),
            Expr::Lit(_) | Expr::Var(_) => None,
            Expr::Seq(es) => {
                for (i, child) in es.iter().enumerate() {
                    if let Some(subs) = self.expand_first(child, gamma) {
                        return Some(
                            subs.into_iter()
                                .map(|s| {
                                    let mut es2 = es.clone();
                                    es2[i] = s;
                                    simplify(Expr::Seq(es2))
                                })
                                .collect(),
                        );
                    }
                }
                None
            }
            Expr::Call { recv, meth, args } => {
                if let Some(subs) = self.expand_first(recv, gamma) {
                    return Some(
                        subs.into_iter()
                            .map(|s| Expr::Call {
                                recv: Box::new(s),
                                meth: *meth,
                                args: args.clone(),
                            })
                            .collect(),
                    );
                }
                for (i, a) in args.iter().enumerate() {
                    if let Some(subs) = self.expand_first(a, gamma) {
                        return Some(
                            subs.into_iter()
                                .map(|s| {
                                    let mut args2 = args.clone();
                                    args2[i] = s;
                                    Expr::Call {
                                        recv: recv.clone(),
                                        meth: *meth,
                                        args: args2,
                                    }
                                })
                                .collect(),
                        );
                    }
                }
                None
            }
            Expr::If { cond, then, els } => {
                if let Some(subs) = self.expand_first(cond, gamma) {
                    return Some(
                        subs.into_iter()
                            .map(|s| Expr::If {
                                cond: Box::new(s),
                                then: then.clone(),
                                els: els.clone(),
                            })
                            .collect(),
                    );
                }
                if let Some(subs) = self.expand_first(then, gamma) {
                    return Some(
                        subs.into_iter()
                            .map(|s| Expr::If {
                                cond: cond.clone(),
                                then: Box::new(s),
                                els: els.clone(),
                            })
                            .collect(),
                    );
                }
                if let Some(subs) = self.expand_first(els, gamma) {
                    return Some(
                        subs.into_iter()
                            .map(|s| Expr::If {
                                cond: cond.clone(),
                                then: then.clone(),
                                els: Box::new(s),
                            })
                            .collect(),
                    );
                }
                None
            }
            Expr::Let { var, val, body } => {
                if let Some(subs) = self.expand_first(val, gamma) {
                    return Some(
                        subs.into_iter()
                            .map(|s| Expr::Let {
                                var: *var,
                                val: Box::new(s),
                                body: body.clone(),
                            })
                            .collect(),
                    );
                }
                // Bind the let variable at (possibly holed) value type so
                // S-Var can offer it inside the body.
                let vt = crate::infer::infer_ty(self.table, gamma, val).unwrap_or(Ty::Obj);
                let m = gamma.mark();
                gamma.bind(*var, vt);
                let out = self.expand_first(body, gamma).map(|subs| {
                    subs.into_iter()
                        .map(|s| Expr::Let {
                            var: *var,
                            val: val.clone(),
                            body: Box::new(s),
                        })
                        .collect()
                });
                gamma.release(m);
                out
            }
            Expr::HashLit(entries) => {
                for (i, (_, v)) in entries.iter().enumerate() {
                    if let Some(subs) = self.expand_first(v, gamma) {
                        return Some(
                            subs.into_iter()
                                .map(|s| {
                                    let mut e2 = entries.clone();
                                    e2[i].1 = s;
                                    Expr::HashLit(e2)
                                })
                                .collect(),
                        );
                    }
                }
                None
            }
            Expr::Not(b) => self
                .expand_first(b, gamma)
                .map(|subs| subs.into_iter().map(|s| Expr::Not(Box::new(s))).collect()),
            Expr::Or(x, y) => {
                if let Some(subs) = self.expand_first(x, gamma) {
                    return Some(
                        subs.into_iter()
                            .map(|s| Expr::Or(Box::new(s), y.clone()))
                            .collect(),
                    );
                }
                self.expand_first(y, gamma).map(|subs| {
                    subs.into_iter()
                        .map(|s| Expr::Or(x.clone(), Box::new(s)))
                        .collect()
                })
            }
        }
    }

    /// Receiver-type seeds for comp-typed instance methods (`Hash#[]`,
    /// `Array#first`): every finite-hash- or array-typed term in scope.
    fn seeds(&self, gamma: &Gamma) -> Vec<Ty> {
        let mut out: Vec<Ty> = Vec::new();
        for (_, t) in gamma.bindings() {
            if matches!(t, Ty::FiniteHash(_) | Ty::Array(_)) && !out.contains(t) {
                out.push(t.clone());
            }
        }
        out
    }

    /// Fillings of a typed hole `□:τ` (S-Const, S-Var, symbol literals,
    /// hash literals, S-App).
    fn fill_typed(&self, goal: &Ty, gamma: &Gamma) -> Vec<Expr> {
        if let Some(memo) = self.fill_memo {
            if let Some(cached) = memo.0.borrow().get(goal) {
                return cached.as_ref().clone();
            }
            let out = self.fill_typed_uncached(goal, gamma);
            memo.0
                .borrow_mut()
                .insert(goal.clone(), Arc::new(out.clone()));
            return out;
        }
        self.fill_typed_uncached(goal, gamma)
    }

    fn fill_typed_uncached(&self, goal: &Ty, gamma: &Gamma) -> Vec<Expr> {
        let typed = self.opts.guidance.types;
        let h = &self.table.hierarchy;
        let mut out: Vec<Expr> = Vec::new();

        // S-Const: constants from Σ at subtypes of the goal.
        for (v, vt) in self.table.consts() {
            if !typed || is_subtype(h, vt, goal) {
                out.push(Expr::Lit(v.clone()));
            }
        }

        // Symbol literals for SymLit goals (hash-key holes). These are
        // implicit constants derived from the goal type itself, so they
        // exist even when Σ has no symbols.
        if typed {
            for s in sym_literals(goal) {
                let lit = Expr::Lit(Value::Sym(s));
                if !out.contains(&lit) {
                    out.push(lit);
                }
            }
        }

        // S-Var: variables from Γ.
        for (x, xt) in gamma.bindings() {
            if !typed || is_subtype(h, xt, goal) {
                let v = Expr::Var(*x);
                if !out.contains(&v) {
                    out.push(v);
                }
            }
        }

        // Hash literals over key subsets of finite-hash goals.
        if typed {
            for fh in finite_hash_goals(goal) {
                self.hash_literals(fh, &mut out);
            }
        }

        // S-App: method-call templates with the right return type
        // (memoized per goal/seed set).
        let seeds = self.seeds(gamma);
        let key = format!("ret|{goal}|{}|{typed}", Self::seeds_key(&seeds));
        let templates = self.search.templates(key, &mut || {
            let cands = if typed {
                self.table.candidates_returning(goal, &seeds)
            } else {
                self.table.enumerate_candidates(&seeds)
            };
            cands
                .into_iter()
                .map(|c| Expr::Call {
                    recv: Box::new(Expr::Hole(c.recv_ty)),
                    meth: c.name,
                    args: c.params.into_iter().map(Expr::Hole).collect(),
                })
                .collect()
        });
        out.extend(templates.iter().cloned());
        out
    }

    /// All non-empty key subsets (up to `max_hash_keys`) of a finite hash
    /// type, in deterministic order: singletons first, then pairs, etc.
    fn hash_literals(&self, fh: &rbsyn_lang::FiniteHash, out: &mut Vec<Expr>) {
        let n = fh.fields.len();
        let max_k = self.opts.max_hash_keys.min(n);
        let mut idxs: Vec<usize> = (0..n).collect();
        // Deterministic: schema order.
        idxs.sort_by_key(|i| fh.fields[*i].key);
        for k in 1..=max_k {
            subsets(&idxs, k, &mut |subset| {
                let entries: Vec<(Symbol, Expr)> = subset
                    .iter()
                    .map(|&i| (fh.fields[i].key, Expr::Hole(fh.fields[i].ty.clone())))
                    .collect();
                out.push(Expr::HashLit(entries));
            });
        }
    }

    /// Fillings of an effect hole `◇:ε` (S-EffNil, S-EffApp), memoized per
    /// effect/seed set.
    fn fill_effect(&self, eps: &EffectSet, gamma: &Gamma) -> Vec<Expr> {
        let seeds = self.seeds(gamma);
        let key = format!("eff|{eps}|{}", Self::seeds_key(&seeds));
        let templates = self.search.templates(key, &mut || {
            let mut v = vec![Expr::Lit(Value::Nil)]; // S-EffNil
            for c in self.table.candidates_writing(eps, &seeds) {
                let callee = Expr::Call {
                    recv: Box::new(Expr::Hole(c.recv_ty)),
                    meth: c.name,
                    args: c.params.into_iter().map(Expr::Hole).collect(),
                };
                // S-EffApp: the method's own read effect may need
                // fixing first.
                if c.read.is_pure() {
                    v.push(callee);
                } else {
                    v.push(Expr::Seq(vec![Expr::EffHole(c.read), callee]));
                }
            }
            v
        });
        templates.iter().cloned().collect()
    }
}

/// Symbol literals admissible at a hole type (a `SymLit` or a union of
/// them).
fn sym_literals(t: &Ty) -> Vec<Symbol> {
    match t {
        Ty::SymLit(s) => vec![*s],
        Ty::Union(parts) => parts.iter().flat_map(sym_literals).collect(),
        _ => Vec::new(),
    }
}

/// Finite-hash components of a hole type.
fn finite_hash_goals(t: &Ty) -> Vec<&rbsyn_lang::FiniteHash> {
    match t {
        Ty::FiniteHash(fh) => vec![fh],
        Ty::Union(parts) => parts.iter().flat_map(finite_hash_goals).collect(),
        _ => Vec::new(),
    }
}

/// Enumerates size-`k` subsets of `idxs` in lexicographic order.
fn subsets(idxs: &[usize], k: usize, f: &mut impl FnMut(&[usize])) {
    fn go(
        idxs: &[usize],
        k: usize,
        start: usize,
        acc: &mut Vec<usize>,
        f: &mut impl FnMut(&[usize]),
    ) {
        if acc.len() == k {
            f(acc);
            return;
        }
        for i in start..idxs.len() {
            acc.push(idxs[i]);
            go(idxs, k, i + 1, acc, f);
            acc.pop();
        }
    }
    go(idxs, k, 0, &mut Vec::new(), f);
}

/// Canonicalizes sequences: flattens nested `Seq`s, drops non-final `nil`
/// statements (the residue of S-EffNil), and unwraps singleton sequences.
pub fn simplify(e: Expr) -> Expr {
    match e {
        Expr::Seq(es) => {
            let mut flat: Vec<Expr> = Vec::new();
            for item in es {
                match simplify(item) {
                    Expr::Seq(inner) => flat.extend(inner),
                    other => flat.push(other),
                }
            }
            let n = flat.len();
            let mut kept: Vec<Expr> = flat
                .into_iter()
                .enumerate()
                .filter(|(i, e)| *i + 1 == n || !matches!(e, Expr::Lit(Value::Nil)))
                .map(|(_, e)| e)
                .collect();
            match kept.len() {
                0 => Expr::Lit(Value::Nil),
                1 => kept.pop().expect("len checked"),
                _ => Expr::Seq(kept),
            }
        }
        Expr::Let { var, val, body } => Expr::Let {
            var,
            val: Box::new(simplify(*val)),
            body: Box::new(simplify(*body)),
        },
        Expr::Call { recv, meth, args } => Expr::Call {
            recv: Box::new(simplify(*recv)),
            meth,
            args: args.into_iter().map(simplify).collect(),
        },
        Expr::If { cond, then, els } => Expr::If {
            cond: Box::new(simplify(*cond)),
            then: Box::new(simplify(*then)),
            els: Box::new(simplify(*els)),
        },
        Expr::HashLit(entries) => {
            Expr::HashLit(entries.into_iter().map(|(k, v)| (k, simplify(v))).collect())
        }
        Expr::Not(b) => Expr::Not(Box::new(simplify(*b))),
        Expr::Or(a, b) => Expr::Or(Box::new(simplify(*a)), Box::new(simplify(*b))),
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheHandle;
    use rbsyn_lang::builder::*;
    use rbsyn_stdlib::EnvBuilder;

    fn blog() -> (ClassTable, rbsyn_lang::ClassId) {
        let mut b = EnvBuilder::with_stdlib();
        let post = b.define_model("Post", &[("author", Ty::Str), ("title", Ty::Str)]);
        b.add_const(Value::Class(post));
        let env = b.finish();
        (env.table, post)
    }

    #[test]
    fn evaluable_expressions_do_not_expand() {
        let (table, _) = blog();
        let opts = Options::default();
        let search = CacheHandle::private();
        let ex = Expander::new(&table, &opts, &search);
        assert!(ex.expand_first(&int(1), &mut Gamma::new()).is_none());
    }

    #[test]
    fn typed_holes_offer_consts_vars_and_calls() {
        let (table, post) = blog();
        let opts = Options::default();
        let search = CacheHandle::private();
        let ex = Expander::new(&table, &opts, &search);
        let mut g = Gamma::new();
        g.bind(Symbol::intern("arg0"), Ty::Instance(post));
        let fills = ex.expand_first(&hole(Ty::Instance(post)), &mut g).unwrap();
        let keys: Vec<String> = fills.iter().map(|e| e.compact()).collect();
        assert!(keys.contains(&"arg0".to_owned()), "S-Var: {keys:?}");
        assert!(
            keys.iter().any(|k| k.contains(".first")),
            "S-App templates: {keys:?}"
        );
        // The singleton receiver hole is typed Class<Post>.
        assert!(keys.iter().any(|k| k.contains("Class<Post>")));
    }

    #[test]
    fn singleton_class_holes_accept_the_constant() {
        let (table, post) = blog();
        let opts = Options::default();
        let search = CacheHandle::private();
        let ex = Expander::new(&table, &opts, &search);
        let fills = ex
            .expand_first(&hole(Ty::SingletonClass(post)), &mut Gamma::new())
            .unwrap();
        assert!(fills
            .iter()
            .any(|e| matches!(e, Expr::Lit(Value::Class(c)) if *c == post)));
    }

    #[test]
    fn hash_holes_expand_to_key_subsets() {
        let (table, post) = blog();
        let opts = Options::default();
        let search = CacheHandle::private();
        let ex = Expander::new(&table, &opts, &search);
        let schema = table.hierarchy.schema(post).unwrap();
        let fh = Ty::FiniteHash(rbsyn_lang::FiniteHash::new(
            schema
                .columns
                .iter()
                .map(|(k, t)| rbsyn_lang::types::HashField {
                    key: *k,
                    ty: t.clone(),
                    optional: true,
                })
                .collect(),
        ));
        let fills = ex.expand_first(&hole(fh), &mut Gamma::new()).unwrap();
        let hashes: Vec<&Expr> = fills
            .iter()
            .filter(|e| matches!(e, Expr::HashLit(_)))
            .collect();
        // 3 columns (id, author, title): 3 singletons + 3 pairs.
        assert_eq!(hashes.len(), 6, "{fills:?}");
    }

    #[test]
    fn symlit_holes_expand_to_literals() {
        let (table, _) = blog();
        let opts = Options::default();
        let search = CacheHandle::private();
        let ex = Expander::new(&table, &opts, &search);
        let t = Ty::union(vec![
            Ty::SymLit(Symbol::intern("author")),
            Ty::SymLit(Symbol::intern("title")),
        ]);
        let fills = ex.expand_first(&hole(t), &mut Gamma::new()).unwrap();
        let syms: Vec<&Expr> = fills
            .iter()
            .filter(|e| matches!(e, Expr::Lit(Value::Sym(_))))
            .collect();
        assert_eq!(syms.len(), 2);
    }

    #[test]
    fn effect_holes_offer_nil_and_writers() {
        let (table, post) = blog();
        let opts = Options::default();
        let search = CacheHandle::private();
        let ex = Expander::new(&table, &opts, &search);
        let want = rbsyn_stdlib::eff::region(post, "title");
        let fills = ex.expand_first(&effhole(want), &mut Gamma::new()).unwrap();
        let keys: Vec<String> = fills.iter().map(|e| e.compact()).collect();
        assert_eq!(keys[0], "nil", "S-EffNil first");
        assert!(keys.iter().any(|k| k.contains("title=")), "{keys:?}");
        // Precise matching: author= does not write Post.title.
        assert!(!keys.iter().any(|k| k.contains("author=")));
        // create/update! (self.* writes) subsume the region too.
        assert!(keys
            .iter()
            .any(|k| k.contains("update!") || k.contains("create")));
    }

    #[test]
    fn effapp_prepends_read_effect_holes() {
        let (table, post) = blog();
        let opts = Options::default();
        let search = CacheHandle::private();
        let ex = Expander::new(&table, &opts, &search);
        let want = rbsyn_stdlib::eff::class_star(post);
        let fills = ex.expand_first(&effhole(want), &mut Gamma::new()).unwrap();
        // `create` reads self.* too, so its template is ◇:Post.*; call.
        let with_pre = fills
            .iter()
            .any(|e| matches!(e, Expr::Seq(es) if matches!(es[0], Expr::EffHole(_))));
        assert!(with_pre, "{fills:?}");
    }

    #[test]
    fn leftmost_hole_is_expanded_first() {
        let (table, post) = blog();
        let opts = Options::default();
        let search = CacheHandle::private();
        let ex = Expander::new(&table, &opts, &search);
        let e = call(hole(Ty::SingletonClass(post)), "where", [hole(Ty::Obj)]);
        let fills = ex.expand_first(&e, &mut Gamma::new()).unwrap();
        // Receiver (leftmost) was expanded: the argument hole survives.
        assert!(fills.iter().all(|f| f.compact().contains("(□:Obj)")));
    }

    #[test]
    fn let_bindings_are_visible_in_bodies() {
        let (table, post) = blog();
        let opts = Options::default();
        let search = CacheHandle::private();
        let ex = Expander::new(&table, &opts, &search);
        let e = let_("t0", call(cls(post), "first", []), hole(Ty::Instance(post)));
        let fills = ex.expand_first(&e, &mut Gamma::new()).unwrap();
        assert!(
            fills.iter().any(|f| f.compact().ends_with("; t0")),
            "t0 : Post must be offered for the body hole"
        );
    }

    #[test]
    fn untyped_mode_ignores_goal_types() {
        let (table, _) = blog();
        let opts = Options::with_guidance(crate::Guidance::effects_only());
        let search = CacheHandle::private();
        let ex = Expander::new(&table, &opts, &search);
        let mut g = Gamma::new();
        g.bind(Symbol::intern("x"), Ty::Str);
        let fills = ex.expand_first(&hole(Ty::Int), &mut g).unwrap();
        // The Str-typed variable is offered even though the hole wants Int.
        assert!(fills.iter().any(|e| e.compact() == "x"));
        // And the candidate pool is the whole library.
        assert!(fills.len() > 50);
    }

    #[test]
    fn simplify_cleans_sequences() {
        let e = Expr::Seq(vec![nil(), Expr::Seq(vec![int(1), nil()]), int(2)]);
        assert_eq!(simplify(e).compact(), "1; 2");
        let single = Expr::Seq(vec![nil(), int(3)]);
        assert_eq!(simplify(single).compact(), "3");
        let all_nil = Expr::Seq(vec![nil(), nil()]);
        assert_eq!(simplify(all_nil).compact(), "nil");
    }
}
