//! Merging per-spec solutions into one branching program (§3.3,
//! Algorithm 1, rewrite rules (1)–(3) of Fig. 6 and pruning rules (4)–(7)
//! of Fig. 13).
//!
//! A merge works over tuples `⟨e, b, Ψ⟩` — hypothesis "`if b then e`
//! satisfies specs Ψ". Chains of tuples (one per `⊕`) are rewritten to
//! fixpoint; implications between branch conditions are decided by the SAT
//! solver over the conditions' boolean skeletons, exactly the heuristic
//! encoding the paper describes.
//!
//! Because guard synthesis is an *oracle* search ("truthy under Ψ₁'s
//! setups, falsy under Ψ₂'s"), the smallest oracle-passing condition can be
//! semantically wrong for the final program (the paper's correctness story
//! is precisely that such candidates are caught when the merged program is
//! run against every spec, §3.4). The merge therefore keeps a small *set*
//! of oracle-passing guards per strengthening request and backtracks over
//! the choices (an odometer over the guard picks) until a merged program
//! validates.
//!
//! **Intra-problem parallelism.** A Rule-3 strengthening request always
//! needs *two* guard searches — `Ψ₁` against `Ψ₂` and the reverse. When
//! the run's [`Scheduler`] has an executor, the second search is
//! prefetched as a concurrent task while the first runs inline, and its
//! result (and task-local [`SearchStats`]) is adopted only if the
//! sequential rewrite would have reached it — otherwise the task is
//! cancelled and discarded — so merged programs and effort counters stay
//! byte-identical to the single-threaded merge.

use crate::engine::{Scheduler, SearchStats, TaskHandle};
use crate::error::SynthError;
use crate::generate::{GuardOracle, Oracle, SpecOracle};
use crate::guards::{negate, search_guards};
use crate::options::Options;
use rbsyn_interp::{InterpEnv, PreparedSpec, Spec};
use rbsyn_lang::{Expr, Program, Symbol, Ty, Value};
use rbsyn_sat::{is_valid_implication, Formula};
use std::collections::HashMap;
use std::panic::resume_unwind;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A merge tuple `⟨e, b, Ψ⟩` (specs by index into the problem).
#[derive(Clone, Debug)]
pub struct Tuple {
    /// Solution expression.
    pub expr: Expr,
    /// Branch condition.
    pub cond: Expr,
    /// Indices of the specs this tuple satisfies.
    pub specs: Vec<usize>,
}

/// Maps branch conditions to SAT formulas: each distinct atomic condition
/// becomes a fresh boolean variable; `!` and `∨` map to the connectives
/// (§3.3 "Checking Implication").
#[derive(Default)]
pub struct CondEncoder {
    atoms: HashMap<String, u32>,
}

impl CondEncoder {
    /// Encodes a condition expression.
    pub fn encode(&mut self, e: &Expr) -> Formula {
        match e {
            Expr::Lit(Value::Bool(true)) => Formula::True,
            Expr::Lit(Value::Bool(false)) => Formula::False,
            Expr::Not(b) => Formula::not(self.encode(b)),
            Expr::Or(a, b) => Formula::or(self.encode(a), self.encode(b)),
            atom => {
                let key = atom.compact();
                let next = self.atoms.len() as u32;
                let id = *self.atoms.entry(key).or_insert(next);
                Formula::Var(id)
            }
        }
    }

    /// `b₁ ⇒ b₂` on the boolean skeleton.
    pub fn implies(&mut self, b1: &Expr, b2: &Expr) -> bool {
        let (f1, f2) = (self.encode(b1), self.encode(b2));
        is_valid_implication(&f1, &f2)
    }

    /// `b₁ ⇔ b₂`.
    pub fn equiv(&mut self, b1: &Expr, b2: &Expr) -> bool {
        self.implies(b1, b2) && self.implies(b2, b1)
    }
}

/// A strengthening request: guard truthy on `pos` specs, falsy on `neg`.
type GuardKey = (Vec<usize>, Vec<usize>);

/// Cached per-request state: a prepared oracle and the searched guards.
struct GuardSet {
    oracle: Arc<GuardOracle>,
    searched: Vec<Expr>,
}

/// What a prefetched guard-search task returns: the search outcome, its
/// task-local counters, and its wall-clock cost.
type GuardSearchResult = (Result<Vec<Expr>, SynthError>, SearchStats, Duration);

/// A speculatively dispatched guard search for one [`GuardKey`] (the
/// second half of a Rule-3 pair). Adopted into the guard cache when the
/// sequential rewrite would have searched it, cancelled otherwise.
struct GuardPrefetch {
    key: GuardKey,
    oracle: Arc<GuardOracle>,
    task: TaskHandle<GuardSearchResult>,
}

/// Everything the merge needs from the synthesis run.
pub struct MergeCtx<'a> {
    /// Interpreter environment (`Arc` so guard searches can run as tasks).
    pub env: &'a Arc<InterpEnv>,
    /// Method name.
    pub name: &'a str,
    /// Method parameters.
    pub params: &'a [(Symbol, Ty)],
    /// All specs of the problem.
    pub specs: &'a [Spec],
    /// The prepared per-spec oracles (index-aligned with `specs`), shared
    /// with phase 1 so merged-program validation reuses memoized verdicts.
    pub spec_oracles: &'a [Arc<SpecOracle>],
    /// Options (guard bounds).
    pub opts: &'a Options,
    /// Deadline, cache handle and task dispatch for every guard search.
    pub sched: &'a Scheduler,
    /// Shared search counters.
    pub stats: &'a mut SearchStats,
    /// Wall-clock spent inside guard searches (inline time plus adopted
    /// task time) — the merge half of the per-phase timing report.
    pub guard_time: Duration,
    /// Conditionals synthesized so far (negation-reuse pool, §4).
    pub known_conds: Vec<Expr>,
}

/// How many oracle-passing guards to keep per strengthening request.
const GUARDS_PER_REQUEST: usize = 5;
/// How many guard-choice combinations to try per `⊕` order.
const ATTEMPTS_PER_ORDER: usize = 64;

impl MergeCtx<'_> {
    fn program(&self, body: Expr) -> Program {
        Program::new(self.name, self.params.iter().map(|(n, _)| n.as_str()), body)
    }

    /// Does `body` pass every spec of the problem? Verdicts go through the
    /// oracle memo (keyed by the per-spec tokens shared with phase 1), so
    /// backtracking attempts that rebuild the same body cost one lookup per
    /// spec.
    fn passes_all_specs(&mut self, body: &Expr) -> bool {
        let p = self.program(body.clone());
        match self.sched.cache().cloned() {
            Some(h) => {
                let id = h.intern(body.clone());
                self.spec_oracles.iter().all(|o| {
                    h.oracle_verdict(o.token(), id, self.stats, || o.test(self.env, &p))
                        .success
                })
            }
            None => self
                .spec_oracles
                .iter()
                .all(|o| o.test(self.env, &p).success),
        }
    }

    /// Builds the prepared oracle for a strengthening request.
    fn guard_oracle(&self, key: &GuardKey) -> Arc<GuardOracle> {
        let pos: Vec<&Spec> = key.0.iter().map(|i| &self.specs[*i]).collect();
        let neg: Vec<&Spec> = key.1.iter().map(|i| &self.specs[*i]).collect();
        Arc::new(GuardOracle::new(self.env, &pos, &neg))
    }

    /// Runs the guard search for `key` inline and caches the result.
    fn search_into_cache(
        &mut self,
        key: &GuardKey,
        cache: &mut HashMap<GuardKey, GuardSet>,
    ) -> Result<(), SynthError> {
        let oracle = self.guard_oracle(key);
        let started = Instant::now();
        let searched = search_guards(
            self.env,
            self.name,
            self.params,
            &oracle,
            GUARDS_PER_REQUEST,
            self.opts,
            self.sched,
            self.stats,
        )?;
        self.guard_time += started.elapsed();
        cache.insert(key.clone(), GuardSet { oracle, searched });
        Ok(())
    }

    /// Speculatively dispatches the guard search for `key` (the second
    /// half of a Rule-3 pair) to the shared executor. Returns `None` when
    /// the request is already cached or the run is single-threaded.
    fn spawn_guard_search(
        &mut self,
        key: &GuardKey,
        cache: &HashMap<GuardKey, GuardSet>,
    ) -> Option<GuardPrefetch> {
        if cache.contains_key(key) {
            return None;
        }
        let executor = self.sched.executor()?.clone();
        let oracle = self.guard_oracle(key);
        let cancel = Arc::new(AtomicBool::new(false));
        let task_sched = self.sched.for_task(Arc::clone(&cancel));
        let env = Arc::clone(self.env);
        let name = self.name.to_owned();
        let params = self.params.to_vec();
        let opts = self.opts.clone();
        let task_oracle = Arc::clone(&oracle);
        let task = executor.spawn_cancellable(cancel, move || {
            let started = Instant::now();
            let mut stats = SearchStats::default();
            let r = search_guards(
                &env,
                &name,
                &params,
                &task_oracle,
                GUARDS_PER_REQUEST,
                &opts,
                &task_sched,
                &mut stats,
            );
            (r, stats, started.elapsed())
        });
        Some(GuardPrefetch {
            key: key.clone(),
            oracle,
            task,
        })
    }

    /// Joins a prefetched guard search and adopts its result — counters,
    /// timing and cached guard set — exactly as if it had run inline.
    fn adopt_guard_search(
        &mut self,
        prefetch: GuardPrefetch,
        cache: &mut HashMap<GuardKey, GuardSet>,
    ) -> Result<(), SynthError> {
        let GuardPrefetch { key, oracle, task } = prefetch;
        let (result, stats, elapsed) = match task.join() {
            Ok(out) => out,
            Err(panic) => resume_unwind(panic),
        };
        if cache.contains_key(&key) {
            return Ok(()); // raced with an inline search for the same key
        }
        self.stats.absorb(&stats);
        self.guard_time += elapsed;
        let searched = result?;
        cache.insert(key, GuardSet { oracle, searched });
        Ok(())
    }

    /// The ordered guard candidates for a request: quick hits (constants,
    /// known conditionals and their negations, plus `extra` — typically the
    /// negation of the partner guard, §4) followed by searched guards.
    fn guard_candidates(
        &mut self,
        key: &GuardKey,
        extra: &[Expr],
        cache: &mut HashMap<GuardKey, GuardSet>,
    ) -> Result<Vec<Expr>, SynthError> {
        if !cache.contains_key(key) {
            self.search_into_cache(key, cache)?;
        }
        let set = &cache[key];
        let mut out: Vec<Expr> = Vec::new();
        let mut quick: Vec<Expr> =
            vec![Expr::Lit(Value::Bool(true)), Expr::Lit(Value::Bool(false))];
        quick.extend(extra.iter().cloned());
        for k in &self.known_conds {
            quick.push(k.clone());
            quick.push(negate(k));
        }
        let param_names: Vec<&str> = self.params.iter().map(|(n, _)| n.as_str()).collect();
        for q in quick {
            if out.contains(&q) {
                continue;
            }
            let p = Program::new(self.name, param_names.iter().copied(), q.clone());
            // Quick candidates are re-tested on every backtracking attempt;
            // the oracle memo turns the repeats into lookups.
            let ok = match self.sched.cache().cloned() {
                Some(h) => {
                    let id = h.intern(q.clone());
                    h.oracle_verdict(set.oracle.token(), id, self.stats, || {
                        set.oracle.test(self.env, &p)
                    })
                    .success
                }
                None => set.oracle.test(self.env, &p).success,
            };
            if ok {
                out.push(q);
            }
        }
        for s in &set.searched {
            if !out.contains(s) {
                out.push(s.clone());
            }
        }
        Ok(out)
    }
}

/// Algorithm 1: try every `⊕` order (and, per order, a bounded number of
/// guard choices), rewrite to fixpoint, keep the smallest merged program
/// that passes all specs.
pub fn merge_program(ctx: &mut MergeCtx<'_>, tuples: Vec<Tuple>) -> Result<Program, SynthError> {
    if tuples.is_empty() {
        return Err(SynthError::MergeFailed);
    }
    let trace = std::env::var("RBSYN_TRACE").is_ok();
    let mut guard_cache: HashMap<GuardKey, GuardSet> = HashMap::new();
    let orders = permutations(tuples.len(), 720);
    let mut best: Option<Expr> = None;
    for order in orders {
        let mut selector: HashMap<GuardKey, usize> = HashMap::new();
        'attempts: for _attempt in 0..ATTEMPTS_PER_ORDER {
            if let Some(d) = ctx.sched.deadline() {
                if Instant::now() >= d {
                    return Err(SynthError::Timeout);
                }
            }
            let chain: Vec<Tuple> = order.iter().map(|&i| tuples[i].clone()).collect();
            let (chain, used) = rewrite_chain(ctx, chain, &selector, &mut guard_cache)?;
            let body = build_body(&chain, &mut CondEncoder::default());
            let valid = ctx.passes_all_specs(&body);
            if trace {
                let conds: Vec<String> = chain.iter().map(|t| t.cond.compact()).collect();
                eprintln!(
                    "[rbsyn] merge order {order:?} sel {:?}: conds [{}] → valid={valid}",
                    selector.values().collect::<Vec<_>>(),
                    conds.join(" | "),
                );
            }
            if valid {
                let sz = rbsyn_lang::metrics::node_count(&body);
                match &best {
                    Some(b) if rbsyn_lang::metrics::node_count(b) <= sz => {}
                    _ => best = Some(body),
                }
                break 'attempts;
            }
            // Odometer over the guard choices this attempt consumed.
            if !bump_selector(&mut selector, &used) {
                break 'attempts;
            }
        }
    }
    match best {
        Some(body) => Ok(ctx.program(body)),
        None => Err(SynthError::MergeFailed),
    }
}

/// Guard requests a rewrite consumed, with the candidate-list length at
/// each request — the digits of the selector odometer.
type GuardUses = Vec<(GuardKey, usize)>;

/// Advances the guard-choice odometer: increments the *first* used key
/// (the structurally dominant pick), carrying rightward; returns `false`
/// when all combinations are exhausted.
fn bump_selector(selector: &mut HashMap<GuardKey, usize>, used: &GuardUses) -> bool {
    for (key, len) in used.iter() {
        let slot = selector.entry(key.clone()).or_insert(0);
        if *slot + 1 < *len {
            *slot += 1;
            return true;
        }
        *slot = 0; // carry
    }
    false
}

/// Applies rules (1)–(7) until no rewrite fires (bounded for safety).
/// Returns the rewritten chain plus the guard requests it consumed (with
/// candidate-list lengths) for the odometer.
fn rewrite_chain(
    ctx: &mut MergeCtx<'_>,
    mut chain: Vec<Tuple>,
    selector: &HashMap<GuardKey, usize>,
    guard_cache: &mut HashMap<GuardKey, GuardSet>,
) -> Result<(Vec<Tuple>, GuardUses), SynthError> {
    let mut enc = CondEncoder::default();
    let mut used: Vec<(GuardKey, usize)> = Vec::new();
    let pick = |ctx: &mut MergeCtx<'_>,
                key: GuardKey,
                extra: &[Expr],
                used: &mut Vec<(GuardKey, usize)>,
                cache: &mut HashMap<GuardKey, GuardSet>|
     -> Result<Option<Expr>, SynthError> {
        let cands = ctx.guard_candidates(&key, extra, cache)?;
        if cands.is_empty() {
            return Ok(None);
        }
        let idx = selector
            .get(&key)
            .copied()
            .unwrap_or(0)
            .min(cands.len() - 1);
        if !used.iter().any(|(k, _)| *k == key) {
            used.push((key.clone(), cands.len()));
        }
        let g = cands[idx].clone();
        if std::env::var("RBSYN_TRACE").is_ok() {
            eprintln!(
                "[rbsyn]   pick {key:?} idx {idx}/{} → {}",
                cands.len(),
                g.compact()
            );
        }
        Ok(Some(g))
    };

    for _round in 0..24 {
        let mut changed = false;
        let mut i = 0;
        while i + 1 < chain.len() {
            let (a, b) = (chain[i].clone(), chain[i + 1].clone());
            let merged_specs = || {
                let mut s = a.specs.clone();
                s.extend(b.specs.iter().copied());
                s
            };
            if a.expr == b.expr {
                let t = if enc.implies(&a.cond, &b.cond) {
                    // Rule 1.
                    Tuple {
                        expr: a.expr.clone(),
                        cond: a.cond.clone(),
                        specs: merged_specs(),
                    }
                } else {
                    // Rule 2.
                    Tuple {
                        expr: a.expr.clone(),
                        cond: Expr::Or(Box::new(a.cond.clone()), Box::new(b.cond.clone())),
                        specs: merged_specs(),
                    }
                };
                chain.splice(i..=i + 1, [t]);
                changed = true;
                continue;
            }
            // Rules 4/5: boolean-program collapse when b1 ≡ !b2.
            let bool_pair = matches!(
                (&a.expr, &b.expr),
                (Expr::Lit(Value::Bool(true)), Expr::Lit(Value::Bool(false)))
                    | (Expr::Lit(Value::Bool(false)), Expr::Lit(Value::Bool(true)))
            );
            if bool_pair && enc.equiv(&a.cond, &negate(&b.cond)) {
                let expr = if matches!(a.expr, Expr::Lit(Value::Bool(true))) {
                    a.cond.clone() // Rule 4
                } else {
                    b.cond.clone() // Rule 5
                };
                let t = Tuple {
                    expr,
                    cond: Expr::Or(Box::new(a.cond.clone()), Box::new(b.cond.clone())),
                    specs: merged_specs(),
                };
                chain.splice(i..=i + 1, [t]);
                changed = true;
                continue;
            }
            // Rule 3: conditions do not distinguish differing solutions —
            // strengthen both via guard synthesis. The reverse request is
            // prefetched on the shared executor while the forward one runs
            // inline (and discarded if the forward request yields nothing,
            // which is when the sequential merge would never search it).
            if enc.implies(&a.cond, &b.cond) {
                let k1: GuardKey = (a.specs.clone(), b.specs.clone());
                let k2: GuardKey = (b.specs.clone(), a.specs.clone());
                let prefetch = if k1 == k2 {
                    None
                } else {
                    ctx.spawn_guard_search(&k2, guard_cache)
                };
                let b1 = match pick(ctx, k1, &[], &mut used, guard_cache) {
                    Ok(Some(b1)) => b1,
                    not_found => {
                        // Timeout, or no forward guard: the reverse search
                        // is not needed (and was not counted sequentially).
                        if let Some(p) = prefetch {
                            p.task.cancel();
                        }
                        not_found?;
                        i += 1;
                        continue;
                    }
                };
                if let Some(p) = prefetch {
                    ctx.adopt_guard_search(p, guard_cache)?;
                }
                // Try the negation first for the reverse guard (§4).
                let extra = [negate(&b1)];
                let Some(b2) = pick(ctx, k2, &extra, &mut used, guard_cache)? else {
                    i += 1;
                    continue;
                };
                if chain[i].cond == b1 && chain[i + 1].cond == b2 {
                    i += 1; // already strengthened; avoid a rewrite loop
                    continue;
                }
                chain[i].cond = b1;
                chain[i + 1].cond = b2;
                changed = true;
                continue;
            }
            // Rules 6/7: guess the negation of the neighbour's condition
            // for a tuple whose own condition is still the trivial `true`
            // (enables the if/else collapse). Restricted to unstrengthened
            // tuples so Rule-3 picks are never clobbered.
            if matches!(b.cond, Expr::Lit(Value::Bool(true)))
                && !matches!(a.cond, Expr::Lit(Value::Bool(true)))
            {
                let bg = negate(&a.cond);
                if guard_holds(ctx, &bg, &b.specs) {
                    chain[i + 1].cond = bg;
                    changed = true;
                    continue;
                }
            }
            i += 1;
        }
        if !changed {
            break;
        }
    }
    Ok((chain, used))
}

/// Does `bg` evaluate truthy under every setup of the given specs?
fn guard_holds(ctx: &mut MergeCtx<'_>, bg: &Expr, specs: &[usize]) -> bool {
    let p = ctx.program(bg.clone());
    specs.iter().all(|&i| {
        let spec = &ctx.specs[i];
        let Some(xr) = spec.result_var() else {
            return false;
        };
        let check = spec.with_asserts(vec![Expr::Var(xr)]);
        match PreparedSpec::prepare(ctx.env, &check) {
            Ok(prepared) => prepared.run(ctx.env, &p).passed(),
            Err(_) => false,
        }
    })
}

/// Builds `if b₁ then e₁ else if b₂ then e₂ … else nil`, with the
/// Appendix A.4 simplifications: a tautological guard drops its
/// conditional, and a final branch guarded by the negation of the previous
/// condition becomes a plain `else`.
fn build_body(chain: &[Tuple], enc: &mut CondEncoder) -> Expr {
    // A tuple guarded by a tautology (e.g. the `b ∨ !b` rules 4/5 produce)
    // needs no conditional at all.
    fn is_taut(enc: &mut CondEncoder, e: &Expr) -> bool {
        matches!(e, Expr::Lit(Value::Bool(true))) || enc.implies(&Expr::Lit(Value::Bool(true)), e)
    }
    fn go(chain: &[Tuple], enc: &mut CondEncoder) -> Expr {
        match chain {
            [] => Expr::Lit(Value::Nil),
            [t] if is_taut(enc, &t.cond) => t.expr.clone(),
            [t, rest @ ..] => {
                // `if b then e else if !b then e2 else nil` → else e2.
                if let [next] = rest {
                    if next.cond == negate(&t.cond) || negate(&next.cond) == t.cond {
                        return Expr::If {
                            cond: Box::new(t.cond.clone()),
                            then: Box::new(t.expr.clone()),
                            els: Box::new(next.expr.clone()),
                        };
                    }
                }
                Expr::If {
                    cond: Box::new(t.cond.clone()),
                    then: Box::new(t.expr.clone()),
                    els: Box::new(go(rest, enc)),
                }
            }
        }
    }
    go(chain, enc)
}

/// Deterministic permutations of `0..n`, capped.
fn permutations(n: usize, cap: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut cur: Vec<usize> = Vec::new();
    let mut used = vec![false; n];
    fn go(
        n: usize,
        cap: usize,
        cur: &mut Vec<usize>,
        used: &mut Vec<bool>,
        out: &mut Vec<Vec<usize>>,
    ) {
        if out.len() >= cap {
            return;
        }
        if cur.len() == n {
            out.push(cur.clone());
            return;
        }
        for i in 0..n {
            if !used[i] {
                used[i] = true;
                cur.push(i);
                go(n, cap, cur, used, out);
                cur.pop();
                used[i] = false;
            }
        }
    }
    go(n, cap, &mut cur, &mut used, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbsyn_lang::builder::*;

    #[test]
    fn encoder_maps_atoms_consistently() {
        let mut enc = CondEncoder::default();
        let b = call(var("Post"), "exists?", []);
        assert!(enc.implies(&b, &b));
        assert!(enc.implies(&b, &or(b.clone(), var("other"))));
        assert!(!enc.implies(&b, &var("other")));
        assert!(enc.equiv(&not(not(b.clone())), &b));
        assert!(enc.implies(&false_(), &b));
        assert!(enc.implies(&b, &true_()));
    }

    #[test]
    fn permutations_are_capped_and_deterministic() {
        assert_eq!(permutations(3, 720).len(), 6);
        assert_eq!(permutations(1, 720), vec![vec![0]]);
        assert_eq!(permutations(7, 720).len(), 720);
        assert_eq!(permutations(3, 720)[0], vec![0, 1, 2]);
    }

    #[test]
    fn build_body_shapes() {
        let mut enc = CondEncoder::default();
        let t1 = Tuple {
            expr: int(1),
            cond: true_(),
            specs: vec![0],
        };
        assert_eq!(
            build_body(std::slice::from_ref(&t1), &mut enc).compact(),
            "1"
        );
        let b = var("b");
        let t2 = Tuple {
            expr: int(1),
            cond: b.clone(),
            specs: vec![0],
        };
        let t3 = Tuple {
            expr: int(2),
            cond: not(b.clone()),
            specs: vec![1],
        };
        // Negated pair collapses to if/else.
        assert_eq!(
            build_body(&[t2.clone(), t3], &mut enc).compact(),
            "if b then 1 else 2 end"
        );
        // Non-negated tail keeps the else-if chain with nil default.
        let t4 = Tuple {
            expr: int(2),
            cond: var("c"),
            specs: vec![1],
        };
        assert_eq!(
            build_body(&[t2, t4], &mut enc).compact(),
            "if b then 1 else if c then 2 else nil end end"
        );
    }

    #[test]
    fn tautological_guards_drop_the_conditional() {
        let mut enc = CondEncoder::default();
        let t = Tuple {
            expr: var("e"),
            cond: or(var("b"), not(var("b"))),
            specs: vec![0, 1],
        };
        assert_eq!(build_body(&[t], &mut enc).compact(), "e");
    }

    #[test]
    fn odometer_carries_and_terminates() {
        let k1: GuardKey = (vec![0], vec![1]);
        let k2: GuardKey = (vec![1], vec![0]);
        let used = vec![(k1.clone(), 2), (k2.clone(), 2)];
        let mut sel = HashMap::new();
        // 2×2 grid: 3 bumps then exhaustion; the first key varies fastest.
        assert!(bump_selector(&mut sel, &used));
        assert_eq!(sel[&k1], 1);
        assert!(bump_selector(&mut sel, &used));
        assert_eq!((sel[&k1], sel[&k2]), (0, 1));
        assert!(bump_selector(&mut sel, &used));
        assert_eq!((sel[&k1], sel[&k2]), (1, 1));
        assert!(!bump_selector(&mut sel, &used));
    }
}
