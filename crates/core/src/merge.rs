//! Merging per-spec solutions into one branching program (§3.3,
//! Algorithm 1, rewrite rules (1)–(3) of Fig. 6 and pruning rules (4)–(7)
//! of Fig. 13).
//!
//! A merge works over tuples `⟨e, b, Ψ⟩` — hypothesis "`if b then e`
//! satisfies specs Ψ". Chains of tuples (one per `⊕`) are rewritten to
//! fixpoint; implications between branch conditions are decided by the SAT
//! solver over the conditions' boolean skeletons, exactly the heuristic
//! encoding the paper describes.
//!
//! Because guard synthesis is an *oracle* search ("truthy under Ψ₁'s
//! setups, falsy under Ψ₂'s"), the smallest oracle-passing condition can be
//! semantically wrong for the final program (the paper's correctness story
//! is precisely that such candidates are caught when the merged program is
//! run against every spec, §3.4). The merge therefore keeps a small *set*
//! of oracle-passing guards per strengthening request and backtracks over
//! the choices (an odometer over the guard picks) until a merged program
//! validates.
//!
//! **Guard covering is pooled.** Every strengthening request — both halves
//! of every Rule-3 pair, across every `⊕` order — is answered by the
//! problem's shared [`GuardPool`]: one lazily extended enumeration of the
//! boolean candidate stream, one pass/fail bitvector per candidate, and a
//! request is `AND`/`NOT` over `u64` words instead of a fresh work-list
//! search re-running the interpreter (see [`crate::guards`]). The guards a
//! request yields — content and order — are byte-identical to the
//! per-request searches this replaced, so merged programs are unchanged;
//! only the oracle work collapses. Quick candidates and the rule-6/7
//! negation guesses go through the same bitvectors.

use crate::engine::{Scheduler, SearchStats};
use crate::error::SynthError;
use crate::generate::{Oracle, SpecOracle};
use crate::guards::{negate, GuardPool, GuardQuery};
use crate::options::Options;
use rbsyn_interp::{InterpEnv, Spec};
use rbsyn_lang::{Expr, Program, Symbol, Ty, Value};
use rbsyn_sat::{is_valid_implication, Formula};
use rbsyn_trace::Phase;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A merge tuple `⟨e, b, Ψ⟩` (specs by index into the problem).
#[derive(Clone, Debug)]
pub struct Tuple {
    /// Solution expression.
    pub expr: Expr,
    /// Branch condition.
    pub cond: Expr,
    /// Indices of the specs this tuple satisfies.
    pub specs: Vec<usize>,
}

/// Maps branch conditions to SAT formulas: each distinct atomic condition
/// becomes a fresh boolean variable; `!` and `∨` map to the connectives
/// (§3.3 "Checking Implication").
#[derive(Default)]
pub struct CondEncoder {
    atoms: HashMap<String, u32>,
}

impl CondEncoder {
    /// Encodes a condition expression.
    pub fn encode(&mut self, e: &Expr) -> Formula {
        match e {
            Expr::Lit(Value::Bool(true)) => Formula::True,
            Expr::Lit(Value::Bool(false)) => Formula::False,
            Expr::Not(b) => Formula::not(self.encode(b)),
            Expr::Or(a, b) => Formula::or(self.encode(a), self.encode(b)),
            atom => {
                let key = atom.compact();
                let next = self.atoms.len() as u32;
                let id = *self.atoms.entry(key).or_insert(next);
                Formula::Var(id)
            }
        }
    }

    /// `b₁ ⇒ b₂` on the boolean skeleton.
    pub fn implies(&mut self, b1: &Expr, b2: &Expr) -> bool {
        let (f1, f2) = (self.encode(b1), self.encode(b2));
        is_valid_implication(&f1, &f2)
    }

    /// `b₁ ⇔ b₂`.
    pub fn equiv(&mut self, b1: &Expr, b2: &Expr) -> bool {
        self.implies(b1, b2) && self.implies(b2, b1)
    }
}

/// A strengthening request: guard truthy on `pos` specs, falsy on `neg`.
type GuardKey = (Vec<usize>, Vec<usize>);

/// Everything the merge needs from the synthesis run.
pub struct MergeCtx<'a> {
    /// Interpreter environment (`Arc` so guard searches can run as tasks).
    pub env: &'a Arc<InterpEnv>,
    /// Method name, pre-interned once per problem.
    pub name: Symbol,
    /// Method parameters.
    pub params: &'a [(Symbol, Ty)],
    /// All specs of the problem.
    pub specs: &'a [Spec],
    /// The prepared per-spec oracles (index-aligned with `specs`), shared
    /// with phase 1 so merged-program validation reuses memoized verdicts.
    pub spec_oracles: &'a [Arc<SpecOracle>],
    /// Options (guard bounds).
    pub opts: &'a Options,
    /// Deadline, cache handle and task dispatch for every guard search.
    pub sched: &'a Scheduler,
    /// Shared search counters.
    pub stats: &'a mut SearchStats,
    /// Wall-clock spent inside guard covering — the merge half of the
    /// per-phase timing report.
    pub guard_time: Duration,
    /// Conditionals synthesized so far (negation-reuse pool, §4).
    pub known_conds: Vec<Expr>,
    /// The problem-wide guard-covering pool (shared enumeration +
    /// bitvectors; see [`crate::guards::GuardPool`]).
    pub guards: GuardPool,
}

/// How many oracle-passing guards to keep per strengthening request.
const GUARDS_PER_REQUEST: usize = 5;
/// How many guard-choice combinations to try per `⊕` order.
const ATTEMPTS_PER_ORDER: usize = 64;

impl<'a> MergeCtx<'a> {
    fn program(&self, body: Expr) -> Program {
        Program::from_parts(
            self.name,
            self.params.iter().map(|(n, _)| *n).collect(),
            body,
        )
    }

    /// The pool query for this merge — a bundle of the context's borrowed
    /// fields with the *context's* lifetime (not `&self`'s), so pool calls
    /// can borrow `self.guards` and `self.stats` disjointly.
    fn guard_query(&self) -> GuardQuery<'a> {
        GuardQuery {
            env: self.env,
            name: self.name,
            params: self.params,
            specs: self.specs,
            opts: self.opts,
            sched: self.sched,
        }
    }

    /// Does `body` pass every spec of the problem? Verdicts go through the
    /// oracle memo (keyed by the per-spec tokens shared with phase 1), so
    /// backtracking attempts that rebuild the same body cost one lookup per
    /// spec.
    fn passes_all_specs(&mut self, body: &Expr) -> bool {
        let p = self.program(body.clone());
        let started = Instant::now();
        let valid = match self.sched.cache().cloned() {
            Some(h) => {
                let id = h.intern(body.clone());
                self.spec_oracles.iter().all(|o| {
                    h.oracle_verdict(o.token(), id, self.stats, || o.test(self.env, &p))
                        .success
                })
            }
            None => self
                .spec_oracles
                .iter()
                .all(|o| o.test(self.env, &p).success),
        };
        self.stats.eval_nanos = self
            .stats
            .eval_nanos
            .saturating_add(started.elapsed().as_nanos() as u64);
        valid
    }

    /// The quick guard candidates for a request that actually pass it:
    /// constants, `extra` (typically the negation of the partner guard,
    /// §4), and known conditionals with their negations — each decided by
    /// the pool's bitvectors, so backtracking re-checks are word ops.
    fn quick_passers(&mut self, key: &GuardKey, extra: &[Expr]) -> Vec<Expr> {
        let mut out: Vec<Expr> = Vec::new();
        let mut quick: Vec<Expr> =
            vec![Expr::Lit(Value::Bool(true)), Expr::Lit(Value::Bool(false))];
        quick.extend(extra.iter().cloned());
        for k in &self.known_conds {
            quick.push(k.clone());
            quick.push(negate(k));
        }
        let q = self.guard_query();
        for cand in quick {
            if out.contains(&cand) {
                continue;
            }
            if self
                .guards
                .check_expr(&q, &cand, &key.0, &key.1, self.stats)
            {
                out.push(cand);
            }
        }
        out
    }

    /// The `idx`-th guard candidate for a request — quick passers first,
    /// then the pool's covering guards (lazily fetched, deduplicated
    /// against the quick ones), clamped to the last available candidate;
    /// `None` when the request has no candidate at all. Exactly the list
    /// the eager per-request materialization produced, paged on demand:
    /// a merge that validates with guard 0 never pays for alternatives.
    fn guard_pick(
        &mut self,
        key: &GuardKey,
        extra: &[Expr],
        idx: usize,
    ) -> Result<Option<Expr>, SynthError> {
        let started = Instant::now();
        let span = self.sched.trace().map(|t| t.span(Phase::Guard));
        let r = self.guard_pick_inner(key, extra, idx);
        drop(span);
        self.guard_time += started.elapsed();
        r
    }

    fn guard_pick_inner(
        &mut self,
        key: &GuardKey,
        extra: &[Expr],
        idx: usize,
    ) -> Result<Option<Expr>, SynthError> {
        let quick = self.quick_passers(key, extra);
        if idx < quick.len() {
            return Ok(Some(quick[idx].clone()));
        }
        let q = self.guard_query();
        let mut last: Option<Expr> = quick.last().cloned();
        let mut combined = quick.len();
        let mut n = 0;
        loop {
            let g = self.guards.nth_covering_guard(
                &q,
                &key.0,
                &key.1,
                n,
                GUARDS_PER_REQUEST,
                self.stats,
            )?;
            let Some(g) = g else {
                return Ok(last);
            };
            n += 1;
            if quick.contains(&g) {
                continue;
            }
            if combined == idx {
                return Ok(Some(g));
            }
            last = Some(g);
            combined += 1;
        }
    }

    /// The final combined candidate-list length for a request (quick
    /// passers plus all covering guards, deduplicated) — the odometer
    /// digit base. Materializes the request's full guard list; only the
    /// backtracking path calls this.
    fn combined_len(&mut self, key: &GuardKey, extra: &[Expr]) -> Result<usize, SynthError> {
        let started = Instant::now();
        let _span = self.sched.trace().map(|t| t.span(Phase::Guard));
        let quick = self.quick_passers(key, extra);
        let q = self.guard_query();
        let total =
            self.guards
                .covering_count(&q, &key.0, &key.1, GUARDS_PER_REQUEST, self.stats)?;
        let mut len = quick.len();
        for n in 0..total {
            let g = self
                .guards
                .nth_covering_guard(&q, &key.0, &key.1, n, GUARDS_PER_REQUEST, self.stats)?
                .expect("covering_count bounds the list");
            if !quick.contains(&g) {
                len += 1;
            }
        }
        self.guard_time += started.elapsed();
        Ok(len)
    }

    /// Advances the guard-choice odometer: increments the *first* used key
    /// (the structurally dominant pick), carrying rightward; returns
    /// `Ok(false)` when all combinations are exhausted. Digit bases come
    /// from [`MergeCtx::combined_len`], so only a failed validation pays
    /// for materializing the alternatives.
    fn bump_selector(
        &mut self,
        selector: &mut HashMap<GuardKey, usize>,
        used: &GuardUses,
    ) -> Result<bool, SynthError> {
        bump_digits(selector, used, |ctx_key, extra| {
            self.combined_len(ctx_key, extra)
        })
    }
}

/// The pure odometer step over lazily sized digits: `len_of` supplies each
/// used key's candidate-list length only when that digit is actually
/// inspected.
fn bump_digits(
    selector: &mut HashMap<GuardKey, usize>,
    used: &GuardUses,
    mut len_of: impl FnMut(&GuardKey, &[Expr]) -> Result<usize, SynthError>,
) -> Result<bool, SynthError> {
    for (key, extra) in used.iter() {
        let len = len_of(key, extra)?;
        let slot = selector.entry(key.clone()).or_insert(0);
        if *slot + 1 < len {
            *slot += 1;
            return Ok(true);
        }
        *slot = 0; // carry
    }
    Ok(false)
}

/// Algorithm 1: try every `⊕` order (and, per order, a bounded number of
/// guard choices), rewrite to fixpoint, keep the smallest merged program
/// that passes all specs.
pub fn merge_program(ctx: &mut MergeCtx<'_>, tuples: Vec<Tuple>) -> Result<Program, SynthError> {
    if tuples.is_empty() {
        return Err(SynthError::MergeFailed);
    }
    let orders = permutations(tuples.len(), 720);
    let mut best: Option<Expr> = None;
    for order in orders {
        let mut selector: HashMap<GuardKey, usize> = HashMap::new();
        'attempts: for _attempt in 0..ATTEMPTS_PER_ORDER {
            if let Some(d) = ctx.sched.deadline() {
                if Instant::now() >= d {
                    return Err(SynthError::Timeout);
                }
            }
            let chain: Vec<Tuple> = order.iter().map(|&i| tuples[i].clone()).collect();
            let (chain, used) = rewrite_chain(ctx, chain, &selector)?;
            let body = build_body(&chain, &mut CondEncoder::default());
            let valid = ctx.passes_all_specs(&body);
            if valid {
                // §4: remember the validated branch conditions. Later `⊕`
                // orders try them (and their negations) as quick
                // candidates, answered by the pool's bitvectors — which
                // turns the reversed request of an already-solved pair
                // from a deep stream scan into a word op.
                for t in &chain {
                    if matches!(t.cond, Expr::Lit(Value::Bool(_))) {
                        continue;
                    }
                    if !ctx.known_conds.contains(&t.cond) {
                        ctx.known_conds.push(t.cond.clone());
                    }
                }
                let sz = rbsyn_lang::metrics::node_count(&body);
                match &best {
                    Some(b) if rbsyn_lang::metrics::node_count(b) <= sz => {}
                    _ => best = Some(body),
                }
                break 'attempts;
            }
            // Odometer over the guard choices this attempt consumed.
            if !ctx.bump_selector(&mut selector, &used)? {
                break 'attempts;
            }
        }
    }
    match best {
        Some(body) => Ok(ctx.program(body)),
        None => Err(SynthError::MergeFailed),
    }
}

/// Guard requests a rewrite consumed, with the `extra` quick candidates in
/// effect at each request — enough to re-derive the odometer digit bases
/// lazily when (and only when) a validation fails.
type GuardUses = Vec<(GuardKey, Vec<Expr>)>;

/// Applies rules (1)–(7) until no rewrite fires (bounded for safety).
/// Returns the rewritten chain plus the guard requests it consumed for
/// the odometer.
fn rewrite_chain(
    ctx: &mut MergeCtx<'_>,
    mut chain: Vec<Tuple>,
    selector: &HashMap<GuardKey, usize>,
) -> Result<(Vec<Tuple>, GuardUses), SynthError> {
    let mut enc = CondEncoder::default();
    let mut used: GuardUses = Vec::new();
    let pick = |ctx: &mut MergeCtx<'_>,
                key: GuardKey,
                extra: &[Expr],
                used: &mut GuardUses|
     -> Result<Option<Expr>, SynthError> {
        let idx = selector.get(&key).copied().unwrap_or(0);
        let g = ctx.guard_pick(&key, extra, idx)?;
        if !used.iter().any(|(k, _)| *k == key) {
            used.push((key.clone(), extra.to_vec()));
        }
        Ok(g)
    };

    for _round in 0..24 {
        let mut changed = false;
        let mut i = 0;
        while i + 1 < chain.len() {
            let (a, b) = (chain[i].clone(), chain[i + 1].clone());
            let merged_specs = || {
                let mut s = a.specs.clone();
                s.extend(b.specs.iter().copied());
                s
            };
            if a.expr == b.expr {
                let t = if enc.implies(&a.cond, &b.cond) {
                    // Rule 1.
                    Tuple {
                        expr: a.expr.clone(),
                        cond: a.cond.clone(),
                        specs: merged_specs(),
                    }
                } else {
                    // Rule 2.
                    Tuple {
                        expr: a.expr.clone(),
                        cond: Expr::Or(Box::new(a.cond.clone()), Box::new(b.cond.clone())),
                        specs: merged_specs(),
                    }
                };
                chain.splice(i..=i + 1, [t]);
                changed = true;
                continue;
            }
            // Rules 4/5: boolean-program collapse when b1 ≡ !b2.
            let bool_pair = matches!(
                (&a.expr, &b.expr),
                (Expr::Lit(Value::Bool(true)), Expr::Lit(Value::Bool(false)))
                    | (Expr::Lit(Value::Bool(false)), Expr::Lit(Value::Bool(true)))
            );
            if bool_pair && enc.equiv(&a.cond, &negate(&b.cond)) {
                let expr = if matches!(a.expr, Expr::Lit(Value::Bool(true))) {
                    a.cond.clone() // Rule 4
                } else {
                    b.cond.clone() // Rule 5
                };
                let t = Tuple {
                    expr,
                    cond: Expr::Or(Box::new(a.cond.clone()), Box::new(b.cond.clone())),
                    specs: merged_specs(),
                };
                chain.splice(i..=i + 1, [t]);
                changed = true;
                continue;
            }
            // Rule 3: conditions do not distinguish differing solutions —
            // strengthen both via guard covering. Both halves of the pair
            // (and every backtracking re-request) are answered from the
            // problem's shared guard pool.
            if enc.implies(&a.cond, &b.cond) {
                let k1: GuardKey = (a.specs.clone(), b.specs.clone());
                let k2: GuardKey = (b.specs.clone(), a.specs.clone());
                let Some(b1) = pick(ctx, k1, &[], &mut used)? else {
                    // Timeout propagated above; no forward guard means the
                    // reverse request is never needed.
                    i += 1;
                    continue;
                };
                // Try the negation first for the reverse guard (§4).
                let extra = [negate(&b1)];
                let Some(b2) = pick(ctx, k2, &extra, &mut used)? else {
                    i += 1;
                    continue;
                };
                if chain[i].cond == b1 && chain[i + 1].cond == b2 {
                    i += 1; // already strengthened; avoid a rewrite loop
                    continue;
                }
                chain[i].cond = b1;
                chain[i + 1].cond = b2;
                changed = true;
                continue;
            }
            // Rules 6/7: guess the negation of the neighbour's condition
            // for a tuple whose own condition is still the trivial `true`
            // (enables the if/else collapse). Restricted to unstrengthened
            // tuples so Rule-3 picks are never clobbered.
            if matches!(b.cond, Expr::Lit(Value::Bool(true)))
                && !matches!(a.cond, Expr::Lit(Value::Bool(true)))
            {
                let bg = negate(&a.cond);
                if guard_holds(ctx, &bg, &b.specs) {
                    chain[i + 1].cond = bg;
                    changed = true;
                    continue;
                }
            }
            i += 1;
        }
        if !changed {
            break;
        }
    }
    Ok((chain, used))
}

/// Does `bg` evaluate truthy under every setup of the given specs?
/// Answered from the guard pool's bitvectors (a pos-only request).
fn guard_holds(ctx: &mut MergeCtx<'_>, bg: &Expr, specs: &[usize]) -> bool {
    let q = ctx.guard_query();
    ctx.guards.check_expr(&q, bg, specs, &[], ctx.stats)
}

/// Builds `if b₁ then e₁ else if b₂ then e₂ … else nil`, with the
/// Appendix A.4 simplifications: a tautological guard drops its
/// conditional, and a final branch guarded by the negation of the previous
/// condition becomes a plain `else`.
fn build_body(chain: &[Tuple], enc: &mut CondEncoder) -> Expr {
    // A tuple guarded by a tautology (e.g. the `b ∨ !b` rules 4/5 produce)
    // needs no conditional at all.
    fn is_taut(enc: &mut CondEncoder, e: &Expr) -> bool {
        matches!(e, Expr::Lit(Value::Bool(true))) || enc.implies(&Expr::Lit(Value::Bool(true)), e)
    }
    fn go(chain: &[Tuple], enc: &mut CondEncoder) -> Expr {
        match chain {
            [] => Expr::Lit(Value::Nil),
            [t] if is_taut(enc, &t.cond) => t.expr.clone(),
            [t, rest @ ..] => {
                // `if b then e else if !b then e2 else nil` → else e2.
                if let [next] = rest {
                    if next.cond == negate(&t.cond) || negate(&next.cond) == t.cond {
                        return Expr::If {
                            cond: Box::new(t.cond.clone()),
                            then: Box::new(t.expr.clone()),
                            els: Box::new(next.expr.clone()),
                        };
                    }
                }
                Expr::If {
                    cond: Box::new(t.cond.clone()),
                    then: Box::new(t.expr.clone()),
                    els: Box::new(go(rest, enc)),
                }
            }
        }
    }
    go(chain, enc)
}

/// Deterministic permutations of `0..n`, capped.
fn permutations(n: usize, cap: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut cur: Vec<usize> = Vec::new();
    let mut used = vec![false; n];
    fn go(
        n: usize,
        cap: usize,
        cur: &mut Vec<usize>,
        used: &mut Vec<bool>,
        out: &mut Vec<Vec<usize>>,
    ) {
        if out.len() >= cap {
            return;
        }
        if cur.len() == n {
            out.push(cur.clone());
            return;
        }
        for i in 0..n {
            if !used[i] {
                used[i] = true;
                cur.push(i);
                go(n, cap, cur, used, out);
                cur.pop();
                used[i] = false;
            }
        }
    }
    go(n, cap, &mut cur, &mut used, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbsyn_lang::builder::*;

    #[test]
    fn encoder_maps_atoms_consistently() {
        let mut enc = CondEncoder::default();
        let b = call(var("Post"), "exists?", []);
        assert!(enc.implies(&b, &b));
        assert!(enc.implies(&b, &or(b.clone(), var("other"))));
        assert!(!enc.implies(&b, &var("other")));
        assert!(enc.equiv(&not(not(b.clone())), &b));
        assert!(enc.implies(&false_(), &b));
        assert!(enc.implies(&b, &true_()));
    }

    #[test]
    fn permutations_are_capped_and_deterministic() {
        assert_eq!(permutations(3, 720).len(), 6);
        assert_eq!(permutations(1, 720), vec![vec![0]]);
        assert_eq!(permutations(7, 720).len(), 720);
        assert_eq!(permutations(3, 720)[0], vec![0, 1, 2]);
    }

    #[test]
    fn build_body_shapes() {
        let mut enc = CondEncoder::default();
        let t1 = Tuple {
            expr: int(1),
            cond: true_(),
            specs: vec![0],
        };
        assert_eq!(
            build_body(std::slice::from_ref(&t1), &mut enc).compact(),
            "1"
        );
        let b = var("b");
        let t2 = Tuple {
            expr: int(1),
            cond: b.clone(),
            specs: vec![0],
        };
        let t3 = Tuple {
            expr: int(2),
            cond: not(b.clone()),
            specs: vec![1],
        };
        // Negated pair collapses to if/else.
        assert_eq!(
            build_body(&[t2.clone(), t3], &mut enc).compact(),
            "if b then 1 else 2 end"
        );
        // Non-negated tail keeps the else-if chain with nil default.
        let t4 = Tuple {
            expr: int(2),
            cond: var("c"),
            specs: vec![1],
        };
        assert_eq!(
            build_body(&[t2, t4], &mut enc).compact(),
            "if b then 1 else if c then 2 else nil end end"
        );
    }

    #[test]
    fn tautological_guards_drop_the_conditional() {
        let mut enc = CondEncoder::default();
        let t = Tuple {
            expr: var("e"),
            cond: or(var("b"), not(var("b"))),
            specs: vec![0, 1],
        };
        assert_eq!(build_body(&[t], &mut enc).compact(), "e");
    }

    #[test]
    fn odometer_carries_and_terminates() {
        let k1: GuardKey = (vec![0], vec![1]);
        let k2: GuardKey = (vec![1], vec![0]);
        let used: GuardUses = vec![(k1.clone(), vec![]), (k2.clone(), vec![])];
        let mut sel = HashMap::new();
        let mut queried = 0usize;
        let mut bump = |sel: &mut HashMap<GuardKey, usize>| {
            bump_digits(sel, &used, |_, _| {
                queried += 1;
                Ok(2)
            })
            .unwrap()
        };
        // 2×2 grid: 3 bumps then exhaustion; the first key varies fastest.
        assert!(bump(&mut sel));
        assert_eq!(sel[&k1], 1);
        assert!(bump(&mut sel));
        assert_eq!((sel[&k1], sel[&k2]), (0, 1));
        assert!(bump(&mut sel));
        assert_eq!((sel[&k1], sel[&k2]), (1, 1));
        assert!(!bump(&mut sel));
        assert!(queried >= 4, "digit bases are supplied lazily per bump");
    }
}
