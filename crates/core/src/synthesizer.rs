//! The top-level synthesis pipeline: per-spec solutions (with the §4
//! solution-reuse optimization), then merging.
//!
//! Both phases share one [`SearchCache`]: spec 2's search replays spec 1's
//! expansion and type-check work from the memo, and the merge re-validates
//! candidate bodies against per-spec oracles through the same verdict
//! tables. By default each [`Synthesizer`] owns a private cache; the batch
//! driver shares one across jobs via [`Synthesizer::with_cache`], and
//! [`Options::cache`]` = false` disables memoization entirely.
//!
//! **Intra-problem parallelism** (`Options::intra_parallelism` > 1): the
//! per-spec searches of phase 1 are dispatched *speculatively* as
//! concurrent tasks on the shared [`Executor`], then joined in spec order
//! under exactly the sequential solution-reuse protocol — a spec served by
//! reuse cancels its speculative search and discards its counters, so
//! synthesized programs and effort counters are byte-identical to the
//! sequential pipeline at any width (the merge applies the same discipline
//! to guard searches; see [`crate::merge`]).

use crate::cache::{CacheHandle, SearchCache};
use crate::engine::{Executor, Scheduler, SearchStats, TaskHandle, Watchdog};
use crate::error::SynthError;
use crate::generate::{generate, GenerateOutcome, Oracle, SpecOracle};
use crate::goal::SynthesisProblem;
use crate::merge::{merge_program, MergeCtx, Tuple};
use crate::options::Options;
use rbsyn_interp::InterpEnv;
use rbsyn_lang::builder::true_;
use rbsyn_lang::metrics::{program_paths, program_size};
use rbsyn_lang::{Program, Symbol};
use rbsyn_trace::{Mark, Phase, Session};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Search-effort and outcome statistics for one synthesis run.
#[derive(Clone, Copy, Debug, Default)]
pub struct SynthStats {
    /// Work-list counters, accumulated over every `generate` call.
    pub search: SearchStats,
    /// Wall-clock time.
    pub elapsed: Duration,
    /// Wall-clock spent in phase-1 per-spec searches (sum over adopted
    /// searches; speculative work that was discarded is not counted).
    pub generate_time: Duration,
    /// Wall-clock spent in merge-time guard searches.
    pub guard_time: Duration,
    /// Wall-clock spent merging per-spec solutions (Algorithm 1 rewrite
    /// rounds, odometer backtracking, merged-program validation) — the
    /// merge call's wall-clock *minus* [`guard_time`](Self::guard_time),
    /// so the generate/guard/merge phases stay additive.
    pub merge_time: Duration,
    /// AST node count of the solution (Table 1 "Meth Size").
    pub solution_size: usize,
    /// Control-flow paths through the solution (Table 1 "# Syn Paths").
    pub solution_paths: usize,
    /// Number of per-spec solution expressions before merging.
    pub tuples: usize,
}

/// A successful synthesis: the program plus statistics.
#[derive(Clone, Debug)]
pub struct SynthResult {
    /// The synthesized method.
    pub program: Program,
    /// Run statistics.
    pub stats: SynthStats,
}

/// What a speculative per-spec search task returns: the search outcome,
/// its task-local counters, and its wall-clock cost.
type SpecSearchResult = (GenerateOutcome, SearchStats, Duration);

/// Drives the full pipeline for one [`SynthesisProblem`].
///
/// # Example
///
/// ```
/// use rbsyn_core::{Options, SynthesisProblem, Synthesizer};
/// use rbsyn_interp::{SetupStep, Spec};
/// use rbsyn_lang::builder::*;
/// use rbsyn_lang::Ty;
/// use rbsyn_stdlib::EnvBuilder;
///
/// let env = EnvBuilder::with_stdlib().finish();
/// // Goal: def m() returning a Bool; one spec demanding `m() == false`.
/// let problem = SynthesisProblem::builder("m")
///     .returns(Ty::Bool)
///     .base_consts()
///     .spec(Spec::new(
///         "returns false",
///         vec![SetupStep::CallTarget { bind: "xr".into(), args: vec![] }],
///         vec![call(var("xr"), "==", [false_()])],
///     ))
///     .build();
/// let result = Synthesizer::new(env, problem, Options::default()).run().unwrap();
/// assert_eq!(result.program.body.compact(), "false");
/// ```
pub struct Synthesizer {
    env: InterpEnv,
    problem: SynthesisProblem,
    opts: Options,
    cache: Arc<SearchCache>,
    executor: Option<Arc<Executor>>,
    tracer: Option<Session>,
}

impl Synthesizer {
    /// Configures a run with a private [`SearchCache`] (see
    /// [`Synthesizer::with_cache`] for sharing one across runs).
    pub fn new(env: InterpEnv, problem: SynthesisProblem, opts: Options) -> Synthesizer {
        Synthesizer::with_cache(env, problem, opts, Arc::new(SearchCache::new()))
    }

    /// Configures a run against a shared [`SearchCache`] (the batch driver
    /// passes one cache to every job). The shared cache carries the
    /// library-template memo across runs; candidate-level memos live in a
    /// run-scoped cache so their memory is reclaimed per run.
    ///
    /// The environment's class table is reset *symmetrically* from this
    /// run's configuration: the effect precision comes from `opts` and the
    /// constant set `Σ` is cleared and rebuilt from `problem.consts`, so a
    /// reused or cloned environment can never leak the previous problem's
    /// precision or constants into this run. The cache needs no such reset
    /// — its entries are keyed by a content fingerprint of the configured
    /// table, so stale entries are simply unreachable.
    pub fn with_cache(
        mut env: InterpEnv,
        problem: SynthesisProblem,
        opts: Options,
        cache: Arc<SearchCache>,
    ) -> Synthesizer {
        env.table.set_precision(opts.precision);
        env.table.clear_consts();
        for c in &problem.consts {
            env.table.add_const(c.clone());
        }
        Synthesizer {
            env,
            problem,
            opts,
            cache,
            executor: None,
            tracer: None,
        }
    }

    /// Attaches a shared [`Executor`] for intra-problem task dispatch (the
    /// batch driver passes its pool so inter- and intra-problem work share
    /// one set of threads). Without this, a run whose
    /// [`Options::intra_parallelism`] exceeds 1 provisions a private pool
    /// of background workers for its own duration.
    pub fn with_executor(mut self, executor: Arc<Executor>) -> Synthesizer {
        self.executor = Some(executor);
        self
    }

    /// Attaches an externally owned tracing [`Session`] so the caller can
    /// export the recorded events after the run (`solve --trace` does
    /// this, then writes the Chrome JSON). Without it, a run whose
    /// [`Options::trace`] is set records into a private session that is
    /// discarded — same engine behaviour, no export.
    pub fn with_tracer(mut self, tracer: Session) -> Synthesizer {
        self.tracer = Some(tracer);
        self
    }

    /// Read access to the configured environment (tests, harnesses).
    pub fn env(&self) -> &InterpEnv {
        &self.env
    }

    /// Runs synthesis to completion.
    ///
    /// # Errors
    ///
    /// [`SynthError::Timeout`] when the deadline passes,
    /// [`SynthError::NoSolution`] when a spec cannot be solved within the
    /// search bounds, [`SynthError::MergeFailed`] when no branch merge
    /// passes every spec.
    pub fn run(self) -> Result<SynthResult, SynthError> {
        let Synthesizer {
            mut env,
            problem,
            opts,
            cache,
            executor,
            tracer,
        } = self;
        problem.validate()?;
        // Hard-cancellation backstop for runs stuck past the cooperative
        // deadline (see [`Watchdog`]). Held for the whole run; dropping it
        // on any exit path disarms the timer.
        let watchdog = match (opts.timeout, opts.watchdog_grace) {
            (Some(budget), Some(grace)) => Some(Watchdog::arm(budget, grace)),
            _ => None,
        };
        if let Some(dog) = &watchdog {
            env.set_interrupt(dog.kill_flag());
        }
        let env = Arc::new(env);
        let start = Instant::now();
        let deadline = opts.timeout.map(|t| start + t);
        let mut stats = SynthStats::default();

        // `Options::trace` is the switch; an externally attached session
        // (the CLI's, so it can export afterwards) takes precedence over
        // the private one a bare `Options::trace` provisions.
        let tracer: Option<Session> = tracer.or_else(|| opts.trace.clone().map(Session::new));
        let _solve_span = tracer.as_ref().map(|t| t.span(Phase::Solve));

        // The memoization handle shared by every phase of this run: a
        // run-scoped candidate cache (reclaimed when this run ends) plus
        // the template cache passed in at construction (shared with
        // sibling batch jobs). `--no-cache` drops the handle: each search
        // call below then runs with its own throwaway cache, reproducing
        // the uncached search.
        let search: Option<CacheHandle> = opts.cache.then(|| {
            CacheHandle::bind(
                Arc::new(SearchCache::new()),
                Arc::clone(&cache),
                &env.table,
                &opts,
            )
        });

        // Task dispatch: reuse the batch driver's pool when one was
        // attached, otherwise provision private background workers for the
        // requested width (the joining thread is the final worker).
        let width = opts.intra_parallelism.max(1);
        let exec = if width > 1 {
            Some(executor.unwrap_or_else(|| Executor::with_workers(width - 1)))
        } else {
            None
        };
        let mut sched = Scheduler::new(deadline, search)
            .with_executor(exec, width)
            .with_trace(tracer.clone());
        if let Some(dog) = &watchdog {
            sched = sched.with_kill(dog.kill_flag());
        }
        let sched = sched;

        // One prepared oracle per spec, shared by the per-spec searches,
        // the solution-reuse check, and merged-program validation.
        let spec_oracles: Vec<Arc<SpecOracle>> = problem
            .specs
            .iter()
            .map(|s| Arc::new(SpecOracle::new(&env, s)))
            .collect();

        // Speculative dispatch: start every spec's search now; the join
        // loop below adopts or discards each in spec order.
        let mut spec_tasks: Vec<Option<TaskHandle<SpecSearchResult>>> =
            match (sched.executor(), problem.specs.len()) {
                (Some(executor), n) if n > 1 => (0..n)
                    .map(|i| {
                        let cancel = Arc::new(AtomicBool::new(false));
                        let task_sched = sched.for_task(Arc::clone(&cancel));
                        let env = Arc::clone(&env);
                        let oracle = Arc::clone(&spec_oracles[i]);
                        let name = problem.name.clone();
                        let params = problem.params.clone();
                        let goal = problem.ret.clone();
                        let opts = opts.clone();
                        Some(executor.spawn_cancellable(cancel, move || {
                            // The span lands on the executor thread's
                            // track; detail = the search's goal type.
                            let _sp = task_sched
                                .trace()
                                .map(|t| t.span_with(Phase::SpecSearch, Some(goal.to_string())));
                            let started = Instant::now();
                            let mut st = SearchStats::default();
                            let r = generate(
                                &env,
                                &name,
                                &params,
                                &goal,
                                &*oracle,
                                &opts,
                                opts.max_size,
                                &task_sched,
                                &mut st,
                            );
                            (r, st, started.elapsed())
                        }))
                    })
                    .collect(),
                _ => problem.specs.iter().map(|_| None).collect(),
            };

        // Phase 1: a solution expression per spec, reusing existing
        // solutions when they already pass (§4: "when confronted with a new
        // spec, RbSyn first tries existing solutions").
        let mut tuples: Vec<Tuple> = Vec::new();
        let name_sym = Symbol::intern(&problem.name);
        let param_syms: Vec<Symbol> = problem.params.iter().map(|(n, _)| *n).collect();
        for (i, spec) in problem.specs.iter().enumerate() {
            let oracle = &spec_oracles[i];
            let reuse_started = Instant::now();
            let reuse_span = tracer.as_ref().map(|t| t.span(Phase::Eval));
            let reused = tuples.iter_mut().find(|t| {
                let p = Program::from_parts(name_sym, param_syms.clone(), t.expr.clone());
                match sched.cache() {
                    Some(h) => {
                        let id = h.intern(t.expr.clone());
                        h.oracle_verdict(oracle.token(), id, &mut stats.search, || {
                            oracle.test(&env, &p)
                        })
                        .success
                    }
                    None => oracle.test(&env, &p).success,
                }
            });
            drop(reuse_span);
            stats.search.eval_nanos = stats
                .search
                .eval_nanos
                .saturating_add(reuse_started.elapsed().as_nanos() as u64);
            if let Some(t) = reused {
                // §4 solution reuse is the run-level memo hit.
                if let Some(tr) = &tracer {
                    tr.mark(Mark::CacheHit);
                }
                t.specs.push(i);
                // The speculative search's result is not needed; discard
                // it (and its counters) so the run matches the sequential
                // pipeline, which never searches a reused spec.
                if let Some(task) = spec_tasks[i].take() {
                    task.cancel();
                }
                continue;
            }
            let outcome = match spec_tasks[i].take() {
                Some(task) => match task.join() {
                    Ok((r, st, elapsed)) => {
                        stats.search.absorb(&st);
                        stats.generate_time += elapsed;
                        r
                    }
                    // A panic inside a speculative search is contained
                    // here instead of re-raised: the job fails with
                    // `Internal` (exit 1) and sibling jobs keep running.
                    Err(panic) => Err(SynthError::from_panic(&*panic)),
                },
                None => {
                    let _sp = tracer
                        .as_ref()
                        .map(|t| t.span_with(Phase::Generate, Some(problem.ret.to_string())));
                    let started = Instant::now();
                    let r = generate(
                        &env,
                        &problem.name,
                        &problem.params,
                        &problem.ret,
                        &**oracle,
                        &opts,
                        opts.max_size,
                        &sched,
                        &mut stats.search,
                    );
                    stats.generate_time += started.elapsed();
                    r
                }
            };
            if let Some(t) = &tracer {
                t.counter("search-stats", &stats.search.counter_sample());
            }
            let expr = outcome.map_err(|e| match e {
                SynthError::NoSolution { .. } => SynthError::NoSolution {
                    spec: spec.name.clone(),
                },
                other => other,
            })?;
            tuples.push(Tuple {
                expr,
                cond: true_(),
                specs: vec![i],
            });
        }
        drop(spec_tasks); // any still-pending handles cancel on drop
        stats.tuples = tuples.len();

        // Phase 2: merge into a single branching program (Algorithm 1).
        let mut ctx = MergeCtx {
            env: &env,
            name: name_sym,
            params: &problem.params,
            specs: &problem.specs,
            spec_oracles: &spec_oracles,
            opts: &opts,
            sched: &sched,
            stats: &mut stats.search,
            guard_time: Duration::ZERO,
            known_conds: Vec::new(),
            guards: crate::guards::GuardPool::new(),
        };
        let merge_started = Instant::now();
        let merge_span = tracer.as_ref().map(|t| t.span(Phase::Merge));
        let program = merge_program(&mut ctx, tuples)?;
        drop(merge_span);
        stats.guard_time = ctx.guard_time;
        // Guard covering runs *inside* the merge call; subtracting it
        // keeps the generate/guard/merge report additive.
        stats.merge_time = merge_started.elapsed().saturating_sub(ctx.guard_time);

        stats.elapsed = start.elapsed();
        stats.solution_size = program_size(&program);
        stats.solution_paths = program_paths(&program);
        if let Some(t) = &tracer {
            // Final counter sample, the contention registry (all-zero and
            // skipped unless the `contention` feature is on), and the
            // synthetic per-phase totals track — the guarantee that every
            // phase appears as a span even when live sampling saw none of
            // its work.
            t.counter("search-stats", &stats.search.counter_sample());
            if rbsyn_lang::contention::enabled() {
                let sites = rbsyn_lang::contention::snapshot();
                let waits: Vec<(&'static str, u64)> =
                    sites.iter().map(|s| (s.name, s.wait_nanos)).collect();
                t.counter("lock-wait-nanos", &waits);
            }
            t.phase_totals(
                "phase-totals",
                &[
                    (Phase::Generate, stats.generate_time.as_nanos() as u64),
                    (Phase::Guard, stats.guard_time.as_nanos() as u64),
                    (Phase::Merge, stats.merge_time.as_nanos() as u64),
                    (Phase::Eval, stats.search.eval_nanos),
                ],
            );
        }
        Ok(SynthResult { program, stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbsyn_interp::SetupStep;
    use rbsyn_lang::builder::*;
    use rbsyn_lang::{Ty, Value};
    use rbsyn_stdlib::EnvBuilder;

    fn blog_env() -> (InterpEnv, rbsyn_lang::ClassId) {
        let mut b = EnvBuilder::with_stdlib();
        let post = b.define_model(
            "Post",
            &[("author", Ty::Str), ("title", Ty::Str), ("slug", Ty::Str)],
        );
        (b.finish(), post)
    }

    #[test]
    fn single_spec_single_solution() {
        let (env, _) = blog_env();
        let problem = SynthesisProblem::builder("m")
            .returns(Ty::Bool)
            .base_consts()
            .spec(rbsyn_interp::Spec::new(
                "returns false",
                vec![SetupStep::CallTarget {
                    bind: "xr".into(),
                    args: vec![],
                }],
                vec![call(var("xr"), "==", [false_()])],
            ))
            .build();
        let out = Synthesizer::new(env, problem, Options::default())
            .run()
            .unwrap();
        assert_eq!(out.program.body.compact(), "false");
        assert_eq!(out.stats.solution_paths, 1);
        assert_eq!(out.stats.tuples, 1);
    }

    #[test]
    fn solution_reuse_collapses_specs() {
        let (env, _) = blog_env();
        // Two specs satisfied by the same constant program.
        let mk = |name: &str| {
            rbsyn_interp::Spec::new(
                name,
                vec![SetupStep::CallTarget {
                    bind: "xr".into(),
                    args: vec![],
                }],
                vec![call(var("xr"), "==", [int(1)])],
            )
        };
        let problem = SynthesisProblem::builder("m")
            .returns(Ty::Int)
            .base_consts()
            .spec(mk("a"))
            .spec(mk("b"))
            .build();
        let out = Synthesizer::new(env, problem, Options::default())
            .run()
            .unwrap();
        assert_eq!(out.program.body.compact(), "1");
        assert_eq!(out.stats.tuples, 1, "second spec reused the first solution");
    }

    #[test]
    fn branching_solutions_get_merged_conditions() {
        let (env, post) = blog_env();
        // Spec 1: DB has a post by "alice" → return true.
        // Spec 2: DB empty → return false.
        let seeded = rbsyn_interp::Spec::new(
            "seeded returns true",
            vec![
                SetupStep::Exec(call(
                    cls(post),
                    "create",
                    [hash([("author", str_("alice"))])],
                )),
                SetupStep::CallTarget {
                    bind: "xr".into(),
                    args: vec![],
                },
            ],
            vec![call(var("xr"), "==", [true_()])],
        );
        let empty = rbsyn_interp::Spec::new(
            "empty returns false",
            vec![SetupStep::CallTarget {
                bind: "xr".into(),
                args: vec![],
            }],
            vec![call(var("xr"), "==", [false_()])],
        );
        let problem = SynthesisProblem::builder("m")
            .returns(Ty::Bool)
            .base_consts()
            .constant(Value::Class(post))
            .spec(seeded)
            .spec(empty)
            .build();
        let out = Synthesizer::new(env, problem, Options::default())
            .run()
            .unwrap();
        // The merged program must be a single boolean expression or a
        // conditional; either way it passes both specs and mentions the
        // Post table.
        let s = out.program.body.compact();
        assert!(s.contains("Post."), "expected a Post query in {s}");
    }

    #[test]
    fn intra_parallel_run_matches_sequential() {
        // The same two-spec merge problem, run sequentially and at width 4
        // on a self-provisioned pool: programs and effort counters must be
        // identical (the engine determinism contract).
        let build = || {
            let (env, post) = blog_env();
            let seeded = rbsyn_interp::Spec::new(
                "seeded returns true",
                vec![
                    SetupStep::Exec(call(
                        cls(post),
                        "create",
                        [hash([("author", str_("alice"))])],
                    )),
                    SetupStep::CallTarget {
                        bind: "xr".into(),
                        args: vec![],
                    },
                ],
                vec![call(var("xr"), "==", [true_()])],
            );
            let empty = rbsyn_interp::Spec::new(
                "empty returns false",
                vec![SetupStep::CallTarget {
                    bind: "xr".into(),
                    args: vec![],
                }],
                vec![call(var("xr"), "==", [false_()])],
            );
            let problem = SynthesisProblem::builder("m")
                .returns(Ty::Bool)
                .base_consts()
                .constant(Value::Class(post))
                .spec(seeded)
                .spec(empty)
                .build();
            (env, problem)
        };
        let run = |intra: usize| {
            let (env, problem) = build();
            let opts = Options {
                intra_parallelism: intra,
                ..Options::default()
            };
            Synthesizer::new(env, problem, opts).run().unwrap()
        };
        let seq = run(1);
        let par = run(4);
        assert_eq!(
            seq.program.to_string(),
            par.program.to_string(),
            "programs must be byte-identical across intra widths"
        );
        assert_eq!(seq.stats.search.effort(), par.stats.search.effort());
        assert_eq!(seq.stats.tuples, par.stats.tuples);
    }

    #[test]
    fn timeout_surfaces() {
        let (env, _) = blog_env();
        let problem = SynthesisProblem::builder("m")
            .returns(Ty::Bool)
            .spec(rbsyn_interp::Spec::new(
                "unsatisfiable",
                vec![SetupStep::CallTarget {
                    bind: "xr".into(),
                    args: vec![],
                }],
                vec![false_()],
            ))
            .build();
        let opts = Options {
            timeout: Some(Duration::from_millis(30)),
            ..Options::default()
        };
        let r = Synthesizer::new(env, problem, opts).run();
        assert!(matches!(
            r,
            Err(SynthError::Timeout) | Err(SynthError::NoSolution { .. })
        ));
    }
}
