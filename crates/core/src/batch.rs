//! Parallel batch synthesis: run many independent synthesis problems
//! concurrently with per-problem deadlines and deterministic result
//! ordering.
//!
//! Per-spec search is embarrassingly parallel across *problems*: every job
//! builds its own environment (class table + fresh world), so jobs share no
//! mutable state — except one [`SearchCache`], which is deliberately
//! shared: the library-template memo is keyed by a content fingerprint of
//! each job's environment, so jobs over identical libraries reuse each
//! other's enumeration work while differing jobs cannot observe one
//! another, and every cached value is a pure function of its key, so
//! sharing never changes any job's result. (Candidate-level memos stay
//! run-scoped inside each job — see [`crate::cache::CacheHandle`] — so
//! batch memory stays bounded by the largest single job.)
//!
//! Since PR 3 the driver's threads and each job's *intra*-problem tasks
//! share one [`Executor`] pool:
//!
//! * the pool holds `max(threads, max intra_parallelism)` scoped threads;
//!   the first `threads` of them claim whole jobs from an atomic cursor
//!   (work-stealing across skewed job costs, exactly as before), while the
//!   rest — and every job thread once the cursor runs dry — serve queued
//!   intra-problem tasks via [`Executor::drive`] (each running search may
//!   additionally borrow in-search speculation workers from a process-wide
//!   core-sized budget; see [`crate::engine::SpeculationPool`]);
//! * results land in a slot indexed by submission order, and each job's
//!   intra tasks follow the engine's speculative-join protocol, so the
//!   output is **byte-identical** no matter the thread count or the
//!   `--intra` width;
//! * a panicking job is caught and reported as that job's failure
//!   ([`SynthError::Internal`], exit code 1); it never poisons its
//!   siblings. Containment is layered: the job body is wrapped in
//!   `catch_unwind` inside [`BatchJob::run_on`], the whole claim/run/store
//!   iteration of each scoped worker is wrapped again (so even a panic in
//!   the driver's own bookkeeping converts to a per-job failure), and the
//!   final slot collection recovers poisoned locks and backfills missing
//!   outcomes instead of aborting the process;
//! * each job's deadline comes from its own [`Options::timeout`], so one
//!   problem exhausting its budget cannot starve another;
//! * a [`BatchPolicy::global_deadline`] adds whole-batch admission
//!   control: before a job starts, the projected completion time of the
//!   remaining queue (median completed-job duration × remaining depth,
//!   divided across the job-runner threads) is checked against the
//!   remaining budget, and jobs that cannot fit are *shed* —
//!   [`SynthError::Shed`], exit code 6 — instead of started, so an
//!   overloaded batch degrades predictably rather than blowing through
//!   its budget.
//!
//! The experiment harness (`rbsyn-bench`) layers Table 1 / suite reporting
//! on top of this; the driver itself is suite-agnostic.

use crate::cache::SearchCache;
use crate::engine::Executor;
use crate::error::SynthError;
use crate::goal::SynthesisProblem;
use crate::options::Options;
use crate::synthesizer::{SynthResult, Synthesizer};
use rbsyn_interp::InterpEnv;
use rbsyn_lang::contention::{self, LockSite};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Builds a fresh environment + problem for one job. Called once per run,
/// on the worker thread that claimed the job.
pub type JobBuilder = Box<dyn Fn() -> (InterpEnv, SynthesisProblem) + Send + Sync>;

/// One independent synthesis task in a batch.
pub struct BatchJob {
    /// Stable identifier (benchmark id, ticket id, …) used in reports.
    pub id: String,
    /// Environment + problem factory; must not capture shared mutable
    /// state.
    pub build: JobBuilder,
    /// Per-job options; `options.timeout` is this job's private deadline
    /// and `options.intra_parallelism` its task width on the shared pool.
    pub options: Options,
}

impl BatchJob {
    /// Convenience constructor.
    pub fn new(
        id: impl Into<String>,
        build: impl Fn() -> (InterpEnv, SynthesisProblem) + Send + Sync + 'static,
        options: Options,
    ) -> BatchJob {
        BatchJob {
            id: id.into(),
            build: Box::new(build),
            options,
        }
    }

    /// Runs this job once on the current thread with a private cache.
    pub fn run(&self) -> BatchOutcome {
        self.run_shared(&Arc::new(SearchCache::new()))
    }

    /// Runs this job once on the current thread against a shared
    /// [`SearchCache`].
    pub fn run_shared(&self, cache: &Arc<SearchCache>) -> BatchOutcome {
        self.run_on(cache, None)
    }

    /// Runs this job against a shared cache, dispatching its intra-problem
    /// tasks (if `options.intra_parallelism` > 1) to the given executor —
    /// what [`run_batch`] does for every job.
    pub fn run_on(
        &self,
        cache: &Arc<SearchCache>,
        executor: Option<&Arc<Executor>>,
    ) -> BatchOutcome {
        let started = Instant::now();
        let result = catch_unwind(AssertUnwindSafe(|| {
            rbsyn_lang::failpoint::hit("batch::claim");
            let (env, problem) = (self.build)();
            let mut synth =
                Synthesizer::with_cache(env, problem, self.options.clone(), Arc::clone(cache));
            if let Some(exec) = executor {
                synth = synth.with_executor(Arc::clone(exec));
            }
            synth.run()
        }))
        .unwrap_or_else(|panic| Err(SynthError::from_panic(&*panic)));
        BatchOutcome {
            id: self.id.clone(),
            result,
            elapsed: started.elapsed(),
        }
    }
}

/// Batch-wide execution policy: everything [`run_batch_with`] applies on
/// top of the per-job [`Options`].
#[derive(Clone, Default)]
pub struct BatchPolicy {
    /// Whole-batch wall-clock budget for admission control. Before a job
    /// starts, its projected queue-completion time (median completed-job
    /// duration × remaining queue depth, divided across job threads) is
    /// checked against what is left of this budget; jobs that cannot fit
    /// — or that would start after the budget has already elapsed — are
    /// shed with [`SynthError::Shed`] instead of started. `None` (the
    /// default) admits everything.
    pub global_deadline: Option<Duration>,
    /// The shared cache to run against, letting callers pre-warm it from
    /// a snapshot ([`crate::snapshot`]) or inspect it afterwards. `None`
    /// (the default) provisions a fresh cache per batch.
    pub cache: Option<Arc<SearchCache>>,
}

/// The shed-or-admit gate of [`BatchPolicy::global_deadline`]. Completed
/// job durations feed the median; the mutex is plain (not a telemetry
/// site) and poison-recovering like every other lock in the pipeline.
struct AdmissionGate {
    start: Instant,
    budget: Option<Duration>,
    threads: usize,
    total: usize,
    durations: Mutex<Vec<Duration>>,
}

impl AdmissionGate {
    fn new(budget: Option<Duration>, threads: usize, total: usize) -> AdmissionGate {
        AdmissionGate {
            start: Instant::now(),
            budget,
            threads: threads.max(1),
            total,
            durations: Mutex::new(Vec::new()),
        }
    }

    /// May the job at queue position `index` start now?
    fn admit(&self, index: usize) -> bool {
        let Some(budget) = self.budget else {
            return true;
        };
        let remaining_budget = match budget.checked_sub(self.start.elapsed()) {
            Some(r) => r,
            None => return false, // budget already spent: shed
        };
        let durations = self.durations.lock().unwrap_or_else(|p| p.into_inner());
        if durations.is_empty() {
            // No evidence yet: admit, and let the first completions size
            // the median.
            return true;
        }
        let mut sorted = durations.clone();
        drop(durations);
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        // Jobs not yet finished with this one at the queue head, spread
        // across the job-runner threads (ceiling division).
        let remaining_depth = self.total.saturating_sub(index).max(1);
        let waves = remaining_depth.div_ceil(self.threads) as u32;
        median.saturating_mul(waves) <= remaining_budget
    }

    fn record(&self, elapsed: Duration) {
        self.durations
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(elapsed);
    }
}

/// Runs one admitted-or-shed job: the gate decides, then the job runs
/// through [`BatchJob::run_on`] and its duration feeds the gate's median.
fn run_gated(
    job: &BatchJob,
    index: usize,
    gate: &AdmissionGate,
    cache: &Arc<SearchCache>,
    executor: Option<&Arc<Executor>>,
) -> BatchOutcome {
    if !gate.admit(index) {
        return BatchOutcome {
            id: job.id.clone(),
            result: Err(SynthError::Shed),
            elapsed: Duration::ZERO,
        };
    }
    let outcome = job.run_on(cache, executor);
    gate.record(outcome.elapsed);
    outcome
}

/// The result of one batch job.
#[derive(Clone, Debug)]
pub struct BatchOutcome {
    /// The job's identifier.
    pub id: String,
    /// Synthesis result or failure.
    pub result: Result<SynthResult, SynthError>,
    /// Wall-clock time this job took on its worker thread.
    pub elapsed: Duration,
}

impl BatchOutcome {
    /// Did synthesis produce a program?
    pub fn solved(&self) -> bool {
        self.result.is_ok()
    }

    /// Did the job die on its own deadline?
    pub fn timed_out(&self) -> bool {
        matches!(self.result, Err(SynthError::Timeout))
    }
}

/// Aggregate statistics over a whole batch (the batch-level analogue of
/// [`crate::SynthStats`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct BatchStats {
    /// Jobs submitted.
    pub jobs: usize,
    /// Jobs that synthesized a program.
    pub solved: usize,
    /// Jobs that hit their deadline.
    pub timeouts: usize,
    /// Jobs that failed for any other reason (including contained
    /// panics).
    pub failures: usize,
    /// Jobs whose panic was contained at the job boundary
    /// ([`SynthError::Internal`]); a subset of `failures`.
    pub panics: usize,
    /// Jobs refused by the [`BatchPolicy::global_deadline`] admission
    /// gate.
    pub shed: usize,
    /// Template-memo requests the shared cache answered from its memo
    /// (diagnostics; varies with cache state by design — a snapshot-warmed
    /// cache answers everything from here).
    pub template_hits: u64,
    /// Template-memo requests the shared cache had to compute fresh
    /// (zero when a snapshot of an identical batch pre-warmed the cache).
    pub template_misses: u64,
    /// Candidates tested across all jobs (solved jobs report their search
    /// counters; failed jobs contribute nothing — their stats die with the
    /// error).
    pub tested: u64,
    /// Candidate expansions across all solved jobs.
    pub expanded: u64,
    /// Work-list pops across all solved jobs.
    pub popped: u64,
    /// Duplicate candidates dropped by the work-list dedup filter (solved
    /// jobs).
    pub deduped: u64,
    /// Frontier items pruned by observational-equivalence dedup (solved
    /// jobs).
    pub obs_pruned: u64,
    /// Guard requests answered purely from pass/fail bitvectors (solved
    /// jobs).
    pub vector_hits: u64,
    /// Guard candidates deduplicated into an already-decided semantic
    /// class of their covering request (solved jobs; zero with
    /// `--no-bdd`).
    pub guard_dedup: u64,
    /// Guard-pool BDD high-water node counts summed over solved jobs
    /// (zero with `--no-bdd`).
    pub bdd_nodes: u64,
    /// Expansion lists answered from the shared memo (solved jobs).
    pub expand_hits: u64,
    /// Type-check verdicts answered from the shared memo (solved jobs).
    pub type_hits: u64,
    /// Oracle verdicts answered from the shared memo (solved jobs).
    pub oracle_hits: u64,
    /// Phase-1 per-spec search time summed over solved jobs.
    pub generate_time: Duration,
    /// Merge-time guard search time summed over solved jobs.
    pub guard_time: Duration,
    /// Merge rewrite/validation time (guard search excluded) summed over
    /// solved jobs.
    pub merge_time: Duration,
    /// Interpreter/oracle wall time summed over solved jobs (the `eval`
    /// slice of the phase breakdown).
    pub eval_time: Duration,
    /// Wall-clock time of the whole batch.
    pub wall_clock: Duration,
    /// Sum of per-job wall-clock times — the sequential-run estimate.
    pub cpu_time: Duration,
    /// Threads in the shared pool (job runners plus task servers).
    pub threads: usize,
}

impl BatchStats {
    /// Parallel speedup: total per-job time over batch wall-clock. With one
    /// thread this is ~1.0 by construction; with N threads and enough jobs
    /// it approaches N (scheduling overhead and core contention permitting).
    pub fn speedup(&self) -> f64 {
        let wall = self.wall_clock.as_secs_f64();
        if wall <= 0.0 {
            return 1.0;
        }
        self.cpu_time.as_secs_f64() / wall
    }
}

/// Outcomes (in submission order) plus aggregate statistics.
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// One outcome per job, index-aligned with the submitted jobs.
    pub outcomes: Vec<BatchOutcome>,
    /// Aggregates.
    pub stats: BatchStats,
}

fn aggregate(
    outcomes: Vec<BatchOutcome>,
    wall: Duration,
    threads: usize,
    cache: &SearchCache,
) -> BatchReport {
    let (template_hits, template_misses) = cache.template_counters();
    let mut stats = BatchStats {
        jobs: outcomes.len(),
        wall_clock: wall,
        threads,
        template_hits,
        template_misses,
        ..BatchStats::default()
    };
    for o in &outcomes {
        stats.cpu_time += o.elapsed;
        match &o.result {
            Ok(r) => {
                stats.solved += 1;
                // Saturating folds: concurrent tasks were already absorbed
                // per job in deterministic order; the batch fold only adds
                // per-job totals.
                stats.tested = stats.tested.saturating_add(r.stats.search.tested);
                stats.expanded = stats.expanded.saturating_add(r.stats.search.expanded);
                stats.popped = stats.popped.saturating_add(r.stats.search.popped);
                stats.deduped = stats.deduped.saturating_add(r.stats.search.deduped);
                stats.obs_pruned = stats.obs_pruned.saturating_add(r.stats.search.obs_pruned);
                stats.vector_hits = stats.vector_hits.saturating_add(r.stats.search.vector_hits);
                stats.guard_dedup = stats.guard_dedup.saturating_add(r.stats.search.guard_dedup);
                stats.bdd_nodes = stats.bdd_nodes.saturating_add(r.stats.search.bdd_nodes);
                stats.expand_hits = stats.expand_hits.saturating_add(r.stats.search.expand_hits);
                stats.type_hits = stats.type_hits.saturating_add(r.stats.search.type_hits);
                stats.oracle_hits = stats.oracle_hits.saturating_add(r.stats.search.oracle_hits);
                stats.generate_time += r.stats.generate_time;
                stats.guard_time += r.stats.guard_time;
                stats.merge_time += r.stats.merge_time;
                stats.eval_time += Duration::from_nanos(r.stats.search.eval_nanos);
            }
            Err(SynthError::Timeout) => stats.timeouts += 1,
            Err(SynthError::Shed) => stats.shed += 1,
            Err(SynthError::Internal(_)) => {
                stats.failures += 1;
                stats.panics += 1;
            }
            Err(_) => stats.failures += 1,
        }
    }
    BatchReport { outcomes, stats }
}

/// Runs `jobs` on a shared pool: `threads` job runners (`0` = all
/// available cores) plus enough extra serving threads to cover the
/// largest `intra_parallelism` any job requests.
///
/// Outcomes are returned in submission order regardless of completion
/// order, and every job runs under its own [`Options::timeout`] deadline —
/// the report of a batch is a pure function of the jobs, not of the
/// machine's scheduling. All jobs share one [`SearchCache`] and one
/// [`Executor`].
///
/// # Example
///
/// ```
/// use rbsyn_core::{run_batch, BatchJob, Options, SynthesisProblem};
/// use rbsyn_interp::{SetupStep, Spec};
/// use rbsyn_lang::builder::*;
/// use rbsyn_lang::Ty;
/// use rbsyn_stdlib::EnvBuilder;
///
/// let job = |id: &str| {
///     BatchJob::new(
///         id,
///         || {
///             let env = EnvBuilder::with_stdlib().finish();
///             let problem = SynthesisProblem::builder("m")
///                 .returns(Ty::Bool)
///                 .base_consts()
///                 .spec(Spec::new(
///                     "returns false",
///                     vec![SetupStep::CallTarget { bind: "xr".into(), args: vec![] }],
///                     vec![call(var("xr"), "==", [false_()])],
///                 ))
///                 .build();
///             (env, problem)
///         },
///         Options::default(),
///     )
/// };
/// let report = run_batch(&[job("a"), job("b")], 2);
/// assert_eq!(report.stats.solved, 2);
/// assert_eq!(report.outcomes[0].id, "a"); // submission order, always
/// ```
pub fn run_batch(jobs: &[BatchJob], threads: usize) -> BatchReport {
    run_batch_with(jobs, threads, &BatchPolicy::default())
}

/// [`run_batch`] with an explicit [`BatchPolicy`]: a whole-batch
/// admission-control deadline and/or a caller-provided shared cache (the
/// snapshot-warmed path of `solve --snapshot`).
pub fn run_batch_with(jobs: &[BatchJob], threads: usize, policy: &BatchPolicy) -> BatchReport {
    let threads = match threads {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        n => n,
    }
    .min(jobs.len().max(1));
    let intra_max = jobs
        .iter()
        .map(|j| j.options.intra_parallelism.max(1))
        .max()
        .unwrap_or(1);
    let pool = threads.max(intra_max);

    // One cache for the whole batch: jobs over identical environments
    // reuse each other's memoized search work (sound and deterministic —
    // see the module docs). Jobs that opt out via `Options::cache = false`
    // simply ignore it. The policy may supply a pre-warmed cache
    // (snapshot restore) instead of a fresh one.
    let cache = policy
        .cache
        .clone()
        .unwrap_or_else(|| Arc::new(SearchCache::new()));
    let gate = AdmissionGate::new(policy.global_deadline, threads, jobs.len());

    let started = Instant::now();
    if pool <= 1 {
        // Sequential fast path: same loop, no thread machinery.
        let outcomes: Vec<BatchOutcome> = jobs
            .iter()
            .enumerate()
            .map(|(i, j)| run_gated(j, i, &gate, &cache, None))
            .collect();
        return aggregate(outcomes, started.elapsed(), 1, &cache);
    }

    // One executor for the whole batch; its serving threads are the scoped
    // threads below, so inter-problem jobs and intra-problem tasks share
    // one pool.
    let executor = Executor::new();
    let cursor = AtomicUsize::new(0);
    let jobs_done = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<BatchOutcome>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for t in 0..pool {
            let executor = &executor;
            let cursor = &cursor;
            let jobs_done = &jobs_done;
            let slots = &slots;
            let cache = &cache;
            let gate = &gate;
            scope.spawn(move || {
                // The first `threads` pool members claim whole jobs; the
                // rest go straight to serving intra-problem tasks.
                if t < threads {
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(job) = jobs.get(i) else { break };
                        // Second containment layer: `run_gated` already
                        // catches panics inside the job body, but a panic
                        // in the driver's own bookkeeping around it must
                        // also convert to a per-job failure — an unwinding
                        // scoped thread would abort the whole batch.
                        let outcome = catch_unwind(AssertUnwindSafe(|| {
                            run_gated(job, i, gate, cache, Some(executor))
                        }))
                        .unwrap_or_else(|panic| BatchOutcome {
                            id: job.id.clone(),
                            result: Err(SynthError::from_panic(&*panic)),
                            elapsed: Duration::ZERO,
                        });
                        *contention::lock(LockSite::BatchSlot, &slots[i]) = Some(outcome);
                        jobs_done.fetch_add(1, Ordering::Release);
                        executor.poke();
                    }
                }
                // Out of jobs (or a dedicated server): run queued intra
                // tasks until every job has completed.
                executor.drive(|| jobs_done.load(Ordering::Acquire) == jobs.len());
                // Worker exit: hand any traced events to their session
                // before the scoped thread disappears (no-op untraced).
                rbsyn_trace::flush_current_thread();
            });
        }
    });
    // Third containment layer: recover poisoned slot locks and backfill
    // any slot a dying worker left empty, so the batch always reports
    // exactly one outcome per job instead of aborting.
    let outcomes: Vec<BatchOutcome> = slots
        .into_iter()
        .enumerate()
        .map(|(i, s)| {
            s.into_inner()
                .unwrap_or_else(|p| p.into_inner())
                .unwrap_or_else(|| BatchOutcome {
                    id: jobs[i].id.clone(),
                    result: Err(SynthError::Internal(
                        "worker exited without filling its claimed slot".to_owned(),
                    )),
                    elapsed: Duration::ZERO,
                })
        })
        .collect();
    aggregate(outcomes, started.elapsed(), pool, &cache)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbsyn_interp::SetupStep;
    use rbsyn_lang::builder::*;
    use rbsyn_lang::Ty;
    use rbsyn_stdlib::EnvBuilder;

    fn trivial_job(id: &str, timeout: Option<Duration>) -> BatchJob {
        let opts = Options {
            timeout,
            ..Options::default()
        };
        BatchJob::new(
            id,
            || {
                let env = EnvBuilder::with_stdlib().finish();
                let problem = SynthesisProblem::builder("m")
                    .returns(Ty::Bool)
                    .base_consts()
                    .spec(rbsyn_interp::Spec::new(
                        "returns false",
                        vec![SetupStep::CallTarget {
                            bind: "xr".into(),
                            args: vec![],
                        }],
                        vec![call(var("xr"), "==", [false_()])],
                    ))
                    .build();
                (env, problem)
            },
            opts,
        )
    }

    fn impossible_job(id: &str, timeout: Duration) -> BatchJob {
        // `assert false` can never pass: the search burns its whole budget.
        let opts = Options {
            timeout: Some(timeout),
            ..Options::default()
        };
        BatchJob::new(
            id,
            || {
                let env = EnvBuilder::with_stdlib().finish();
                let problem = SynthesisProblem::builder("m")
                    .returns(Ty::Bool)
                    .base_consts()
                    .spec(rbsyn_interp::Spec::new(
                        "unsatisfiable",
                        vec![SetupStep::CallTarget {
                            bind: "xr".into(),
                            args: vec![],
                        }],
                        vec![false_()],
                    ))
                    .build();
                (env, problem)
            },
            opts,
        )
    }

    #[test]
    fn ordering_is_submission_order() {
        let jobs: Vec<BatchJob> = (0..8)
            .map(|i| trivial_job(&format!("j{i}"), None))
            .collect();
        let report = run_batch(&jobs, 4);
        let ids: Vec<&str> = report.outcomes.iter().map(|o| o.id.as_str()).collect();
        assert_eq!(ids, ["j0", "j1", "j2", "j3", "j4", "j5", "j6", "j7"]);
        assert_eq!(report.stats.solved, 8);
        assert_eq!(report.stats.jobs, 8);
        assert!(report.stats.tested >= 8);
    }

    #[test]
    fn parallel_results_match_sequential() {
        let jobs: Vec<BatchJob> = (0..6)
            .map(|i| trivial_job(&format!("j{i}"), None))
            .collect();
        let seq = run_batch(&jobs, 1);
        let par = run_batch(&jobs, 3);
        assert_eq!(seq.stats.threads, 1);
        assert_eq!(par.stats.threads, 3);
        for (a, b) in seq.outcomes.iter().zip(par.outcomes.iter()) {
            assert_eq!(a.id, b.id);
            let (pa, pb) = (a.result.as_ref().unwrap(), b.result.as_ref().unwrap());
            assert_eq!(pa.program.to_string(), pb.program.to_string());
            assert_eq!(pa.stats.search.tested, pb.stats.search.tested);
        }
    }

    #[test]
    fn intra_jobs_grow_the_pool_and_match_inline_results() {
        let mk = |intra: usize| -> Vec<BatchJob> {
            (0..4)
                .map(|i| {
                    let mut j = trivial_job(&format!("j{i}"), None);
                    j.options.intra_parallelism = intra;
                    j
                })
                .collect()
        };
        let inline = run_batch(&mk(1), 2);
        let tasked = run_batch(&mk(3), 2);
        assert_eq!(inline.stats.threads, 2);
        assert_eq!(
            tasked.stats.threads, 3,
            "pool covers the largest intra width"
        );
        for (a, b) in inline.outcomes.iter().zip(tasked.outcomes.iter()) {
            let (pa, pb) = (a.result.as_ref().unwrap(), b.result.as_ref().unwrap());
            assert_eq!(pa.program.to_string(), pb.program.to_string());
            assert_eq!(
                pa.stats.search.effort(),
                pb.stats.search.effort(),
                "effort counters are width-independent"
            );
        }
    }

    #[test]
    fn one_timeout_does_not_poison_the_batch() {
        let jobs = vec![
            trivial_job("ok0", None),
            impossible_job("dead", Duration::from_millis(20)),
            trivial_job("ok1", None),
        ];
        let report = run_batch(&jobs, 3);
        assert!(
            report.outcomes[0].solved(),
            "ok0: {:?}",
            report.outcomes[0].result
        );
        assert!(
            report.outcomes[1].timed_out() || !report.outcomes[1].solved(),
            "dead must not solve"
        );
        assert!(
            report.outcomes[2].solved(),
            "ok1: {:?}",
            report.outcomes[2].result
        );
        assert_eq!(report.stats.solved, 2);
        assert_eq!(report.stats.timeouts + report.stats.failures, 1);
    }

    #[test]
    fn panicking_job_is_contained() {
        let mut jobs = vec![trivial_job("ok", None)];
        jobs.push(BatchJob::new(
            "boom",
            || panic!("intentional test panic"),
            Options::default(),
        ));
        let report = run_batch(&jobs, 2);
        assert!(report.outcomes[0].solved());
        match &report.outcomes[1].result {
            Err(SynthError::Internal(msg)) => {
                assert!(msg.contains("panicked"), "unexpected message {msg:?}")
            }
            other => panic!("expected contained panic, got {other:?}"),
        }
        assert_eq!(report.stats.panics, 1);
        assert_eq!(report.stats.failures, 1);
    }

    #[test]
    fn panicking_job_does_not_abort_siblings_or_change_them() {
        // Regression for the scoped-thread unwind hole: a panicking job in
        // the middle of the queue must not abort the pool, and every other
        // job's program must be byte-identical to a clean batch's.
        let mk = |with_boom: bool| -> Vec<BatchJob> {
            let mut jobs: Vec<BatchJob> = (0..5)
                .map(|i| trivial_job(&format!("j{i}"), None))
                .collect();
            if with_boom {
                jobs.insert(
                    2,
                    BatchJob::new("boom", || panic!("chaos"), Options::default()),
                );
            }
            jobs
        };
        let clean = run_batch(&mk(false), 3);
        let chaotic = run_batch(&mk(true), 3);
        assert_eq!(chaotic.stats.jobs, 6);
        assert_eq!(chaotic.stats.panics, 1);
        let programs = |r: &BatchReport| -> Vec<(String, String)> {
            r.outcomes
                .iter()
                .filter_map(|o| {
                    o.result
                        .as_ref()
                        .ok()
                        .map(|s| (o.id.clone(), s.program.to_string()))
                })
                .collect()
        };
        assert_eq!(
            programs(&clean),
            programs(&chaotic),
            "unaffected jobs must be byte-identical"
        );
    }

    #[test]
    fn zero_global_deadline_sheds_everything() {
        let jobs: Vec<BatchJob> = (0..3)
            .map(|i| trivial_job(&format!("j{i}"), None))
            .collect();
        let policy = BatchPolicy {
            global_deadline: Some(Duration::ZERO),
            ..BatchPolicy::default()
        };
        let report = run_batch_with(&jobs, 1, &policy);
        assert_eq!(report.stats.shed, 3);
        assert_eq!(report.stats.solved, 0);
        for o in &report.outcomes {
            assert!(matches!(o.result, Err(SynthError::Shed)), "{:?}", o.result);
        }
        assert_eq!(crate::exit::for_batch(&report), crate::exit::SHED);
    }

    #[test]
    fn generous_global_deadline_admits_everything() {
        let jobs: Vec<BatchJob> = (0..4)
            .map(|i| trivial_job(&format!("j{i}"), None))
            .collect();
        let policy = BatchPolicy {
            global_deadline: Some(Duration::from_secs(3600)),
            ..BatchPolicy::default()
        };
        let report = run_batch_with(&jobs, 2, &policy);
        assert_eq!(report.stats.shed, 0);
        assert_eq!(report.stats.solved, 4);
    }

    #[test]
    fn policy_cache_is_used_and_counts_template_traffic() {
        let cache = Arc::new(SearchCache::new());
        let policy = BatchPolicy {
            cache: Some(Arc::clone(&cache)),
            ..BatchPolicy::default()
        };
        let jobs = vec![trivial_job("a", None)];
        let cold = run_batch_with(&jobs, 1, &policy);
        let (_, cold_misses) = cache.template_counters();
        assert_eq!(
            cold.stats.template_misses, cold_misses,
            "stats mirror the cache's counters"
        );
        assert!(cold_misses > 0, "a cold cache computes templates");
        // Second batch over the warm cache: all template traffic hits.
        let warm = run_batch_with(&jobs, 1, &policy);
        assert_eq!(
            warm.stats.template_misses, cold_misses,
            "warm run adds no new misses"
        );
        assert!(warm.stats.template_hits > cold.stats.template_hits);
    }

    #[test]
    fn speedup_is_cpu_over_wall() {
        let stats = BatchStats {
            wall_clock: Duration::from_secs(2),
            cpu_time: Duration::from_secs(6),
            ..BatchStats::default()
        };
        assert!((stats.speedup() - 3.0).abs() < 1e-9);
        assert_eq!(BatchStats::default().speedup(), 1.0);
    }
}
