//! Type checking of candidate expressions — the T-rules of Fig. 4/Fig. 11.
//!
//! The search re-typechecks every candidate after a hole substitution; this
//! implements the paper's *type narrowing* (§3.1): filling a receiver hole
//! with `nil` narrows the receiver type to `Nil`, which has no methods, so
//! the derivation fails and the whole branch of the search is pruned before
//! any test is run.

use rbsyn_lang::{Expr, Symbol, Ty, Value};
use rbsyn_ty::{is_subtype, ClassTable, MethodKind};

/// A typing environment `Γ` (spine of bindings; lookups scan innermost
/// first to honour shadowing).
#[derive(Clone, Debug, Default)]
pub struct Gamma {
    binds: Vec<(Symbol, Ty)>,
}

impl Gamma {
    /// Empty environment.
    pub fn new() -> Gamma {
        Gamma::default()
    }

    /// From parameter bindings.
    pub fn from_params(params: &[(Symbol, Ty)]) -> Gamma {
        Gamma {
            binds: params.to_vec(),
        }
    }

    /// Binds a variable.
    pub fn bind(&mut self, x: Symbol, t: Ty) {
        self.binds.push((x, t));
    }

    /// Scope mark for save/restore.
    pub fn mark(&self) -> usize {
        self.binds.len()
    }

    /// Restores to a mark.
    pub fn release(&mut self, m: usize) {
        self.binds.truncate(m);
    }

    /// Innermost type of `x`.
    pub fn get(&self, x: Symbol) -> Option<&Ty> {
        self.binds
            .iter()
            .rev()
            .find(|(n, _)| *n == x)
            .map(|(_, t)| t)
    }

    /// All bindings (outermost first), for variable enumeration (S-Var).
    pub fn bindings(&self) -> &[(Symbol, Ty)] {
        &self.binds
    }
}

/// Most specific type of a literal value.
pub fn ty_of_value(table: &ClassTable, v: &Value) -> Ty {
    table.ty_of_value(v)
}

/// Infers the type of `e` under `Γ`, or `None` when the expression has no
/// typing derivation (the search discards such candidates when type
/// guidance is on).
pub fn infer_ty(table: &ClassTable, gamma: &mut Gamma, e: &Expr) -> Option<Ty> {
    match e {
        // T-Nil / T-True / T-False / T-Obj and friends.
        Expr::Lit(v) => Some(ty_of_value(table, v)),
        // T-Var.
        Expr::Var(x) => gamma.get(*x).cloned(),
        // T-Seq: the sequence has the type of its last expression.
        Expr::Seq(es) => {
            let mut last = Ty::Nil;
            for e in es {
                last = infer_ty(table, gamma, e)?;
            }
            Some(last)
        }
        // T-App: receiver class must define the method; arguments must fit
        // the (possibly comp-resolved) parameter types.
        Expr::Call { recv, meth, args } => {
            let recv_ty = infer_ty(table, gamma, recv)?;
            let resolved = resolve_call(table, &recv_ty, *meth)?;
            if resolved.params.len() != args.len() {
                return None;
            }
            for (a, p) in args.iter().zip(&resolved.params) {
                let at = infer_ty(table, gamma, a)?;
                if !is_subtype(&table.hierarchy, &at, p) {
                    return None;
                }
            }
            Some(resolved.ret)
        }
        // T-If: the union of the branch types.
        Expr::If { cond, then, els } => {
            infer_ty(table, gamma, cond)?;
            let t1 = infer_ty(table, gamma, then)?;
            let t2 = infer_ty(table, gamma, els)?;
            Some(Ty::union(vec![t1, t2]))
        }
        // T-Let.
        Expr::Let { var, val, body } => {
            let vt = infer_ty(table, gamma, val)?;
            let m = gamma.mark();
            gamma.bind(*var, vt);
            let out = infer_ty(table, gamma, body);
            gamma.release(m);
            out
        }
        // Hash literals synthesize a finite hash type from their entries.
        Expr::HashLit(entries) => {
            let mut fields = Vec::with_capacity(entries.len());
            for (k, v) in entries {
                let vt = infer_ty(table, gamma, v)?;
                fields.push(rbsyn_lang::types::HashField {
                    key: *k,
                    ty: vt,
                    optional: false,
                });
            }
            Some(Ty::FiniteHash(rbsyn_lang::FiniteHash::new(fields)))
        }
        // T-NegB / T-OrB.
        Expr::Not(b) => {
            infer_ty(table, gamma, b)?;
            Some(Ty::Bool)
        }
        Expr::Or(a, b) => {
            infer_ty(table, gamma, a)?;
            infer_ty(table, gamma, b)?;
            Some(Ty::Bool)
        }
        // T-Hole: a hole has its annotated type.
        Expr::Hole(t) => Some(t.clone()),
        // T-EffHole: effect holes type at Obj (top), so they can be filled
        // by a term of any type (§3.2).
        Expr::EffHole(_) => Some(Ty::Obj),
    }
}

/// Resolves a method against a receiver *type*, returning parameter and
/// return types (comp types resolve against the concrete receiver type —
/// the narrowing cascade of §4).
pub fn resolve_call(
    table: &ClassTable,
    recv_ty: &Ty,
    meth: Symbol,
) -> Option<rbsyn_ty::ResolvedSig> {
    let (class, kind) = match recv_ty {
        Ty::SingletonClass(c) => (*c, MethodKind::Singleton),
        other => (table.hierarchy.class_of_ty(other)?, MethodKind::Instance),
    };
    let (_, entry) = table.lookup(class, kind, meth)?;
    entry.sig.resolve(&table.hierarchy, recv_ty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbsyn_lang::builder::*;
    use rbsyn_stdlib::EnvBuilder;

    fn blog() -> (ClassTable, rbsyn_lang::ClassId) {
        let mut b = EnvBuilder::with_stdlib();
        let post = b.define_model("Post", &[("author", Ty::Str), ("title", Ty::Str)]);
        let env = b.finish();
        (env.table, post)
    }

    #[test]
    fn literals_and_vars() {
        let (table, _) = blog();
        let mut g = Gamma::new();
        g.bind(Symbol::intern("x"), Ty::Str);
        assert_eq!(infer_ty(&table, &mut g, &int(1)), Some(Ty::Int));
        assert_eq!(infer_ty(&table, &mut g, &var("x")), Some(Ty::Str));
        assert_eq!(infer_ty(&table, &mut g, &var("y")), None);
        assert_eq!(infer_ty(&table, &mut g, &nil()), Some(Ty::Nil));
    }

    #[test]
    fn calls_resolve_through_comp_types() {
        let (table, post) = blog();
        let mut g = Gamma::new();
        // Post.where({title: "x"}).first : Post
        let e = call(
            call(cls(post), "where", [hash([("title", str_("x"))])]),
            "first",
            [],
        );
        assert_eq!(infer_ty(&table, &mut g, &e), Some(Ty::Instance(post)));
    }

    #[test]
    fn narrowing_prunes_nil_receivers() {
        let (table, _) = blog();
        let mut g = Gamma::new();
        // nil.upcase has no derivation: NilClass has no upcase.
        let e = call(nil(), "upcase", []);
        assert_eq!(infer_ty(&table, &mut g, &e), None);
        // But nil.nil? does (NilClass#nil? exists).
        let ok = call(nil(), "nil?", []);
        assert_eq!(infer_ty(&table, &mut g, &ok), Some(Ty::Bool));
    }

    #[test]
    fn argument_subtyping_is_enforced() {
        let (table, post) = blog();
        let mut g = Gamma::new();
        // Unknown hash key for where: {nope: Str} is not a subtype of the
        // column hash.
        let bad = call(cls(post), "where", [hash([("nope", str_("x"))])]);
        assert_eq!(infer_ty(&table, &mut g, &bad), None);
        // Wrong arg type to String#+.
        let bad2 = call(str_("a"), "+", [int(1)]);
        assert_eq!(infer_ty(&table, &mut g, &bad2), None);
    }

    #[test]
    fn lets_seqs_ifs_and_guards() {
        let (table, post) = blog();
        let mut g = Gamma::new();
        let e = let_(
            "t0",
            call(cls(post), "first", []),
            seq([call(var("t0"), "title", []), var("t0")]),
        );
        assert_eq!(infer_ty(&table, &mut g, &e), Some(Ty::Instance(post)));
        let iff = if_(true_(), int(1), str_("s"));
        assert_eq!(
            infer_ty(&table, &mut g, &iff),
            Some(Ty::union(vec![Ty::Int, Ty::Str]))
        );
        assert_eq!(infer_ty(&table, &mut g, &not(true_())), Some(Ty::Bool));
        assert_eq!(
            infer_ty(&table, &mut g, &or(true_(), false_())),
            Some(Ty::Bool)
        );
    }

    #[test]
    fn holes_type_at_annotation() {
        let (table, post) = blog();
        let mut g = Gamma::new();
        assert_eq!(infer_ty(&table, &mut g, &hole(Ty::Int)), Some(Ty::Int));
        // A call with a singleton-class hole receiver resolves (S-App shape).
        let e = call(hole(Ty::SingletonClass(post)), "first", []);
        assert_eq!(infer_ty(&table, &mut g, &e), Some(Ty::Instance(post)));
        // Effect holes type at Obj.
        assert_eq!(
            infer_ty(&table, &mut g, &effhole(rbsyn_lang::EffectSet::star())),
            Some(Ty::Obj)
        );
    }

    #[test]
    fn hash_get_narrows_with_receiver() {
        let (table, _) = blog();
        let mut g = Gamma::new();
        let fh = Ty::FiniteHash(rbsyn_lang::FiniteHash::new(vec![
            rbsyn_lang::types::HashField {
                key: Symbol::intern("title"),
                ty: Ty::Str,
                optional: true,
            },
        ]));
        g.bind(Symbol::intern("arg2"), fh);
        let e = call(var("arg2"), "[]", [sym("title")]);
        assert_eq!(infer_ty(&table, &mut g, &e), Some(Ty::Str));
        let bad = call(var("arg2"), "[]", [sym("nope")]);
        assert_eq!(infer_ty(&table, &mut g, &bad), None);
    }
}
