//! Branch-condition synthesis (§3.3) and the BDD-backed guard pool.
//!
//! A guard for spec set `Ψ₁` against `Ψ₂` is a boolean expression that
//! evaluates truthy under every setup in `Ψ₁` and falsy under every setup
//! in `Ψ₂` (`def m(x) = b ⊢ Sᵢ; assert x_r ⇓ v` and the negated check).
//!
//! Per the §4 optimizations, cheap candidates are tried before falling back
//! to a fresh type-guided search: the constants `true`/`false`, previously
//! synthesized conditionals, and their negations ("the condition in one
//! spec often turns out to be the negation of the condition in another").
//!
//! **The guard pool.** A merge issues *many* strengthening requests
//! (every Rule-3 pair needs two, across every `⊕` order), and every
//! request used to launch its own work-list search over what is — because
//! guard oracles never report effects, so S-Eff can never reorder the
//! frontier — always the *same* boolean candidate stream. [`GuardPool`]
//! exploits that: it enumerates the stream **once per problem** (lazily,
//! as far as the deepest request needs) and records, per evaluable
//! candidate, a pass/fail **bitvector** over the problem's specs — bit
//! `i` answers "does this candidate run without error under spec `i`'s
//! setup, and is `x_r` truthy?". One interpreter run fills both the
//! truthy and the ok bit for a spec; bits are filled lazily per
//! (candidate, spec) — exactly the specs a request touches — so
//! re-requests, reversed pairs and backtracking re-checks are pure bit
//! arithmetic ([`SearchStats::vector_hits`]). Vectors hold one `u64`
//! word inline for ≤64-spec problems and spill to boxed words beyond
//! that; the old `>64-spec` fallback to eager per-request searches is
//! gone.
//!
//! The enumeration pipeline is **pool-local and lock-free**: candidates
//! hash-cons into a private [`ExprArena`] and S-App templates memoize
//! into a private [`TemplateStore`], so the stream never touches the
//! shared search cache — it is byte-identical with and without
//! `--no-cache`, and it pays none of the shared cache's lock (or
//! `contention`-probe) overhead on the merge's hottest path.
//!
//! **Canonical semantics.** With [`Options::bdd`] (the default), a
//! request's spec sets and every distinct evaluation vector it observes
//! are interned into a reduced-ordered BDD over the spec-index domain
//! ([`rbsyn_bdd`]): semantically equal candidates collapse to one
//! canonical class per request ([`SearchStats::guard_dedup`]), each
//! class's covering verdict is decided **once**, as two BDD-difference
//! satisfiability queries (`Ψ₁ ∖ truthy(c) = ∅ ∧ Ψ₂ ∖ falsy(c) = ∅`),
//! and bits of literal and negated candidates are *derived* from known
//! semantics instead of interpreter runs. Programs and effort counters
//! are byte-identical with `--no-bdd` — only the time differs — which
//! the CI `no-bdd` determinism leg and the debug assertions comparing
//! the BDD verdict against word arithmetic both enforce.
//!
//! [`search_guards`] (the per-request search the pool replaced on the
//! merge path) remains for single-shot callers: it collects *several*
//! oracle-passing guards because the smallest one can be semantically
//! wrong for the final program (only running the merged program against
//! all specs decides, §3.4), so the merge backtracks over alternatives —
//! the pool's [`GuardPool::covering_guards`] reproduces exactly that
//! candidate order and stopping rule.

use crate::engine::{Frontier, Scheduler, SearchStats};
use crate::error::SynthError;
use crate::expand::{simplify, Expander, FillMemo, TemplateStore};
use crate::generate::{generate_many, GuardOracle, Oracle};
use crate::infer::{infer_ty, Gamma};
use crate::options::Options;
use rbsyn_bdd::{Bdd, IndexDomain, NodeId};
use rbsyn_interp::{InterpEnv, PreparedSpec, Spec, SpecOutcome};
use rbsyn_lang::{Expr, ExprArena, ExprId, FxBuild, Program, Symbol, Ty, Value};
use rbsyn_trace::Mark;
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Instant;

/// Extra work-list pops to spend hunting alternative guards after the
/// first oracle-passing one. Each pop can test hundreds of candidates, so
/// this stays small; the odometer only needs a handful of alternatives.
const EXTRA_GUARD_BUDGET: u64 = 300;

/// Widest strengthening-request footprint (`|Ψ₁| + |Ψ₂|`) the semantic
/// class memo covers — the compact class key is footprint-relative, two
/// bits per spec, packed into `u128`s. Wider requests (no merge the
/// odometer generates comes close) still answer correctly; they just
/// decide by word arithmetic alone.
const MAX_SEM_FOOTPRINT: usize = 128;

/// Searches for up to `k` guards satisfying `oracle`, by ascending size.
/// `sched` carries the deadline, cancellation token and memoization handle,
/// as in [`crate::generate::generate`].
#[allow(clippy::too_many_arguments)]
pub fn search_guards(
    env: &InterpEnv,
    method_name: &str,
    params: &[(Symbol, Ty)],
    oracle: &GuardOracle,
    k: usize,
    opts: &Options,
    sched: &Scheduler,
    stats: &mut SearchStats,
) -> Result<Vec<Expr>, SynthError> {
    rbsyn_lang::failpoint::hit("guards::cover");
    match generate_many(
        env,
        method_name,
        params,
        &Ty::Bool,
        oracle,
        opts,
        opts.max_guard_size,
        sched,
        stats,
        k,
        EXTRA_GUARD_BUDGET,
    ) {
        Ok(gs) => Ok(gs),
        Err(SynthError::Timeout) => Err(SynthError::Timeout),
        Err(_) => Ok(Vec::new()),
    }
}

/// Synthesizes a single guard that is truthy under `pos` setups and falsy
/// under `neg` setups. `known` are previously synthesized conditionals to
/// try (with their negations) before searching.
#[allow(clippy::too_many_arguments)]
pub fn synth_guard(
    env: &InterpEnv,
    method_name: &str,
    params: &[(Symbol, Ty)],
    pos: &[&Spec],
    neg: &[&Spec],
    known: &[Expr],
    opts: &Options,
    sched: &Scheduler,
    stats: &mut SearchStats,
) -> Result<Expr, SynthError> {
    let oracle = GuardOracle::new(env, pos, neg);
    let name_sym = Symbol::intern(method_name);
    let param_syms: Vec<Symbol> = params.iter().map(|(n, _)| *n).collect();

    // Fast path: constants, known conditionals, and negations thereof.
    let mut quick: Vec<Expr> = vec![Expr::Lit(Value::Bool(true)), Expr::Lit(Value::Bool(false))];
    for k in known {
        quick.push(k.clone());
        quick.push(negate(k));
    }
    for cand in quick {
        stats.tested += 1;
        let p = Program::from_parts(name_sym, param_syms.clone(), cand.clone());
        if oracle.test(env, &p).success {
            return Ok(cand);
        }
    }

    // Fall back to type-guided search at type Bool (effect guidance is
    // never used for guards; GuardOracle reports no effects, so S-Eff
    // cannot fire).
    let mut found = search_guards(env, method_name, params, &oracle, 1, opts, sched, stats)?;
    found.pop().ok_or(SynthError::GuardNotFound)
}

/// Everything a [`GuardPool`] needs from the enclosing synthesis run,
/// passed by reference on every call so the pool itself stays a plain
/// owned value inside the merge context.
pub struct GuardQuery<'a> {
    /// Interpreter environment.
    pub env: &'a InterpEnv,
    /// Method name (guard programs are built under it), pre-interned so
    /// per-candidate program construction never touches the symbol table.
    pub name: Symbol,
    /// Method parameters.
    pub params: &'a [(Symbol, Ty)],
    /// All specs of the problem — bit `i` of every vector refers to
    /// `specs[i]`.
    pub specs: &'a [Spec],
    /// Search options (guard size bound, pop budget, strategy, BDD mode).
    pub opts: &'a Options,
    /// Deadline/cancellation and the run's memoization handle.
    pub sched: &'a Scheduler,
}

/// Per-spec prepared check, or why it cannot be evaluated.
enum CheckSlot {
    /// `assert x_r` over the spec's prepared setup.
    Ready(Box<PreparedSpec>),
    /// The spec's own setup failed (a suite bug): the message raised when
    /// a covering request actually touches this spec, mirroring the panic
    /// `GuardOracle::new` used to raise at request time.
    Failed(String),
}

/// Lazily filled pass/fail bitvector of one guard candidate over the
/// problem's specs: `evald` marks which bits are known, `ok` whether the
/// candidate ran to the assert without error, `truthy` whether `x_r` was
/// truthy. One interpreter run per bit, ever; everything else is word
/// arithmetic. One inline word covers ≤64 specs (every Table-1 problem);
/// larger problems spill to boxed words — same engine, no fallback.
#[derive(Clone, Debug)]
enum Bits {
    One { ok: u64, truthy: u64, evald: u64 },
    Wide(Box<WideBits>),
}

/// The spilled representation: parallel word planes.
#[derive(Clone, Debug)]
struct WideBits {
    ok: Vec<u64>,
    truthy: Vec<u64>,
    evald: Vec<u64>,
}

impl Bits {
    fn new(nwords: usize) -> Bits {
        if nwords <= 1 {
            Bits::One {
                ok: 0,
                truthy: 0,
                evald: 0,
            }
        } else {
            Bits::Wide(Box::new(WideBits {
                ok: vec![0; nwords],
                truthy: vec![0; nwords],
                evald: vec![0; nwords],
            }))
        }
    }

    fn evald(&self, s: usize) -> bool {
        match self {
            Bits::One { evald, .. } => evald & (1u64 << s) != 0,
            Bits::Wide(w) => w.evald[s / 64] & (1u64 << (s % 64)) != 0,
        }
    }

    fn ok(&self, s: usize) -> bool {
        match self {
            Bits::One { ok, .. } => ok & (1u64 << s) != 0,
            Bits::Wide(w) => w.ok[s / 64] & (1u64 << (s % 64)) != 0,
        }
    }

    fn truthy(&self, s: usize) -> bool {
        match self {
            Bits::One { truthy, .. } => truthy & (1u64 << s) != 0,
            Bits::Wide(w) => w.truthy[s / 64] & (1u64 << (s % 64)) != 0,
        }
    }

    fn any_evald(&self) -> bool {
        match self {
            Bits::One { evald, .. } => *evald != 0,
            Bits::Wide(w) => w.evald.iter().any(|&x| x != 0),
        }
    }

    /// Records one spec's outcome (and marks the bit evaluated).
    fn record(&mut self, s: usize, ok_bit: bool, truthy_bit: bool) {
        match self {
            Bits::One { ok, truthy, evald } => {
                let m = 1u64 << s;
                *evald |= m;
                if ok_bit {
                    *ok |= m;
                }
                if truthy_bit {
                    *truthy |= m;
                }
            }
            Bits::Wide(w) => {
                let (i, m) = (s / 64, 1u64 << (s % 64));
                w.evald[i] |= m;
                if ok_bit {
                    w.ok[i] |= m;
                }
                if truthy_bit {
                    w.truthy[i] |= m;
                }
            }
        }
    }
}

/// How a candidate's spec bits can be *derived* from known semantics
/// instead of an interpreter run (BDD mode only).
///
/// Soundness: a literal body evaluates to itself and cannot raise, so its
/// outcome is decided by the spec's own setup health (`setup_ok`); and
/// `!e` evaluates `e` exactly once from the same fresh setup snapshot as
/// `e` alone — identical world trajectory, identical post-steps — so its
/// bits are `ok(e)` and `ok(e) ∧ ¬truthy(e)`. (`e || f` is *not*
/// derived: a write in `e` could change `f`'s world.)
enum Derived {
    /// Literal body with the given truthiness.
    Lit { truthy: bool },
    /// `!inner`, with `inner`'s already-known bits.
    Not(Bits),
}

/// One enumerated evaluable boolean candidate: its hash-consed identity,
/// the work-list pop that produced it (for per-request stopping budgets),
/// and its lazily filled bitvector.
struct GuardCand {
    expr: Arc<Expr>,
    pop: u64,
    bits: Bits,
}

/// Pool-local template memo: the same pure S-App/S-EffApp lists the
/// shared cache would compute, without its locks (or their `contention`
/// probes) — the pool enumerates on one thread, so a `RefCell` suffices.
#[derive(Default)]
struct LocalTemplates(RefCell<HashMap<String, Arc<Vec<Expr>>, FxBuild>>);

impl TemplateStore for LocalTemplates {
    fn templates(&self, key: String, compute: &mut dyn FnMut() -> Vec<Expr>) -> Arc<Vec<Expr>> {
        if let Some(v) = self.0.borrow().get(&key) {
            return Arc::clone(v);
        }
        let v = Arc::new(compute());
        self.0.borrow_mut().insert(key, Arc::clone(&v));
        v
    }
}

/// The pool's semantic layer: spec-index sets live as canonical nodes in
/// a shared reduced-ordered BDD, so set inclusion — the covering check —
/// is a pair of difference-is-unsatisfiable queries, decided once per
/// distinct evaluation vector.
struct Semantics {
    bdd: Bdd,
    dom: IndexDomain,
}

impl Semantics {
    fn new(n_specs: usize) -> Semantics {
        Semantics {
            bdd: Bdd::new(),
            dom: IndexDomain::new(n_specs.max(1)),
        }
    }

    /// `Ψ₁ ⊆ truthy-ok(c) ∧ Ψ₂ ⊆ falsy-ok(c)` as satisfiability queries:
    /// covered iff both BDD differences are the canonical FALSE node.
    fn decide(&mut self, rs: &ReqSem, bits: &Bits, pos: &[usize], neg: &[usize]) -> bool {
        let t = self.vector_set(bits, pos, neg, true);
        let f = self.vector_set(bits, pos, neg, false);
        let pd = self.bdd.diff(rs.p, t);
        let nd = self.bdd.diff(rs.n, f);
        self.bdd.is_false(pd) && self.bdd.is_false(nd)
    }

    /// The candidate's evaluated footprint specs where `x_r` ran ok and
    /// was truthy (`want_truthy`) / falsy, as a canonical set node —
    /// semantically equal vectors intern to the same node.
    fn vector_set(
        &mut self,
        bits: &Bits,
        pos: &[usize],
        neg: &[usize],
        want_truthy: bool,
    ) -> NodeId {
        let idxs: Vec<u64> = pos
            .iter()
            .chain(neg)
            .filter(|&&s| bits.evald(s) && bits.ok(s) && bits.truthy(s) == want_truthy)
            .map(|&s| s as u64)
            .collect();
        self.dom.set(&mut self.bdd, idxs)
    }
}

/// A request's interned BDD spec sets plus its semantic-class memo: each
/// footprint-relative evaluation pattern maps to the covering verdict the
/// BDD decided for that class; every later candidate landing in the class
/// is a [`SearchStats::guard_dedup`].
struct ReqSem {
    p: NodeId,
    n: NodeId,
    classes: HashMap<(u128, u128, u128), bool, FxBuild>,
}

/// The candidate's footprint-relative evaluation pattern `(evaluated,
/// ok∧truthy, ok∧falsy)` — bit `j` is the request's `j`-th footprint
/// spec (`pos` then `neg`). Two candidates with equal patterns are
/// indistinguishable to this request, so they share one verdict.
fn class_key(bits: &Bits, pos: &[usize], neg: &[usize]) -> (u128, u128, u128) {
    let (mut e, mut t, mut f) = (0u128, 0u128, 0u128);
    for (j, &s) in pos.iter().chain(neg).enumerate() {
        if bits.evald(s) {
            e |= 1 << j;
            if bits.ok(s) {
                if bits.truthy(s) {
                    t |= 1 << j;
                } else {
                    f |= 1 << j;
                }
            }
        }
    }
    (e, t, f)
}

/// A strengthening request's lazy scan state: how far into the shared
/// candidate stream it has looked, the covering guards found so far,
/// whether its (per-request) stopping rule has latched, and its BDD-side
/// state (spec-set nodes + semantic-class memo) when BDD mode is on.
#[derive(Default)]
struct ReqState {
    found: Vec<Expr>,
    next_cand: usize,
    first: Option<u64>,
    done: bool,
    sem: Option<ReqSem>,
}

/// A strengthening request: spec indices that must be truthy / falsy.
type ReqKey = (Vec<usize>, Vec<usize>);

/// The per-problem guard-covering pool (see the [module docs](self)).
///
/// The pool is deterministic by construction: the candidate stream is the
/// same oracle-independent enumeration every per-request search performed
/// (same expander, same template lists, same frontier strategy, same
/// dedup), so [`GuardPool::nth_covering_guard`] returns byte-identical
/// guards in byte-identical order — it just never re-enumerates or
/// re-judges anything, and it is **lazy twice over**: the stream extends
/// only as far as the deepest request needs, and a request only scans far
/// enough to answer the guard index the merge actually consumes. The old
/// eager per-request search burned its worst time hunting alternatives
/// #2–#5 plus a 300-pop tail for an odometer that rarely turns; here that
/// work is deferred until a failed validation actually asks for it.
pub struct GuardPool {
    ready: bool,
    checks: Vec<CheckSlot>,
    /// Words per bitvector plane: `⌈|specs| / 64⌉`.
    nwords: usize,
    /// Per-spec setup health learned from interpreter runs: `Some(true)`
    /// once any candidate reached the assert, `Some(false)` once a
    /// literal body — which cannot raise — still produced a setup error.
    /// Feeds literal-bit derivation in BDD mode.
    setup_ok: Vec<Option<bool>>,
    frontier: Option<Frontier<'static>>,
    seen: HashSet<ExprId, FxBuild>,
    gamma: Option<Gamma>,
    pops: u64,
    exhausted: bool,
    cands: Vec<GuardCand>,
    /// Hash-consed candidate id → index into `cands` (derivation lookup).
    cand_idx: HashMap<ExprId, u32, FxBuild>,
    /// Per-request lazy scan state.
    reqs: HashMap<ReqKey, ReqState, FxBuild>,
    /// Bitvectors for ad-hoc expressions (the merge's quick candidates and
    /// rule-6/7 negation guesses), keyed structurally.
    extra_bits: HashMap<Expr, Bits, FxBuild>,
    /// Pool-private hash-consing arena: the enumeration pipeline never
    /// touches the shared cache, so the stream is identical with and
    /// without it — and lock-free either way.
    arena: ExprArena,
    /// Pool-local template memo (see [`LocalTemplates`]).
    templates: LocalTemplates,
    /// Complete hole-filling lists per goal type. Sound here because the
    /// guard stream contains no binders: the pool's `Γ` (the spec
    /// bindings) is fixed for its whole lifetime, so `fill_typed` is a
    /// pure function of the goal (see [`FillMemo`]).
    fill_memo: FillMemo,
    /// BDD semantic layer, present iff [`Options::bdd`].
    sem: Option<Semantics>,
}

impl Default for GuardPool {
    fn default() -> GuardPool {
        GuardPool::new()
    }
}

impl GuardPool {
    /// An empty pool; all state (prepared checks, the enumeration
    /// frontier, the BDD) is created lazily on the first request, so
    /// merges that never need a guard pay nothing.
    pub fn new() -> GuardPool {
        GuardPool {
            ready: false,
            checks: Vec::new(),
            nwords: 1,
            setup_ok: Vec::new(),
            frontier: None,
            seen: HashSet::default(),
            gamma: None,
            pops: 0,
            exhausted: false,
            cands: Vec::new(),
            cand_idx: HashMap::default(),
            reqs: HashMap::default(),
            extra_bits: HashMap::default(),
            arena: ExprArena::new(),
            templates: LocalTemplates::default(),
            fill_memo: FillMemo::new(),
            sem: None,
        }
    }

    fn ensure_ready(&mut self, q: &GuardQuery<'_>) {
        if self.ready {
            return;
        }
        self.ready = true;
        self.checks = q
            .specs
            .iter()
            .map(|s| match PreparedSpec::prepare(q.env, s) {
                Ok(p) => {
                    let xr = p.result_var();
                    CheckSlot::Ready(Box::new(p.with_asserts(vec![Expr::Var(xr)])))
                }
                Err(e) => CheckSlot::Failed(format!("spec {:?} setup failed: {e}", s.name)),
            })
            .collect();
        self.nwords = q.specs.len().div_ceil(64).max(1);
        self.setup_ok = vec![None; q.specs.len()];
        if q.opts.bdd {
            self.sem = Some(Semantics::new(q.specs.len()));
        }
        self.gamma = Some(Gamma::from_params(q.params));
        let root = self.arena.intern(Expr::Hole(Ty::Bool));
        let mut frontier = Frontier::new(q.opts.strategy.strategy());
        frontier.push(0, 1, root, Arc::clone(self.arena.get(root)));
        self.frontier = Some(frontier);
    }

    /// Advances the shared enumeration by one work-list pop, recording
    /// evaluable candidates (unjudged) and re-enqueueing partial ones —
    /// the exact loop body of the per-request search, minus S-Eff (guard
    /// oracles never report effects, so it could never fire), run
    /// entirely against pool-local state: expansion, simplification,
    /// type narrowing and hash-consing never take a lock.
    fn extend_one_pop(
        &mut self,
        q: &GuardQuery<'_>,
        stats: &mut SearchStats,
    ) -> Result<(), SynthError> {
        let Some((pri, seq, item)) = self.frontier.as_mut().and_then(|f| f.pop_ranked()) else {
            self.exhausted = true;
            return Ok(());
        };
        self.pops += 1;
        stats.popped += 1;
        if self.pops.is_multiple_of(64) && q.sched.should_stop() {
            // Roll the un-expanded item (and the pop count) back so a
            // hypothetical post-deadline continuation resumes exactly
            // here; the caller decides whether the timeout is fatal.
            self.pops -= 1;
            stats.popped -= 1;
            self.frontier
                .as_mut()
                .expect("pool is ready")
                .requeue(pri, seq, item);
            return Err(SynthError::Timeout);
        }
        let expander =
            Expander::with_fill_memo(&q.env.table, q.opts, &self.templates, &self.fill_memo);
        let gamma = self.gamma.as_mut().expect("pool is ready");
        let subs = expander
            .expand_first(&item.expr, gamma)
            .expect("non-evaluable expression must have a hole");
        stats.expanded += subs.len() as u64;
        for sub in subs {
            let sub = simplify(sub);
            // Type narrowing, as in `expand_compute` — same filter, same
            // order, pool-local interning.
            if q.opts.guidance.types && infer_ty(&q.env.table, gamma, &sub).is_none() {
                continue;
            }
            let id = self.arena.intern(sub);
            if !self.seen.insert(id) {
                stats.deduped += 1;
                continue;
            }
            let (size, evaluable) = self.arena.meta(id);
            if evaluable {
                self.cand_idx.insert(id, self.cands.len() as u32);
                self.cands.push(GuardCand {
                    expr: Arc::clone(self.arena.get(id)),
                    pop: self.pops,
                    bits: Bits::new(self.nwords),
                });
            } else if size <= q.opts.max_guard_size {
                self.frontier.as_mut().expect("pool is ready").push(
                    0,
                    size,
                    id,
                    Arc::clone(self.arena.get(id)),
                );
            }
        }
        Ok(())
    }

    /// Fills any missing footprint bits of `bits` (by derivation when
    /// possible, by interpreter run otherwise) and checks the request by
    /// word arithmetic, short-circuiting on the first violated spec.
    /// `filled` reports whether any bit was newly determined — the
    /// tested/vector-hit accounting key, identical whether the bit came
    /// from a run or a derivation.
    #[allow(clippy::too_many_arguments)]
    fn fill_and_check(
        checks: &[CheckSlot],
        setup_ok: &mut [Option<bool>],
        deriv: Option<&Derived>,
        bits: &mut Bits,
        expr: &Expr,
        q: &GuardQuery<'_>,
        pos: &[usize],
        neg: &[usize],
        stats: &mut SearchStats,
        filled: &mut bool,
    ) -> bool {
        let mut program: Option<Program> = None;
        for (specs, want_truthy) in [(pos, true), (neg, false)] {
            for &s in specs {
                if !bits.evald(s) {
                    let check = match &checks[s] {
                        CheckSlot::Ready(p) => p,
                        CheckSlot::Failed(_) => return false,
                    };
                    let mut derived = false;
                    match deriv {
                        Some(Derived::Lit { truthy }) => {
                            if let Some(good) = setup_ok[s] {
                                // A literal cannot raise: outcome is the
                                // spec's setup health plus its own
                                // truthiness.
                                bits.record(s, good, good && *truthy);
                                derived = true;
                            }
                        }
                        Some(Derived::Not(inner)) if inner.evald(s) => {
                            let ok = inner.ok(s);
                            bits.record(s, ok, ok && !inner.truthy(s));
                            derived = true;
                        }
                        _ => {}
                    }
                    if !derived {
                        let p = program.get_or_insert_with(|| {
                            Program::from_parts(
                                q.name,
                                q.params.iter().map(|(n, _)| *n).collect(),
                                expr.clone(),
                            )
                        });
                        let started = Instant::now();
                        let outcome = check.run(q.env, p);
                        stats.eval_nanos = stats
                            .eval_nanos
                            .saturating_add(started.elapsed().as_nanos() as u64);
                        match outcome {
                            SpecOutcome::Passed { .. } => {
                                bits.record(s, true, true);
                                setup_ok[s] = Some(true);
                            }
                            SpecOutcome::Failed { .. } => {
                                bits.record(s, true, false);
                                setup_ok[s] = Some(true);
                            }
                            SpecOutcome::SetupError(_) => {
                                bits.record(s, false, false);
                                // Only a literal body pins the blame on
                                // the spec itself — any other candidate
                                // may have raised on its own.
                                if matches!(deriv, Some(Derived::Lit { .. })) {
                                    setup_ok[s] = Some(false);
                                }
                            }
                        }
                    }
                    *filled = true;
                }
                if !(bits.ok(s) && bits.truthy(s) == want_truthy) {
                    return false;
                }
            }
        }
        true
    }

    /// How `e`'s bits can be derived without interpreter runs (BDD mode
    /// only — `--no-bdd` reproduces the pure-interpreter behavior).
    fn derive_for(&self, e: &Expr) -> Option<Derived> {
        self.sem.as_ref()?;
        match e {
            Expr::Lit(v) => Some(Derived::Lit { truthy: v.truthy() }),
            Expr::Not(inner) => self.peek_bits(inner).map(Derived::Not),
            _ => None,
        }
    }

    /// Already-known bits of `e`, wherever they live: the ad-hoc map or
    /// the candidate stream (via the pool arena's hash-consing).
    fn peek_bits(&self, e: &Expr) -> Option<Bits> {
        if let Some(b) = self.extra_bits.get(e) {
            return Some(b.clone());
        }
        let id = self.arena.lookup_hashed(ExprArena::hash_of(e), e)?;
        let i = *self.cand_idx.get(&id)?;
        Some(self.cands[i as usize].bits.clone())
    }

    /// Does candidate `i` cover the request? Fills missing bits, maintains
    /// the tested/vector-hit counters, and — in BDD mode — interns the
    /// vector's semantic class so the verdict is decided once per class
    /// (a pair of BDD satisfiability queries) and reused for every
    /// semantically equal candidate ([`SearchStats::guard_dedup`]).
    fn cand_passes(
        &mut self,
        i: usize,
        q: &GuardQuery<'_>,
        pos: &[usize],
        neg: &[usize],
        rsem: &mut Option<ReqSem>,
        stats: &mut SearchStats,
    ) -> bool {
        let mut bits = self.cands[i].bits.clone();
        let fresh = !bits.any_evald();
        let expr = Arc::clone(&self.cands[i].expr);
        // Derivation lookups hash the candidate structurally — only worth
        // it when some footprint bit is actually missing.
        let complete = pos.iter().chain(neg).all(|&s| bits.evald(s));
        let deriv = if complete {
            None
        } else {
            self.derive_for(&expr)
        };
        let mut filled = false;
        let pass = Self::fill_and_check(
            &self.checks,
            &mut self.setup_ok,
            deriv.as_ref(),
            &mut bits,
            &expr,
            q,
            pos,
            neg,
            stats,
            &mut filled,
        );
        if fresh && filled {
            stats.tested += 1;
        } else if !filled {
            stats.vector_hits += 1;
        }
        let verdict = if let (Some(sem), Some(rs)) = (self.sem.as_mut(), rsem.as_mut()) {
            let key = class_key(&bits, pos, neg);
            if let Some(&v) = rs.classes.get(&key) {
                stats.guard_dedup += 1;
                debug_assert_eq!(v, pass, "class verdict must match word arithmetic");
                v
            } else {
                let v = sem.decide(rs, &bits, pos, neg);
                debug_assert_eq!(v, pass, "BDD covering must match word arithmetic");
                rs.classes.insert(key, v);
                stats.bdd_nodes = stats.bdd_nodes.max(sem.bdd.node_count() as u64);
                v
            }
        } else {
            pass
        };
        self.cands[i].bits = bits;
        verdict
    }

    /// Advances one request's lazy scan over the shared stream until it
    /// has found `need` guards, hit its per-request stopping rule (`k`
    /// guards, or [`EXTRA_GUARD_BUDGET`] pops past the first one, or the
    /// pop budget, or stream exhaustion), or timed out. The stopping rule
    /// latches — once a request is done, its guard list is final, exactly
    /// like the one-shot search it replaces.
    #[allow(clippy::too_many_arguments)]
    fn advance_request(
        &mut self,
        q: &GuardQuery<'_>,
        pos: &[usize],
        neg: &[usize],
        state: &mut ReqState,
        need: usize,
        k: usize,
        stats: &mut SearchStats,
    ) -> Result<(), SynthError> {
        if let Some(sem) = self.sem.as_mut() {
            if state.sem.is_none() && pos.len() + neg.len() <= MAX_SEM_FOOTPRINT {
                let p = sem.dom.set(&mut sem.bdd, pos.iter().map(|&s| s as u64));
                let n = sem.dom.set(&mut sem.bdd, neg.iter().map(|&s| s as u64));
                state.sem = Some(ReqSem {
                    p,
                    n,
                    classes: HashMap::default(),
                });
            }
        }
        while state.found.len() < need && !state.done {
            let bound = state.first.map_or(q.opts.max_expansions, |f| {
                (f + EXTRA_GUARD_BUDGET).min(q.opts.max_expansions)
            });
            if state.next_cand == self.cands.len() {
                if self.exhausted || self.pops >= bound {
                    state.done = true;
                    break;
                }
                match self.extend_one_pop(q, stats) {
                    Ok(()) => continue,
                    Err(SynthError::Timeout) if !state.found.is_empty() => {
                        // A timeout after the first guard finalizes the
                        // partial list (the eager search returned it).
                        state.done = true;
                        break;
                    }
                    Err(e) => return Err(e),
                }
            }
            let i = state.next_cand;
            if self.cands[i].pop > bound {
                state.done = true;
                break;
            }
            if self.cand_passes(i, q, pos, neg, &mut state.sem, stats) {
                state.found.push((*self.cands[i].expr).clone());
                if state.found.len() >= k {
                    state.done = true;
                }
                if state.first.is_none() {
                    state.first = Some(self.cands[i].pop);
                }
            }
            state.next_cand += 1;
        }
        Ok(())
    }

    /// Runs `f` with the request's scan state temporarily checked out of
    /// the pool (so `f` may extend the shared stream through `&mut self`).
    fn with_request<T>(
        &mut self,
        pos: &[usize],
        neg: &[usize],
        f: impl FnOnce(&mut Self, &mut ReqState) -> Result<T, SynthError>,
    ) -> Result<T, SynthError> {
        let key: ReqKey = (pos.to_vec(), neg.to_vec());
        let mut state = self.reqs.remove(&key).unwrap_or_default();
        let out = f(self, &mut state);
        self.reqs.insert(key, state);
        out
    }

    /// The `n`-th (0-based) covering guard for a strengthening request
    /// (`pos` truthy, `neg` falsy) under the request cap `k` — the same
    /// guard, in the same position, that the eager per-request search
    /// would have put at index `n` of its result list. Scans lazily: a
    /// merge that validates on the first guard never pays for the
    /// alternatives.
    ///
    /// # Panics
    ///
    /// Panics when a requested spec's own setup raises — that is a suite
    /// bug, not a candidate failure (same contract as `GuardOracle::new`).
    pub fn nth_covering_guard(
        &mut self,
        q: &GuardQuery<'_>,
        pos: &[usize],
        neg: &[usize],
        n: usize,
        k: usize,
        stats: &mut SearchStats,
    ) -> Result<Option<Expr>, SynthError> {
        if let Some(t) = q.sched.trace() {
            t.mark(Mark::CoveringQuery);
        }
        self.prepare_request(q, pos, neg);
        self.with_request(pos, neg, |pool, state| {
            pool.advance_request(q, pos, neg, state, n + 1, k, stats)?;
            Ok(state.found.get(n).cloned())
        })
    }

    /// The final number of covering guards a request yields under cap `k`
    /// (materializes the request's full list — the merge only calls this
    /// from the backtracking odometer, after a failed validation).
    pub fn covering_count(
        &mut self,
        q: &GuardQuery<'_>,
        pos: &[usize],
        neg: &[usize],
        k: usize,
        stats: &mut SearchStats,
    ) -> Result<usize, SynthError> {
        if let Some(t) = q.sched.trace() {
            t.mark(Mark::CoveringQuery);
        }
        self.prepare_request(q, pos, neg);
        self.with_request(pos, neg, |pool, state| {
            pool.advance_request(q, pos, neg, state, k, k, stats)?;
            Ok(state.found.len())
        })
    }

    /// Shared request entry: readiness and the suite-bug panic contract.
    fn prepare_request(&mut self, q: &GuardQuery<'_>, pos: &[usize], neg: &[usize]) {
        self.ensure_ready(q);
        for &s in pos.iter().chain(neg) {
            if let CheckSlot::Failed(msg) = &self.checks[s] {
                panic!("{msg}");
            }
        }
    }

    /// Eagerly materializes the ordered covering guards of a request, up
    /// to `k` — [`search_guards`] semantics served from the pool. Tests
    /// and one-shot callers use this; the merge goes through the lazy
    /// [`GuardPool::nth_covering_guard`].
    pub fn covering_guards(
        &mut self,
        q: &GuardQuery<'_>,
        pos: &[usize],
        neg: &[usize],
        k: usize,
        stats: &mut SearchStats,
    ) -> Result<Vec<Expr>, SynthError> {
        if let Some(t) = q.sched.trace() {
            t.mark(Mark::CoveringQuery);
        }
        self.prepare_request(q, pos, neg);
        self.with_request(pos, neg, |pool, state| {
            pool.advance_request(q, pos, neg, state, k, k, stats)?;
            Ok(state.found.clone())
        })
    }

    /// Checks an ad-hoc expression (quick candidate, negation guess)
    /// against a request, through the same lazily filled bitvectors — and,
    /// in BDD mode, through bit derivation: a negation guess whose operand
    /// already has bits never runs the interpreter. Unpreparable specs
    /// answer `false` (the lenient contract `guard_holds` always had).
    pub fn check_expr(
        &mut self,
        q: &GuardQuery<'_>,
        e: &Expr,
        pos: &[usize],
        neg: &[usize],
        stats: &mut SearchStats,
    ) -> bool {
        self.ensure_ready(q);
        // Unpreparable specs answer `false` without touching (or
        // counting) any bit — the lenient `guard_holds` contract.
        if pos
            .iter()
            .chain(neg)
            .any(|&s| matches!(self.checks[s], CheckSlot::Failed(_)))
        {
            return false;
        }
        let mut bits = self
            .extra_bits
            .get(e)
            .cloned()
            .unwrap_or_else(|| Bits::new(self.nwords));
        let complete = pos.iter().chain(neg).all(|&s| bits.evald(s));
        let deriv = if complete { None } else { self.derive_for(e) };
        let mut filled = false;
        let pass = Self::fill_and_check(
            &self.checks,
            &mut self.setup_ok,
            deriv.as_ref(),
            &mut bits,
            e,
            q,
            pos,
            neg,
            stats,
            &mut filled,
        );
        if !filled {
            // Pure word-op hit: nothing new to store — skip the AST clone
            // and re-hash (this is the merge's hottest re-check loop).
            stats.vector_hits += 1;
        } else {
            self.extra_bits.insert(e.clone(), bits);
        }
        pass
    }
}

/// `!b`, collapsing double negation.
pub fn negate(b: &Expr) -> Expr {
    match b {
        Expr::Not(inner) => (**inner).clone(),
        Expr::Lit(Value::Bool(x)) => Expr::Lit(Value::Bool(!x)),
        other => Expr::Not(Box::new(other.clone())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbsyn_interp::SetupStep;
    use rbsyn_lang::builder::*;
    use rbsyn_stdlib::EnvBuilder;

    fn env_with_post() -> (InterpEnv, rbsyn_lang::ClassId) {
        let mut b = EnvBuilder::with_stdlib();
        let post = b.define_model("Post", &[("author", Ty::Str), ("slug", Ty::Str)]);
        b.add_const(Value::Class(post));
        (b.finish(), post)
    }

    fn call_spec(name: &str, steps: Vec<SetupStep>) -> Spec {
        let mut steps = steps;
        steps.push(SetupStep::CallTarget {
            bind: "xr".into(),
            args: vec![],
        });
        Spec::new(name, steps, vec![])
    }

    #[test]
    fn trivial_guard_is_true() {
        let (env, _) = env_with_post();
        let s = call_spec("s", vec![]);
        let mut stats = SearchStats::default();
        let g = synth_guard(
            &env,
            "m",
            &[],
            &[&s],
            &[],
            &[],
            &Options::default(),
            &Scheduler::sequential(),
            &mut stats,
        )
        .unwrap();
        assert_eq!(g.compact(), "true");
    }

    #[test]
    fn known_negations_are_tried_first() {
        let (env, post) = env_with_post();
        let seeded = call_spec(
            "seeded",
            vec![SetupStep::Exec(call(cls(post), "create", [hash([])]))],
        );
        let empty = call_spec("empty", vec![]);
        let known = vec![call(cls(post), "exists?", [])];
        let mut stats = SearchStats::default();
        // Guard for `empty` against `seeded`: !Post.exists? — found via the
        // negation fast path without search.
        let g = synth_guard(
            &env,
            "m",
            &[],
            &[&empty],
            &[&seeded],
            &known,
            &Options::default(),
            &Scheduler::sequential(),
            &mut stats,
        )
        .unwrap();
        assert_eq!(g.compact(), "!Post.exists?");
        assert!(stats.popped == 0, "no search was needed");
    }

    #[test]
    fn searches_when_quick_candidates_fail() {
        let (env, post) = env_with_post();
        let alice = call_spec(
            "alice",
            vec![SetupStep::Exec(call(
                cls(post),
                "create",
                [hash([("author", str_("alice"))])],
            ))],
        );
        let empty = call_spec("none", vec![]);
        let mut stats = SearchStats::default();
        let g = synth_guard(
            &env,
            "m",
            &[],
            &[&alice],
            &[&empty],
            &[],
            &Options::default(),
            &Scheduler::sequential(),
            &mut stats,
        )
        .unwrap();
        // Any Post-emptiness test works (`Post.count.positive?`,
        // `Post.exists?(…)`); verify semantically.
        assert!(g.compact().contains("Post."), "got {}", g.compact());
        let oracle = GuardOracle::new(&env, &[&alice], &[&empty]);
        let p = Program::new("m", [], g);
        assert!(oracle.test(&env, &p).success);
    }

    #[test]
    fn search_guards_returns_alternatives() {
        let (env, post) = env_with_post();
        let alice = call_spec(
            "alice",
            vec![SetupStep::Exec(call(
                cls(post),
                "create",
                [hash([("author", str_("alice"))])],
            ))],
        );
        let empty = call_spec("none", vec![]);
        let oracle = GuardOracle::new(&env, &[&alice], &[&empty]);
        let mut stats = SearchStats::default();
        let gs = search_guards(
            &env,
            "m",
            &[],
            &oracle,
            4,
            &Options::default(),
            &Scheduler::sequential(),
            &mut stats,
        )
        .unwrap();
        assert!(gs.len() >= 2, "expected several guards, got {gs:?}");
        // All of them pass the oracle.
        for g in &gs {
            let p = Program::new("m", [], g.clone());
            assert!(oracle.test(&env, &p).success, "bad guard {}", g.compact());
        }
        // And they are distinct.
        let mut keys: Vec<String> = gs.iter().map(|g| g.compact()).collect();
        keys.dedup();
        assert_eq!(keys.len(), gs.len());
    }

    #[test]
    fn negate_collapses() {
        assert_eq!(negate(&not(var("b"))).compact(), "b");
        assert_eq!(negate(&var("b")).compact(), "!b");
        assert_eq!(negate(&true_()).compact(), "false");
    }

    #[test]
    fn wide_bits_round_trip() {
        let mut b = Bits::new(2);
        assert!(!b.any_evald());
        b.record(0, true, true);
        b.record(64, true, false);
        b.record(100, false, false);
        assert!(b.any_evald());
        assert!(b.evald(0) && b.ok(0) && b.truthy(0));
        assert!(b.evald(64) && b.ok(64) && !b.truthy(64));
        assert!(b.evald(100) && !b.ok(100) && !b.truthy(100));
        assert!(!b.evald(63) && !b.evald(101));
    }

    /// Two specs a guard must separate: seeded world vs empty world.
    fn pool_fixture() -> (InterpEnv, Vec<Spec>) {
        let (env, post) = env_with_post();
        let seeded = call_spec(
            "seeded",
            vec![SetupStep::Exec(call(
                cls(post),
                "create",
                [hash([("author", str_("alice"))])],
            ))],
        );
        let empty = call_spec("none", vec![]);
        (env, vec![seeded, empty])
    }

    #[test]
    fn pool_covering_matches_the_per_request_search() {
        let (env, specs) = pool_fixture();
        let opts = Options::default();
        let sched = Scheduler::sequential();
        let q = GuardQuery {
            env: &env,
            name: Symbol::intern("m"),
            params: &[],
            specs: &specs,
            opts: &opts,
            sched: &sched,
        };
        // Reference: the eager per-request search.
        let oracle = GuardOracle::new(&env, &[&specs[0]], &[&specs[1]]);
        let mut ref_stats = SearchStats::default();
        let reference = search_guards(
            &env,
            "m",
            &[],
            &oracle,
            4,
            &opts,
            &Scheduler::sequential(),
            &mut ref_stats,
        )
        .unwrap();
        // Pool: same guards, same order — eager and lazy agree.
        let mut pool = GuardPool::new();
        let mut stats = SearchStats::default();
        let pooled = pool.covering_guards(&q, &[0], &[1], 4, &mut stats).unwrap();
        assert_eq!(
            pooled.iter().map(|g| g.compact()).collect::<Vec<_>>(),
            reference.iter().map(|g| g.compact()).collect::<Vec<_>>(),
            "pool covering must reproduce the per-request search"
        );
        for (n, g) in pooled.iter().enumerate() {
            let nth = pool
                .nth_covering_guard(&q, &[0], &[1], n, 4, &mut stats)
                .unwrap();
            assert_eq!(nth.as_ref().map(|e| e.compact()), Some(g.compact()));
        }
        assert_eq!(
            pool.covering_count(&q, &[0], &[1], 4, &mut stats).unwrap(),
            pooled.len()
        );
    }

    #[test]
    fn pool_reverse_request_reuses_bitvectors() {
        let (env, specs) = pool_fixture();
        let opts = Options::default();
        let sched = Scheduler::sequential();
        let q = GuardQuery {
            env: &env,
            name: Symbol::intern("m"),
            params: &[],
            specs: &specs,
            opts: &opts,
            sched: &sched,
        };
        let mut pool = GuardPool::new();
        let mut stats = SearchStats::default();
        let fwd = pool
            .nth_covering_guard(&q, &[0], &[1], 0, 1, &mut stats)
            .unwrap()
            .expect("a separating guard exists");
        let tested_after_fwd = stats.tested;
        // The reverse request re-walks already-judged candidates: any
        // candidate whose bits are fully known answers from the vector.
        let rev = pool
            .nth_covering_guard(&q, &[1], &[0], 0, 1, &mut stats)
            .unwrap()
            .expect("the reverse guard exists");
        assert_ne!(fwd.compact(), rev.compact());
        assert!(stats.tested >= tested_after_fwd);
        // Ad-hoc checks ride the same bitvectors: the found guards really
        // cover their requests, and their negations cover the reverse.
        assert!(pool.check_expr(&q, &fwd, &[0], &[1], &mut stats));
        assert!(pool.check_expr(&q, &negate(&fwd), &[1], &[0], &mut stats));
        assert!(!pool.check_expr(&q, &fwd, &[1], &[0], &mut stats));
        // Repeating an ad-hoc check is a pure vector hit.
        let hits = stats.vector_hits;
        assert!(pool.check_expr(&q, &fwd, &[0], &[1], &mut stats));
        assert_eq!(stats.vector_hits, hits + 1);
    }

    /// A 65-spec problem — one spec past the inline bitvector word — whose
    /// first 32 specs seed a `Post` and whose rest are empty. The same
    /// unified pool engine (spilled words + BDD semantics) must answer it;
    /// the eager per-request search is kept only as the reference.
    fn oversized_fixture() -> (InterpEnv, Vec<Spec>) {
        let (env, post) = env_with_post();
        let mut specs = Vec::with_capacity(65);
        for i in 0..65 {
            if i < 32 {
                specs.push(call_spec(
                    "seeded",
                    vec![SetupStep::Exec(call(
                        cls(post),
                        "create",
                        [hash([("author", str_("alice"))])],
                    ))],
                ));
            } else {
                specs.push(call_spec("empty", vec![]));
            }
        }
        (env, specs)
    }

    #[test]
    fn oversized_pool_matches_the_per_request_search() {
        let (env, specs) = oversized_fixture();
        assert!(specs.len() > 64, "fixture must overflow one bitvector word");
        let opts = Options::default();
        let sched = Scheduler::sequential();
        let q = GuardQuery {
            env: &env,
            name: Symbol::intern("m"),
            params: &[],
            specs: &specs,
            opts: &opts,
            sched: &sched,
        };
        // Reference: the eager per-request search on the same request.
        let oracle = GuardOracle::new(&env, &[&specs[0]], &[&specs[64]]);
        let mut ref_stats = SearchStats::default();
        let reference = search_guards(
            &env,
            "m",
            &[],
            &oracle,
            4,
            &opts,
            &Scheduler::sequential(),
            &mut ref_stats,
        )
        .unwrap();
        assert!(!reference.is_empty(), "a separating guard exists");

        let mut pool = GuardPool::new();
        let mut stats = SearchStats::default();
        let pooled = pool
            .covering_guards(&q, &[0], &[64], 4, &mut stats)
            .unwrap();
        assert_eq!(
            pooled.iter().map(|g| g.compact()).collect::<Vec<_>>(),
            reference.iter().map(|g| g.compact()).collect::<Vec<_>>(),
            "the unified engine must reproduce the per-request search"
        );
        // The request latches: nth/count answer from the stored scan
        // without extending the stream.
        let popped = stats.popped;
        for (n, g) in pooled.iter().enumerate() {
            let nth = pool
                .nth_covering_guard(&q, &[0], &[64], n, 4, &mut stats)
                .unwrap();
            assert_eq!(nth.as_ref().map(|e| e.compact()), Some(g.compact()));
        }
        assert_eq!(
            pool.covering_count(&q, &[0], &[64], 4, &mut stats).unwrap(),
            pooled.len()
        );
        assert_eq!(
            stats.popped, popped,
            "request state is reused, not re-searched"
        );
    }

    #[test]
    fn oversized_check_expr_agrees_with_oracle() {
        let (env, specs) = oversized_fixture();
        let opts = Options::default();
        let sched = Scheduler::sequential();
        let q = GuardQuery {
            env: &env,
            name: Symbol::intern("m"),
            params: &[],
            specs: &specs,
            opts: &opts,
            sched: &sched,
        };
        let post = env.table.hierarchy.find("Post").unwrap();
        let exists = call(cls(post), "exists?", []);
        let mut pool = GuardPool::new();
        let mut stats = SearchStats::default();
        // Bits span the whole 65-spec index range, including spec 64.
        assert!(pool.check_expr(&q, &exists, &[0, 31], &[32, 64], &mut stats));
        assert!(!pool.check_expr(&q, &exists, &[64], &[0], &mut stats));
        assert!(pool.check_expr(&q, &negate(&exists), &[64], &[0], &mut stats));
        assert!(pool.check_expr(&q, &true_(), &[0, 64], &[], &mut stats));
        assert!(!pool.check_expr(&q, &false_(), &[0, 64], &[], &mut stats));
    }

    /// The A/B gate at unit scope: `--no-bdd` must produce the same
    /// guards and the same effort counters (`guard_dedup`/`bdd_nodes`
    /// excepted — they are the BDD's own telemetry), on a request wide
    /// enough to exercise the spilled-word path.
    #[test]
    fn bdd_and_word_covering_agree() {
        let (env, specs) = oversized_fixture();
        let sched = Scheduler::sequential();
        let run = |bdd: bool| {
            let opts = Options {
                bdd,
                ..Options::default()
            };
            let q = GuardQuery {
                env: &env,
                name: Symbol::intern("m"),
                params: &[],
                specs: &specs,
                opts: &opts,
                sched: &sched,
            };
            let mut pool = GuardPool::new();
            let mut stats = SearchStats::default();
            let guards = pool
                .covering_guards(&q, &[0, 31], &[32, 64], 4, &mut stats)
                .unwrap();
            let texts: Vec<String> = guards.iter().map(|g| g.compact()).collect();
            (texts, stats)
        };
        let (on, s_on) = run(true);
        let (off, s_off) = run(false);
        assert_eq!(on, off, "the BDD decider and word arithmetic agree");
        assert!(!on.is_empty(), "a separating guard exists");
        assert_eq!(
            (
                s_on.popped,
                s_on.expanded,
                s_on.tested,
                s_on.deduped,
                s_on.vector_hits
            ),
            (
                s_off.popped,
                s_off.expanded,
                s_off.tested,
                s_off.deduped,
                s_off.vector_hits
            ),
            "effort counters are BDD-mode independent"
        );
        assert!(s_on.guard_dedup > 0, "semantically equal candidates dedup");
        assert!(s_on.bdd_nodes > 0, "the vector forest is populated");
        assert_eq!(s_off.guard_dedup, 0, "off mode never touches the BDD");
        assert_eq!(s_off.bdd_nodes, 0);
    }

    #[test]
    fn pool_guard_holds_semantics() {
        let (env, specs) = pool_fixture();
        let opts = Options::default();
        let sched = Scheduler::sequential();
        let q = GuardQuery {
            env: &env,
            name: Symbol::intern("m"),
            params: &[],
            specs: &specs,
            opts: &opts,
            sched: &sched,
        };
        let mut pool = GuardPool::new();
        let mut stats = SearchStats::default();
        // `true` holds under every setup; `false` under none (pos-only
        // requests are the rule-6/7 `guard_holds` checks).
        assert!(pool.check_expr(&q, &true_(), &[0, 1], &[], &mut stats));
        assert!(!pool.check_expr(&q, &false_(), &[0, 1], &[], &mut stats));
    }
}
