//! Branch-condition synthesis (§3.3) and the bitvector guard pool.
//!
//! A guard for spec set `Ψ₁` against `Ψ₂` is a boolean expression that
//! evaluates truthy under every setup in `Ψ₁` and falsy under every setup
//! in `Ψ₂` (`def m(x) = b ⊢ Sᵢ; assert x_r ⇓ v` and the negated check).
//!
//! Per the §4 optimizations, cheap candidates are tried before falling back
//! to a fresh type-guided search: the constants `true`/`false`, previously
//! synthesized conditionals, and their negations ("the condition in one
//! spec often turns out to be the negation of the condition in another").
//!
//! **The guard pool.** A merge issues *many* strengthening requests
//! (every Rule-3 pair needs two, across every `⊕` order), and every
//! request used to launch its own work-list search over what is — because
//! guard oracles never report effects, so S-Eff can never reorder the
//! frontier — always the *same* boolean candidate stream. [`GuardPool`]
//! exploits that: it enumerates the stream **once per problem** (lazily,
//! as far as the deepest request needs) and records, per evaluable
//! candidate, a pass/fail **bitvector** over the problem's specs — bit
//! `i` answers "does this candidate run without error under spec `i`'s
//! setup, and is `x_r` truthy?". One interpreter run fills both the
//! truthy and the ok bit for a spec, and a request `(Ψ₁, Ψ₂)` is then
//! decided by `AND`/`NOT` over `u64` words: ok∧truthy on every `Ψ₁` bit,
//! ok∧¬truthy on every `Ψ₂` bit. Bits are filled lazily per (candidate,
//! spec) — exactly the specs a request touches — so re-requests,
//! reversed pairs and backtracking re-checks are pure bit arithmetic
//! ([`SearchStats::vector_hits`]).
//!
//! [`search_guards`] (the per-request search the pool replaced on the
//! merge path) remains for single-shot callers: it collects *several*
//! oracle-passing guards because the smallest one can be semantically
//! wrong for the final program (only running the merged program against
//! all specs decides, §3.4), so the merge backtracks over alternatives —
//! the pool's [`GuardPool::covering_guards`] reproduces exactly that
//! candidate order and stopping rule.

use crate::cache::CacheHandle;
use crate::engine::{Frontier, Scheduler, SearchStats};
use crate::error::SynthError;
use crate::expand::Expander;
use crate::generate::{expand_compute, generate_many, GuardOracle, Oracle};
use crate::infer::Gamma;
use crate::options::Options;
use rbsyn_interp::{InterpEnv, PreparedSpec, Spec, SpecOutcome};
use rbsyn_lang::{Expr, ExprId, FxBuild, Program, Symbol, Ty, Value};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Instant;

/// Extra work-list pops to spend hunting alternative guards after the
/// first oracle-passing one. Each pop can test hundreds of candidates, so
/// this stays small; the odometer only needs a handful of alternatives.
const EXTRA_GUARD_BUDGET: u64 = 300;

/// Searches for up to `k` guards satisfying `oracle`, by ascending size.
/// `sched` carries the deadline, cancellation token and memoization handle,
/// as in [`crate::generate::generate`].
#[allow(clippy::too_many_arguments)]
pub fn search_guards(
    env: &InterpEnv,
    method_name: &str,
    params: &[(Symbol, Ty)],
    oracle: &GuardOracle,
    k: usize,
    opts: &Options,
    sched: &Scheduler,
    stats: &mut SearchStats,
) -> Result<Vec<Expr>, SynthError> {
    match generate_many(
        env,
        method_name,
        params,
        &Ty::Bool,
        oracle,
        opts,
        opts.max_guard_size,
        sched,
        stats,
        k,
        EXTRA_GUARD_BUDGET,
    ) {
        Ok(gs) => Ok(gs),
        Err(SynthError::Timeout) => Err(SynthError::Timeout),
        Err(_) => Ok(Vec::new()),
    }
}

/// Synthesizes a single guard that is truthy under `pos` setups and falsy
/// under `neg` setups. `known` are previously synthesized conditionals to
/// try (with their negations) before searching.
#[allow(clippy::too_many_arguments)]
pub fn synth_guard(
    env: &InterpEnv,
    method_name: &str,
    params: &[(Symbol, Ty)],
    pos: &[&Spec],
    neg: &[&Spec],
    known: &[Expr],
    opts: &Options,
    sched: &Scheduler,
    stats: &mut SearchStats,
) -> Result<Expr, SynthError> {
    let oracle = GuardOracle::new(env, pos, neg);
    let name_sym = Symbol::intern(method_name);
    let param_syms: Vec<Symbol> = params.iter().map(|(n, _)| *n).collect();

    // Fast path: constants, known conditionals, and negations thereof.
    let mut quick: Vec<Expr> = vec![Expr::Lit(Value::Bool(true)), Expr::Lit(Value::Bool(false))];
    for k in known {
        quick.push(k.clone());
        quick.push(negate(k));
    }
    for cand in quick {
        stats.tested += 1;
        let p = Program::from_parts(name_sym, param_syms.clone(), cand.clone());
        if oracle.test(env, &p).success {
            return Ok(cand);
        }
    }

    // Fall back to type-guided search at type Bool (effect guidance is
    // never used for guards; GuardOracle reports no effects, so S-Eff
    // cannot fire).
    let mut found = search_guards(env, method_name, params, &oracle, 1, opts, sched, stats)?;
    found.pop().ok_or(SynthError::GuardNotFound)
}

/// Everything a [`GuardPool`] needs from the enclosing synthesis run,
/// passed by reference on every call so the pool itself stays a plain
/// owned value inside the merge context.
pub struct GuardQuery<'a> {
    /// Interpreter environment.
    pub env: &'a InterpEnv,
    /// Method name (guard programs are built under it), pre-interned so
    /// per-candidate program construction never touches the symbol table.
    pub name: Symbol,
    /// Method parameters.
    pub params: &'a [(Symbol, Ty)],
    /// All specs of the problem — bit `i` of every vector refers to
    /// `specs[i]`.
    pub specs: &'a [Spec],
    /// Search options (guard size bound, pop budget, strategy).
    pub opts: &'a Options,
    /// Deadline/cancellation and the run's memoization handle.
    pub sched: &'a Scheduler,
}

/// Per-spec prepared check, or why it cannot be evaluated.
enum CheckSlot {
    /// `assert x_r` over the spec's prepared setup.
    Ready(Box<PreparedSpec>),
    /// The spec's own setup failed (a suite bug): the message raised when
    /// a covering request actually touches this spec, mirroring the panic
    /// `GuardOracle::new` used to raise at request time.
    Failed(String),
}

/// Lazily filled pass/fail bitvector of one guard candidate over the
/// problem's specs: `evald` marks which bits are known, `ok` whether the
/// candidate ran to the assert without error, `truthy` whether `x_r` was
/// truthy. One interpreter run per bit, ever; everything else is word
/// arithmetic.
#[derive(Clone, Copy, Default)]
struct Bits {
    ok: u64,
    truthy: u64,
    evald: u64,
}

/// One enumerated evaluable boolean candidate: its hash-consed identity,
/// the work-list pop that produced it (for per-request stopping budgets),
/// and its lazily filled bitvector.
struct GuardCand {
    expr: Arc<Expr>,
    pop: u64,
    bits: Bits,
}

/// A strengthening request's lazy scan state: how far into the shared
/// candidate stream it has looked, the covering guards found so far, and
/// whether its (per-request) stopping rule has latched.
#[derive(Default)]
struct ReqState {
    found: Vec<Expr>,
    next_cand: usize,
    first: Option<u64>,
    done: bool,
}

/// A strengthening request: spec indices that must be truthy / falsy.
type ReqKey = (Vec<usize>, Vec<usize>);

/// The per-problem guard-covering pool (see the [module docs](self)).
///
/// The pool is deterministic by construction: the candidate stream is the
/// same oracle-independent enumeration every per-request search performed
/// (same expander, same memoized expansion lists, same frontier strategy,
/// same dedup), so [`GuardPool::nth_covering_guard`] returns byte-identical
/// guards in byte-identical order — it just never re-enumerates or
/// re-judges anything, and it is **lazy twice over**: the stream extends
/// only as far as the deepest request needs, and a request only scans far
/// enough to answer the guard index the merge actually consumes. The old
/// eager per-request search burned its worst time hunting alternatives
/// #2–#5 plus a 300-pop tail for an odometer that rarely turns; here that
/// work is deferred until a failed validation actually asks for it.
pub struct GuardPool {
    ready: bool,
    checks: Vec<CheckSlot>,
    frontier: Option<Frontier<'static>>,
    seen: HashSet<ExprId, FxBuild>,
    gamma: Option<Gamma>,
    gamma_fp: u128,
    pops: u64,
    exhausted: bool,
    cands: Vec<GuardCand>,
    /// Per-request lazy scan state.
    reqs: HashMap<ReqKey, ReqState, FxBuild>,
    /// Bitvectors for ad-hoc expressions (the merge's quick candidates and
    /// rule-6/7 negation guesses), keyed structurally.
    extra_bits: HashMap<Expr, Bits, FxBuild>,
    /// Throwaway memo handle for uncached runs — one per pool, so the
    /// enumeration stream is identical with and without the shared cache.
    local_cache: Option<CacheHandle>,
}

impl Default for GuardPool {
    fn default() -> GuardPool {
        GuardPool::new()
    }
}

impl GuardPool {
    /// An empty pool; all state (prepared checks, the enumeration
    /// frontier) is created lazily on the first request, so merges that
    /// never need a guard pay nothing.
    pub fn new() -> GuardPool {
        GuardPool {
            ready: false,
            checks: Vec::new(),
            frontier: None,
            seen: HashSet::default(),
            gamma: None,
            gamma_fp: 0,
            pops: 0,
            exhausted: false,
            cands: Vec::new(),
            reqs: HashMap::default(),
            extra_bits: HashMap::default(),
            local_cache: None,
        }
    }

    /// The run's memoization handle, or this pool's private throwaway one.
    fn handle(&mut self, q: &GuardQuery<'_>) -> CacheHandle {
        if let Some(h) = q.sched.cache() {
            return h.clone();
        }
        self.local_cache
            .get_or_insert_with(CacheHandle::private)
            .clone()
    }

    fn ensure_ready(&mut self, q: &GuardQuery<'_>) {
        if self.ready {
            return;
        }
        self.ready = true;
        self.checks = q
            .specs
            .iter()
            .map(|s| match PreparedSpec::prepare(q.env, s) {
                Ok(p) => {
                    let xr = p.result_var();
                    CheckSlot::Ready(Box::new(p.with_asserts(vec![Expr::Var(xr)])))
                }
                Err(e) => CheckSlot::Failed(format!("spec {:?} setup failed: {e}", s.name)),
            })
            .collect();
        let gamma = Gamma::from_params(q.params);
        self.gamma_fp = crate::cache::gamma_fingerprint(gamma.bindings());
        self.gamma = Some(gamma);
        let handle = self.handle(q);
        let mut frontier = Frontier::new(q.opts.strategy.strategy());
        let root = handle.intern_full(Expr::Hole(Ty::Bool));
        frontier.push(0, 1, root.id, root.expr);
        self.frontier = Some(frontier);
    }

    /// Specs exceed one bitvector word: fall back to the legacy
    /// per-request search (correct, just without sharing). No Table-1
    /// benchmark comes close; this keeps arbitrary problems working.
    fn oversized(&self, q: &GuardQuery<'_>) -> bool {
        q.specs.len() > 64
    }

    /// Advances the shared enumeration by one work-list pop, recording
    /// evaluable candidates (unjudged) and re-enqueueing partial ones —
    /// the exact loop body of the per-request search, minus S-Eff (guard
    /// oracles never report effects, so it could never fire).
    fn extend_one_pop(
        &mut self,
        q: &GuardQuery<'_>,
        stats: &mut SearchStats,
    ) -> Result<(), SynthError> {
        let Some((pri, seq, item)) = self.frontier.as_mut().and_then(|f| f.pop_ranked()) else {
            self.exhausted = true;
            return Ok(());
        };
        self.pops += 1;
        stats.popped += 1;
        if self.pops.is_multiple_of(64) && q.sched.should_stop() {
            // Roll the un-expanded item (and the pop count) back so a
            // hypothetical post-deadline continuation resumes exactly
            // here; the caller decides whether the timeout is fatal.
            self.pops -= 1;
            stats.popped -= 1;
            self.frontier
                .as_mut()
                .expect("pool is ready")
                .requeue(pri, seq, item);
            return Err(SynthError::Timeout);
        }
        let handle = self.handle(q);
        let expander = Expander::new(&q.env.table, q.opts, &handle);
        let gamma_fp = self.gamma_fp;
        let expansions = {
            let gamma = self.gamma.as_mut().expect("pool is ready");
            handle.expansions(gamma_fp, item.id, stats, |_| {
                expand_compute(&expander, gamma, q.env, q.opts, &handle, &item.expr)
            })
        };
        for cand in expansions.iter() {
            if !self.seen.insert(cand.id) {
                stats.deduped += 1;
                continue;
            }
            if cand.evaluable {
                self.cands.push(GuardCand {
                    expr: Arc::clone(&cand.expr),
                    pop: self.pops,
                    bits: Bits::default(),
                });
            } else if cand.size as usize <= q.opts.max_guard_size {
                self.frontier.as_mut().expect("pool is ready").push(
                    0,
                    cand.size as usize,
                    cand.id,
                    Arc::clone(&cand.expr),
                );
            }
        }
        Ok(())
    }

    /// Computes (lazily) whether candidate bits satisfy a request.
    #[allow(clippy::too_many_arguments)]
    fn bits_satisfy(
        checks: &[CheckSlot],
        bits: &mut Bits,
        expr: &Expr,
        q: &GuardQuery<'_>,
        pos: &[usize],
        neg: &[usize],
        stats: &mut SearchStats,
    ) -> bool {
        let mut program: Option<Program> = None;
        for (specs, want_truthy) in [(pos, true), (neg, false)] {
            for &s in specs {
                let mask = 1u64 << s;
                if bits.evald & mask == 0 {
                    let check = match &checks[s] {
                        CheckSlot::Ready(p) => p,
                        CheckSlot::Failed(_) => return false,
                    };
                    let p = program.get_or_insert_with(|| {
                        Program::from_parts(
                            q.name,
                            q.params.iter().map(|(n, _)| *n).collect(),
                            expr.clone(),
                        )
                    });
                    let started = Instant::now();
                    let outcome = check.run(q.env, p);
                    stats.eval_nanos = stats
                        .eval_nanos
                        .saturating_add(started.elapsed().as_nanos() as u64);
                    bits.evald |= mask;
                    match outcome {
                        SpecOutcome::Passed { .. } => {
                            bits.ok |= mask;
                            bits.truthy |= mask;
                        }
                        SpecOutcome::Failed { .. } => bits.ok |= mask,
                        SpecOutcome::SetupError(_) => {}
                    }
                }
                let ok = bits.ok & mask != 0;
                let truthy = bits.truthy & mask != 0;
                if !(ok && truthy == want_truthy) {
                    return false;
                }
            }
        }
        true
    }

    /// Does candidate `i` cover the request? Fills missing bits,
    /// maintains the tested/vector-hit counters.
    fn cand_passes(
        &mut self,
        i: usize,
        q: &GuardQuery<'_>,
        pos: &[usize],
        neg: &[usize],
        stats: &mut SearchStats,
    ) -> bool {
        let mut bits = self.cands[i].bits;
        let before = bits.evald;
        let expr = Arc::clone(&self.cands[i].expr);
        let pass = Self::bits_satisfy(&self.checks, &mut bits, &expr, q, pos, neg, stats);
        self.cands[i].bits = bits;
        if before == 0 && bits.evald != 0 {
            stats.tested += 1;
        } else if bits.evald == before {
            stats.vector_hits += 1;
        }
        pass
    }

    /// Advances one request's lazy scan over the shared stream until it
    /// has found `need` guards, hit its per-request stopping rule (`k`
    /// guards, or [`EXTRA_GUARD_BUDGET`] pops past the first one, or the
    /// pop budget, or stream exhaustion), or timed out. The stopping rule
    /// latches — once a request is done, its guard list is final, exactly
    /// like the one-shot search it replaces.
    #[allow(clippy::too_many_arguments)]
    fn advance_request(
        &mut self,
        q: &GuardQuery<'_>,
        pos: &[usize],
        neg: &[usize],
        state: &mut ReqState,
        need: usize,
        k: usize,
        stats: &mut SearchStats,
    ) -> Result<(), SynthError> {
        while state.found.len() < need && !state.done {
            let bound = state.first.map_or(q.opts.max_expansions, |f| {
                (f + EXTRA_GUARD_BUDGET).min(q.opts.max_expansions)
            });
            if state.next_cand == self.cands.len() {
                if self.exhausted || self.pops >= bound {
                    state.done = true;
                    break;
                }
                match self.extend_one_pop(q, stats) {
                    Ok(()) => continue,
                    Err(SynthError::Timeout) if !state.found.is_empty() => {
                        // A timeout after the first guard finalizes the
                        // partial list (the eager search returned it).
                        state.done = true;
                        break;
                    }
                    Err(e) => return Err(e),
                }
            }
            let i = state.next_cand;
            if self.cands[i].pop > bound {
                state.done = true;
                break;
            }
            if self.cand_passes(i, q, pos, neg, stats) {
                if std::env::var("RBSYN_TRACE").is_ok() {
                    eprintln!(
                        "[rbsyn]   guard-pool {pos:?}/{neg:?}: passer #{} `{}` at cand {} (pop {}, stream {} cands / {} pops)",
                        state.found.len(),
                        self.cands[i].expr.compact(),
                        i,
                        self.cands[i].pop,
                        self.cands.len(),
                        self.pops,
                    );
                }
                state.found.push((*self.cands[i].expr).clone());
                if state.found.len() >= k {
                    state.done = true;
                }
                if state.first.is_none() {
                    state.first = Some(self.cands[i].pop);
                }
            }
            state.next_cand += 1;
        }
        Ok(())
    }

    /// Runs `f` with the request's scan state temporarily checked out of
    /// the pool (so `f` may extend the shared stream through `&mut self`).
    fn with_request<T>(
        &mut self,
        pos: &[usize],
        neg: &[usize],
        f: impl FnOnce(&mut Self, &mut ReqState) -> Result<T, SynthError>,
    ) -> Result<T, SynthError> {
        let key: ReqKey = (pos.to_vec(), neg.to_vec());
        let mut state = self.reqs.remove(&key).unwrap_or_default();
        let out = f(self, &mut state);
        self.reqs.insert(key, state);
        out
    }

    /// The `n`-th (0-based) covering guard for a strengthening request
    /// (`pos` truthy, `neg` falsy) under the request cap `k` — the same
    /// guard, in the same position, that the eager per-request search
    /// would have put at index `n` of its result list. Scans lazily: a
    /// merge that validates on the first guard never pays for the
    /// alternatives.
    ///
    /// # Panics
    ///
    /// Panics when a requested spec's own setup raises — that is a suite
    /// bug, not a candidate failure (same contract as `GuardOracle::new`).
    pub fn nth_covering_guard(
        &mut self,
        q: &GuardQuery<'_>,
        pos: &[usize],
        neg: &[usize],
        n: usize,
        k: usize,
        stats: &mut SearchStats,
    ) -> Result<Option<Expr>, SynthError> {
        self.prepare_request(q, pos, neg, k, stats)?;
        self.with_request(pos, neg, |pool, state| {
            pool.advance_request(q, pos, neg, state, n + 1, k, stats)?;
            Ok(state.found.get(n).cloned())
        })
    }

    /// The final number of covering guards a request yields under cap `k`
    /// (materializes the request's full list — the merge only calls this
    /// from the backtracking odometer, after a failed validation).
    pub fn covering_count(
        &mut self,
        q: &GuardQuery<'_>,
        pos: &[usize],
        neg: &[usize],
        k: usize,
        stats: &mut SearchStats,
    ) -> Result<usize, SynthError> {
        self.prepare_request(q, pos, neg, k, stats)?;
        self.with_request(pos, neg, |pool, state| {
            pool.advance_request(q, pos, neg, state, k, k, stats)?;
            Ok(state.found.len())
        })
    }

    /// Shared request entry: readiness, the suite-bug panic contract, and
    /// the oversized-problem fallback (legacy search materialized into the
    /// request state once).
    fn prepare_request(
        &mut self,
        q: &GuardQuery<'_>,
        pos: &[usize],
        neg: &[usize],
        k: usize,
        stats: &mut SearchStats,
    ) -> Result<(), SynthError> {
        if self.oversized(q) {
            let key: ReqKey = (pos.to_vec(), neg.to_vec());
            if !self.reqs.contains_key(&key) {
                let found = self.covering_guards_legacy(q, pos, neg, k, stats)?;
                self.reqs.insert(
                    key,
                    ReqState {
                        found,
                        next_cand: 0,
                        first: None,
                        done: true,
                    },
                );
            }
            return Ok(());
        }
        self.ensure_ready(q);
        for &s in pos.iter().chain(neg) {
            if let CheckSlot::Failed(msg) = &self.checks[s] {
                panic!("{msg}");
            }
        }
        Ok(())
    }

    /// Eagerly materializes the ordered covering guards of a request, up
    /// to `k` — [`search_guards`] semantics served from the pool. Tests
    /// and one-shot callers use this; the merge goes through the lazy
    /// [`GuardPool::nth_covering_guard`].
    pub fn covering_guards(
        &mut self,
        q: &GuardQuery<'_>,
        pos: &[usize],
        neg: &[usize],
        k: usize,
        stats: &mut SearchStats,
    ) -> Result<Vec<Expr>, SynthError> {
        self.prepare_request(q, pos, neg, k, stats)?;
        self.with_request(pos, neg, |pool, state| {
            pool.advance_request(q, pos, neg, state, k, k, stats)?;
            Ok(state.found.clone())
        })
    }

    /// Checks an ad-hoc expression (quick candidate, negation guess)
    /// against a request, through the same lazily filled bitvectors.
    /// Unpreparable specs answer `false` (the lenient contract
    /// `guard_holds` always had).
    pub fn check_expr(
        &mut self,
        q: &GuardQuery<'_>,
        e: &Expr,
        pos: &[usize],
        neg: &[usize],
        stats: &mut SearchStats,
    ) -> bool {
        if self.oversized(q) {
            return self.check_expr_legacy(q, e, pos, neg, stats);
        }
        self.ensure_ready(q);
        // Unpreparable specs answer `false` without touching (or
        // counting) any bit — the lenient `guard_holds` contract.
        if pos
            .iter()
            .chain(neg)
            .any(|&s| matches!(self.checks[s], CheckSlot::Failed(_)))
        {
            return false;
        }
        let mut bits = self.extra_bits.get(e).copied().unwrap_or_default();
        let before = bits.evald;
        let pass = Self::bits_satisfy(&self.checks, &mut bits, e, q, pos, neg, stats);
        if bits.evald == before {
            // Pure word-op hit: nothing new to store — skip the AST clone
            // and re-hash (this is the merge's hottest re-check loop).
            stats.vector_hits += 1;
        } else {
            self.extra_bits.insert(e.clone(), bits);
        }
        pass
    }

    /// Legacy per-request search for problems with more than 64 specs.
    fn covering_guards_legacy(
        &mut self,
        q: &GuardQuery<'_>,
        pos: &[usize],
        neg: &[usize],
        k: usize,
        stats: &mut SearchStats,
    ) -> Result<Vec<Expr>, SynthError> {
        let pos: Vec<&Spec> = pos.iter().map(|&i| &q.specs[i]).collect();
        let neg: Vec<&Spec> = neg.iter().map(|&i| &q.specs[i]).collect();
        let oracle = GuardOracle::new(q.env, &pos, &neg);
        search_guards(
            q.env,
            q.name.as_str(),
            q.params,
            &oracle,
            k,
            q.opts,
            q.sched,
            stats,
        )
    }

    /// Legacy direct oracle check for problems with more than 64 specs.
    fn check_expr_legacy(
        &mut self,
        q: &GuardQuery<'_>,
        e: &Expr,
        pos: &[usize],
        neg: &[usize],
        stats: &mut SearchStats,
    ) -> bool {
        let all_preparable = pos
            .iter()
            .chain(neg)
            .all(|&i| PreparedSpec::prepare(q.env, &q.specs[i]).is_ok());
        if !all_preparable {
            return false;
        }
        let pos: Vec<&Spec> = pos.iter().map(|&i| &q.specs[i]).collect();
        let neg: Vec<&Spec> = neg.iter().map(|&i| &q.specs[i]).collect();
        let oracle = GuardOracle::new(q.env, &pos, &neg);
        let p = Program::from_parts(
            q.name,
            q.params.iter().map(|(n, _)| *n).collect(),
            e.clone(),
        );
        let started = Instant::now();
        let out = oracle.test(q.env, &p);
        stats.eval_nanos = stats
            .eval_nanos
            .saturating_add(started.elapsed().as_nanos() as u64);
        out.success
    }
}

/// `!b`, collapsing double negation.
pub fn negate(b: &Expr) -> Expr {
    match b {
        Expr::Not(inner) => (**inner).clone(),
        Expr::Lit(Value::Bool(x)) => Expr::Lit(Value::Bool(!x)),
        other => Expr::Not(Box::new(other.clone())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbsyn_interp::SetupStep;
    use rbsyn_lang::builder::*;
    use rbsyn_stdlib::EnvBuilder;

    fn env_with_post() -> (InterpEnv, rbsyn_lang::ClassId) {
        let mut b = EnvBuilder::with_stdlib();
        let post = b.define_model("Post", &[("author", Ty::Str), ("slug", Ty::Str)]);
        b.add_const(Value::Class(post));
        (b.finish(), post)
    }

    fn call_spec(name: &str, steps: Vec<SetupStep>) -> Spec {
        let mut steps = steps;
        steps.push(SetupStep::CallTarget {
            bind: "xr".into(),
            args: vec![],
        });
        Spec::new(name, steps, vec![])
    }

    #[test]
    fn trivial_guard_is_true() {
        let (env, _) = env_with_post();
        let s = call_spec("s", vec![]);
        let mut stats = SearchStats::default();
        let g = synth_guard(
            &env,
            "m",
            &[],
            &[&s],
            &[],
            &[],
            &Options::default(),
            &Scheduler::sequential(),
            &mut stats,
        )
        .unwrap();
        assert_eq!(g.compact(), "true");
    }

    #[test]
    fn known_negations_are_tried_first() {
        let (env, post) = env_with_post();
        let seeded = call_spec(
            "seeded",
            vec![SetupStep::Exec(call(cls(post), "create", [hash([])]))],
        );
        let empty = call_spec("empty", vec![]);
        let known = vec![call(cls(post), "exists?", [])];
        let mut stats = SearchStats::default();
        // Guard for `empty` against `seeded`: !Post.exists? — found via the
        // negation fast path without search.
        let g = synth_guard(
            &env,
            "m",
            &[],
            &[&empty],
            &[&seeded],
            &known,
            &Options::default(),
            &Scheduler::sequential(),
            &mut stats,
        )
        .unwrap();
        assert_eq!(g.compact(), "!Post.exists?");
        assert!(stats.popped == 0, "no search was needed");
    }

    #[test]
    fn searches_when_quick_candidates_fail() {
        let (env, post) = env_with_post();
        let alice = call_spec(
            "alice",
            vec![SetupStep::Exec(call(
                cls(post),
                "create",
                [hash([("author", str_("alice"))])],
            ))],
        );
        let empty = call_spec("none", vec![]);
        let mut stats = SearchStats::default();
        let g = synth_guard(
            &env,
            "m",
            &[],
            &[&alice],
            &[&empty],
            &[],
            &Options::default(),
            &Scheduler::sequential(),
            &mut stats,
        )
        .unwrap();
        // Any Post-emptiness test works (`Post.count.positive?`,
        // `Post.exists?(…)`); verify semantically.
        assert!(g.compact().contains("Post."), "got {}", g.compact());
        let oracle = GuardOracle::new(&env, &[&alice], &[&empty]);
        let p = Program::new("m", [], g);
        assert!(oracle.test(&env, &p).success);
    }

    #[test]
    fn search_guards_returns_alternatives() {
        let (env, post) = env_with_post();
        let alice = call_spec(
            "alice",
            vec![SetupStep::Exec(call(
                cls(post),
                "create",
                [hash([("author", str_("alice"))])],
            ))],
        );
        let empty = call_spec("none", vec![]);
        let oracle = GuardOracle::new(&env, &[&alice], &[&empty]);
        let mut stats = SearchStats::default();
        let gs = search_guards(
            &env,
            "m",
            &[],
            &oracle,
            4,
            &Options::default(),
            &Scheduler::sequential(),
            &mut stats,
        )
        .unwrap();
        assert!(gs.len() >= 2, "expected several guards, got {gs:?}");
        // All of them pass the oracle.
        for g in &gs {
            let p = Program::new("m", [], g.clone());
            assert!(oracle.test(&env, &p).success, "bad guard {}", g.compact());
        }
        // And they are distinct.
        let mut keys: Vec<String> = gs.iter().map(|g| g.compact()).collect();
        keys.dedup();
        assert_eq!(keys.len(), gs.len());
    }

    #[test]
    fn negate_collapses() {
        assert_eq!(negate(&not(var("b"))).compact(), "b");
        assert_eq!(negate(&var("b")).compact(), "!b");
        assert_eq!(negate(&true_()).compact(), "false");
    }

    /// Two specs a guard must separate: seeded world vs empty world.
    fn pool_fixture() -> (InterpEnv, Vec<Spec>) {
        let (env, post) = env_with_post();
        let seeded = call_spec(
            "seeded",
            vec![SetupStep::Exec(call(
                cls(post),
                "create",
                [hash([("author", str_("alice"))])],
            ))],
        );
        let empty = call_spec("none", vec![]);
        (env, vec![seeded, empty])
    }

    #[test]
    fn pool_covering_matches_the_per_request_search() {
        let (env, specs) = pool_fixture();
        let opts = Options::default();
        let sched = Scheduler::sequential();
        let q = GuardQuery {
            env: &env,
            name: Symbol::intern("m"),
            params: &[],
            specs: &specs,
            opts: &opts,
            sched: &sched,
        };
        // Reference: the legacy per-request search.
        let oracle = GuardOracle::new(&env, &[&specs[0]], &[&specs[1]]);
        let mut ref_stats = SearchStats::default();
        let reference = search_guards(
            &env,
            "m",
            &[],
            &oracle,
            4,
            &opts,
            &Scheduler::sequential(),
            &mut ref_stats,
        )
        .unwrap();
        // Pool: same guards, same order — eager and lazy agree.
        let mut pool = GuardPool::new();
        let mut stats = SearchStats::default();
        let pooled = pool.covering_guards(&q, &[0], &[1], 4, &mut stats).unwrap();
        assert_eq!(
            pooled.iter().map(|g| g.compact()).collect::<Vec<_>>(),
            reference.iter().map(|g| g.compact()).collect::<Vec<_>>(),
            "pool covering must reproduce the per-request search"
        );
        for (n, g) in pooled.iter().enumerate() {
            let nth = pool
                .nth_covering_guard(&q, &[0], &[1], n, 4, &mut stats)
                .unwrap();
            assert_eq!(nth.as_ref().map(|e| e.compact()), Some(g.compact()));
        }
        assert_eq!(
            pool.covering_count(&q, &[0], &[1], 4, &mut stats).unwrap(),
            pooled.len()
        );
    }

    #[test]
    fn pool_reverse_request_reuses_bitvectors() {
        let (env, specs) = pool_fixture();
        let opts = Options::default();
        let sched = Scheduler::sequential();
        let q = GuardQuery {
            env: &env,
            name: Symbol::intern("m"),
            params: &[],
            specs: &specs,
            opts: &opts,
            sched: &sched,
        };
        let mut pool = GuardPool::new();
        let mut stats = SearchStats::default();
        let fwd = pool
            .nth_covering_guard(&q, &[0], &[1], 0, 1, &mut stats)
            .unwrap()
            .expect("a separating guard exists");
        let tested_after_fwd = stats.tested;
        // The reverse request re-walks already-judged candidates: any
        // candidate whose bits are fully known answers from the vector.
        let rev = pool
            .nth_covering_guard(&q, &[1], &[0], 0, 1, &mut stats)
            .unwrap()
            .expect("the reverse guard exists");
        assert_ne!(fwd.compact(), rev.compact());
        assert!(stats.tested >= tested_after_fwd);
        // Ad-hoc checks ride the same bitvectors: the found guards really
        // cover their requests, and their negations cover the reverse.
        assert!(pool.check_expr(&q, &fwd, &[0], &[1], &mut stats));
        assert!(pool.check_expr(&q, &negate(&fwd), &[1], &[0], &mut stats));
        assert!(!pool.check_expr(&q, &fwd, &[1], &[0], &mut stats));
        // Repeating an ad-hoc check is a pure vector hit.
        let hits = stats.vector_hits;
        assert!(pool.check_expr(&q, &fwd, &[0], &[1], &mut stats));
        assert_eq!(stats.vector_hits, hits + 1);
    }

    /// A 65-spec problem — one spec past the bitvector word — whose first
    /// spec seeds a `Post` and whose last is empty. Requests over it must
    /// take the legacy per-request fallback, not the pool.
    fn oversized_fixture() -> (InterpEnv, Vec<Spec>) {
        let (env, post) = env_with_post();
        let mut specs = Vec::with_capacity(65);
        for i in 0..65 {
            if i < 32 {
                specs.push(call_spec(
                    "seeded",
                    vec![SetupStep::Exec(call(
                        cls(post),
                        "create",
                        [hash([("author", str_("alice"))])],
                    ))],
                ));
            } else {
                specs.push(call_spec("empty", vec![]));
            }
        }
        (env, specs)
    }

    #[test]
    fn oversized_pool_matches_legacy_search() {
        let (env, specs) = oversized_fixture();
        assert!(specs.len() > 64, "fixture must overflow one bitvector word");
        let opts = Options::default();
        let sched = Scheduler::sequential();
        let q = GuardQuery {
            env: &env,
            name: Symbol::intern("m"),
            params: &[],
            specs: &specs,
            opts: &opts,
            sched: &sched,
        };
        // Reference: the legacy per-request search on the same request.
        let oracle = GuardOracle::new(&env, &[&specs[0]], &[&specs[64]]);
        let mut ref_stats = SearchStats::default();
        let reference = search_guards(
            &env,
            "m",
            &[],
            &oracle,
            4,
            &opts,
            &Scheduler::sequential(),
            &mut ref_stats,
        )
        .unwrap();
        assert!(!reference.is_empty(), "a separating guard exists");

        let mut pool = GuardPool::new();
        let mut stats = SearchStats::default();
        let pooled = pool
            .covering_guards(&q, &[0], &[64], 4, &mut stats)
            .unwrap();
        assert_eq!(
            pooled.iter().map(|g| g.compact()).collect::<Vec<_>>(),
            reference.iter().map(|g| g.compact()).collect::<Vec<_>>(),
            "oversized fallback must reproduce the per-request search"
        );
        // The fallback materializes once per request: nth/count answer from
        // the stored list without re-searching.
        let popped = stats.popped;
        for (n, g) in pooled.iter().enumerate() {
            let nth = pool
                .nth_covering_guard(&q, &[0], &[64], n, 4, &mut stats)
                .unwrap();
            assert_eq!(nth.as_ref().map(|e| e.compact()), Some(g.compact()));
        }
        assert_eq!(
            pool.covering_count(&q, &[0], &[64], 4, &mut stats).unwrap(),
            pooled.len()
        );
        assert_eq!(
            stats.popped, popped,
            "request state is reused, not re-searched"
        );
    }

    #[test]
    fn oversized_check_expr_agrees_with_oracle() {
        let (env, specs) = oversized_fixture();
        let opts = Options::default();
        let sched = Scheduler::sequential();
        let q = GuardQuery {
            env: &env,
            name: Symbol::intern("m"),
            params: &[],
            specs: &specs,
            opts: &opts,
            sched: &sched,
        };
        let post = env.table.hierarchy.find("Post").unwrap();
        let exists = call(cls(post), "exists?", []);
        let mut pool = GuardPool::new();
        let mut stats = SearchStats::default();
        // Bits span the whole 65-spec index range, including spec 64.
        assert!(pool.check_expr(&q, &exists, &[0, 31], &[32, 64], &mut stats));
        assert!(!pool.check_expr(&q, &exists, &[64], &[0], &mut stats));
        assert!(pool.check_expr(&q, &negate(&exists), &[64], &[0], &mut stats));
        assert!(pool.check_expr(&q, &true_(), &[0, 64], &[], &mut stats));
        assert!(!pool.check_expr(&q, &false_(), &[0, 64], &[], &mut stats));
    }

    #[test]
    fn pool_guard_holds_semantics() {
        let (env, specs) = pool_fixture();
        let opts = Options::default();
        let sched = Scheduler::sequential();
        let q = GuardQuery {
            env: &env,
            name: Symbol::intern("m"),
            params: &[],
            specs: &specs,
            opts: &opts,
            sched: &sched,
        };
        let mut pool = GuardPool::new();
        let mut stats = SearchStats::default();
        // `true` holds under every setup; `false` under none (pos-only
        // requests are the rule-6/7 `guard_holds` checks).
        assert!(pool.check_expr(&q, &true_(), &[0, 1], &[], &mut stats));
        assert!(!pool.check_expr(&q, &false_(), &[0, 1], &[], &mut stats));
    }
}
