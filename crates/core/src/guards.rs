//! Branch-condition synthesis (§3.3).
//!
//! A guard for spec set `Ψ₁` against `Ψ₂` is a boolean expression that
//! evaluates truthy under every setup in `Ψ₁` and falsy under every setup
//! in `Ψ₂` (`def m(x) = b ⊢ Sᵢ; assert x_r ⇓ v` and the negated check).
//!
//! Per the §4 optimizations, cheap candidates are tried before falling back
//! to a fresh type-guided search: the constants `true`/`false`, previously
//! synthesized conditionals, and their negations ("the condition in one
//! spec often turns out to be the negation of the condition in another").
//!
//! [`search_guards`] collects *several* oracle-passing guards: the smallest
//! one can be semantically wrong for the final program (only running the
//! merged program against all specs decides, §3.4), so the merge backtracks
//! over these alternatives. During an intra-parallel run the merge
//! dispatches the two guard searches of a Rule-3 strengthening request as
//! concurrent tasks on the shared executor (see [`crate::merge`]); the
//! search itself is oblivious — it just receives a task-local
//! [`Scheduler`].

use crate::engine::{Scheduler, SearchStats};
use crate::error::SynthError;
use crate::generate::{generate_many, GuardOracle, Oracle};
use crate::options::Options;
use rbsyn_interp::{InterpEnv, Spec};
use rbsyn_lang::{Expr, Program, Symbol, Ty, Value};

/// Extra work-list pops to spend hunting alternative guards after the
/// first oracle-passing one. Each pop can test hundreds of candidates, so
/// this stays small; the odometer only needs a handful of alternatives.
const EXTRA_GUARD_BUDGET: u64 = 300;

/// Searches for up to `k` guards satisfying `oracle`, by ascending size.
/// `sched` carries the deadline, cancellation token and memoization handle,
/// as in [`crate::generate::generate`].
#[allow(clippy::too_many_arguments)]
pub fn search_guards(
    env: &InterpEnv,
    method_name: &str,
    params: &[(Symbol, Ty)],
    oracle: &GuardOracle,
    k: usize,
    opts: &Options,
    sched: &Scheduler,
    stats: &mut SearchStats,
) -> Result<Vec<Expr>, SynthError> {
    match generate_many(
        env,
        method_name,
        params,
        &Ty::Bool,
        oracle,
        opts,
        opts.max_guard_size,
        sched,
        stats,
        k,
        EXTRA_GUARD_BUDGET,
    ) {
        Ok(gs) => Ok(gs),
        Err(SynthError::Timeout) => Err(SynthError::Timeout),
        Err(_) => Ok(Vec::new()),
    }
}

/// Synthesizes a single guard that is truthy under `pos` setups and falsy
/// under `neg` setups. `known` are previously synthesized conditionals to
/// try (with their negations) before searching.
#[allow(clippy::too_many_arguments)]
pub fn synth_guard(
    env: &InterpEnv,
    method_name: &str,
    params: &[(Symbol, Ty)],
    pos: &[&Spec],
    neg: &[&Spec],
    known: &[Expr],
    opts: &Options,
    sched: &Scheduler,
    stats: &mut SearchStats,
) -> Result<Expr, SynthError> {
    let oracle = GuardOracle::new(env, pos, neg);
    let param_names: Vec<&str> = params.iter().map(|(n, _)| n.as_str()).collect();

    // Fast path: constants, known conditionals, and negations thereof.
    let mut quick: Vec<Expr> = vec![Expr::Lit(Value::Bool(true)), Expr::Lit(Value::Bool(false))];
    for k in known {
        quick.push(k.clone());
        quick.push(negate(k));
    }
    for cand in quick {
        stats.tested += 1;
        let p = Program::new(method_name, param_names.iter().copied(), cand.clone());
        if oracle.test(env, &p).success {
            return Ok(cand);
        }
    }

    // Fall back to type-guided search at type Bool (effect guidance is
    // never used for guards; GuardOracle reports no effects, so S-Eff
    // cannot fire).
    let mut found = search_guards(env, method_name, params, &oracle, 1, opts, sched, stats)?;
    found.pop().ok_or(SynthError::GuardNotFound)
}

/// `!b`, collapsing double negation.
pub fn negate(b: &Expr) -> Expr {
    match b {
        Expr::Not(inner) => (**inner).clone(),
        Expr::Lit(Value::Bool(x)) => Expr::Lit(Value::Bool(!x)),
        other => Expr::Not(Box::new(other.clone())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbsyn_interp::SetupStep;
    use rbsyn_lang::builder::*;
    use rbsyn_stdlib::EnvBuilder;

    fn env_with_post() -> (InterpEnv, rbsyn_lang::ClassId) {
        let mut b = EnvBuilder::with_stdlib();
        let post = b.define_model("Post", &[("author", Ty::Str), ("slug", Ty::Str)]);
        b.add_const(Value::Class(post));
        (b.finish(), post)
    }

    fn call_spec(name: &str, steps: Vec<SetupStep>) -> Spec {
        let mut steps = steps;
        steps.push(SetupStep::CallTarget {
            bind: "xr".into(),
            args: vec![],
        });
        Spec::new(name, steps, vec![])
    }

    #[test]
    fn trivial_guard_is_true() {
        let (env, _) = env_with_post();
        let s = call_spec("s", vec![]);
        let mut stats = SearchStats::default();
        let g = synth_guard(
            &env,
            "m",
            &[],
            &[&s],
            &[],
            &[],
            &Options::default(),
            &Scheduler::sequential(),
            &mut stats,
        )
        .unwrap();
        assert_eq!(g.compact(), "true");
    }

    #[test]
    fn known_negations_are_tried_first() {
        let (env, post) = env_with_post();
        let seeded = call_spec(
            "seeded",
            vec![SetupStep::Exec(call(cls(post), "create", [hash([])]))],
        );
        let empty = call_spec("empty", vec![]);
        let known = vec![call(cls(post), "exists?", [])];
        let mut stats = SearchStats::default();
        // Guard for `empty` against `seeded`: !Post.exists? — found via the
        // negation fast path without search.
        let g = synth_guard(
            &env,
            "m",
            &[],
            &[&empty],
            &[&seeded],
            &known,
            &Options::default(),
            &Scheduler::sequential(),
            &mut stats,
        )
        .unwrap();
        assert_eq!(g.compact(), "!Post.exists?");
        assert!(stats.popped == 0, "no search was needed");
    }

    #[test]
    fn searches_when_quick_candidates_fail() {
        let (env, post) = env_with_post();
        let alice = call_spec(
            "alice",
            vec![SetupStep::Exec(call(
                cls(post),
                "create",
                [hash([("author", str_("alice"))])],
            ))],
        );
        let empty = call_spec("none", vec![]);
        let mut stats = SearchStats::default();
        let g = synth_guard(
            &env,
            "m",
            &[],
            &[&alice],
            &[&empty],
            &[],
            &Options::default(),
            &Scheduler::sequential(),
            &mut stats,
        )
        .unwrap();
        // Any Post-emptiness test works (`Post.count.positive?`,
        // `Post.exists?(…)`); verify semantically.
        assert!(g.compact().contains("Post."), "got {}", g.compact());
        let oracle = GuardOracle::new(&env, &[&alice], &[&empty]);
        let p = Program::new("m", [], g);
        assert!(oracle.test(&env, &p).success);
    }

    #[test]
    fn search_guards_returns_alternatives() {
        let (env, post) = env_with_post();
        let alice = call_spec(
            "alice",
            vec![SetupStep::Exec(call(
                cls(post),
                "create",
                [hash([("author", str_("alice"))])],
            ))],
        );
        let empty = call_spec("none", vec![]);
        let oracle = GuardOracle::new(&env, &[&alice], &[&empty]);
        let mut stats = SearchStats::default();
        let gs = search_guards(
            &env,
            "m",
            &[],
            &oracle,
            4,
            &Options::default(),
            &Scheduler::sequential(),
            &mut stats,
        )
        .unwrap();
        assert!(gs.len() >= 2, "expected several guards, got {gs:?}");
        // All of them pass the oracle.
        for g in &gs {
            let p = Program::new("m", [], g.clone());
            assert!(oracle.test(&env, &p).success, "bad guard {}", g.compact());
        }
        // And they are distinct.
        let mut keys: Vec<String> = gs.iter().map(|g| g.compact()).collect();
        keys.dedup();
        assert_eq!(keys.len(), gs.len());
    }

    #[test]
    fn negate_collapses() {
        assert_eq!(negate(&not(var("b"))).compact(), "b");
        assert_eq!(negate(&var("b")).compact(), "!b");
        assert_eq!(negate(&true_()).compact(), "false");
    }
}
