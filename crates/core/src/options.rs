//! Search configuration: guidance modes (§5.3), effect precision (§5.4),
//! size bounds and budgets.

use crate::engine::StrategyKind;
use rbsyn_trace::TraceConfig;
use rbsyn_ty::EffectPrecision;
use std::time::Duration;

/// Which guidance is active — the four configurations of Fig. 7.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Guidance {
    /// Type-guidance: holes only accept terms of fitting types and
    /// ill-typed candidates are pruned (narrowing, §3.1). Disabled, any
    /// term fills any hole ("E Only" / "TE Disabled").
    pub types: bool,
    /// Effect-guidance: failing assertions insert effect holes constrained
    /// to the observed read effect. Disabled, the failure-driven wrap still
    /// happens but the hole accepts *any* impure method (`◇:*`), which is
    /// how a type-only synthesizer would have to search ("T Only" /
    /// "TE Disabled").
    pub effects: bool,
}

impl Guidance {
    /// Full RbSyn ("TE Enabled").
    pub fn both() -> Guidance {
        Guidance {
            types: true,
            effects: true,
        }
    }

    /// "T Only".
    pub fn types_only() -> Guidance {
        Guidance {
            types: true,
            effects: false,
        }
    }

    /// "E Only".
    pub fn effects_only() -> Guidance {
        Guidance {
            types: false,
            effects: true,
        }
    }

    /// "TE Disabled" — naive enumeration.
    pub fn neither() -> Guidance {
        Guidance {
            types: false,
            effects: false,
        }
    }

    /// The four modes in the order Fig. 7 lists them.
    pub fn all() -> [Guidance; 4] {
        [
            Guidance::both(),
            Guidance::types_only(),
            Guidance::effects_only(),
            Guidance::neither(),
        ]
    }

    /// Fig. 7 legend label.
    pub fn label(self) -> &'static str {
        match (self.types, self.effects) {
            (true, true) => "TE Enabled",
            (true, false) => "T Only",
            (false, true) => "E Only",
            (false, false) => "TE Disabled",
        }
    }
}

impl Default for Guidance {
    fn default() -> Guidance {
        Guidance::both()
    }
}

/// Synthesizer options.
#[derive(Clone, Debug)]
pub struct Options {
    /// Guidance mode (§5.3 ablation).
    pub guidance: Guidance,
    /// Effect-annotation precision (§5.4 ablation).
    pub precision: EffectPrecision,
    /// `maxSize` of Algorithm 2: candidates above this AST node count are
    /// not enqueued.
    pub max_size: usize,
    /// Size bound for branch-condition synthesis (guards are small).
    pub max_guard_size: usize,
    /// Maximum number of keys in a synthesized hash literal.
    pub max_hash_keys: usize,
    /// Hard cap on work-list pops per `generate` call (search-space
    /// exhaustion backstop).
    pub max_expansions: u64,
    /// Wall-clock budget for the whole synthesis run (the paper uses 300 s
    /// in §5). `None` disables the deadline.
    pub timeout: Option<Duration>,
    /// Memoize search work (candidate dedup stays on either way). `true`
    /// shares hash-consed candidates, expansion lists, type-check verdicts
    /// and oracle outcomes across specs, merge attempts and batch jobs;
    /// `false` (the `--no-cache` escape hatch) gives every search call a
    /// throwaway cache. Caching never changes the synthesized program —
    /// memoized values are pure functions of their keys — only the time
    /// spent finding it.
    pub cache: bool,
    /// Observational-equivalence pruning: candidates whose evaluation
    /// vector (result value, effect trace, post-run state hash on the
    /// spec's test states) matches an already-enqueued candidate of equal
    /// or smaller size are pruned from the frontier before their subtree
    /// is ever explored. Defaults to `true`; the 19-benchmark byte-identity
    /// gate (`trajectory`'s `no-obs-equiv` leg, the CI `obs-equiv`
    /// determinism leg) holds the default to "programs are unchanged, only
    /// the work to find them shrinks". `--no-obs-equiv` is the A/B escape
    /// hatch.
    pub obs_equiv: bool,
    /// BDD-backed guard semantics: the guard pool interns every distinct
    /// evaluation vector into a reduced-ordered BDD, deduplicates
    /// semantically equal candidates per covering request
    /// (`guard_dedup`), derives bits for literal and negated candidates
    /// without interpreter runs, and answers covering requests as BDD
    /// satisfiability queries. Defaults to `true`; programs and effort
    /// counters are byte-identical either way (the CI `no-bdd`
    /// determinism leg holds this), only the time spent differs.
    /// `--no-bdd` (or `RBSYN_NO_BDD=1`/`=true`, which flips this
    /// default) is the A/B escape hatch.
    pub bdd: bool,
    /// Work-list exploration order (see
    /// [`SearchStrategy`](crate::engine::SearchStrategy)). The default
    /// [`StrategyKind::Paper`] reproduces §4's deterministic ordering;
    /// alternatives reorder exploration but stay fully deterministic for a
    /// fixed setting.
    pub strategy: StrategyKind,
    /// Intra-problem task width (`--intra`): how many concurrent tasks one
    /// synthesis run may dispatch to the shared
    /// [`Executor`](crate::engine::Executor) — speculative per-spec
    /// searches in phase 1 and merge-time guard-pair searches. `1` (the
    /// default) keeps the whole pipeline inline on one thread. Any width
    /// produces byte-identical programs and effort counters; see the
    /// [engine determinism story](crate::engine).
    pub intra_parallelism: usize,
    /// Watchdog grace factor: a run that overruns `timeout × grace` is
    /// hard-cancelled by a [`Watchdog`](crate::engine::Watchdog) thread
    /// (kill flag checked by the scheduler *and* on the interpreter's
    /// fuel counter), surfacing as the same
    /// [`SynthError::Timeout`](crate::SynthError::Timeout) a cooperative
    /// stop produces. Values below 1.0 are clamped to 1.0, so the hard
    /// deadline never precedes the cooperative one and determinism gates
    /// are unaffected. `None` disables the watchdog; it is also inert
    /// when `timeout` is `None`.
    pub watchdog_grace: Option<f64>,
    /// Search-event tracing (`--trace`): `Some` activates the
    /// [`rbsyn_trace`] session threaded through every phase — phase
    /// spans, sampled candidate-lifecycle instants, counter samples.
    /// `None` (the default) is zero-cost: every instrumentation site is
    /// one `Option` check. Tracing never changes synthesized programs or
    /// effort counters — instrumentation only *reads* engine state — and
    /// the CI `trace` determinism leg byte-compares solve output with
    /// tracing on vs off, same treatment as `--no-bdd`. Callers that want
    /// the recorded events attach their own session via
    /// [`Synthesizer::with_tracer`](crate::Synthesizer::with_tracer);
    /// with only this field set the run traces into a private session
    /// that is discarded (useful for determinism tests).
    pub trace: Option<TraceConfig>,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            guidance: Guidance::both(),
            precision: EffectPrecision::Precise,
            max_size: 32,
            max_guard_size: 14,
            max_hash_keys: 2,
            max_expansions: 2_000_000,
            timeout: Some(Duration::from_secs(300)),
            cache: true,
            obs_equiv: true,
            bdd: !std::env::var("RBSYN_NO_BDD").is_ok_and(|v| v == "1" || v == "true"),
            strategy: StrategyKind::Paper,
            intra_parallelism: 1,
            watchdog_grace: Some(4.0),
            trace: None,
        }
    }
}

impl Options {
    /// Options with a specific guidance mode.
    pub fn with_guidance(g: Guidance) -> Options {
        Options {
            guidance: g,
            ..Options::default()
        }
    }

    /// Options with a specific effect precision.
    pub fn with_precision(p: EffectPrecision) -> Options {
        Options {
            precision: p,
            ..Options::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_fig7() {
        assert_eq!(Guidance::both().label(), "TE Enabled");
        assert_eq!(Guidance::types_only().label(), "T Only");
        assert_eq!(Guidance::effects_only().label(), "E Only");
        assert_eq!(Guidance::neither().label(), "TE Disabled");
        assert_eq!(Guidance::all().len(), 4);
    }

    #[test]
    fn defaults_are_full_rbsyn() {
        let o = Options::default();
        assert_eq!(o.guidance, Guidance::both());
        assert_eq!(o.precision, EffectPrecision::Precise);
        assert!(o.timeout.is_some());
        assert_eq!(o.strategy, StrategyKind::Paper);
        assert_eq!(o.intra_parallelism, 1, "intra-parallel dispatch is opt-in");
        assert!(o.obs_equiv, "observational-equivalence pruning is on");
        assert!(o.bdd, "BDD guard semantics are on (RBSYN_NO_BDD unset)");
        assert!(o.trace.is_none(), "tracing is opt-in (zero-cost off)");
    }
}
