//! Process exit codes for synthesis outcomes, shared by `solve`,
//! `speccheck` and `specgen` so scripts and CI can tell failure classes
//! apart: `0` solved, `1` other failure (including contained panics), `2`
//! usage error, `3` spec parse/lower error, `4` timeout (per-job deadline
//! or watchdog kill), `5` search exhausted without a program, `6` job(s)
//! shed by batch admission control.

use crate::batch::BatchReport;
use crate::error::SynthError;

/// Everything synthesized (or, for `speccheck`, parsed) cleanly.
pub const OK: i32 = 0;
/// A failure outside the named classes (bad problem, panic, …).
pub const OTHER: i32 = 1;
/// Bad command line.
pub const USAGE: i32 = 2;
/// A `.rbspec` file failed to parse or lower.
pub const PARSE: i32 = 3;
/// Synthesis hit its deadline.
pub const TIMEOUT: i32 = 4;
/// The bounded search space was exhausted with no solution (no
/// per-spec solution, merge failure, or missing guard).
pub const NO_SOLUTION: i32 = 5;
/// One or more jobs were refused by batch admission control: queue
/// depth × median solve time exceeded the global deadline, so the batch
/// shed load instead of blowing its budget.
pub const SHED: i32 = 6;

/// The exit code for one synthesis error.
pub fn for_error(e: &SynthError) -> i32 {
    match e {
        SynthError::Timeout => TIMEOUT,
        SynthError::NoSolution { .. } | SynthError::MergeFailed | SynthError::GuardNotFound => {
            NO_SOLUTION
        }
        SynthError::BadProblem(_) | SynthError::Internal(_) => OTHER,
        SynthError::Shed => SHED,
    }
}

/// The exit code for a whole batch: `OK` when every job solved, else
/// the most specific failing class (timeout before no-solution before
/// shed before other), so CI logs name the dominant failure.
pub fn for_batch(report: &BatchReport) -> i32 {
    let codes: Vec<i32> = report
        .outcomes
        .iter()
        .filter_map(|o| o.result.as_ref().err().map(for_error))
        .collect();
    if codes.is_empty() {
        OK
    } else if codes.contains(&TIMEOUT) {
        TIMEOUT
    } else if codes.contains(&NO_SOLUTION) {
        NO_SOLUTION
    } else if codes.contains(&SHED) {
        SHED
    } else {
        OTHER
    }
}
