//! The work-list search of Algorithm 2.
//!
//! Candidates are `(c, e)` pairs: an expression with holes and the number
//! of assertions its best evaluable ancestor passed. The list is ordered by
//! `c` descending, then AST size ascending, then insertion order (§4).
//! Evaluable expansions are run against the oracle immediately; failures
//! with impure read effects are wrapped with an effect hole (S-Eff) and
//! re-enqueued at their fresh assert count.
//!
//! Candidates are hash-consed ([`rbsyn_lang::ExprId`]) and all expensive
//! steps — expansion, type narrowing, oracle evaluation — are memoized
//! through a [`CacheHandle`], so repeated exploration of the same search
//! region (across specs, guard requests, or batch jobs) degenerates into
//! table lookups. Passing `None` for the handle runs with a throwaway
//! private cache, which reproduces the uncached search exactly.

use crate::cache::{gamma_fingerprint, CacheHandle, OracleToken};
use crate::error::SynthError;
use crate::expand::{simplify, Expander};
use crate::infer::{infer_ty, Gamma};
use crate::options::Options;
use rbsyn_interp::{InterpEnv, PreparedSpec, Spec, SpecOutcome};
use rbsyn_lang::{EffectPair, EffectSet, Expr, ExprId, FxBuild, Program, Symbol, Ty};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};
use std::time::Instant;

/// What the search asks of a fully concrete candidate.
pub trait Oracle {
    /// Tests a candidate program.
    fn test(&self, env: &InterpEnv, program: &Program) -> OracleOutcome;

    /// The memoization identity of this oracle instance (see
    /// [`OracleToken`]). Verdicts are cached per `(token, candidate)`, so
    /// an implementation must mint a fresh token at construction and answer
    /// [`Oracle::test`] as a pure function of the candidate body.
    fn token(&self) -> OracleToken;
}

/// Outcome of one oracle query.
#[derive(Clone, Debug)]
pub struct OracleOutcome {
    /// Did the candidate satisfy the oracle completely?
    pub success: bool,
    /// Units (assertions / specs) passed before stopping — the priority `c`.
    pub passed: usize,
    /// Effects of the failing assertion, when one failed with observable
    /// reads (drives S-Eff).
    pub effects: Option<EffectPair>,
}

/// Oracle for one spec (prepared once; see [`PreparedSpec`]): run it,
/// report the failing assert's effects.
pub struct SpecOracle {
    prepared: PreparedSpec,
    token: OracleToken,
}

impl SpecOracle {
    /// Prepares the spec's setup snapshot.
    ///
    /// # Panics
    ///
    /// Panics when the spec's own setup raises — that is a suite bug, not a
    /// candidate failure.
    pub fn new(env: &InterpEnv, spec: &Spec) -> SpecOracle {
        let prepared = PreparedSpec::prepare(env, spec)
            .unwrap_or_else(|e| panic!("spec {:?} setup failed: {e}", spec.name));
        SpecOracle {
            prepared,
            token: OracleToken::fresh(),
        }
    }
}

impl Oracle for SpecOracle {
    fn test(&self, env: &InterpEnv, program: &Program) -> OracleOutcome {
        match self.prepared.run(env, program) {
            SpecOutcome::Passed { asserts } => OracleOutcome {
                success: true,
                passed: asserts,
                effects: None,
            },
            SpecOutcome::Failed { passed, effects } => {
                let has_reads = !effects.read.is_pure();
                OracleOutcome {
                    success: false,
                    passed,
                    effects: has_reads.then_some(effects),
                }
            }
            SpecOutcome::SetupError(_) => OracleOutcome {
                success: false,
                passed: 0,
                effects: None,
            },
        }
    }

    fn token(&self) -> OracleToken {
        self.token
    }
}

/// Oracle for branch conditions (§3.3): the boolean program must evaluate
/// truthy under every `pos` setup and falsy under every `neg` setup.
/// Effect guidance is never used here ("the asserted expression `x_r` is
/// pure").
pub struct GuardOracle {
    checks: Vec<PreparedSpec>,
    token: OracleToken,
}

impl GuardOracle {
    /// Builds the oracle from positive and negative spec setups.
    ///
    /// # Panics
    ///
    /// Panics when a spec's own setup raises (a suite bug).
    pub fn new(env: &InterpEnv, pos: &[&Spec], neg: &[&Spec]) -> GuardOracle {
        let mut checks = Vec::new();
        for s in pos {
            let p = PreparedSpec::prepare(env, s)
                .unwrap_or_else(|e| panic!("spec {:?} setup failed: {e}", s.name));
            let xr = p.result_var();
            checks.push(p.with_asserts(vec![Expr::Var(xr)]));
        }
        for s in neg {
            let p = PreparedSpec::prepare(env, s)
                .unwrap_or_else(|e| panic!("spec {:?} setup failed: {e}", s.name));
            let xr = p.result_var();
            checks.push(p.with_asserts(vec![Expr::Not(Box::new(Expr::Var(xr)))]));
        }
        GuardOracle {
            checks,
            token: OracleToken::fresh(),
        }
    }
}

impl Oracle for GuardOracle {
    fn test(&self, env: &InterpEnv, program: &Program) -> OracleOutcome {
        let mut passed = 0;
        for c in &self.checks {
            if c.run(env, program).passed() {
                passed += 1;
            } else {
                return OracleOutcome {
                    success: false,
                    passed,
                    effects: None,
                };
            }
        }
        OracleOutcome {
            success: true,
            passed,
            effects: None,
        }
    }

    fn token(&self) -> OracleToken {
        self.token
    }
}

/// Search-effort counters, accumulated across `generate` calls of one
/// synthesis run.
///
/// The effort counters (`popped`, `expanded`, `tested`) count *requests*,
/// not computations: a memo hit still counts, so they are identical with
/// and without caching and two runs can be compared counter-for-counter.
/// The cache counters (`*_hits`, `deduped`) measure how much of that work
/// the [`CacheHandle`] absorbed.
#[derive(Clone, Copy, Debug, Default)]
pub struct SearchStats {
    /// Work-list pops.
    pub popped: u64,
    /// Candidate expressions produced by expansion (pre type-filter).
    pub expanded: u64,
    /// Evaluable candidates judged by the oracle (memo hits included).
    pub tested: u64,
    /// Duplicate candidates dropped by the work-list dedup filter.
    pub deduped: u64,
    /// Expansion lists answered from the memo.
    pub expand_hits: u64,
    /// Type-check verdicts answered from the memo.
    pub type_hits: u64,
    /// Oracle verdicts answered from the memo.
    pub oracle_hits: u64,
}

struct WorkItem {
    c: usize,
    size: usize,
    seq: u64,
    id: ExprId,
    /// The candidate itself, carried alongside its id so a memo miss at
    /// pop time needs no arena lookup. Ignored by the ordering.
    expr: std::sync::Arc<Expr>,
}

impl PartialEq for WorkItem {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for WorkItem {}
impl PartialOrd for WorkItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for WorkItem {
    // BinaryHeap pops the maximum: prefer high passed-assert count, then
    // small size, then FIFO.
    fn cmp(&self, other: &Self) -> Ordering {
        self.c
            .cmp(&other.c)
            .then(other.size.cmp(&self.size))
            .then(other.seq.cmp(&self.seq))
    }
}

/// The result of a `generate` call, re-exported for harness code.
pub type GenerateOutcome = Result<Expr, SynthError>;

/// Algorithm 2: searches for an evaluable expression satisfying `oracle`,
/// starting from `□:goal` under `params`.
///
/// `search` is the memoization handle; pass `Some` to share hash-consed
/// candidates and memoized verdicts with other searches over the same
/// environment, or `None` for a self-contained (uncached) run. Caching
/// never changes the result, only the work done to reach it.
///
/// # Example
///
/// ```
/// use rbsyn_core::generate::{generate, SearchStats, SpecOracle};
/// use rbsyn_core::Options;
/// use rbsyn_interp::{SetupStep, Spec};
/// use rbsyn_lang::builder::*;
/// use rbsyn_lang::Ty;
/// use rbsyn_stdlib::EnvBuilder;
///
/// let env = EnvBuilder::with_stdlib().finish();
/// // Spec: m("hello") must return a value equal to "hello".
/// let spec = Spec::new(
///     "returns its argument",
///     vec![SetupStep::CallTarget { bind: "xr".into(), args: vec![str_("hello")] }],
///     vec![call(var("xr"), "==", [str_("hello")])],
/// );
/// let opts = Options::default();
/// let mut stats = SearchStats::default();
/// let body = generate(
///     &env,
///     "m",
///     &[("arg0".into(), Ty::Str)],
///     &Ty::Str,
///     &SpecOracle::new(&env, &spec),
///     &opts,
///     opts.max_size,
///     None,
///     &mut stats,
///     None,
/// )
/// .unwrap();
/// assert_eq!(body.compact(), "arg0");
/// ```
#[allow(clippy::too_many_arguments)]
pub fn generate(
    env: &InterpEnv,
    method_name: &str,
    params: &[(Symbol, Ty)],
    goal: &Ty,
    oracle: &dyn Oracle,
    opts: &Options,
    max_size: usize,
    deadline: Option<Instant>,
    stats: &mut SearchStats,
    search: Option<&CacheHandle>,
) -> GenerateOutcome {
    let mut out = generate_many(
        env,
        method_name,
        params,
        goal,
        oracle,
        opts,
        max_size,
        deadline,
        stats,
        1,
        u64::MAX,
        search,
    )?;
    Ok(out.remove(0))
}

/// Like [`generate`], but keeps searching after the first success until
/// `max_solutions` oracle-passing expressions are found (or
/// `extra_after_first` additional work-list pops elapse). Used by the merge
/// to collect alternative branch conditions for backtracking.
///
/// Returns at least one solution on `Ok`; a timeout after the first
/// solution returns the solutions found so far rather than failing.
#[allow(clippy::too_many_arguments)]
pub fn generate_many(
    env: &InterpEnv,
    method_name: &str,
    params: &[(Symbol, Ty)],
    goal: &Ty,
    oracle: &dyn Oracle,
    opts: &Options,
    max_size: usize,
    deadline: Option<Instant>,
    stats: &mut SearchStats,
    max_solutions: usize,
    extra_after_first: u64,
    search: Option<&CacheHandle>,
) -> Result<Vec<Expr>, SynthError> {
    // Without a shared handle the search still runs through (its own,
    // throwaway) cache — one code path, identical behaviour, no reuse.
    let local;
    let search = match search {
        Some(h) => h,
        None => {
            local = CacheHandle::private();
            &local
        }
    };
    let expander = Expander::new(&env.table, opts, search);
    let mut gamma = Gamma::from_params(params);
    let gamma_fp = gamma_fingerprint(gamma.bindings());
    let param_names: Vec<String> = params.iter().map(|(n, _)| n.as_str().to_owned()).collect();
    let make_program = |body: &Expr| {
        Program::new(
            method_name,
            param_names.iter().map(|s| s.as_str()),
            body.clone(),
        )
    };

    let mut heap: BinaryHeap<WorkItem> = BinaryHeap::new();
    // Dedup filter: the work-list never holds two structurally equal
    // candidates, and a candidate judged once is never re-judged in this
    // call.
    let mut seen: HashSet<ExprId, FxBuild> = HashSet::default();
    let mut seq = 0u64;
    let root = search.intern_full(Expr::Hole(goal.clone()));
    heap.push(WorkItem {
        c: 0,
        size: 1,
        seq,
        id: root.id,
        expr: root.expr,
    });

    let mut solutions: Vec<Expr> = Vec::new();
    let mut first_solution_at: Option<u64> = None;
    let mut pops = 0u64;
    while let Some(item) = heap.pop() {
        stats.popped += 1;
        pops += 1;
        if stats.popped.is_multiple_of(64) {
            if let Some(d) = deadline {
                if Instant::now() >= d {
                    return if solutions.is_empty() {
                        Err(SynthError::Timeout)
                    } else {
                        Ok(solutions)
                    };
                }
            }
        }
        if pops > opts.max_expansions {
            break;
        }
        if let Some(at) = first_solution_at {
            if pops > at + extra_after_first {
                break;
            }
        }

        // Hole-free items never enter the list: evaluable candidates are
        // judged (and dropped) at expansion time, and both push sites below
        // only enqueue expressions that still carry a hole.
        debug_assert!(item.expr.has_holes());
        // One-step expansion + simplification + type narrowing (§3.1),
        // memoized per (environment, Γ, candidate).
        let expansions = search.expansions(gamma_fp, item.id, stats, |_| {
            let subs = expander
                .expand_first(&item.expr, &mut gamma)
                .expect("non-evaluable expression must have a hole");
            let raw = subs.len() as u64;
            let mut out = Vec::with_capacity(subs.len());
            for sub in subs {
                let sub = simplify(sub);
                // Type narrowing: discard candidates with no typing
                // derivation. Skipped when type guidance is off.
                // Checked before interning — ill-typed candidates never
                // reach the arena, and the verdict is baked into this
                // (memoized) expansion list, so it is computed once per
                // distinct candidate-in-context without paying for a
                // standalone verdict table on the hot path.
                if opts.guidance.types && infer_ty(&env.table, &mut gamma, &sub).is_none() {
                    continue;
                }
                out.push(search.intern_full(sub));
            }
            (raw, out)
        });
        for cand in expansions.iter() {
            if !seen.insert(cand.id) {
                stats.deduped += 1;
                continue;
            }
            if cand.evaluable {
                stats.tested += 1;
                // Fresh candidates are judged directly: within one call the
                // dedup filter already guarantees single judgement, and
                // storing a verdict per failing candidate was measured to
                // cost far more than the rare cross-phase hit it could
                // serve. The memo is consulted where re-judging actually
                // recurs: solution reuse and merge validation.
                let out = oracle.test(env, &make_program(&cand.expr));
                if out.success {
                    solutions.push((*cand.expr).clone());
                    if solutions.len() >= max_solutions {
                        return Ok(solutions);
                    }
                    first_solution_at.get_or_insert(pops);
                    continue;
                }
                // S-Eff: wrap the failing candidate with an effect hole for
                // the unmet read effect. Without effect guidance the wrap
                // still happens, but unconstrained (◇:*).
                if let Some(effects) = out.effects {
                    let er = if opts.guidance.effects {
                        effects.read
                    } else {
                        EffectSet::star()
                    };
                    let wrapped = wrap_with_effect(
                        env, &mut gamma, gamma_fp, &cand.expr, cand.id, er, goal, opts, search,
                        stats,
                    );
                    let w = search.intern_full(wrapped);
                    if w.size as usize <= max_size && seen.insert(w.id) {
                        seq += 1;
                        heap.push(WorkItem {
                            c: out.passed,
                            size: w.size as usize,
                            seq,
                            id: w.id,
                            expr: w.expr,
                        });
                    }
                }
            } else if cand.size as usize <= max_size {
                seq += 1;
                heap.push(WorkItem {
                    c: item.c,
                    size: cand.size as usize,
                    seq,
                    id: cand.id,
                    expr: std::sync::Arc::clone(&cand.expr),
                });
            }
        }
    }
    if solutions.is_empty() {
        Err(SynthError::NoSolution {
            spec: method_name.to_owned(),
        })
    } else {
        Ok(solutions)
    }
}

/// S-Eff (Fig. 5): `e` becomes `let t = e in (◇:ε_r; □:τ)` where `τ` is
/// `e`'s type.
#[allow(clippy::too_many_arguments)]
fn wrap_with_effect(
    env: &InterpEnv,
    gamma: &mut Gamma,
    gamma_fp: u128,
    e: &Expr,
    eid: ExprId,
    er: EffectSet,
    goal: &Ty,
    opts: &Options,
    search: &CacheHandle,
    stats: &mut SearchStats,
) -> Expr {
    let t = e.fresh_temp();
    let ty = if opts.guidance.types {
        search
            .infer(gamma_fp, eid, stats, || infer_ty(&env.table, gamma, e))
            .unwrap_or_else(|| goal.clone())
    } else {
        goal.clone()
    };
    Expr::Let {
        var: t,
        val: Box::new(e.clone()),
        body: Box::new(Expr::Seq(vec![Expr::EffHole(er), Expr::Hole(ty)])),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbsyn_interp::SetupStep;
    use rbsyn_lang::builder::*;
    use rbsyn_lang::Value;
    use rbsyn_stdlib::EnvBuilder;

    fn blog_env() -> (InterpEnv, rbsyn_lang::ClassId) {
        let mut b = EnvBuilder::with_stdlib();
        let post = b.define_model(
            "Post",
            &[("author", Ty::Str), ("title", Ty::Str), ("slug", Ty::Str)],
        );
        b.add_const(Value::Class(post));
        (b.finish(), post)
    }

    fn gen(env: &InterpEnv, params: &[(Symbol, Ty)], goal: Ty, spec: &Spec) -> GenerateOutcome {
        let opts = Options::default();
        let mut stats = SearchStats::default();
        generate(
            env,
            "m",
            params,
            &goal,
            &SpecOracle::new(env, spec),
            &opts,
            opts.max_size,
            None,
            &mut stats,
            None,
        )
    }

    #[test]
    fn synthesizes_identity_from_params() {
        let (env, _) = blog_env();
        // Spec: m("s") must return a truthy value whose == "s" holds.
        let spec = Spec::new(
            "returns its argument",
            vec![SetupStep::CallTarget {
                bind: "xr".into(),
                args: vec![str_("hello")],
            }],
            vec![call(var("xr"), "==", [str_("hello")])],
        );
        let sol = gen(&env, &[("arg0".into(), Ty::Str)], Ty::Str, &spec).unwrap();
        assert_eq!(sol.compact(), "arg0");
    }

    #[test]
    fn synthesizes_constants() {
        let (env, _) = blog_env();
        let mut env = env;
        env.table.add_const(Value::Bool(true));
        env.table.add_const(Value::Bool(false));
        let spec = Spec::new(
            "returns false",
            vec![SetupStep::CallTarget {
                bind: "xr".into(),
                args: vec![],
            }],
            vec![call(var("xr"), "==", [false_()])],
        );
        let sol = gen(&env, &[], Ty::Bool, &spec).unwrap();
        assert_eq!(sol.compact(), "false");
    }

    #[test]
    fn synthesizes_queries_with_hash_arguments() {
        let (env, post) = blog_env();
        // Seed a post, ask for the record with the given slug.
        // Three rows so the target is neither first nor last — otherwise
        // degenerate candidates like `Post.last` pass, exactly the
        // seeding-sensitivity the paper's C4 step illustrates.
        let mk = |author: &str, slug: &str| {
            SetupStep::Exec(call(
                cls(post),
                "create",
                [hash([("author", str_(author)), ("slug", str_(slug))])],
            ))
        };
        let spec = Spec::new(
            "finds by slug",
            vec![
                mk("alice", "s1"),
                mk("bob", "s2"),
                mk("carol", "s3"),
                SetupStep::CallTarget {
                    bind: "xr".into(),
                    args: vec![str_("s2")],
                },
            ],
            vec![call(call(var("xr"), "author", []), "==", [str_("bob")])],
        );
        let sol = gen(&env, &[("arg0".into(), Ty::Str)], Ty::Instance(post), &spec).unwrap();
        // Accept any of the equivalent single-call solutions.
        let s = sol.compact();
        assert!(
            s.contains("slug: arg0"),
            "expected a slug-keyed query, got {s}"
        );
    }

    #[test]
    fn effect_guidance_fixes_failing_writes() {
        let (env, post) = blog_env();
        // Spec: after m(post_title), the seeded post's title must change.
        let seed = SetupStep::Bind(
            "p".into(),
            call(
                cls(post),
                "create",
                [hash([("title", str_("Old")), ("slug", str_("s"))])],
            ),
        );
        let spec = Spec::new(
            "updates the title",
            vec![
                seed,
                SetupStep::CallTarget {
                    bind: "xr".into(),
                    args: vec![str_("New")],
                },
            ],
            vec![call(call(var("p"), "title", []), "==", [str_("New")])],
        );
        let sol = gen(&env, &[("arg0".into(), Ty::Str)], Ty::Instance(post), &spec).unwrap();
        let s = sol.compact();
        assert!(s.contains("title="), "expected a title write, got {s}");
    }

    #[test]
    fn guard_oracle_distinguishes_setups() {
        let (env, post) = blog_env();
        let seeded = Spec::new(
            "seeded",
            vec![
                SetupStep::Exec(call(cls(post), "create", [hash([("slug", str_("x"))])])),
                SetupStep::CallTarget {
                    bind: "xr".into(),
                    args: vec![],
                },
            ],
            vec![],
        );
        let empty = Spec::new(
            "empty",
            vec![SetupStep::CallTarget {
                bind: "xr".into(),
                args: vec![],
            }],
            vec![],
        );
        let oracle = GuardOracle::new(&env, &[&seeded], &[&empty]);
        let opts = Options::default();
        let mut stats = SearchStats::default();
        let guard = generate(
            &env,
            "m",
            &[],
            &Ty::Bool,
            &oracle,
            &opts,
            opts.max_guard_size,
            None,
            &mut stats,
            None,
        )
        .unwrap();
        // Any emptiness test of the posts table is acceptable
        // (`Post.count.positive?`, `Post.exists?(…)`, …); re-verify it
        // against the oracle and check it queries Post.
        assert!(guard.compact().contains("Post."), "got {}", guard.compact());
        let p = Program::new("m", [], guard);
        assert!(oracle.test(&env, &p).success);
    }

    #[test]
    fn unsatisfiable_specs_exhaust() {
        let (env, _) = blog_env();
        let spec = Spec::new(
            "impossible",
            vec![SetupStep::CallTarget {
                bind: "xr".into(),
                args: vec![],
            }],
            vec![false_()],
        );
        let opts = Options {
            max_expansions: 2_000,
            ..Options::default()
        };
        let mut stats = SearchStats::default();
        let r = generate(
            &env,
            "m",
            &[],
            &Ty::Bool,
            &SpecOracle::new(&env, &spec),
            &opts,
            6,
            None,
            &mut stats,
            None,
        );
        assert!(matches!(r, Err(SynthError::NoSolution { .. })));
        assert!(stats.tested > 0);
    }

    #[test]
    fn deadline_is_respected() {
        let (env, _) = blog_env();
        let spec = Spec::new(
            "impossible",
            vec![SetupStep::CallTarget {
                bind: "xr".into(),
                args: vec![],
            }],
            vec![false_()],
        );
        let opts = Options::default();
        let mut stats = SearchStats::default();
        let past = Instant::now() - std::time::Duration::from_secs(1);
        let r = generate(
            &env,
            "m",
            &[],
            &Ty::Bool,
            &SpecOracle::new(&env, &spec),
            &opts,
            20,
            Some(past),
            &mut stats,
            None,
        );
        assert_eq!(r, Err(SynthError::Timeout));
    }

    #[test]
    fn compact_rendering_of_class_consts() {
        // The dedup key distinguishes class constants by name.
        let (env, post) = blog_env();
        let e = call(cls(post), "first", []);
        assert_eq!(e.compact(), "Post.first");
        let _ = env;
    }
}
