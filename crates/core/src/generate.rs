//! The work-list search of Algorithm 2.
//!
//! Candidates are `(c, e)` pairs: an expression with holes and the number
//! of assertions its best evaluable ancestor passed. The list — a
//! [`Frontier`] ordered by the run's
//! [`SearchStrategy`](crate::engine::SearchStrategy) — defaults to
//! `c` descending, then AST size ascending, then insertion order (§4).
//! Evaluable expansions are run against the oracle immediately; failures
//! with impure read effects are wrapped with an effect hole (S-Eff) and
//! re-enqueued at their fresh assert count.
//!
//! Candidates are hash-consed ([`rbsyn_lang::ExprId`]) and all expensive
//! steps — expansion, type narrowing, oracle evaluation — are memoized
//! through the [`Scheduler`]'s [`CacheHandle`], so repeated exploration of
//! the same search region (across specs, guard requests, or batch jobs)
//! degenerates into table lookups. A scheduler without a handle runs with
//! a throwaway private cache, which reproduces the uncached search
//! exactly. Deadlines and cooperative cancellation are polled through the
//! same scheduler; frontier ordering, deadline handling and task dispatch
//! all live in [`crate::engine`], not here.

use crate::cache::{gamma_fingerprint, CacheHandle, OracleToken};
use crate::engine::{Frontier, FrontierItem, Priority, Scheduler, SpecJob, SpeculationPool};
use crate::error::SynthError;
// Re-exported from its pre-engine home so harness and test code keeps one
// import path for the search API.
pub use crate::engine::SearchStats;
use crate::expand::{simplify, Expander};
use crate::infer::{infer_ty, Gamma};
use crate::options::Options;
use rbsyn_interp::{InterpEnv, PreparedSpec, Spec, SpecOutcome};
use rbsyn_lang::{EffectPair, EffectSet, Expr, ExprId, FxBuild, Program, Symbol, Ty};
use rbsyn_trace::{Mark, Phase};
use std::collections::{HashMap, HashSet};
use std::time::Instant;

/// What the search asks of a fully concrete candidate.
///
/// Oracles are `Send + Sync`: [`Oracle::test`] is a pure function of the
/// candidate body (each run clones the prepared world snapshot), so the
/// engine may evaluate a batch of candidates concurrently — see
/// [`crate::engine::SpeculationPool`].
pub trait Oracle: Send + Sync {
    /// Tests a candidate program.
    fn test(&self, env: &InterpEnv, program: &Program) -> OracleOutcome;

    /// The memoization identity of this oracle instance (see
    /// [`OracleToken`]). Verdicts are cached per `(token, candidate)`, so
    /// an implementation must mint a fresh token at construction and answer
    /// [`Oracle::test`] as a pure function of the candidate body.
    fn token(&self) -> OracleToken;
}

/// Outcome of one oracle query.
#[derive(Clone, Debug)]
pub struct OracleOutcome {
    /// Did the candidate satisfy the oracle completely?
    pub success: bool,
    /// Units (assertions / specs) passed before stopping — the priority `c`.
    pub passed: usize,
    /// Effects of the failing assertion, when one failed with observable
    /// reads (drives S-Eff).
    pub effects: Option<EffectPair>,
    /// Evaluation-vector fingerprint of the candidate's behavior on the
    /// oracle's test states (see [`PreparedSpec::run_traced`]), when the
    /// oracle computes one. Drives observational-equivalence pruning;
    /// `None` (guard oracles, crashed candidates) just disables pruning
    /// for this candidate.
    pub fp: Option<u128>,
}

/// Oracle for one spec (prepared once; see [`PreparedSpec`]): run it,
/// report the failing assert's effects.
pub struct SpecOracle {
    prepared: PreparedSpec,
    token: OracleToken,
}

impl SpecOracle {
    /// Prepares the spec's setup snapshot.
    ///
    /// # Panics
    ///
    /// Panics when the spec's own setup raises — that is a suite bug, not a
    /// candidate failure.
    pub fn new(env: &InterpEnv, spec: &Spec) -> SpecOracle {
        let prepared = PreparedSpec::prepare(env, spec)
            .unwrap_or_else(|e| panic!("spec {:?} setup failed: {e}", spec.name));
        SpecOracle {
            prepared,
            token: OracleToken::fresh(),
        }
    }
}

impl Oracle for SpecOracle {
    fn test(&self, env: &InterpEnv, program: &Program) -> OracleOutcome {
        let (outcome, fp) = self.prepared.run_traced(env, program);
        match outcome {
            SpecOutcome::Passed { asserts } => OracleOutcome {
                success: true,
                passed: asserts,
                effects: None,
                fp,
            },
            SpecOutcome::Failed { passed, effects } => {
                let has_reads = !effects.read.is_pure();
                OracleOutcome {
                    success: false,
                    passed,
                    effects: has_reads.then_some(effects),
                    fp,
                }
            }
            SpecOutcome::SetupError(_) => OracleOutcome {
                success: false,
                passed: 0,
                effects: None,
                fp: None,
            },
        }
    }

    fn token(&self) -> OracleToken {
        self.token
    }
}

/// Oracle for branch conditions (§3.3): the boolean program must evaluate
/// truthy under every `pos` setup and falsy under every `neg` setup.
/// Effect guidance is never used here ("the asserted expression `x_r` is
/// pure").
pub struct GuardOracle {
    checks: Vec<PreparedSpec>,
    token: OracleToken,
}

impl GuardOracle {
    /// Builds the oracle from positive and negative spec setups.
    ///
    /// # Panics
    ///
    /// Panics when a spec's own setup raises (a suite bug).
    pub fn new(env: &InterpEnv, pos: &[&Spec], neg: &[&Spec]) -> GuardOracle {
        let mut checks = Vec::new();
        for s in pos {
            let p = PreparedSpec::prepare(env, s)
                .unwrap_or_else(|e| panic!("spec {:?} setup failed: {e}", s.name));
            let xr = p.result_var();
            checks.push(p.with_asserts(vec![Expr::Var(xr)]));
        }
        for s in neg {
            let p = PreparedSpec::prepare(env, s)
                .unwrap_or_else(|e| panic!("spec {:?} setup failed: {e}", s.name));
            let xr = p.result_var();
            checks.push(p.with_asserts(vec![Expr::Not(Box::new(Expr::Var(xr)))]));
        }
        GuardOracle {
            checks,
            token: OracleToken::fresh(),
        }
    }
}

impl Oracle for GuardOracle {
    fn test(&self, env: &InterpEnv, program: &Program) -> OracleOutcome {
        let mut passed = 0;
        for c in &self.checks {
            if c.run(env, program).passed() {
                passed += 1;
            } else {
                return OracleOutcome {
                    success: false,
                    passed,
                    effects: None,
                    fp: None,
                };
            }
        }
        OracleOutcome {
            success: true,
            passed,
            effects: None,
            fp: None,
        }
    }

    fn token(&self) -> OracleToken {
        self.token
    }
}

/// The result of a `generate` call, re-exported for harness code.
pub type GenerateOutcome = Result<Expr, SynthError>;

/// Pops to consume strictly sequentially before opening a speculation
/// window: short searches (most guard requests, easy specs) finish inside
/// the warm-up and never pay any pool overhead.
const SPECULATION_WARMUP_POPS: u64 = 192;

/// Frontier items evaluated per speculation window. Sized so a window
/// amortizes the pool synchronization while keeping rollback waste small.
const SPECULATION_WINDOW: usize = 48;

/// A frontier item awaiting in-order consumption: its original rank (for
/// rollback) and, when it came through the speculation pool, the
/// pre-judged outcomes of its expansion list.
struct Pending {
    pri: Priority,
    seq: u64,
    item: FrontierItem,
    prejudged: Option<Vec<Option<OracleOutcome>>>,
}

/// One-step expansion + simplification + §3.1 type narrowing for one
/// frontier item — the compute function behind the expansion memo, shared
/// by the sequential loop and the speculation workers. Returns the raw
/// (pre-filter) count plus the surviving, hash-consed candidates.
pub(crate) fn expand_compute(
    expander: &Expander<'_>,
    gamma: &mut Gamma,
    env: &InterpEnv,
    opts: &Options,
    search: &CacheHandle,
    expr: &Expr,
) -> (u64, Vec<crate::cache::ExpandItem>) {
    let subs = expander
        .expand_first(expr, gamma)
        .expect("non-evaluable expression must have a hole");
    let raw = subs.len() as u64;
    let mut out = Vec::with_capacity(subs.len());
    for sub in subs {
        let sub = simplify(sub);
        // Type narrowing: discard candidates with no typing derivation
        // (skipped when type guidance is off). Checked before interning —
        // ill-typed candidates never reach the arena, and the verdict is
        // baked into this (memoized) expansion list, so it is computed
        // once per distinct candidate-in-context.
        if opts.guidance.types && infer_ty(&env.table, gamma, &sub).is_none() {
            continue;
        }
        out.push(search.intern_full(sub));
    }
    (raw, out)
}

/// Algorithm 2: searches for an evaluable expression satisfying `oracle`,
/// starting from `□:goal` under `params`.
///
/// `sched` carries the run's deadline, cancellation token and memoization
/// handle (see [`Scheduler`]); [`Scheduler::sequential`] gives a
/// self-contained uncached run. Caching never changes the result, only
/// the work done to reach it.
///
/// # Example
///
/// ```
/// use rbsyn_core::engine::{Scheduler, SearchStats};
/// use rbsyn_core::generate::{generate, SpecOracle};
/// use rbsyn_core::Options;
/// use rbsyn_interp::{SetupStep, Spec};
/// use rbsyn_lang::builder::*;
/// use rbsyn_lang::Ty;
/// use rbsyn_stdlib::EnvBuilder;
///
/// let env = EnvBuilder::with_stdlib().finish();
/// // Spec: m("hello") must return a value equal to "hello".
/// let spec = Spec::new(
///     "returns its argument",
///     vec![SetupStep::CallTarget { bind: "xr".into(), args: vec![str_("hello")] }],
///     vec![call(var("xr"), "==", [str_("hello")])],
/// );
/// let opts = Options::default();
/// let mut stats = SearchStats::default();
/// let body = generate(
///     &env,
///     "m",
///     &[("arg0".into(), Ty::Str)],
///     &Ty::Str,
///     &SpecOracle::new(&env, &spec),
///     &opts,
///     opts.max_size,
///     &Scheduler::sequential(),
///     &mut stats,
/// )
/// .unwrap();
/// assert_eq!(body.compact(), "arg0");
/// ```
#[allow(clippy::too_many_arguments)]
pub fn generate(
    env: &InterpEnv,
    method_name: &str,
    params: &[(Symbol, Ty)],
    goal: &Ty,
    oracle: &dyn Oracle,
    opts: &Options,
    max_size: usize,
    sched: &Scheduler,
    stats: &mut SearchStats,
) -> GenerateOutcome {
    let mut out = generate_many(
        env,
        method_name,
        params,
        goal,
        oracle,
        opts,
        max_size,
        sched,
        stats,
        1,
        u64::MAX,
    )?;
    Ok(out.remove(0))
}

/// Like [`generate`], but keeps searching after the first success until
/// `max_solutions` oracle-passing expressions are found (or
/// `extra_after_first` additional work-list pops elapse). Used by the merge
/// to collect alternative branch conditions for backtracking.
///
/// Returns at least one solution on `Ok`; a timeout after the first
/// solution returns the solutions found so far rather than failing.
#[allow(clippy::too_many_arguments)]
pub fn generate_many(
    env: &InterpEnv,
    method_name: &str,
    params: &[(Symbol, Ty)],
    goal: &Ty,
    oracle: &dyn Oracle,
    opts: &Options,
    max_size: usize,
    sched: &Scheduler,
    stats: &mut SearchStats,
    max_solutions: usize,
    extra_after_first: u64,
) -> Result<Vec<Expr>, SynthError> {
    // Hot path: the oracle builds a `Program` for every candidate it
    // tests, so the method name is interned ONCE here and the (already
    // interned) parameter symbols are reused — no per-candidate trips
    // through the global symbol table.
    let method_sym = Symbol::intern(method_name);
    let width = sched.oracle_width();
    if width <= 1 {
        return search_loop(
            env,
            method_name,
            method_sym,
            params,
            goal,
            oracle,
            opts,
            max_size,
            sched,
            stats,
            max_solutions,
            extra_after_first,
            None,
        );
    }
    // Parallel run: the speculation workers share the run's memoization
    // handle, so an uncached run materializes its throwaway cache out here
    // — before the thread scope — where workers can borrow it. Behaviour
    // is unchanged: the sequential loop builds the same private cache.
    let materialized;
    let sched = if sched.cache().is_some() {
        sched
    } else {
        materialized = sched.clone().with_cache(CacheHandle::private());
        &materialized
    };
    // Scoped workers expand and judge the top of the frontier
    // speculatively while this thread consumes the results in pop order
    // (see `SpeculationPool` for why results stay byte-identical).
    std::thread::scope(|scope| {
        search_loop_parallel(
            env,
            method_name,
            method_sym,
            params,
            goal,
            oracle,
            opts,
            max_size,
            sched,
            stats,
            max_solutions,
            extra_after_first,
            scope,
            width,
        )
    })
}

/// Sets up the [`SpeculationPool`] for a parallel run. Split from
/// [`generate_many`] so the scoped-pool borrows (memoization handle,
/// Γ fingerprint) can be established before the pool exists.
#[allow(clippy::too_many_arguments)]
fn search_loop_parallel<'scope, 'env>(
    env: &'scope InterpEnv,
    method_name: &'scope str,
    method_sym: Symbol,
    params: &'scope [(Symbol, Ty)],
    goal: &Ty,
    oracle: &'scope dyn Oracle,
    opts: &'scope Options,
    max_size: usize,
    sched: &'scope Scheduler,
    stats: &mut SearchStats,
    max_solutions: usize,
    extra_after_first: u64,
    scope: &'scope std::thread::Scope<'scope, 'env>,
    width: usize,
) -> Result<Vec<Expr>, SynthError> {
    let search = sched
        .cache()
        .expect("parallel runs always carry a cache handle");
    let gamma_fp = gamma_fingerprint(Gamma::from_params(params).bindings());
    let pool = SpeculationPool::new(
        scope,
        width - 1,
        oracle,
        env,
        method_sym,
        params,
        opts,
        search,
        gamma_fp,
        sched.trace(),
    );
    search_loop(
        env,
        method_name,
        method_sym,
        params,
        goal,
        oracle,
        opts,
        max_size,
        sched,
        stats,
        max_solutions,
        extra_after_first,
        Some(&pool),
    )
}

/// The work-list loop behind [`generate_many`].
#[allow(clippy::too_many_arguments)]
fn search_loop(
    env: &InterpEnv,
    method_name: &str,
    method_sym: Symbol,
    params: &[(Symbol, Ty)],
    goal: &Ty,
    oracle: &dyn Oracle,
    opts: &Options,
    max_size: usize,
    sched: &Scheduler,
    stats: &mut SearchStats,
    max_solutions: usize,
    extra_after_first: u64,
    pool: Option<&SpeculationPool<'_, '_>>,
) -> Result<Vec<Expr>, SynthError> {
    // Without a shared handle the search still runs through (its own,
    // throwaway) cache — one code path, identical behaviour, no reuse.
    let local;
    let search = match sched.cache() {
        Some(h) => h,
        None => {
            local = CacheHandle::private();
            &local
        }
    };
    let expander = Expander::new(&env.table, opts, search);
    let mut gamma = Gamma::from_params(params);
    let gamma_fp = gamma_fingerprint(gamma.bindings());
    let param_syms: Vec<Symbol> = params.iter().map(|(n, _)| *n).collect();
    let make_program =
        |body: &Expr| Program::from_parts(method_sym, param_syms.clone(), body.clone());

    let mut frontier = Frontier::new(opts.strategy.strategy());
    // Dedup filter: the work-list never holds two structurally equal
    // candidates, and a candidate judged once is never re-judged in this
    // call.
    let mut seen: HashSet<ExprId, FxBuild> = HashSet::default();
    // Observational-equivalence filter over S-Eff wraps: maps a failing
    // candidate's (evaluation vector, inferred type) to the smallest
    // candidate size already enqueued with that behavior. A later
    // same-or-larger candidate is pruned: its wrap's completions evaluate
    // from an identical post-run world and binding, and the earlier,
    // smaller representative's subtree reaches every corresponding
    // completion first under the frontier order — so the pruned subtree
    // could only re-derive work, never change the first solution found.
    let mut obs_seen: HashMap<(u128, Ty), u32, FxBuild> = HashMap::default();
    let root = search.intern_full(Expr::Hole(goal.clone()));
    frontier.push(0, 1, root.id, root.expr);

    let mut solutions: Vec<Expr> = Vec::new();
    let mut first_solution_at: Option<u64> = None;
    let mut pops = 0u64;
    // Hoisted once: with tracing off every instrumentation site below is
    // a single `None` check on this copy.
    let tracer = sched.trace();
    // Speculation window: frontier items popped ahead of consumption, with
    // their expansion lists memoized and children pre-judged by the pool.
    let mut window: std::collections::VecDeque<Pending> = std::collections::VecDeque::new();
    let window_size = pool.map_or(0, |_| SPECULATION_WINDOW);
    loop {
        let pending = match window.pop_front() {
            Some(sp) => {
                if frontier.outranks(sp.pri) {
                    // A child pushed while consuming an earlier window item
                    // outranks the speculation: roll the window back at its
                    // original ranks and re-pop in true order.
                    frontier.requeue(sp.pri, sp.seq, sp.item);
                    for rest in window.drain(..) {
                        frontier.requeue(rest.pri, rest.seq, rest.item);
                    }
                    continue;
                }
                sp
            }
            None => {
                if let Some(pool) = pool {
                    // Only speculate once the search is demonstrably large;
                    // short searches stay strictly sequential and pay no
                    // pool overhead.
                    if pops >= SPECULATION_WARMUP_POPS && frontier.len() > 1 {
                        let mut ranked: Vec<(Priority, u64, FrontierItem)> = Vec::new();
                        while ranked.len() < window_size {
                            match frontier.pop_ranked() {
                                Some(r) => ranked.push(r),
                                None => break,
                            }
                        }
                        let jobs: Vec<SpecJob> = ranked
                            .iter()
                            .map(|(_, _, item)| SpecJob {
                                id: item.id,
                                expr: std::sync::Arc::clone(&item.expr),
                            })
                            .collect();
                        let results = pool.evaluate(jobs);
                        for ((pri, seq, item), prejudged) in ranked.into_iter().zip(results) {
                            window.push_back(Pending {
                                pri,
                                seq,
                                item,
                                prejudged: Some(prejudged),
                            });
                        }
                        if window.is_empty() {
                            break;
                        }
                        continue;
                    }
                }
                let Some((pri, seq, item)) = frontier.pop_ranked() else {
                    break;
                };
                Pending {
                    pri,
                    seq,
                    item,
                    prejudged: None,
                }
            }
        };
        let item = pending.item;
        let mut prejudged = pending.prejudged;
        stats.popped += 1;
        pops += 1;
        if let Some(t) = tracer {
            if t.sampled(stats.popped - 1) {
                t.mark(Mark::FrontierPop);
            }
        }
        if stats.popped.is_multiple_of(64) && sched.should_stop() {
            if let Some(t) = tracer {
                t.mark(Mark::DeadlineHit);
            }
            return if solutions.is_empty() {
                Err(SynthError::Timeout)
            } else {
                Ok(solutions)
            };
        }
        if pops > opts.max_expansions {
            break;
        }
        if let Some(at) = first_solution_at {
            if pops > at + extra_after_first {
                break;
            }
        }

        // Hole-free items never enter the list: evaluable candidates are
        // judged (and dropped) at expansion time, and both push sites below
        // only enqueue expressions that still carry a hole.
        debug_assert!(item.expr.has_holes());
        // One-step expansion + simplification + type narrowing (§3.1),
        // memoized per (environment, Γ, candidate) — a guaranteed hit for
        // speculated items (the pool computed it through the same handle),
        // with the raw pre-filter count restored either way.
        let pre_expand_hits = stats.expand_hits;
        let expansions = search.expansions(gamma_fp, item.id, stats, |_| {
            expand_compute(&expander, &mut gamma, env, opts, search, &item.expr)
        });
        if let Some(t) = tracer {
            if t.sampled(stats.popped - 1) {
                t.mark(Mark::Expand);
            }
            if stats.expand_hits > pre_expand_hits {
                t.mark(Mark::CacheHit);
            }
        }
        for (j, cand) in expansions.iter().enumerate() {
            if !seen.insert(cand.id) {
                stats.deduped += 1;
                continue;
            }
            if cand.evaluable {
                stats.tested += 1;
                if let Some(t) = tracer {
                    if t.sampled(stats.tested - 1) {
                        t.mark(Mark::OracleRun);
                    }
                }
                // Fresh candidates are judged directly: within one call the
                // dedup filter already guarantees single judgement, and
                // storing a verdict per failing candidate was measured to
                // cost far more than the rare cross-phase hit it could
                // serve. The memo is consulted where re-judging actually
                // recurs: solution reuse and merge validation.
                let out = prejudged
                    .as_mut()
                    .and_then(|v| v.get_mut(j).and_then(Option::take))
                    .unwrap_or_else(|| {
                        let _ev = tracer
                            .and_then(|t| t.sampled(stats.tested - 1).then(|| t.span(Phase::Eval)));
                        let started = Instant::now();
                        let out = oracle.test(env, &make_program(&cand.expr));
                        stats.eval_nanos = stats
                            .eval_nanos
                            .saturating_add(started.elapsed().as_nanos() as u64);
                        out
                    });
                if out.success {
                    solutions.push((*cand.expr).clone());
                    if solutions.len() >= max_solutions {
                        return Ok(solutions);
                    }
                    first_solution_at.get_or_insert(pops);
                    continue;
                }
                // S-Eff: wrap the failing candidate with an effect hole for
                // the unmet read effect. Without effect guidance the wrap
                // still happens, but unconstrained (◇:*).
                if let Some(effects) = out.effects {
                    let er = if opts.guidance.effects {
                        effects.read
                    } else {
                        EffectSet::star()
                    };
                    let ty = if opts.guidance.types {
                        search
                            .infer(gamma_fp, cand.id, stats, || {
                                infer_ty(&env.table, &mut gamma, &cand.expr)
                            })
                            .unwrap_or_else(|| goal.clone())
                    } else {
                        goal.clone()
                    };
                    // Observational-equivalence dedup: skip the wrap (and
                    // with it the whole continuation subtree) when an
                    // equally-behaving candidate of equal or smaller size
                    // is already enqueued.
                    if opts.obs_equiv {
                        if let Some(fp) = out.fp {
                            match obs_seen.entry((fp, ty.clone())) {
                                std::collections::hash_map::Entry::Occupied(mut o) => {
                                    if cand.size >= *o.get() {
                                        stats.obs_pruned += 1;
                                        if let Some(t) = tracer {
                                            if t.sampled(stats.obs_pruned - 1) {
                                                t.mark(Mark::ObsPrune);
                                            }
                                        }
                                        continue;
                                    }
                                    o.insert(cand.size);
                                }
                                std::collections::hash_map::Entry::Vacant(v) => {
                                    v.insert(cand.size);
                                }
                            }
                        }
                    }
                    let wrapped = wrap_with_effect(&cand.expr, er, ty);
                    let w = search.intern_full(wrapped);
                    if w.size as usize <= max_size && seen.insert(w.id) {
                        frontier.push(out.passed, w.size as usize, w.id, w.expr);
                    }
                }
            } else if cand.size as usize <= max_size {
                frontier.push(
                    item.c,
                    cand.size as usize,
                    cand.id,
                    std::sync::Arc::clone(&cand.expr),
                );
            }
        }
    }
    if solutions.is_empty() {
        Err(SynthError::NoSolution {
            spec: method_name.to_owned(),
        })
    } else {
        Ok(solutions)
    }
}

/// S-Eff (Fig. 5): `e` becomes `let t = e in (◇:ε_r; □:τ)` where `τ` is
/// `e`'s (pre-resolved) type.
fn wrap_with_effect(e: &Expr, er: EffectSet, ty: Ty) -> Expr {
    let t = e.fresh_temp();
    Expr::Let {
        var: t,
        val: Box::new(e.clone()),
        body: Box::new(Expr::Seq(vec![Expr::EffHole(er), Expr::Hole(ty)])),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::StrategyKind;
    use rbsyn_interp::SetupStep;
    use rbsyn_lang::builder::*;
    use rbsyn_lang::Value;
    use rbsyn_stdlib::EnvBuilder;
    use std::time::Instant;

    fn blog_env() -> (InterpEnv, rbsyn_lang::ClassId) {
        let mut b = EnvBuilder::with_stdlib();
        let post = b.define_model(
            "Post",
            &[("author", Ty::Str), ("title", Ty::Str), ("slug", Ty::Str)],
        );
        b.add_const(Value::Class(post));
        (b.finish(), post)
    }

    fn gen(env: &InterpEnv, params: &[(Symbol, Ty)], goal: Ty, spec: &Spec) -> GenerateOutcome {
        let opts = Options::default();
        let mut stats = SearchStats::default();
        generate(
            env,
            "m",
            params,
            &goal,
            &SpecOracle::new(env, spec),
            &opts,
            opts.max_size,
            &Scheduler::sequential(),
            &mut stats,
        )
    }

    #[test]
    fn synthesizes_identity_from_params() {
        let (env, _) = blog_env();
        // Spec: m("s") must return a truthy value whose == "s" holds.
        let spec = Spec::new(
            "returns its argument",
            vec![SetupStep::CallTarget {
                bind: "xr".into(),
                args: vec![str_("hello")],
            }],
            vec![call(var("xr"), "==", [str_("hello")])],
        );
        let sol = gen(&env, &[("arg0".into(), Ty::Str)], Ty::Str, &spec).unwrap();
        assert_eq!(sol.compact(), "arg0");
    }

    #[test]
    fn synthesizes_constants() {
        let (env, _) = blog_env();
        let mut env = env;
        env.table.add_const(Value::Bool(true));
        env.table.add_const(Value::Bool(false));
        let spec = Spec::new(
            "returns false",
            vec![SetupStep::CallTarget {
                bind: "xr".into(),
                args: vec![],
            }],
            vec![call(var("xr"), "==", [false_()])],
        );
        let sol = gen(&env, &[], Ty::Bool, &spec).unwrap();
        assert_eq!(sol.compact(), "false");
    }

    #[test]
    fn synthesizes_queries_with_hash_arguments() {
        let (env, post) = blog_env();
        // Seed a post, ask for the record with the given slug.
        // Three rows so the target is neither first nor last — otherwise
        // degenerate candidates like `Post.last` pass, exactly the
        // seeding-sensitivity the paper's C4 step illustrates.
        let mk = |author: &str, slug: &str| {
            SetupStep::Exec(call(
                cls(post),
                "create",
                [hash([("author", str_(author)), ("slug", str_(slug))])],
            ))
        };
        let spec = Spec::new(
            "finds by slug",
            vec![
                mk("alice", "s1"),
                mk("bob", "s2"),
                mk("carol", "s3"),
                SetupStep::CallTarget {
                    bind: "xr".into(),
                    args: vec![str_("s2")],
                },
            ],
            vec![call(call(var("xr"), "author", []), "==", [str_("bob")])],
        );
        let sol = gen(&env, &[("arg0".into(), Ty::Str)], Ty::Instance(post), &spec).unwrap();
        // Accept any of the equivalent single-call solutions.
        let s = sol.compact();
        assert!(
            s.contains("slug: arg0"),
            "expected a slug-keyed query, got {s}"
        );
    }

    #[test]
    fn effect_guidance_fixes_failing_writes() {
        let (env, post) = blog_env();
        // Spec: after m(post_title), the seeded post's title must change.
        let seed = SetupStep::Bind(
            "p".into(),
            call(
                cls(post),
                "create",
                [hash([("title", str_("Old")), ("slug", str_("s"))])],
            ),
        );
        let spec = Spec::new(
            "updates the title",
            vec![
                seed,
                SetupStep::CallTarget {
                    bind: "xr".into(),
                    args: vec![str_("New")],
                },
            ],
            vec![call(call(var("p"), "title", []), "==", [str_("New")])],
        );
        let sol = gen(&env, &[("arg0".into(), Ty::Str)], Ty::Instance(post), &spec).unwrap();
        let s = sol.compact();
        assert!(s.contains("title="), "expected a title write, got {s}");
    }

    #[test]
    fn guard_oracle_distinguishes_setups() {
        let (env, post) = blog_env();
        let seeded = Spec::new(
            "seeded",
            vec![
                SetupStep::Exec(call(cls(post), "create", [hash([("slug", str_("x"))])])),
                SetupStep::CallTarget {
                    bind: "xr".into(),
                    args: vec![],
                },
            ],
            vec![],
        );
        let empty = Spec::new(
            "empty",
            vec![SetupStep::CallTarget {
                bind: "xr".into(),
                args: vec![],
            }],
            vec![],
        );
        let oracle = GuardOracle::new(&env, &[&seeded], &[&empty]);
        let opts = Options::default();
        let mut stats = SearchStats::default();
        let guard = generate(
            &env,
            "m",
            &[],
            &Ty::Bool,
            &oracle,
            &opts,
            opts.max_guard_size,
            &Scheduler::sequential(),
            &mut stats,
        )
        .unwrap();
        // Any emptiness test of the posts table is acceptable
        // (`Post.count.positive?`, `Post.exists?(…)`, …); re-verify it
        // against the oracle and check it queries Post.
        assert!(guard.compact().contains("Post."), "got {}", guard.compact());
        let p = Program::new("m", [], guard);
        assert!(oracle.test(&env, &p).success);
    }

    #[test]
    fn unsatisfiable_specs_exhaust() {
        let (env, _) = blog_env();
        let spec = Spec::new(
            "impossible",
            vec![SetupStep::CallTarget {
                bind: "xr".into(),
                args: vec![],
            }],
            vec![false_()],
        );
        let opts = Options {
            max_expansions: 2_000,
            ..Options::default()
        };
        let mut stats = SearchStats::default();
        let r = generate(
            &env,
            "m",
            &[],
            &Ty::Bool,
            &SpecOracle::new(&env, &spec),
            &opts,
            6,
            &Scheduler::sequential(),
            &mut stats,
        );
        assert!(matches!(r, Err(SynthError::NoSolution { .. })));
        assert!(stats.tested > 0);
    }

    #[test]
    fn deadline_is_respected() {
        let (env, _) = blog_env();
        let spec = Spec::new(
            "impossible",
            vec![SetupStep::CallTarget {
                bind: "xr".into(),
                args: vec![],
            }],
            vec![false_()],
        );
        let opts = Options::default();
        let mut stats = SearchStats::default();
        let past = Instant::now() - std::time::Duration::from_secs(1);
        let r = generate(
            &env,
            "m",
            &[],
            &Ty::Bool,
            &SpecOracle::new(&env, &spec),
            &opts,
            20,
            &Scheduler::new(Some(past), None),
            &mut stats,
        );
        assert_eq!(r, Err(SynthError::Timeout));
    }

    #[test]
    fn cancellation_stops_the_search() {
        let (env, _) = blog_env();
        let spec = Spec::new(
            "impossible",
            vec![SetupStep::CallTarget {
                bind: "xr".into(),
                args: vec![],
            }],
            vec![false_()],
        );
        let opts = Options::default();
        let mut stats = SearchStats::default();
        let token = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(true));
        let sched = Scheduler::sequential().for_task(token);
        let r = generate(
            &env,
            "m",
            &[],
            &Ty::Bool,
            &SpecOracle::new(&env, &spec),
            &opts,
            20,
            &sched,
            &mut stats,
        );
        assert_eq!(r, Err(SynthError::Timeout));
        assert!(
            stats.popped <= 64,
            "cancellation must stop within one check window"
        );
    }

    #[test]
    fn strategies_explore_in_different_orders_but_both_solve() {
        let (env, _) = blog_env();
        let spec = Spec::new(
            "returns its argument",
            vec![SetupStep::CallTarget {
                bind: "xr".into(),
                args: vec![str_("hello")],
            }],
            vec![call(var("xr"), "==", [str_("hello")])],
        );
        let solve = |kind: StrategyKind| {
            let opts = Options {
                strategy: kind,
                ..Options::default()
            };
            let mut stats = SearchStats::default();
            generate(
                &env,
                "m",
                &[("arg0".into(), Ty::Str)],
                &Ty::Str,
                &SpecOracle::new(&env, &spec),
                &opts,
                opts.max_size,
                &Scheduler::sequential(),
                &mut stats,
            )
            .unwrap()
            .compact()
        };
        assert_eq!(solve(StrategyKind::Paper), "arg0");
        assert_eq!(solve(StrategyKind::CostWeighted), "arg0");
    }

    #[test]
    fn compact_rendering_of_class_consts() {
        // The dedup key distinguishes class constants by name.
        let (env, post) = blog_env();
        let e = call(cls(post), "first", []);
        assert_eq!(e.compact(), "Post.first");
        let _ = env;
    }
}
