//! The memoized search cache: hash-consed candidates plus memo tables for
//! the three expensive operations of the work-list search.
//!
//! The enumerative search of Algorithm 2 re-derives an enormous amount of
//! identical work: the same candidate expression is expanded once per spec
//! (per-spec phases explore overlapping prefixes of the same space),
//! type-checked after every substitution, and — in the merge — re-tested
//! against the same oracle on every backtracking attempt. A [`SearchCache`]
//! makes each of these a pure, memoized function of compact keys:
//!
//! * **hash-consing** — every candidate is interned into a sharded
//!   [`ExprArena`], so structurally equal candidates share one [`ExprId`]
//!   and the work-list / seen-set operate on `Copy` integers;
//! * **expansion memo** — `Expander::expand_first` + `simplify` + the §3.1
//!   type-narrowing filter, keyed by `(environment, Γ, candidate)`;
//! * **type memo** — `infer_ty` verdicts, same key;
//! * **oracle memo** — [`crate::generate::OracleOutcome`]s, keyed by
//!   `(oracle, candidate)`;
//! * **template memo** — the S-App / S-EffApp method-call templates
//!   enumerated from the class table, keyed by `(environment, goal/effect,
//!   seeds)`.
//!
//! Environments are identified *by content*: [`EnvToken`] wraps the
//! 128-bit [`ClassTable::fingerprint`] combined with the
//! expansion-relevant [`Options`] knobs, so two batch jobs built over
//! identical libraries share entries while a job that swaps constants or
//! effect precision can never observe another configuration's results.
//! Oracles are identified *by instance* ([`OracleToken`], a process-unique
//! counter), because their verdicts depend on prepared spec state that has
//! no content fingerprint.
//!
//! Every memoized value is a deterministic pure function of its key, so
//! caching — shared or not, threaded or not — can never change what the
//! search finds, only how fast it finds it. `solve --all --compare
//! [--no-cache]` in `rbsyn-bench` checks exactly this end to end.
//!
//! All tables are sharded behind [`RwLock`]s and values are looked up
//! optimistically (computed outside the lock; a racing duplicate insert
//! resolves to the first writer), so a cache can be shared across the
//! worker threads of [`crate::batch::run_batch`].

use crate::generate::OracleOutcome;
use crate::options::Options;
use rbsyn_lang::contention::{self, LockSite};
use rbsyn_lang::{hash128, Expr, ExprArena, ExprId, FxBuild, FxHasher, Symbol, Ty};
use rbsyn_ty::ClassTable;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Number of independently locked shards per table. Sixteen keeps lock
/// contention negligible at batch-driver thread counts while the id
/// encoding (`index % SHARDS`) stays cheap.
const SHARDS: usize = 16;

/// Content-derived identity of a search environment: the class-table
/// fingerprint (hierarchy, methods, constants `Σ`, effect precision)
/// combined with the [`Options`] knobs that shape candidate enumeration.
///
/// Expansion, type and template memo entries are keyed on this token, so
/// reusing one [`SearchCache`] across problems is always sound: a problem
/// with different constants or precision hashes to a different token and
/// sees none of the previous problem's entries.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EnvToken(u128);

impl EnvToken {
    /// Computes the token for a configured table under the given options.
    pub fn compute(table: &ClassTable, opts: &Options) -> EnvToken {
        EnvToken(hash128(
            "rbsyn.env",
            &(
                table.fingerprint(),
                opts.guidance.types,
                opts.guidance.effects,
                opts.max_hash_keys,
            ),
        ))
    }

    /// The raw 128-bit token, for serialization
    /// ([`crate::snapshot`]). Tokens are content-derived, so the bits are
    /// stable across processes for the same table + options.
    pub fn to_bits(self) -> u128 {
        self.0
    }

    /// Rebuilds a token from [`EnvToken::to_bits`] output.
    pub fn from_bits(bits: u128) -> EnvToken {
        EnvToken(bits)
    }
}

/// Process-unique identity of one oracle instance.
///
/// Oracle verdicts are memoized per `(token, candidate)`; a token is minted
/// once per prepared oracle (spec oracle, guard oracle) and never reused,
/// so verdicts from different specs can never be confused. Callers must
/// query one token with a consistent method name and parameter list — the
/// token stands for "this oracle judging this candidate body".
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct OracleToken(u64);

impl OracleToken {
    /// Mints a fresh, process-unique token.
    pub fn fresh() -> OracleToken {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        OracleToken(NEXT.fetch_add(1, Ordering::Relaxed))
    }
}

/// Fingerprint of a typing environment `Γ` (the search's root bindings),
/// used alongside [`EnvToken`] to key expansion and type memos.
pub fn gamma_fingerprint(bindings: &[(Symbol, Ty)]) -> u128 {
    hash128("rbsyn.gamma", &bindings)
}

/// A sharded, clone-out concurrent map. Values are computed outside the
/// lock; racing inserts keep the first writer's value (all values stored
/// here are deterministic functions of their key, so the race is benign).
struct ShardedMap<K, V> {
    shards: Vec<RwLock<HashMap<K, V, FxBuild>>>,
    /// Telemetry identity of this table's stripes (see
    /// [`rbsyn_lang::contention`]).
    site: LockSite,
}

impl<K: Eq + Hash, V: Clone> ShardedMap<K, V> {
    fn new(site: LockSite) -> ShardedMap<K, V> {
        ShardedMap {
            shards: (0..SHARDS)
                .map(|_| RwLock::new(HashMap::default()))
                .collect(),
            site,
        }
    }

    fn shard(&self, k: &K) -> &RwLock<HashMap<K, V, FxBuild>> {
        let mut h = FxHasher::default();
        k.hash(&mut h);
        &self.shards[(h.finish() as usize) % SHARDS]
    }

    fn get(&self, k: &K) -> Option<V> {
        contention::read(self.site, self.shard(k)).get(k).cloned()
    }

    fn insert_if_absent(&self, k: K, v: V) -> V {
        contention::write(self.site, self.shard(&k))
            .entry(k)
            .or_insert(v)
            .clone()
    }

    fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| contention::read(self.site, s).len())
            .sum()
    }
}

impl<K: Eq + Hash + Clone, V: Clone> ShardedMap<K, V> {
    /// Clones out every entry (snapshot export; order is unspecified).
    fn entries(&self) -> Vec<(K, V)> {
        self.shards
            .iter()
            .flat_map(|s| {
                contention::read(self.site, s)
                    .iter()
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect::<Vec<_>>()
            })
            .collect()
    }
}

/// One memoized expansion result: the candidate's id plus every property
/// the work-list consults, captured at intern time so the hot loop touches
/// no further locks per item.
#[derive(Clone)]
pub struct ExpandItem {
    /// Hash-consed candidate id (dedup/memo key).
    pub id: ExprId,
    /// The candidate itself (shared with the arena).
    pub expr: Arc<Expr>,
    /// Precomputed node count.
    pub size: u32,
    /// Precomputed hole-free flag.
    pub evaluable: bool,
}

#[derive(Clone)]
struct ExpandEntry {
    /// Raw expansion count before type filtering (restored into
    /// [`crate::generate::SearchStats::expanded`] on hits so counters are
    /// identical with and without caching).
    raw: u64,
    /// Simplified, well-typed expansions, in enumeration order.
    items: Arc<[ExpandItem]>,
}

/// The shared memo store of one or many synthesis runs.
///
/// A `SearchCache` owns the hash-consing arena plus the expansion, type,
/// oracle and template memos described in the [module docs](self). It is
/// internally synchronized: wrap it in an [`Arc`] and hand clones to
/// concurrent batch jobs ([`crate::batch::run_batch`] does this
/// automatically). Dropping the cache reclaims everything.
///
/// Most callers never touch this type directly — [`crate::Synthesizer`]
/// creates a private cache per run, and the batch driver shares one across
/// jobs. The `--no-cache` escape hatch ([`Options::cache`]) replaces the
/// shared cache with throwaway per-call caches, which reproduces the
/// uncached search exactly.
pub struct SearchCache {
    arena: Vec<RwLock<ExprArena>>,
    expand: ShardedMap<(EnvToken, u128, ExprId), ExpandEntry>,
    types: ShardedMap<(EnvToken, u128, ExprId), Option<Ty>>,
    oracle: ShardedMap<(OracleToken, ExprId), OracleOutcome>,
    templates: ShardedMap<(EnvToken, String), Arc<Vec<Expr>>>,
    /// Template-memo requests answered from this cache / computed fresh.
    /// Diagnostics only (the snapshot round-trip gate checks that a
    /// warm-loaded cache reports zero misses); never folded into the
    /// deterministic effort counters.
    template_hits: AtomicU64,
    template_misses: AtomicU64,
}

impl Default for SearchCache {
    fn default() -> SearchCache {
        SearchCache::new()
    }
}

impl SearchCache {
    /// An empty cache.
    pub fn new() -> SearchCache {
        SearchCache {
            arena: (0..SHARDS)
                .map(|i| RwLock::new(ExprArena::with_stride(i as u32, SHARDS as u32)))
                .collect(),
            expand: ShardedMap::new(LockSite::CacheExpand),
            types: ShardedMap::new(LockSite::CacheTypes),
            oracle: ShardedMap::new(LockSite::CacheOracle),
            templates: ShardedMap::new(LockSite::CacheTemplates),
            template_hits: AtomicU64::new(0),
            template_misses: AtomicU64::new(0),
        }
    }

    /// Hash-conses a candidate: structurally equal expressions get one id.
    /// The structural hash is computed once and reused for shard choice,
    /// the optimistic read probe, and the insert.
    pub fn intern(&self, e: Expr) -> ExprId {
        let hash = ExprArena::hash_of(&e);
        let lock = &self.arena[(hash as usize) % SHARDS];
        if let Some(id) = contention::read(LockSite::CacheArena, lock).lookup_hashed(hash, &e) {
            return id;
        }
        contention::write(LockSite::CacheArena, lock).intern_hashed(hash, e)
    }

    /// [`SearchCache::intern`] plus the interned `Arc` and both precomputed
    /// properties, all under a single shard roundtrip.
    pub fn intern_full(&self, e: Expr) -> ExpandItem {
        let hash = ExprArena::hash_of(&e);
        let lock = &self.arena[(hash as usize) % SHARDS];
        {
            let shard = contention::read(LockSite::CacheArena, lock);
            if let Some(id) = shard.lookup_hashed(hash, &e) {
                let (size, evaluable) = shard.meta(id);
                return ExpandItem {
                    id,
                    expr: Arc::clone(shard.get(id)),
                    size: size as u32,
                    evaluable,
                };
            }
        }
        let mut shard = contention::write(LockSite::CacheArena, lock);
        let id = shard.intern_hashed(hash, e);
        let (size, evaluable) = shard.meta(id);
        ExpandItem {
            id,
            expr: Arc::clone(shard.get(id)),
            size: size as u32,
            evaluable,
        }
    }

    /// The interned expression behind an id (cheap `Arc` clone).
    pub fn expr(&self, id: ExprId) -> Arc<Expr> {
        let shard = (id.index() as usize) % SHARDS;
        Arc::clone(contention::read(LockSite::CacheArena, &self.arena[shard]).get(id))
    }

    /// Precomputed node count of an interned expression.
    pub fn size(&self, id: ExprId) -> usize {
        let shard = (id.index() as usize) % SHARDS;
        contention::read(LockSite::CacheArena, &self.arena[shard]).size(id)
    }

    /// Precomputed hole-free flag of an interned expression.
    pub fn evaluable(&self, id: ExprId) -> bool {
        let shard = (id.index() as usize) % SHARDS;
        contention::read(LockSite::CacheArena, &self.arena[shard]).evaluable(id)
    }

    /// Precomputed `(node count, evaluable)` in one shard roundtrip.
    pub fn meta(&self, id: ExprId) -> (usize, bool) {
        let shard = (id.index() as usize) % SHARDS;
        contention::read(LockSite::CacheArena, &self.arena[shard]).meta(id)
    }

    /// Number of distinct candidates interned so far (diagnostics/tests).
    pub fn interned_exprs(&self) -> usize {
        self.arena
            .iter()
            .map(|a| contention::read(LockSite::CacheArena, a).len())
            .sum()
    }

    /// Number of memoized expansion lists (diagnostics/tests).
    pub fn expand_entries(&self) -> usize {
        self.expand.len()
    }

    /// Number of memoized type verdicts (diagnostics/tests).
    pub fn type_entries(&self) -> usize {
        self.types.len()
    }

    /// Number of memoized oracle verdicts (diagnostics/tests).
    pub fn oracle_entries(&self) -> usize {
        self.oracle.len()
    }

    /// Number of memoized template lists (diagnostics/tests).
    pub fn template_entries(&self) -> usize {
        self.templates.len()
    }

    /// `(hits, misses)` of the template memo since this cache was created
    /// (or last loaded from a snapshot). A warm cache restored from a
    /// snapshot of an identical run answers every request from the memo,
    /// so its miss count stays zero — the observable "the snapshot
    /// worked" signal used by the CI round-trip leg. Diagnostics only:
    /// these counters vary with cache state by design and are never part
    /// of the deterministic effort counters.
    pub fn template_counters(&self) -> (u64, u64) {
        (
            self.template_hits.load(Ordering::Relaxed),
            self.template_misses.load(Ordering::Relaxed),
        )
    }

    /// Clones out every template entry as raw `(env bits, key, exprs)`
    /// rows sorted by `(env, key)`, so snapshot bytes are canonical for a
    /// given cache content ([`crate::snapshot`]).
    pub fn export_templates(&self) -> Vec<(u128, String, Arc<Vec<Expr>>)> {
        let mut rows: Vec<(u128, String, Arc<Vec<Expr>>)> = self
            .templates
            .entries()
            .into_iter()
            .map(|((env, key), v)| (env.to_bits(), key, v))
            .collect();
        rows.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));
        rows
    }

    /// Seeds one template entry (snapshot restore). First writer wins, as
    /// everywhere else in the cache; seeding before first use makes every
    /// later request a hit.
    pub fn seed_template(&self, env_bits: u128, key: String, exprs: Vec<Expr>) {
        self.templates
            .insert_if_absent((EnvToken::from_bits(env_bits), key), Arc::new(exprs));
    }
}

/// A [`SearchCache`] bound to one environment identity — the handle the
/// search actually threads around.
///
/// A handle sees *two* caches with different lifetimes:
///
/// * `run` — the candidate-level store (arena, expansion, type and oracle
///   memos). Candidate spaces are huge (hundreds of thousands of entries
///   per hard benchmark), so this cache is scoped to one synthesis run and
///   reclaimed when the run ends; sharing it across a whole batch was
///   measured to balloon resident memory into the gigabytes for zero
///   cross-job hits (distinct problems fingerprint to distinct
///   environments).
/// * `shared` — the library-template store (S-App / S-EffApp enumeration
///   lists). Templates are small, expensive to enumerate, and a pure
///   function of the class table, so the batch driver shares them across
///   jobs: identical environments reuse each other's enumeration work.
///
/// Binding pins the [`EnvToken`] once (fingerprinting the table is not
/// free), so the hot path only ever assembles keys from `Copy` values.
/// Cloning a handle is cheap and shares both underlying caches.
#[derive(Clone)]
pub struct CacheHandle {
    run: Arc<SearchCache>,
    shared: Arc<SearchCache>,
    env: EnvToken,
}

impl CacheHandle {
    /// Binds a run-scoped cache plus a (possibly batch-shared) template
    /// cache to a configured table + options. Passing the same cache for
    /// both is fine — [`CacheHandle::private`] does exactly that.
    pub fn bind(
        run: Arc<SearchCache>,
        shared: Arc<SearchCache>,
        table: &ClassTable,
        opts: &Options,
    ) -> CacheHandle {
        CacheHandle {
            env: EnvToken::compute(table, opts),
            run,
            shared,
        }
    }

    /// A fresh, unshared cache with a constant environment token. Used by
    /// the `--no-cache` path (one throwaway cache per search call) and by
    /// tests: a throwaway cache's entries can never be shared with another
    /// environment, so the token only needs internal consistency and the
    /// O(table) fingerprint of [`CacheHandle::bind`] is skipped.
    pub fn private() -> CacheHandle {
        let cache = Arc::new(SearchCache::new());
        CacheHandle {
            env: EnvToken(0),
            run: Arc::clone(&cache),
            shared: cache,
        }
    }

    /// The run-scoped candidate cache.
    pub fn cache(&self) -> &Arc<SearchCache> {
        &self.run
    }

    /// The batch-shared template cache.
    pub fn shared_cache(&self) -> &Arc<SearchCache> {
        &self.shared
    }

    /// The bound environment token.
    pub fn env_token(&self) -> EnvToken {
        self.env
    }

    /// See [`SearchCache::intern`].
    pub fn intern(&self, e: Expr) -> ExprId {
        self.run.intern(e)
    }

    /// See [`SearchCache::intern_full`].
    pub fn intern_full(&self, e: Expr) -> ExpandItem {
        self.run.intern_full(e)
    }

    /// See [`SearchCache::expr`].
    pub fn expr(&self, id: ExprId) -> Arc<Expr> {
        self.run.expr(id)
    }

    /// See [`SearchCache::size`].
    pub fn size(&self, id: ExprId) -> usize {
        self.run.size(id)
    }

    /// See [`SearchCache::evaluable`].
    pub fn evaluable(&self, id: ExprId) -> bool {
        self.run.evaluable(id)
    }

    /// See [`SearchCache::meta`].
    pub fn meta(&self, id: ExprId) -> (usize, bool) {
        self.run.meta(id)
    }

    /// Memoized expansion of the leftmost hole of `id` under the root
    /// environment `gamma_fp`: returns the simplified, type-filtered
    /// expansions, computing them via `compute` on a miss. `compute`
    /// returns `(raw_count, items)`; the raw (pre-filter) count is folded
    /// into `stats.expanded` on hits and misses alike so effort counters
    /// do not depend on cache state.
    pub fn expansions(
        &self,
        gamma_fp: u128,
        id: ExprId,
        stats: &mut crate::generate::SearchStats,
        compute: impl FnOnce(&mut crate::generate::SearchStats) -> (u64, Vec<ExpandItem>),
    ) -> Arc<[ExpandItem]> {
        let key = (self.env, gamma_fp, id);
        if let Some(entry) = self.run.expand.get(&key) {
            stats.expand_hits += 1;
            stats.expanded += entry.raw;
            return entry.items;
        }
        let (raw, items) = compute(stats);
        stats.expanded += raw;
        self.run
            .expand
            .insert_if_absent(
                key,
                ExpandEntry {
                    raw,
                    items: items.into(),
                },
            )
            .items
    }

    /// Memoized `infer_ty` verdict for `id` under `gamma_fp`.
    pub fn infer(
        &self,
        gamma_fp: u128,
        id: ExprId,
        stats: &mut crate::generate::SearchStats,
        compute: impl FnOnce() -> Option<Ty>,
    ) -> Option<Ty> {
        let key = (self.env, gamma_fp, id);
        if let Some(v) = self.run.types.get(&key) {
            stats.type_hits += 1;
            return v;
        }
        self.run.types.insert_if_absent(key, compute())
    }

    /// Memoized oracle verdict for candidate `id` under oracle `token`.
    pub fn oracle_verdict(
        &self,
        token: OracleToken,
        id: ExprId,
        stats: &mut crate::generate::SearchStats,
        compute: impl FnOnce() -> OracleOutcome,
    ) -> OracleOutcome {
        let key = (token, id);
        if let Some(v) = self.run.oracle.get(&key) {
            stats.oracle_hits += 1;
            return v;
        }
        self.run.oracle.insert_if_absent(key, compute())
    }

    /// Memoized S-App / S-EffApp call-template list for an enumeration key
    /// (goal-or-effect rendering plus receiver seeds).
    pub fn templates(&self, key: String, compute: impl FnOnce() -> Vec<Expr>) -> Arc<Vec<Expr>> {
        let k = (self.env, key);
        if let Some(v) = self.shared.templates.get(&k) {
            self.shared.template_hits.fetch_add(1, Ordering::Relaxed);
            return v;
        }
        self.shared.template_misses.fetch_add(1, Ordering::Relaxed);
        let v = Arc::new(compute());
        self.shared.templates.insert_if_absent(k, v)
    }
}

impl crate::expand::TemplateStore for CacheHandle {
    fn templates(&self, key: String, compute: &mut dyn FnMut() -> Vec<Expr>) -> Arc<Vec<Expr>> {
        CacheHandle::templates(self, key, compute)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::SearchStats;
    use rbsyn_lang::builder::*;
    use rbsyn_stdlib::EnvBuilder;
    use rbsyn_ty::EffectPrecision;

    fn table() -> ClassTable {
        EnvBuilder::with_stdlib().finish().table
    }

    #[test]
    fn interning_is_shared_and_sized() {
        let cache = SearchCache::new();
        let a = cache.intern(call(var("x"), "m", [int(1)]));
        let b = cache.intern(call(var("x"), "m", [int(1)]));
        assert_eq!(a, b);
        assert_eq!(cache.interned_exprs(), 1);
        assert_eq!(cache.size(a), 3);
        assert!(cache.evaluable(a));
        assert_eq!(*cache.expr(a), call(var("x"), "m", [int(1)]));
    }

    #[test]
    fn env_tokens_separate_configurations() {
        let t = table();
        let opts = Options::default();
        let base = EnvToken::compute(&t, &opts);
        assert_eq!(base, EnvToken::compute(&t, &opts), "deterministic");

        let mut with_const = t.clone();
        with_const.add_const(rbsyn_lang::Value::Int(42));
        assert_ne!(base, EnvToken::compute(&with_const, &opts));

        let mut coarse = t.clone();
        coarse.set_precision(EffectPrecision::Purity);
        assert_ne!(base, EnvToken::compute(&coarse, &opts));

        let untyped = Options::with_guidance(crate::Guidance::effects_only());
        assert_ne!(base, EnvToken::compute(&t, &untyped));
    }

    #[test]
    fn oracle_tokens_are_unique() {
        let a = OracleToken::fresh();
        let b = OracleToken::fresh();
        assert_ne!(a, b);
    }

    #[test]
    fn expansion_memo_hits_and_restores_raw_counts() {
        let h = CacheHandle::private();
        let id = h.intern(hole(rbsyn_lang::Ty::Int));
        let mut stats = SearchStats::default();
        let gfp = gamma_fingerprint(&[]);
        let first = h.expansions(gfp, id, &mut stats, |_| (7, vec![h.intern_full(int(1))]));
        assert_eq!(stats.expanded, 7);
        assert_eq!(stats.expand_hits, 0);
        let second = h.expansions(gfp, id, &mut stats, |_| panic!("must not recompute"));
        let ids = |items: &[ExpandItem]| items.iter().map(|i| i.id).collect::<Vec<_>>();
        assert_eq!(ids(&first), ids(&second));
        assert_eq!(stats.expanded, 14, "raw count restored on hit");
        assert_eq!(stats.expand_hits, 1);
    }

    #[test]
    fn memo_keys_respect_environment_and_gamma() {
        let t = table();
        let opts = Options::default();
        let cache = Arc::new(SearchCache::new());
        let h1 = CacheHandle::bind(Arc::clone(&cache), Arc::clone(&cache), &t, &opts);
        let mut t2 = t.clone();
        t2.add_const(rbsyn_lang::Value::Int(9));
        let h2 = CacheHandle::bind(Arc::clone(&cache), Arc::clone(&cache), &t2, &opts);

        let id = h1.intern(hole(rbsyn_lang::Ty::Int));
        let mut stats = SearchStats::default();
        let gfp = gamma_fingerprint(&[]);
        h1.expansions(gfp, id, &mut stats, |_| (1, vec![]));
        // Different environment: entry invisible, recomputed.
        let recomputed = std::cell::Cell::new(false);
        h2.expansions(gfp, id, &mut stats, |_| {
            recomputed.set(true);
            (1, vec![])
        });
        assert!(recomputed.get(), "env token must separate entries");
        // Different Γ: also recomputed.
        let gfp2 = gamma_fingerprint(&[(rbsyn_lang::Symbol::intern("x"), rbsyn_lang::Ty::Str)]);
        let recomputed = std::cell::Cell::new(false);
        h1.expansions(gfp2, id, &mut stats, |_| {
            recomputed.set(true);
            (1, vec![])
        });
        assert!(recomputed.get(), "gamma fingerprint must separate entries");
    }
}
