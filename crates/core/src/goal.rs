//! Synthesis goals: the `define :name, "(τ…) → τ", [consts] do … end` DSL
//! of §4, as a builder.

use rbsyn_interp::Spec;
use rbsyn_lang::{Symbol, Ty, Value};

/// A synthesis goal `⟨τ₁ → τ₂, Ψ⟩` (Fig. 3) plus the constant set `Σ` and a
/// method name.
#[derive(Clone, Debug)]
pub struct SynthesisProblem {
    /// Name of the method to synthesize.
    pub name: String,
    /// Parameter names and types (`arg0`, `arg1`, … by convention).
    pub params: Vec<(Symbol, Ty)>,
    /// Return type — the root hole's type.
    pub ret: Ty,
    /// The specs `Ψ` the method must satisfy.
    pub specs: Vec<Spec>,
    /// Constants `Σ` available to fill holes.
    pub consts: Vec<Value>,
}

impl SynthesisProblem {
    /// Starts a builder.
    pub fn builder(name: &str) -> ProblemBuilder {
        ProblemBuilder {
            problem: SynthesisProblem {
                name: name.to_owned(),
                params: Vec::new(),
                ret: Ty::Obj,
                specs: Vec::new(),
                consts: Vec::new(),
            },
        }
    }

    /// Parameter names in order.
    pub fn param_names(&self) -> Vec<&str> {
        self.params.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Basic well-formedness: at least one spec, each with a target call.
    pub fn validate(&self) -> Result<(), crate::SynthError> {
        if self.specs.is_empty() {
            return Err(crate::SynthError::BadProblem("no specs".into()));
        }
        for s in &self.specs {
            if s.result_var().is_none() {
                return Err(crate::SynthError::BadProblem(format!(
                    "spec {:?} never calls the target method",
                    s.name
                )));
            }
        }
        Ok(())
    }
}

/// Fluent builder for [`SynthesisProblem`].
#[derive(Clone, Debug)]
pub struct ProblemBuilder {
    problem: SynthesisProblem,
}

impl ProblemBuilder {
    /// Adds a parameter.
    pub fn param(mut self, name: &str, ty: Ty) -> ProblemBuilder {
        self.problem.params.push((Symbol::intern(name), ty));
        self
    }

    /// Sets the return type.
    pub fn returns(mut self, ty: Ty) -> ProblemBuilder {
        self.problem.ret = ty;
        self
    }

    /// Adds a spec.
    pub fn spec(mut self, s: Spec) -> ProblemBuilder {
        self.problem.specs.push(s);
        self
    }

    /// Adds a constant to `Σ`.
    pub fn constant(mut self, v: Value) -> ProblemBuilder {
        self.problem.consts.push(v);
        self
    }

    /// Adds the paper's base constant set: `true`, `false`, `0`, `1` and
    /// the empty string (§5.1).
    pub fn base_consts(mut self) -> ProblemBuilder {
        for v in [
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(0),
            Value::Int(1),
            Value::str(""),
        ] {
            self.problem.consts.push(v);
        }
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> SynthesisProblem {
        self.problem
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbsyn_interp::SetupStep;
    use rbsyn_lang::builder::*;

    #[test]
    fn builder_assembles_problems() {
        let p = SynthesisProblem::builder("update_post")
            .param("arg0", Ty::Str)
            .param("arg1", Ty::Str)
            .returns(Ty::Bool)
            .base_consts()
            .spec(Spec::new(
                "s",
                vec![SetupStep::CallTarget {
                    bind: "xr".into(),
                    args: vec![str_("a"), str_("b")],
                }],
                vec![var("xr")],
            ))
            .build();
        assert_eq!(p.param_names(), vec!["arg0", "arg1"]);
        assert_eq!(p.consts.len(), 5);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn validation_catches_empty_and_call_less_specs() {
        let empty = SynthesisProblem::builder("m").build();
        assert!(empty.validate().is_err());
        let no_call = SynthesisProblem::builder("m")
            .spec(Spec::new("s", vec![], vec![true_()]))
            .build();
        assert!(no_call.validate().is_err());
    }
}
