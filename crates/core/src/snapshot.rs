//! Crash-safe persistence for the shared template memo: a versioned,
//! checksummed binary snapshot of [`SearchCache::export_templates`].
//!
//! The template memo (S-App / S-EffApp enumeration lists) is the one part
//! of the [`SearchCache`] worth keeping across processes: it is small, a
//! pure function of content-derived keys ([`EnvToken`](crate::cache::EnvToken) bits are stable
//! across runs), and expensive to recompute. A snapshot lets `solve
//! --snapshot FILE` start every batch warm: identical environments answer
//! all template requests from the memo (`template_misses` stays zero)
//! while programs and effort counters stay byte-identical — memoized
//! values are pure functions of their keys, so warmth can never change a
//! result, only the time to find it.
//!
//! **Failure model** (see ARCHITECTURE.md):
//!
//! * *writes* go through [`rbsyn_lang::persist::atomic_write`] — full
//!   temp file + `rename`, so a crash mid-save leaves either the old
//!   snapshot or none, never a torn one;
//! * *reads* never panic and never partially populate the cache: the
//!   whole byte stream is length-prefix- and bounds-checked, guarded by a
//!   magic/version header and a trailing 128-bit checksum, decoded into a
//!   staging vector with a recursion-depth limit, and only seeded into
//!   the cache after the last byte has validated. Any corruption — a
//!   truncated file, a flipped byte, a hostile input from the fuzzer —
//!   surfaces as [`SnapshotError`] and the caller degrades to a cold
//!   cache with a warning.
//!
//! The format is self-contained (no external serialization deps):
//! little-endian integers, length-prefixed strings, tagged unions
//! mirroring [`Expr`]/[`Value`]/[`Ty`]/[`Effect`]. Entries are exported
//! sorted by `(env, key)`, so snapshot bytes are canonical for a given
//! cache content. Interned [`Symbol`]s travel as strings and are
//! re-interned on load; [`ClassId`]s keep their dense index *and* name so
//! a decoded id is exactly what [`EnvToken`](crate::cache::EnvToken)-matched environments expect.
//! Template entries whose expressions cannot round-trip (runtime-only
//! [`Value::Obj`] references — never produced by template enumeration)
//! are skipped at save time rather than failing the snapshot.

use crate::cache::SearchCache;
use rbsyn_lang::{hash128, ClassId, Effect, EffectSet, Expr, FiniteHash, HashField, Symbol, Ty};
use rbsyn_lang::{persist, Value};
use std::fmt;
use std::path::Path;
use std::sync::Arc;

/// Magic prefix identifying a template snapshot file.
const MAGIC: &[u8; 8] = b"RBSNAP\r\n";
/// Format version; bump on any encoding change. A mismatch degrades to a
/// cold cache, never a misparse.
const VERSION: u32 = 1;
/// Recursion-depth ceiling for decoding expressions and types, so a
/// hostile snapshot cannot overflow the stack.
const MAX_DEPTH: usize = 256;

/// Why a snapshot failed to load. Every variant is a *degrade to cold
/// cache* signal, never a panic.
#[derive(Debug)]
pub enum SnapshotError {
    /// The file could not be read.
    Io(std::io::Error),
    /// The bytes are not a valid snapshot (bad magic, version mismatch,
    /// checksum failure, truncation, malformed encoding, …).
    Corrupt(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot read failed: {e}"),
            SnapshotError::Corrupt(msg) => write!(f, "snapshot corrupt: {msg}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

fn corrupt(msg: impl Into<String>) -> SnapshotError {
    SnapshotError::Corrupt(msg.into())
}

// ---------------------------------------------------------------- encode

struct Enc {
    buf: Vec<u8>,
}

/// Raised (as a value, not a panic) when an expression contains a
/// runtime-only construct the format does not carry.
struct Unencodable;

impl Enc {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
    fn sym(&mut self, s: Symbol) {
        self.str(s.as_str());
    }
    fn class(&mut self, c: ClassId) {
        self.u32(c.idx);
        self.sym(c.name);
    }

    fn value(&mut self, v: &Value) -> Result<(), Unencodable> {
        match v {
            Value::Nil => self.u8(0),
            Value::Bool(b) => {
                self.u8(1);
                self.u8(*b as u8);
            }
            Value::Int(i) => {
                self.u8(2);
                self.i64(*i);
            }
            Value::Str(s) => {
                self.u8(3);
                self.str(s);
            }
            Value::Sym(s) => {
                self.u8(4);
                self.sym(*s);
            }
            Value::Hash(entries) => {
                self.u8(5);
                self.u32(entries.len() as u32);
                for (k, val) in entries {
                    self.value(k)?;
                    self.value(val)?;
                }
            }
            Value::Array(items) => {
                self.u8(6);
                self.u32(items.len() as u32);
                for item in items {
                    self.value(item)?;
                }
            }
            Value::Class(c) => {
                self.u8(7);
                self.class(*c);
            }
            // Heap references only exist relative to a live `World`.
            Value::Obj(_) => return Err(Unencodable),
        }
        Ok(())
    }

    fn ty(&mut self, t: &Ty) {
        match t {
            Ty::Nil => self.u8(0),
            Ty::Bool => self.u8(1),
            Ty::Int => self.u8(2),
            Ty::Str => self.u8(3),
            Ty::Sym => self.u8(4),
            Ty::SymLit(s) => {
                self.u8(5);
                self.sym(*s);
            }
            Ty::Instance(c) => {
                self.u8(6);
                self.class(*c);
            }
            Ty::SingletonClass(c) => {
                self.u8(7);
                self.class(*c);
            }
            Ty::FiniteHash(fh) => {
                self.u8(8);
                self.u32(fh.fields.len() as u32);
                for f in &fh.fields {
                    self.sym(f.key);
                    self.ty(&f.ty);
                    self.u8(f.optional as u8);
                }
            }
            Ty::Array(elem) => {
                self.u8(9);
                self.ty(elem);
            }
            Ty::Union(parts) => {
                self.u8(10);
                self.u32(parts.len() as u32);
                for p in parts {
                    self.ty(p);
                }
            }
            Ty::Obj => self.u8(11),
            Ty::Err => self.u8(12),
        }
    }

    fn effects(&mut self, es: &EffectSet) {
        let atoms = es.atoms();
        self.u32(atoms.len() as u32);
        for e in atoms {
            match e {
                Effect::Star => self.u8(0),
                Effect::ClassStar(c) => {
                    self.u8(1);
                    self.class(*c);
                }
                Effect::Region(c, r) => {
                    self.u8(2);
                    self.class(*c);
                    self.sym(*r);
                }
                Effect::SelfStar => self.u8(3),
                Effect::SelfRegion(r) => {
                    self.u8(4);
                    self.sym(*r);
                }
            }
        }
    }

    fn expr(&mut self, e: &Expr) -> Result<(), Unencodable> {
        match e {
            Expr::Lit(v) => {
                self.u8(0);
                self.value(v)?;
            }
            Expr::Var(s) => {
                self.u8(1);
                self.sym(*s);
            }
            Expr::Seq(es) => {
                self.u8(2);
                self.u32(es.len() as u32);
                for sub in es {
                    self.expr(sub)?;
                }
            }
            Expr::Call { recv, meth, args } => {
                self.u8(3);
                self.expr(recv)?;
                self.sym(*meth);
                self.u32(args.len() as u32);
                for a in args {
                    self.expr(a)?;
                }
            }
            Expr::If { cond, then, els } => {
                self.u8(4);
                self.expr(cond)?;
                self.expr(then)?;
                self.expr(els)?;
            }
            Expr::Let { var, val, body } => {
                self.u8(5);
                self.sym(*var);
                self.expr(val)?;
                self.expr(body)?;
            }
            Expr::HashLit(entries) => {
                self.u8(6);
                self.u32(entries.len() as u32);
                for (k, sub) in entries {
                    self.sym(*k);
                    self.expr(sub)?;
                }
            }
            Expr::Not(b) => {
                self.u8(7);
                self.expr(b)?;
            }
            Expr::Or(a, b) => {
                self.u8(8);
                self.expr(a)?;
                self.expr(b)?;
            }
            Expr::Hole(t) => {
                self.u8(9);
                self.ty(t);
            }
            Expr::EffHole(es) => {
                self.u8(10);
                self.effects(es);
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------- decode

struct Dec<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| corrupt("unexpected end of snapshot"))?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn u128(&mut self) -> Result<u128, SnapshotError> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }
    fn i64(&mut self) -> Result<i64, SnapshotError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    /// A length-prefixed count of items each at least `min_item_bytes`
    /// wide, capped against the remaining input so hostile counts cannot
    /// trigger huge allocations.
    fn count(&mut self, min_item_bytes: usize) -> Result<usize, SnapshotError> {
        let n = self.u32()? as usize;
        let remaining = self.bytes.len() - self.pos;
        if n.saturating_mul(min_item_bytes.max(1)) > remaining {
            return Err(corrupt("count exceeds remaining input"));
        }
        Ok(n)
    }
    fn str(&mut self) -> Result<String, SnapshotError> {
        let n = self.count(1)?;
        let raw = self.take(n)?;
        String::from_utf8(raw.to_vec()).map_err(|_| corrupt("invalid utf-8 string"))
    }
    fn sym(&mut self) -> Result<Symbol, SnapshotError> {
        Ok(Symbol::intern(&self.str()?))
    }
    fn class(&mut self) -> Result<ClassId, SnapshotError> {
        let idx = self.u32()?;
        let name = self.sym()?;
        Ok(ClassId::new(idx, name))
    }

    fn value(&mut self, depth: usize) -> Result<Value, SnapshotError> {
        if depth > MAX_DEPTH {
            return Err(corrupt("value nesting exceeds depth limit"));
        }
        Ok(match self.u8()? {
            0 => Value::Nil,
            1 => Value::Bool(self.u8()? != 0),
            2 => Value::Int(self.i64()?),
            3 => Value::str(&self.str()?),
            4 => Value::Sym(self.sym()?),
            5 => {
                let n = self.count(2)?;
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    let k = self.value(depth + 1)?;
                    let v = self.value(depth + 1)?;
                    entries.push((k, v));
                }
                Value::Hash(entries)
            }
            6 => {
                let n = self.count(1)?;
                let mut items = Vec::with_capacity(n);
                for _ in 0..n {
                    items.push(self.value(depth + 1)?);
                }
                Value::Array(items)
            }
            7 => Value::Class(self.class()?),
            t => return Err(corrupt(format!("unknown value tag {t}"))),
        })
    }

    fn ty(&mut self, depth: usize) -> Result<Ty, SnapshotError> {
        if depth > MAX_DEPTH {
            return Err(corrupt("type nesting exceeds depth limit"));
        }
        Ok(match self.u8()? {
            0 => Ty::Nil,
            1 => Ty::Bool,
            2 => Ty::Int,
            3 => Ty::Str,
            4 => Ty::Sym,
            5 => Ty::SymLit(self.sym()?),
            6 => Ty::Instance(self.class()?),
            7 => Ty::SingletonClass(self.class()?),
            8 => {
                let n = self.count(6)?;
                let mut fields = Vec::with_capacity(n);
                for _ in 0..n {
                    let key = self.sym()?;
                    let ty = self.ty(depth + 1)?;
                    let optional = self.u8()? != 0;
                    fields.push(HashField { key, ty, optional });
                }
                Ty::FiniteHash(FiniteHash::new(fields))
            }
            9 => Ty::Array(Box::new(self.ty(depth + 1)?)),
            10 => {
                let n = self.count(1)?;
                let mut parts = Vec::with_capacity(n);
                for _ in 0..n {
                    parts.push(self.ty(depth + 1)?);
                }
                Ty::Union(parts)
            }
            11 => Ty::Obj,
            12 => Ty::Err,
            t => return Err(corrupt(format!("unknown type tag {t}"))),
        })
    }

    fn effects(&mut self) -> Result<EffectSet, SnapshotError> {
        let n = self.count(1)?;
        let mut atoms = Vec::with_capacity(n);
        for _ in 0..n {
            atoms.push(match self.u8()? {
                0 => Effect::Star,
                1 => Effect::ClassStar(self.class()?),
                2 => {
                    let c = self.class()?;
                    let r = self.sym()?;
                    Effect::Region(c, r)
                }
                3 => Effect::SelfStar,
                4 => Effect::SelfRegion(self.sym()?),
                t => return Err(corrupt(format!("unknown effect tag {t}"))),
            });
        }
        Ok(EffectSet::from_atoms(atoms))
    }

    fn expr(&mut self, depth: usize) -> Result<Expr, SnapshotError> {
        if depth > MAX_DEPTH {
            return Err(corrupt("expression nesting exceeds depth limit"));
        }
        Ok(match self.u8()? {
            0 => Expr::Lit(self.value(depth + 1)?),
            1 => Expr::Var(self.sym()?),
            2 => {
                let n = self.count(1)?;
                let mut es = Vec::with_capacity(n);
                for _ in 0..n {
                    es.push(self.expr(depth + 1)?);
                }
                Expr::Seq(es)
            }
            3 => {
                let recv = Box::new(self.expr(depth + 1)?);
                let meth = self.sym()?;
                let n = self.count(1)?;
                let mut args = Vec::with_capacity(n);
                for _ in 0..n {
                    args.push(self.expr(depth + 1)?);
                }
                Expr::Call { recv, meth, args }
            }
            4 => Expr::If {
                cond: Box::new(self.expr(depth + 1)?),
                then: Box::new(self.expr(depth + 1)?),
                els: Box::new(self.expr(depth + 1)?),
            },
            5 => {
                let var = self.sym()?;
                let val = Box::new(self.expr(depth + 1)?);
                let body = Box::new(self.expr(depth + 1)?);
                Expr::Let { var, val, body }
            }
            6 => {
                let n = self.count(5)?;
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    let k = self.sym()?;
                    let e = self.expr(depth + 1)?;
                    entries.push((k, e));
                }
                Expr::HashLit(entries)
            }
            7 => Expr::Not(Box::new(self.expr(depth + 1)?)),
            8 => Expr::Or(
                Box::new(self.expr(depth + 1)?),
                Box::new(self.expr(depth + 1)?),
            ),
            9 => Expr::Hole(self.ty(depth + 1)?),
            10 => Expr::EffHole(self.effects()?),
            t => return Err(corrupt(format!("unknown expression tag {t}"))),
        })
    }
}

// ------------------------------------------------------------------ api

fn checksum(payload: &[u8]) -> u128 {
    hash128("rbsyn.snapshot", &payload)
}

/// Serializes the cache's template memo into snapshot bytes (header +
/// sorted entries + trailing checksum). Entries containing runtime-only
/// values are skipped, never fatal.
pub fn snapshot_to_bytes(cache: &SearchCache) -> Vec<u8> {
    let rows = cache.export_templates();
    let mut enc = Enc {
        buf: Vec::with_capacity(1024),
    };
    enc.buf.extend_from_slice(MAGIC);
    enc.u32(VERSION);
    let count_at = enc.buf.len();
    enc.u64(0); // patched below with the count of entries actually kept
    let mut kept: u64 = 0;
    for (env, key, exprs) in rows {
        let mark = enc.buf.len();
        enc.u128(env);
        enc.str(&key);
        enc.u32(exprs.len() as u32);
        let ok = exprs.iter().try_for_each(|e| enc.expr(e));
        if ok.is_err() {
            enc.buf.truncate(mark); // drop the half-written entry
            continue;
        }
        kept += 1;
    }
    enc.buf[count_at..count_at + 8].copy_from_slice(&kept.to_le_bytes());
    let sum = checksum(&enc.buf);
    enc.u128(sum);
    enc.buf
}

/// Decodes snapshot bytes and seeds the cache's template memo.
/// All-or-nothing: every entry is decoded into a staging vector before
/// anything touches the cache, so a failure anywhere leaves the cache
/// exactly as it was (cold, if it was fresh). Returns the number of
/// entries seeded.
///
/// # Errors
///
/// [`SnapshotError::Corrupt`] on any malformed input; this function never
/// panics on hostile bytes (the snapshot fuzzer's contract).
pub fn restore_from_bytes(bytes: &[u8], cache: &SearchCache) -> Result<usize, SnapshotError> {
    if bytes.len() < MAGIC.len() + 4 + 8 + 16 {
        return Err(corrupt("shorter than header + checksum"));
    }
    let (payload, sum_bytes) = bytes.split_at(bytes.len() - 16);
    let stored = u128::from_le_bytes(sum_bytes.try_into().unwrap());
    if checksum(payload) != stored {
        return Err(corrupt("checksum mismatch"));
    }
    let mut dec = Dec {
        bytes: payload,
        pos: 0,
    };
    if dec.take(MAGIC.len())? != MAGIC {
        return Err(corrupt("bad magic"));
    }
    let version = dec.u32()?;
    if version != VERSION {
        return Err(corrupt(format!(
            "version {version} (this build reads {VERSION})"
        )));
    }
    let count = dec.u64()?;
    let mut staged: Vec<(u128, String, Vec<Expr>)> = Vec::new();
    for _ in 0..count {
        let env = dec.u128()?;
        let key = dec.str()?;
        let n = dec.count(1)?;
        let mut exprs = Vec::with_capacity(n);
        for _ in 0..n {
            exprs.push(dec.expr(0)?);
        }
        staged.push((env, key, exprs));
    }
    if dec.pos != payload.len() {
        return Err(corrupt("trailing bytes after last entry"));
    }
    let seeded = staged.len();
    for (env, key, exprs) in staged {
        cache.seed_template(env, key, exprs);
    }
    Ok(seeded)
}

/// Writes a snapshot of the cache's template memo via temp-file +
/// atomic rename ([`persist::atomic_write`]): a crash mid-save can never
/// leave a torn file.
pub fn save_snapshot(cache: &SearchCache, path: &Path) -> std::io::Result<()> {
    persist::atomic_write(path, &snapshot_to_bytes(cache))
}

/// Loads a snapshot into a (typically fresh) cache. IO failures and
/// corruption both surface as [`SnapshotError`] — the caller's contract
/// is to warn and continue cold, never to abort. The `cache::load`
/// failpoint injects errors/panics here under the chaos suite.
pub fn load_snapshot(path: &Path, cache: &SearchCache) -> Result<usize, SnapshotError> {
    if let Some(e) = rbsyn_lang::failpoint::io_error("cache::load") {
        return Err(SnapshotError::Io(e));
    }
    let bytes = std::fs::read(path).map_err(SnapshotError::Io)?;
    restore_from_bytes(&bytes, cache)
}

/// [`load_snapshot`] with the panic containment the loader itself
/// promises: even a bug (or injected fault) inside decoding degrades to
/// an error, not a process abort. Used by `solve --snapshot` and the
/// snapshot fuzzer.
pub fn load_snapshot_contained(
    path: &Path,
    cache: &Arc<SearchCache>,
) -> Result<usize, SnapshotError> {
    let cache = Arc::clone(cache);
    let path = path.to_path_buf();
    std::panic::catch_unwind(move || load_snapshot(&path, &cache)).unwrap_or_else(|panic| {
        match crate::SynthError::from_panic(&*panic) {
            crate::SynthError::Internal(msg) => Err(corrupt(msg)),
            _ => Err(corrupt("panic during snapshot load")),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbsyn_lang::builder::*;

    fn seeded_cache() -> SearchCache {
        let cache = SearchCache::new();
        cache.seed_template(
            7,
            "goal=Bool".into(),
            vec![
                call(var("x"), "empty?", []),
                Expr::If {
                    cond: Box::new(call(var("x"), "==", [int(0)])),
                    then: Box::new(true_()),
                    els: Box::new(Expr::Hole(Ty::Bool)),
                },
            ],
        );
        cache.seed_template(
            7,
            "goal=Int".into(),
            vec![Expr::EffHole(EffectSet::star()), int(42), str_("s")],
        );
        cache.seed_template(9, "goal=Bool".into(), vec![hash([("k", int(1))])]);
        cache
    }

    #[test]
    fn round_trip_preserves_every_entry() {
        let cache = seeded_cache();
        let bytes = snapshot_to_bytes(&cache);
        let fresh = SearchCache::new();
        let n = restore_from_bytes(&bytes, &fresh).expect("round trip");
        assert_eq!(n, 3);
        assert_eq!(fresh.template_entries(), 3);
        assert_eq!(fresh.export_templates(), cache.export_templates());
    }

    #[test]
    fn snapshot_bytes_are_canonical() {
        // Same content, different insertion order → same bytes.
        let a = seeded_cache();
        let b = SearchCache::new();
        for (env, key, exprs) in a.export_templates().into_iter().rev() {
            b.seed_template(env, key, Arc::unwrap_or_clone(exprs));
        }
        assert_eq!(snapshot_to_bytes(&a), snapshot_to_bytes(&b));
    }

    #[test]
    fn every_single_byte_flip_is_detected_or_harmless() {
        let bytes = snapshot_to_bytes(&seeded_cache());
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0xff;
            let fresh = SearchCache::new();
            match restore_from_bytes(&bad, &fresh) {
                // The checksum makes any flip detectable.
                Err(SnapshotError::Corrupt(_)) => {
                    assert_eq!(fresh.template_entries(), 0, "failed load must stay cold");
                }
                Err(SnapshotError::Io(_)) => unreachable!("no io in byte restore"),
                Ok(_) => panic!("flip at byte {i} went undetected"),
            }
        }
    }

    #[test]
    fn truncations_never_panic() {
        let bytes = snapshot_to_bytes(&seeded_cache());
        for len in 0..bytes.len() {
            let fresh = SearchCache::new();
            assert!(
                restore_from_bytes(&bytes[..len], &fresh).is_err(),
                "truncation to {len} bytes must fail"
            );
            assert_eq!(fresh.template_entries(), 0);
        }
    }

    #[test]
    fn save_and_load_through_files() {
        let dir = std::env::temp_dir().join(format!("rbsyn-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("templates.snap");
        let cache = seeded_cache();
        save_snapshot(&cache, &path).expect("save");
        let fresh = SearchCache::new();
        assert_eq!(load_snapshot(&path, &fresh).expect("load"), 3);
        assert_eq!(fresh.export_templates(), cache.export_templates());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let fresh = SearchCache::new();
        let r = load_snapshot(Path::new("/nonexistent/rbsyn.snap"), &fresh);
        assert!(matches!(r, Err(SnapshotError::Io(_))));
    }

    #[test]
    fn deep_nesting_is_rejected_not_overflowed() {
        // Hand-build a payload whose expression nests `Not` beyond the
        // depth limit, with a valid header and checksum.
        let mut enc = Enc { buf: Vec::new() };
        enc.buf.extend_from_slice(MAGIC);
        enc.u32(VERSION);
        enc.u64(1);
        enc.u128(1); // env
        enc.str("k");
        enc.u32(1); // one expr
        for _ in 0..(MAX_DEPTH + 8) {
            enc.u8(7); // Not(
        }
        enc.u8(0); // Lit(
        enc.u8(0); // Nil
        let sum = checksum(&enc.buf);
        enc.u128(sum);
        let fresh = SearchCache::new();
        match restore_from_bytes(&enc.buf, &fresh) {
            Err(SnapshotError::Corrupt(msg)) => assert!(msg.contains("depth"), "{msg}"),
            other => panic!("expected depth rejection, got {other:?}"),
        }
    }
}
