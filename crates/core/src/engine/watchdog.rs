//! The deadline watchdog: hard cancellation for runs stuck past their
//! budget.
//!
//! [`Options::timeout`](crate::Options) is a *cooperative* deadline — the
//! work-list loop polls [`Scheduler::should_stop`](super::Scheduler) every
//! few pops. That poll never runs while the interpreter is inside one
//! long candidate evaluation (a pathological native, an injected delay),
//! so a stuck eval could overrun the budget indefinitely. The
//! [`Watchdog`] closes that gap: a detached thread sleeps until the
//! budget times a grace factor has elapsed, then sets a kill flag that is
//! checked in two places —
//!
//! * [`Scheduler::should_stop`](super::Scheduler::should_stop), so the
//!   search loop stops at its next poll;
//! * the evaluator's fuel counter (every
//!   [`rbsyn_interp::eval::INTERRUPT_CHECK_STRIDE`] steps), so even a
//!   run *inside* one evaluation aborts with
//!   [`rbsyn_interp::RuntimeError::Interrupted`].
//!
//! Either way the run surfaces as [`SynthError::Timeout`]
//! (exit code 4): the watchdog only ever fires *after* the cooperative
//! deadline, so it converts "stuck past the budget" into the same
//! observable outcome as "stopped at the budget" — it can never change
//! the result of a run that respects its deadline, which is what keeps
//! the determinism gates indifferent to its existence.
//!
//! [`SynthError::Timeout`]: crate::SynthError::Timeout
//!
//! The watchdog thread takes no pipeline locks — it owns a private
//! mutex/condvar pair for its own disarm signal and otherwise touches
//! only atomics — so it sits outside the lock hierarchy entirely (see
//! CONCURRENCY.md).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A one-shot hard-cancellation timer for a synthesis run. Dropping the
/// watchdog disarms it (the run finished in time) and joins its thread.
pub struct Watchdog {
    fired: Arc<AtomicBool>,
    disarm: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<JoinHandle<()>>,
}

impl Watchdog {
    /// Arms a watchdog that sets its kill flag once `budget × grace` has
    /// elapsed. `grace` is clamped to at least 1.0 so the hard deadline
    /// can never precede the cooperative one.
    pub fn arm(budget: Duration, grace: f64) -> Watchdog {
        let hard = budget.mul_f64(grace.max(1.0));
        let fired = Arc::new(AtomicBool::new(false));
        let disarm = Arc::new((Mutex::new(false), Condvar::new()));
        let (t_fired, t_disarm) = (Arc::clone(&fired), Arc::clone(&disarm));
        let handle = std::thread::spawn(move || {
            let (lock, cvar) = &*t_disarm;
            let deadline = Instant::now() + hard;
            let mut disarmed = lock.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if *disarmed {
                    return;
                }
                let now = Instant::now();
                if now >= deadline {
                    t_fired.store(true, Ordering::Relaxed);
                    return;
                }
                let (g, _timeout) = cvar
                    .wait_timeout(disarmed, deadline - now)
                    .unwrap_or_else(|p| p.into_inner());
                disarmed = g;
            }
        });
        Watchdog {
            fired,
            disarm,
            handle: Some(handle),
        }
    }

    /// The kill flag, shared with the scheduler and the interpreter
    /// environment.
    pub fn kill_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.fired)
    }

    /// Has the hard deadline passed?
    pub fn fired(&self) -> bool {
        self.fired.load(Ordering::Relaxed)
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        let (lock, cvar) = &*self.disarm;
        *lock.lock().unwrap_or_else(|p| p.into_inner()) = true;
        cvar.notify_all();
        if let Some(h) = self.handle.take() {
            // The thread exits promptly after the disarm signal; a panic
            // inside it (it has nothing that panics) would be harmless.
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_after_the_grace_deadline() {
        let dog = Watchdog::arm(Duration::from_millis(10), 2.0);
        let flag = dog.kill_flag();
        assert!(!dog.fired(), "freshly armed");
        let deadline = Instant::now() + Duration::from_secs(10);
        while !flag.load(Ordering::Relaxed) {
            assert!(Instant::now() < deadline, "watchdog never fired");
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(dog.fired());
    }

    #[test]
    fn disarm_on_drop_is_prompt_and_silent() {
        let dog = Watchdog::arm(Duration::from_secs(3600), 4.0);
        let flag = dog.kill_flag();
        drop(dog); // must not wait out the hour
        assert!(!flag.load(Ordering::Relaxed), "disarmed, never fired");
    }

    #[test]
    fn grace_below_one_is_clamped() {
        // With grace 0 the hard deadline equals the budget itself.
        let dog = Watchdog::arm(Duration::from_millis(5), 0.0);
        std::thread::sleep(Duration::from_millis(30));
        assert!(dog.fired());
    }
}
