//! The search engine: frontier, strategy, scheduler and executor.
//!
//! PR 3 extracted the moving parts of the work-list search out of
//! [`crate::generate`](mod@crate::generate) into this module so each is a
//! replaceable
//! component:
//!
//! * [`Frontier`] — the hash-consed candidate priority queue of
//!   Algorithm 2;
//! * [`SearchStrategy`] — the pluggable exploration order
//!   ([`PaperOrder`] reproduces §4's `(c desc, size asc, insertion
//!   order)`; [`CostWeighted`] trades asserts against size on one scale),
//!   selected via [`StrategyKind`] on [`Options`](crate::Options);
//! * [`Scheduler`] — per-run deadlines, cooperative cancellation, the
//!   memoization handle, task dispatch and deterministic stats
//!   aggregation ([`SearchStats`]);
//! * [`Executor`] — one shared work pool serving both inter-problem batch
//!   jobs and intra-problem tasks (per-spec searches, merge-time guard
//!   searches).
//!
//! **Determinism story.** Parallelism here is *speculative and joined in
//! program order*: per-spec searches all start concurrently but their
//! results are adopted in spec order under the same solution-reuse
//! protocol the sequential pipeline runs, and a speculative search whose
//! spec turned out to be served by reuse is cancelled and its counters
//! discarded. Merge-time guard pairs are prefetched two-at-a-time and
//! adopted only when the sequential rewrite would have searched them.
//! Every memoized value is a pure function of its key, so cache warm-up
//! order cannot change any result. Consequently synthesized programs and
//! effort counters are byte-identical across `--intra` widths and thread
//! counts; only wall-clock and cache-hit diagnostics vary.

pub mod executor;
pub mod frontier;
pub mod scheduler;
pub mod speculate;
pub mod strategy;
pub mod watchdog;

pub use executor::{Executor, TaskHandle};
pub use frontier::{Frontier, FrontierItem};
pub use scheduler::{Scheduler, SearchStats};
pub use speculate::{SpecJob, SpeculationPool};
pub use strategy::{CostWeighted, PaperOrder, Priority, SearchStrategy, StrategyKind};
pub use watchdog::Watchdog;
