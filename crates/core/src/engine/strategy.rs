//! Pluggable work-list orderings ([`SearchStrategy`]).
//!
//! The paper fixes one frontier order — passed asserts descending, AST
//! size ascending, insertion order (§4) — but related systems treat the
//! schedule as a tunable component (cost-bounded exploration in
//! *Resource-Guided Program Synthesis*, abstract-cost guidance in
//! *Absynthe*). A [`SearchStrategy`] maps a candidate's observable search
//! features to a [`Priority`]; the [`Frontier`](crate::engine::Frontier)
//! pops the highest priority and always breaks remaining ties FIFO, so
//! any strategy yields a fully deterministic exploration order.
//!
//! Strategies only reorder *exploration*; every memoized value (expansion
//! lists, type verdicts, oracle outcomes) is a pure function of the
//! candidate, so caches can be shared freely across strategies — only the
//! path to (and possibly the identity of) the first solution changes.

use std::fmt;

/// Frontier priority: the frontier pops the item with the largest
/// `(major, minor)` pair, breaking full ties by insertion order (FIFO).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct Priority {
    /// Primary key (larger pops first).
    pub major: u64,
    /// Secondary key (larger pops first).
    pub minor: u64,
}

/// A deterministic work-list ordering over `(c, size)` candidate
/// features, where `c` is the best passed-assert count of the candidate's
/// lineage and `size` its AST node count.
pub trait SearchStrategy: Send + Sync {
    /// Stable identifier (CLI value, reports).
    fn name(&self) -> &'static str;

    /// Priority of a candidate with the given features.
    fn priority(&self, c: usize, size: usize) -> Priority;
}

impl fmt::Debug for dyn SearchStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SearchStrategy({})", self.name())
    }
}

/// The paper's §4 ordering: `c` descending, then size ascending (then the
/// frontier's FIFO tiebreak). This is the default and reproduces the
/// reference implementation's exploration order exactly.
pub struct PaperOrder;

impl SearchStrategy for PaperOrder {
    fn name(&self) -> &'static str {
        "paper"
    }

    fn priority(&self, c: usize, size: usize) -> Priority {
        Priority {
            major: c as u64,
            minor: u64::MAX - size as u64,
        }
    }
}

/// Cost-weighted ordering: trades passed asserts against candidate size
/// on one scale instead of ordering lexicographically. Under the paper
/// order a candidate that passes one more assert jumps the entire queue;
/// here it is worth only a few size units (`ASSERT_WEIGHT`), so an S-Eff wrap
/// (which grows a candidate by ~4 nodes) does *not* leapfrog smaller
/// unexplored candidates — the search stays closer to
/// smallest-program-first and chases effects less eagerly.
pub struct CostWeighted;

/// How many size units one passed assert is worth under [`CostWeighted`].
/// Deliberately equal to the S-Eff wrap's typical node growth, so a wrap
/// re-enters the queue at its parent's effective cost — neither jumping
/// the whole frontier (the paper order) nor sinking below it. The
/// schedule genuinely differs from [`PaperOrder`]: smaller programs are
/// preferred longer, effect chains are chased less eagerly.
const ASSERT_WEIGHT: u64 = 4;

/// Size saturation bound for [`CostWeighted`] (candidates never exceed the
/// search's `max_size`, well under this).
const SIZE_CAP: u64 = 256;

impl SearchStrategy for CostWeighted {
    fn name(&self) -> &'static str {
        "cost"
    }

    fn priority(&self, c: usize, size: usize) -> Priority {
        let size = (size as u64).min(SIZE_CAP);
        Priority {
            major: (c as u64) * ASSERT_WEIGHT + (SIZE_CAP - size),
            minor: u64::MAX - size,
        }
    }
}

/// Strategy selector — the [`Options`](crate::Options) /CLI-facing enum
/// behind the [`SearchStrategy`] implementations.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum StrategyKind {
    /// [`PaperOrder`] (the default).
    #[default]
    Paper,
    /// [`CostWeighted`].
    CostWeighted,
}

impl StrategyKind {
    /// The strategy implementation.
    pub fn strategy(self) -> &'static dyn SearchStrategy {
        match self {
            StrategyKind::Paper => &PaperOrder,
            StrategyKind::CostWeighted => &CostWeighted,
        }
    }

    /// Stable name (CLI value, reports).
    pub fn name(self) -> &'static str {
        self.strategy().name()
    }

    /// Parses a CLI/env name (`paper`, `cost`).
    pub fn parse(s: &str) -> Option<StrategyKind> {
        match s {
            "paper" => Some(StrategyKind::Paper),
            "cost" | "cost-weighted" => Some(StrategyKind::CostWeighted),
            _ => None,
        }
    }

    /// Every selectable strategy.
    pub fn all() -> [StrategyKind; 2] {
        [StrategyKind::Paper, StrategyKind::CostWeighted]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_order_is_c_then_size() {
        let s = PaperOrder;
        assert!(s.priority(2, 10) > s.priority(1, 1), "c dominates");
        assert!(
            s.priority(1, 3) > s.priority(1, 4),
            "smaller first within c"
        );
    }

    #[test]
    fn cost_weighted_trades_size_for_asserts() {
        let s = CostWeighted;
        // One extra passed assert outweighs a couple of size units…
        assert!(s.priority(1, 3) > s.priority(0, 2));
        // …but not five of them: unlike the paper order, passing more
        // asserts does not jump the whole queue.
        assert!(s.priority(0, 2) > s.priority(1, 7));
        assert!(PaperOrder.priority(1, 7) > PaperOrder.priority(0, 2));
    }

    #[test]
    fn kinds_round_trip_through_names() {
        for k in StrategyKind::all() {
            assert_eq!(StrategyKind::parse(k.name()), Some(k));
        }
        assert_eq!(
            StrategyKind::parse("cost-weighted"),
            Some(StrategyKind::CostWeighted)
        );
        assert_eq!(StrategyKind::parse("nope"), None);
        assert_eq!(StrategyKind::default(), StrategyKind::Paper);
    }
}
