//! The search scheduler: deadlines, cancellation, cache handles, task
//! dispatch and statistics aggregation for one synthesis run.
//!
//! A [`Scheduler`] is the per-run bundle every search phase consults:
//!
//! * the **deadline** ([`Options::timeout`](crate::Options) materialized
//!   as an [`Instant`]) and a cooperative **cancellation token** (set when
//!   a speculative task's result turned out not to be needed) — both
//!   polled by the work-list loop through [`Scheduler::should_stop`];
//! * the **memoization handle** ([`CacheHandle`]) shared by every phase of
//!   the run (or `None` for an uncached run);
//! * the optional **executor** plus the `intra_parallelism` width, through
//!   which per-spec searches and merge-time guard searches are dispatched
//!   as concurrent tasks.
//!
//! Statistics from concurrent tasks are folded with
//! [`SearchStats::absorb`] in a deterministic order chosen by the caller
//! (spec order, guard-request order), with saturating arithmetic, so
//! aggregate counters are a pure function of the work performed — never of
//! thread interleaving.

use crate::cache::CacheHandle;
use crate::engine::executor::Executor;
use rbsyn_trace::Session;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Search-effort counters, accumulated across the `generate` calls of one
/// synthesis run.
///
/// The effort counters (`popped`, `expanded`, `tested`, `deduped`) count
/// *requests*, not computations: a memo hit still counts, so they are
/// identical with and without caching — and identical across
/// `intra_parallelism` settings, because speculative work whose result is
/// discarded is never folded in. The cache counters (`*_hits`) measure how
/// much of that work the [`CacheHandle`] absorbed and legitimately vary
/// with cache state and thread interleaving.
#[derive(Clone, Copy, Debug, Default)]
pub struct SearchStats {
    /// Work-list pops.
    pub popped: u64,
    /// Candidate expressions produced by expansion (pre type-filter).
    pub expanded: u64,
    /// Evaluable candidates judged by the oracle (memo hits included).
    /// In the guard pool a candidate counts once — when its evaluation
    /// vector gains its first bits; a later request that *widens* an
    /// existing vector with more spec bits adds interpreter runs but no
    /// count (it is neither a fresh judgement nor a pure
    /// [`vector_hits`](Self::vector_hits) answer).
    pub tested: u64,
    /// Duplicate candidates dropped by the work-list dedup filter.
    pub deduped: u64,
    /// Frontier items pruned by observational-equivalence dedup: their
    /// evaluation vector matched an already-enqueued candidate of equal or
    /// smaller size, so their whole subtree was skipped. Deterministic for
    /// a fixed [`Options::obs_equiv`](crate::Options) setting (and zero
    /// when it is off).
    pub obs_pruned: u64,
    /// Guard-covering requests answered purely from already-computed
    /// pass/fail bitvectors — no interpreter run (see
    /// [`GuardPool`](crate::guards::GuardPool)).
    pub vector_hits: u64,
    /// Guard candidates whose footprint-masked evaluation vector landed in
    /// an already-interned semantic class of the request, so the covering
    /// verdict was reused instead of re-decided (see
    /// [`GuardPool`](crate::guards::GuardPool)). Deterministic for a fixed
    /// [`Options::bdd`](crate::Options) setting (and zero when it is off).
    pub guard_dedup: u64,
    /// High-water node count of the guard pool's BDD (0 when
    /// [`Options::bdd`](crate::Options) is off). Summed across batch jobs
    /// by [`SearchStats::absorb`]; within one pool it only grows.
    pub bdd_nodes: u64,
    /// Expansion lists answered from the memo.
    pub expand_hits: u64,
    /// Type-check verdicts answered from the memo.
    pub type_hits: u64,
    /// Oracle verdicts answered from the memo.
    pub oracle_hits: u64,
    /// Wall-clock nanoseconds spent running the interpreter-backed oracle
    /// on this thread (candidate tests, guard bit evaluation, merged-
    /// program validation). Timing, not effort: varies run to run.
    pub eval_nanos: u64,
}

impl SearchStats {
    /// Folds another task's counters into this one with saturating adds.
    /// Callers absorb task-local stats in a deterministic order (spec
    /// order, guard-request order) so aggregates do not depend on thread
    /// scheduling.
    pub fn absorb(&mut self, other: &SearchStats) {
        self.popped = self.popped.saturating_add(other.popped);
        self.expanded = self.expanded.saturating_add(other.expanded);
        self.tested = self.tested.saturating_add(other.tested);
        self.deduped = self.deduped.saturating_add(other.deduped);
        self.obs_pruned = self.obs_pruned.saturating_add(other.obs_pruned);
        self.vector_hits = self.vector_hits.saturating_add(other.vector_hits);
        self.guard_dedup = self.guard_dedup.saturating_add(other.guard_dedup);
        self.bdd_nodes = self.bdd_nodes.saturating_add(other.bdd_nodes);
        self.expand_hits = self.expand_hits.saturating_add(other.expand_hits);
        self.type_hits = self.type_hits.saturating_add(other.type_hits);
        self.oracle_hits = self.oracle_hits.saturating_add(other.oracle_hits);
        self.eval_nanos = self.eval_nanos.saturating_add(other.eval_nanos);
    }

    /// The effort counters as named series for a trace counter sample
    /// (the `search-stats` track of `--trace` exports).
    pub fn counter_sample(&self) -> [(&'static str, u64); 7] {
        [
            ("popped", self.popped),
            ("expanded", self.expanded),
            ("tested", self.tested),
            ("deduped", self.deduped),
            ("obs_pruned", self.obs_pruned),
            ("vector_hits", self.vector_hits),
            ("guard_dedup", self.guard_dedup),
        ]
    }

    /// The cache-independent effort counters `(popped, expanded, tested,
    /// deduped, obs_pruned, vector_hits, guard_dedup)` — the tuple the
    /// determinism gates compare across thread counts and cache settings.
    /// Pruning and guard-covering counters are included: for fixed
    /// [`Options::obs_equiv`](crate::Options) and
    /// [`Options::bdd`](crate::Options) settings they are pure functions
    /// of the problem, never of width or cache state.
    pub fn effort(&self) -> (u64, u64, u64, u64, u64, u64, u64) {
        (
            self.popped,
            self.expanded,
            self.tested,
            self.deduped,
            self.obs_pruned,
            self.vector_hits,
            self.guard_dedup,
        )
    }
}

/// Per-run search coordination: deadline, cancellation, cache handle and
/// task dispatch (see the [module docs](self)).
#[derive(Clone, Default)]
pub struct Scheduler {
    deadline: Option<Instant>,
    cache: Option<CacheHandle>,
    executor: Option<Arc<Executor>>,
    intra: usize,
    cancel: Option<Arc<AtomicBool>>,
    kill: Option<Arc<AtomicBool>>,
    trace: Option<Session>,
}

impl Scheduler {
    /// A scheduler with a deadline and a memoization handle (either may be
    /// absent). No executor: every search runs inline on the caller's
    /// thread.
    pub fn new(deadline: Option<Instant>, cache: Option<CacheHandle>) -> Scheduler {
        Scheduler {
            deadline,
            cache,
            executor: None,
            intra: 1,
            cancel: None,
            kill: None,
            trace: None,
        }
    }

    /// A bare scheduler: no deadline, no shared cache, no executor. What
    /// tests and one-off `generate` calls use.
    pub fn sequential() -> Scheduler {
        Scheduler::default()
    }

    /// Replaces the memoization handle — used by parallel searches to
    /// materialize the throwaway private cache *outside* their worker
    /// scope so workers can share it (an uncached sequential search builds
    /// the same private cache internally).
    pub fn with_cache(mut self, cache: CacheHandle) -> Scheduler {
        self.cache = Some(cache);
        self
    }

    /// Attaches an executor and the intra-problem task width. A width of 1
    /// (or `None`) keeps every phase inline and byte-identical to the
    /// sequential pipeline by construction.
    pub fn with_executor(mut self, executor: Option<Arc<Executor>>, intra: usize) -> Scheduler {
        self.executor = executor;
        self.intra = intra.max(1);
        self
    }

    /// Attaches a tracing session; every search phase holding this
    /// scheduler records through it. `None` (the default) keeps each
    /// instrumentation site to a single `Option` check.
    pub fn with_trace(mut self, trace: Option<Session>) -> Scheduler {
        self.trace = trace;
        self
    }

    /// Attaches a watchdog kill flag (see
    /// [`Watchdog`](super::Watchdog)): once set, [`should_stop`]
    /// reports `true` regardless of the cooperative deadline.
    ///
    /// [`should_stop`]: Scheduler::should_stop
    pub fn with_kill(mut self, kill: Arc<AtomicBool>) -> Scheduler {
        self.kill = Some(kill);
        self
    }

    /// A task-local scheduler for a spawned search: same deadline, cache,
    /// oracle width and tracing session, a private cancellation token,
    /// and *no* executor (tasks do not spawn sub-tasks — but their
    /// searches may still fan out oracle batches at the run's width).
    pub fn for_task(&self, cancel: Arc<AtomicBool>) -> Scheduler {
        Scheduler {
            deadline: self.deadline,
            cache: self.cache.clone(),
            executor: None,
            intra: self.intra,
            cancel: Some(cancel),
            kill: self.kill.clone(),
            trace: self.trace.clone(),
        }
    }

    /// The run's deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// The run's memoization handle, if caching is enabled.
    pub fn cache(&self) -> Option<&CacheHandle> {
        self.cache.as_ref()
    }

    /// The executor intra-problem tasks run on, when parallel dispatch is
    /// enabled.
    pub fn executor(&self) -> Option<&Arc<Executor>> {
        if self.intra > 1 {
            self.executor.as_ref()
        } else {
            None
        }
    }

    /// Width for in-search speculative evaluation
    /// ([`crate::engine::SpeculationPool`]). Needs no executor — the pool
    /// uses scoped threads of its own — so spawned task searches keep the
    /// run's width.
    pub fn oracle_width(&self) -> usize {
        self.intra.max(1)
    }

    /// The run's tracing session, when `Options::trace` is active.
    pub fn trace(&self) -> Option<&Session> {
        self.trace.as_ref()
    }

    /// Has this search been cancelled (its speculative result is no longer
    /// needed)?
    pub fn cancelled(&self) -> bool {
        self.cancel
            .as_ref()
            .is_some_and(|c| c.load(Ordering::Relaxed))
    }

    /// Deadline-or-cancellation poll, called by the work-list loop at its
    /// check cadence. Also honours the watchdog kill flag, which only
    /// ever fires *after* the cooperative deadline.
    pub fn should_stop(&self) -> bool {
        if self.cancelled() {
            return true;
        }
        if self
            .kill
            .as_ref()
            .is_some_and(|k| k.load(Ordering::Relaxed))
        {
            return true;
        }
        match self.deadline {
            Some(d) => Instant::now() >= d,
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn absorb_saturates() {
        let mut a = SearchStats {
            popped: u64::MAX - 1,
            ..SearchStats::default()
        };
        let b = SearchStats {
            popped: 5,
            tested: 3,
            ..SearchStats::default()
        };
        a.absorb(&b);
        assert_eq!(a.popped, u64::MAX);
        assert_eq!(a.tested, 3);
        assert_eq!(a.effort(), (u64::MAX, 0, 3, 0, 0, 0, 0));
    }

    #[test]
    fn should_stop_covers_deadline_and_cancel() {
        assert!(!Scheduler::sequential().should_stop());
        let past = Instant::now() - Duration::from_secs(1);
        assert!(Scheduler::new(Some(past), None).should_stop());
        let future = Instant::now() + Duration::from_secs(600);
        let sched = Scheduler::new(Some(future), None);
        assert!(!sched.should_stop());
        let token = Arc::new(AtomicBool::new(false));
        let task = sched.for_task(Arc::clone(&token));
        assert!(!task.should_stop());
        token.store(true, Ordering::Relaxed);
        assert!(task.should_stop());
    }

    #[test]
    fn executor_dispatch_requires_an_executor() {
        let bare = Scheduler::sequential().with_executor(None, 4);
        assert!(bare.executor().is_none());
        assert_eq!(bare.oracle_width(), 4, "speculation needs no executor");
        let exec = Executor::new();
        let sched = Scheduler::sequential().with_executor(Some(exec), 4);
        assert!(sched.executor().is_some());
        // Task-local schedulers never dispatch further executor tasks but
        // keep the run's speculation width.
        let t = sched.for_task(Arc::new(AtomicBool::new(false)));
        assert!(t.executor().is_none());
        assert_eq!(t.oracle_width(), 4);
    }
}
