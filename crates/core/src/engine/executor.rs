//! The shared task executor: one thread pool serving both inter-problem
//! jobs and intra-problem tasks.
//!
//! PR 1's batch driver owned a private scoped-thread pool that could only
//! run whole problems; per-spec searches and merge-time guard searches
//! inside one problem stayed sequential. The [`Executor`] decouples the
//! *pool* from the *work*: it is a shared injector queue of `'static`
//! tasks plus a set of serving threads, and threads can be provided two
//! ways:
//!
//! * **donated** — the batch driver's scoped threads call
//!   [`Executor::drive`] between (and after) jobs, so the same OS threads
//!   that run whole problems also execute the problems' intra tasks;
//! * **owned** — [`Executor::with_workers`] spawns detached background
//!   threads for standalone runs (`solve A9 --intra 4` outside a batch).
//!
//! Scheduling is cooperative work-stealing in two directions: serving
//! threads pull queued tasks FIFO, and a thread blocked in
//! [`TaskHandle::join`] *steals its own task back* from the queue and runs
//! it inline rather than idling — so a join can never deadlock waiting for
//! a task no thread would ever start, even on a pool of one.
//!
//! Tasks are `'static` (they capture `Arc`-owned environments, oracles and
//! cache handles, never borrows), which keeps the whole pool safe Rust:
//! the workspace denies `unsafe_code`, so there is no lifetime-erased
//! scoped machinery here. A spawned task can be abandoned with
//! [`TaskHandle::cancel`]: if still queued it is dropped on the spot,
//! otherwise a cooperative flag asks the running search to stop at its
//! next deadline check. Panics inside a task are caught and re-delivered
//! at the join site, preserving the batch driver's per-job panic
//! containment.
//!
//! Determinism: the executor never reorders *results* — callers join
//! handles in a deterministic order of their choosing and fold task-local
//! statistics in that same order, so everything observable is a pure
//! function of the submitted work, not of thread scheduling.

use rbsyn_lang::contention::{self, LockSite};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Duration;

/// A queued unit of work (type-erased; the typed result lives in the
/// task's [`TaskHandle`]).
struct Queued {
    seq: u64,
    run: Box<dyn FnOnce() + Send + 'static>,
}

struct Shared {
    queue: Mutex<VecDeque<Queued>>,
    signal: Condvar,
    shutdown: AtomicBool,
    next_seq: AtomicU64,
}

impl Shared {
    /// Pops the front task, if any. Poisoned locks are recovered (see
    /// CONCURRENCY.md): the queue is valid at rest, and the panicking
    /// task's entry was already removed before its body ran.
    fn pop_any(&self) -> Option<Queued> {
        self.queue
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .pop_front()
    }

    /// Removes a specific task by queue sequence number (steal-back).
    fn pop_seq(&self, seq: u64) -> Option<Queued> {
        let mut q = contention::lock(LockSite::ExecutorQueue, &self.queue);
        let pos = q.iter().position(|t| t.seq == seq)?;
        q.remove(pos)
    }
}

/// State of one spawned task, shared between its queue entry and its
/// [`TaskHandle`].
struct TaskState<T> {
    result: Mutex<Option<thread::Result<T>>>,
    done: AtomicBool,
    cancelled: Arc<AtomicBool>,
    seq: u64,
}

/// Handle to a task spawned on an [`Executor`]: join it (with steal-back)
/// or cancel it. Dropping a handle without joining sets the cancel flag so
/// an abandoned search winds down at its next cooperative check.
pub struct TaskHandle<T> {
    shared: Arc<Shared>,
    state: Arc<TaskState<T>>,
    joined: bool,
}

impl<T> TaskHandle<T> {
    /// The task's cooperative cancellation flag. Long-running task bodies
    /// (the work-list search) poll this via their scheduler and stop early
    /// when set.
    pub fn cancel_token(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.state.cancelled)
    }

    /// Abandons the task: drops it from the queue when still pending,
    /// otherwise flags the running body to stop cooperatively. The result,
    /// if any is ever produced, is discarded.
    pub fn cancel(mut self) {
        self.state.cancelled.store(true, Ordering::Relaxed);
        let _ = self.shared.pop_seq(self.state.seq);
        self.joined = true; // suppress the Drop-side cancel bookkeeping
    }

    /// Waits for the task, running it inline if it is still queued
    /// (steal-back). Returns the task's panic payload as `Err` so callers
    /// can `resume_unwind` at a point of their choosing.
    pub fn join(mut self) -> thread::Result<T> {
        self.joined = true;
        // Steal-back: if no serving thread has started the task yet, run
        // it on this thread instead of blocking.
        if let Some(t) = self.shared.pop_seq(self.state.seq) {
            (t.run)();
        }
        let mut q = contention::lock(LockSite::ExecutorQueue, &self.shared.queue);
        loop {
            if self.state.done.load(Ordering::Acquire) {
                drop(q);
                return self
                    .state
                    .result
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .take()
                    .expect("completed task must hold a result");
            }
            // The completing thread takes the queue lock before notifying,
            // so this check-then-wait cannot miss the wakeup.
            q = self
                .shared
                .signal
                .wait(q)
                .unwrap_or_else(|p| p.into_inner());
        }
    }
}

impl<T> Drop for TaskHandle<T> {
    fn drop(&mut self) {
        if !self.joined {
            self.state.cancelled.store(true, Ordering::Relaxed);
            let _ = self.shared.pop_seq(self.state.seq);
        }
    }
}

/// A shared pool of serving threads over one FIFO task queue (see the
/// [module docs](self)).
pub struct Executor {
    shared: Arc<Shared>,
}

impl Executor {
    /// A queue-only executor: no threads of its own. Work happens on
    /// threads donated via [`Executor::drive`] and on joiners stealing
    /// their tasks back. This is what the batch driver uses — its scoped
    /// job threads double as the serving threads.
    pub fn new() -> Arc<Executor> {
        Arc::new(Executor {
            shared: Arc::new(Shared {
                queue: Mutex::new(VecDeque::new()),
                signal: Condvar::new(),
                shutdown: AtomicBool::new(false),
                next_seq: AtomicU64::new(0),
            }),
        })
    }

    /// An executor with `n` detached background worker threads, for
    /// standalone (non-batch) runs. Workers exit when the last
    /// [`Executor`] handle drops.
    pub fn with_workers(n: usize) -> Arc<Executor> {
        let exec = Executor::new();
        for _ in 0..n {
            let shared = Arc::clone(&exec.shared);
            thread::spawn(move || loop {
                match shared.pop_any() {
                    Some(t) => (t.run)(),
                    None => {
                        let q = contention::lock(LockSite::ExecutorQueue, &shared.queue);
                        if shared.shutdown.load(Ordering::Relaxed) {
                            return;
                        }
                        if q.is_empty() {
                            // Timed wait as a lost-wakeup backstop.
                            let _ = shared
                                .signal
                                .wait_timeout(q, Duration::from_millis(50))
                                .unwrap_or_else(|p| p.into_inner());
                        }
                    }
                }
            });
        }
        exec
    }

    /// Spawns a task. The closure must own everything it touches (`Arc`
    /// environments, cloned options); results come back through the
    /// returned [`TaskHandle`].
    pub fn spawn<T, F>(&self, f: F) -> TaskHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        self.spawn_cancellable(Arc::new(AtomicBool::new(false)), f)
    }

    /// Like [`Executor::spawn`], but wires a caller-provided cancellation
    /// flag as the task's token, so the task body can poll the same flag
    /// that [`TaskHandle::cancel`] (or dropping the handle) sets — the
    /// pattern used for speculative searches whose scheduler needs the
    /// token before the task exists.
    pub fn spawn_cancellable<T, F>(&self, cancelled: Arc<AtomicBool>, f: F) -> TaskHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        rbsyn_lang::failpoint::hit("executor::spawn");
        let seq = self.shared.next_seq.fetch_add(1, Ordering::Relaxed);
        let state = Arc::new(TaskState {
            result: Mutex::new(None),
            done: AtomicBool::new(false),
            cancelled,
            seq,
        });
        let task_state = Arc::clone(&state);
        let task_shared = Arc::clone(&self.shared);
        let run = Box::new(move || {
            let out = catch_unwind(AssertUnwindSafe(f));
            // Task boundary: drain the worker's trace buffer so pooled
            // threads hand their events to the session that owns them
            // before picking up work for a different run (no-op untraced).
            rbsyn_trace::flush_current_thread();
            *task_state.result.lock().unwrap_or_else(|p| p.into_inner()) = Some(out);
            task_state.done.store(true, Ordering::Release);
            // Pair with the join-side check under the queue lock.
            let _guard = contention::lock(LockSite::ExecutorQueue, &task_shared.queue);
            task_shared.signal.notify_all();
        });
        self.shared
            .queue
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push_back(Queued { seq, run });
        self.shared.signal.notify_all();
        TaskHandle {
            shared: Arc::clone(&self.shared),
            state,
            joined: false,
        }
    }

    /// Serves queued tasks on the calling thread until `done()` reports
    /// the caller's work is finished. The batch driver donates its scoped
    /// threads here once they run out of whole jobs, so job-level and
    /// task-level work share one pool.
    pub fn drive(&self, done: impl Fn() -> bool) {
        loop {
            match self.shared.pop_any() {
                Some(t) => (t.run)(),
                None => {
                    let q = contention::lock(LockSite::ExecutorQueue, &self.shared.queue);
                    if done() || self.shared.shutdown.load(Ordering::Relaxed) {
                        return;
                    }
                    if q.is_empty() {
                        // Timed wait: `done()` can flip without a queue
                        // notification (a job finishing elsewhere).
                        let _ = self
                            .shared
                            .signal
                            .wait_timeout(q, Duration::from_millis(20))
                            .unwrap_or_else(|p| p.into_inner());
                    }
                }
            }
        }
    }

    /// Wakes blocked serving threads so they re-check their `done`
    /// predicates (called after external state they wait on changes).
    pub fn poke(&self) {
        let _guard = contention::lock(LockSite::ExecutorQueue, &self.shared.queue);
        self.shared.signal.notify_all();
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        let _guard = self.shared.queue.lock();
        self.shared.signal.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn steal_back_join_needs_no_workers() {
        let exec = Executor::new();
        let h = exec.spawn(|| 21 * 2);
        assert_eq!(h.join().expect("no panic"), 42);
    }

    #[test]
    fn workers_execute_queued_tasks() {
        let exec = Executor::with_workers(2);
        let handles: Vec<_> = (0..16).map(|i| exec.spawn(move || i * i)).collect();
        let out: Vec<i32> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(out[15], 225);
        assert_eq!(out.len(), 16);
    }

    #[test]
    fn panics_surface_at_join() {
        let exec = Executor::new();
        let h = exec.spawn(|| panic!("intentional test panic"));
        let err = h.join().expect_err("panic must be captured");
        let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert!(msg.contains("intentional"), "unexpected payload");
    }

    #[test]
    fn cancel_drops_queued_tasks() {
        let exec = Executor::new(); // no workers: the task can never start
        let ran = Arc::new(AtomicUsize::new(0));
        let ran2 = Arc::clone(&ran);
        let h = exec.spawn(move || ran2.fetch_add(1, Ordering::Relaxed));
        let token = h.cancel_token();
        h.cancel();
        assert!(token.load(Ordering::Relaxed), "cancel sets the token");
        // The queue no longer holds the task; driving to empty runs nothing.
        exec.drive(|| true);
        assert_eq!(ran.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn drive_serves_until_done() {
        let exec = Executor::new();
        let counter = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&counter);
                exec.spawn(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        let c = Arc::clone(&counter);
        exec.drive(move || c.load(Ordering::Relaxed) == 8);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn dropped_handles_cancel_their_tasks() {
        let exec = Executor::new();
        let h = exec.spawn(|| 1);
        let token = h.cancel_token();
        drop(h);
        assert!(token.load(Ordering::Relaxed));
        exec.drive(|| true); // queue already empty
    }
}
