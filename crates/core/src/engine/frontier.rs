//! The search frontier: the hash-consed candidate priority queue of
//! Algorithm 2, ordered by a pluggable [`SearchStrategy`].
//!
//! Items carry the candidate's [`ExprId`] plus the `Arc`'d expression so a
//! pop needs no arena lookup. Insertion order is tracked internally and
//! used as the final tiebreak, making every strategy's exploration order
//! fully deterministic (the paper's `(c desc, size asc, insertion order)`
//! is [`PaperOrder`](crate::engine::PaperOrder) under this scheme).

use crate::engine::strategy::{Priority, SearchStrategy};
use rbsyn_lang::{Expr, ExprId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// One frontier candidate, as returned by [`Frontier::pop`].
pub struct FrontierItem {
    /// Passed-assert count of the candidate's best evaluable ancestor.
    pub c: usize,
    /// AST node count.
    pub size: usize,
    /// Hash-consed identity.
    pub id: ExprId,
    /// The candidate itself (shared with the arena).
    pub expr: Arc<Expr>,
}

struct Entry {
    pri: Priority,
    seq: u64,
    item: FrontierItem,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    // BinaryHeap pops the maximum: highest strategy priority first, FIFO
    // among equals.
    fn cmp(&self, other: &Self) -> Ordering {
        self.pri.cmp(&other.pri).then(other.seq.cmp(&self.seq))
    }
}

/// The work-list priority queue of one `generate` call.
pub struct Frontier<'s> {
    heap: BinaryHeap<Entry>,
    strategy: &'s dyn SearchStrategy,
    seq: u64,
}

impl<'s> Frontier<'s> {
    /// An empty frontier ordered by `strategy`.
    pub fn new(strategy: &'s dyn SearchStrategy) -> Frontier<'s> {
        Frontier {
            heap: BinaryHeap::new(),
            strategy,
            seq: 0,
        }
    }

    /// Enqueues a candidate. Insertion order is recorded as the final
    /// tiebreak.
    pub fn push(&mut self, c: usize, size: usize, id: ExprId, expr: Arc<Expr>) {
        let pri = self.strategy.priority(c, size);
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry {
            pri,
            seq,
            item: FrontierItem { c, size, id, expr },
        });
    }

    /// Removes and returns the highest-priority candidate.
    pub fn pop(&mut self) -> Option<FrontierItem> {
        self.heap.pop().map(|e| e.item)
    }

    /// [`Frontier::pop`] plus the popped item's rank `(priority, seq)`, so
    /// speculative consumers can re-enqueue it unchanged via
    /// [`Frontier::requeue`].
    pub fn pop_ranked(&mut self) -> Option<(Priority, u64, FrontierItem)> {
        self.heap.pop().map(|e| (e.pri, e.seq, e.item))
    }

    /// Re-enqueues an item popped with [`Frontier::pop_ranked`] at its
    /// original rank (priority *and* insertion order), used to roll back
    /// a speculation window.
    pub fn requeue(&mut self, pri: Priority, seq: u64, item: FrontierItem) {
        self.heap.push(Entry { pri, seq, item });
    }

    /// Would the current frontier head be popped before an item of rank
    /// `pri`? Anything pushed after that item lost the FIFO tiebreak, so
    /// strictly greater priority is the only way to outrank it.
    pub fn outranks(&self, pri: Priority) -> bool {
        self.heap.peek().is_some_and(|e| e.pri > pri)
    }

    /// Candidates currently enqueued.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Is the frontier empty?
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::strategy::PaperOrder;
    use rbsyn_lang::builder::int;
    use rbsyn_lang::ExprArena;

    fn item(arena: &mut ExprArena, n: i64) -> (ExprId, Arc<Expr>) {
        let id = arena.intern(int(n));
        (id, Arc::clone(arena.get(id)))
    }

    #[test]
    fn paper_order_pops_c_desc_size_asc_fifo() {
        let mut arena = ExprArena::new();
        let mut f = Frontier::new(&PaperOrder);
        let (i1, e1) = item(&mut arena, 1);
        let (i2, e2) = item(&mut arena, 2);
        let (i3, e3) = item(&mut arena, 3);
        let (i4, e4) = item(&mut arena, 4);
        f.push(0, 5, i1, e1); // low c
        f.push(1, 9, i2, e2); // high c, large
        f.push(1, 2, i3, e3); // high c, small → first
        f.push(1, 2, i4, e4); // tie with i3 → FIFO after it
        assert_eq!(f.len(), 4);
        assert_eq!(f.pop().unwrap().id, i3);
        assert_eq!(f.pop().unwrap().id, i4);
        assert_eq!(f.pop().unwrap().id, i2);
        assert_eq!(f.pop().unwrap().id, i1);
        assert!(f.is_empty());
        assert!(f.pop().is_none());
    }
}
