//! Speculative frontier evaluation: the innermost parallel layer of the
//! search.
//!
//! Profiling the suite shows hard searches spend nearly all their time in
//! the per-pop pipeline — one-step expansion, simplification, type
//! narrowing (`infer_ty`), hash-consing, and the oracle tests of the
//! resulting evaluable candidates. Each pop's pipeline is a pure function
//! of `(root Γ, candidate)` (exactly the invariant the expansion memo
//! already relies on) plus pure oracle queries, so the top of the
//! frontier can be evaluated *speculatively in parallel* while the search
//! consumes the results strictly in pop order:
//!
//! * workers expand their item **through the run's [`CacheHandle`]**, so
//!   the coordinator's in-order consumption finds every list memoized
//!   (a hit restores the raw expansion count — effort counters stay
//!   byte-identical to the sequential run);
//! * workers pre-test every evaluable child and hand back outcomes
//!   aligned with the memoized list; the consumer applies its normal
//!   dedup/S-Eff logic and simply never counts or consumes outcomes the
//!   sequential loop would not have requested;
//! * if consuming one item pushes a child that outranks the rest of the
//!   speculation window, the window is rolled back into the frontier at
//!   its original ranks and re-popped — speculation can be wasted, never
//!   wrong.
//!
//! The search borrows its oracle and environment, and the workspace
//! forbids `unsafe`, so this work cannot ride the `'static` task queue of
//! the shared [`Executor`](crate::engine::Executor). Instead the pool
//! owns a small set of **scoped** worker threads (`std::thread::scope`)
//! that may borrow everything the search borrows. Workers are spawned
//! lazily — searches that never open a speculation window pay nothing —
//! and sized by the same `intra_parallelism` knob that governs task
//! dispatch, so `--intra 1` keeps the whole engine on one thread.

use crate::cache::CacheHandle;
use crate::engine::SearchStats;
use crate::expand::Expander;
use crate::generate::{expand_compute, Oracle, OracleOutcome};
use crate::infer::Gamma;
use crate::options::Options;
use rbsyn_interp::InterpEnv;
use rbsyn_lang::contention::{self, LockSite};
use rbsyn_lang::{Expr, ExprId, Program, Symbol, Ty};
use rbsyn_trace::{Phase, Session};
use std::cell::Cell;
use std::sync::atomic::{AtomicIsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::Scope;

/// Process-wide budget of *extra* speculation workers, initialized to the
/// host's core count on first use. Concurrent searches (a batch job's
/// spec tasks, a prefetched guard search, nested `--parallel` jobs) each
/// want `width - 1` workers; without a shared budget the thread count
/// would compound multiplicatively. Pools acquire what the budget grants
/// (possibly zero — the coordinating thread always participates, so a
/// grant of zero just means that search speculates on its own thread) and
/// release on drop. Worker counts never affect results, only wall-clock.
static WORKER_BUDGET: AtomicIsize = AtomicIsize::new(-1);

fn acquire_workers(want: usize) -> usize {
    let _ = WORKER_BUDGET.compare_exchange(
        -1,
        std::thread::available_parallelism()
            .map(|n| n.get() as isize)
            .unwrap_or(1),
        Ordering::Relaxed,
        Ordering::Relaxed,
    );
    let mut granted = 0;
    while granted < want {
        let cur = WORKER_BUDGET.load(Ordering::Relaxed);
        if cur <= 0 {
            break;
        }
        if WORKER_BUDGET
            .compare_exchange(cur, cur - 1, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            granted += 1;
        }
    }
    granted
}

fn release_workers(n: usize) {
    if n > 0 {
        WORKER_BUDGET.fetch_add(n as isize, Ordering::Relaxed);
    }
}

/// One speculated frontier item.
pub struct SpecJob {
    /// Hash-consed candidate id (the expansion-memo key).
    pub id: ExprId,
    /// The candidate expression.
    pub expr: Arc<Expr>,
}

/// Per-item speculation result: oracle outcomes aligned with the item's
/// memoized expansion list (`Some` for every evaluable child).
pub type SpecOutcomes = Vec<Option<OracleOutcome>>;

struct State {
    jobs: Vec<SpecJob>,
    next: usize,
    done: usize,
    results: Vec<Option<SpecOutcomes>>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    signal: Condvar,
}

/// Everything a worker needs to run one item's expand-and-test pipeline.
/// All borrows outlive the scope; mutable state (Γ, scratch counters,
/// expander) is per-worker.
#[derive(Clone, Copy)]
struct Ctx<'a> {
    oracle: &'a dyn Oracle,
    env: &'a InterpEnv,
    method_name: Symbol,
    params: &'a [(Symbol, Ty)],
    opts: &'a Options,
    search: &'a CacheHandle,
    gamma_fp: u128,
    /// The run's tracing session (workers record sampled eval spans on
    /// their own tracks and flush at shutdown).
    trace: Option<&'a Session>,
}

fn run_job(
    ctx: &Ctx<'_>,
    gamma: &mut Gamma,
    scratch: &mut SearchStats,
    job: &SpecJob,
) -> SpecOutcomes {
    let expander = Expander::new(&ctx.env.table, ctx.opts, ctx.search);
    let expansions = ctx.search.expansions(ctx.gamma_fp, job.id, scratch, |_| {
        expand_compute(&expander, gamma, ctx.env, ctx.opts, ctx.search, &job.expr)
    });
    expansions
        .iter()
        .map(|cand| {
            cand.evaluable.then(|| {
                let program = Program::from_parts(
                    ctx.method_name,
                    ctx.params.iter().map(|(n, _)| *n).collect(),
                    (*cand.expr).clone(),
                );
                ctx.oracle.test(ctx.env, &program)
            })
        })
        .collect()
}

/// A lazily-spawned team of scoped speculation workers for one `generate`
/// call. See the [module docs](self).
pub struct SpeculationPool<'scope, 'env> {
    scope: &'scope Scope<'scope, 'env>,
    ctx: Ctx<'scope>,
    workers: usize,
    /// Workers actually spawned (granted by [`WORKER_BUDGET`]); released
    /// on drop.
    granted: Cell<usize>,
    spawned: Cell<bool>,
    shared: Arc<Shared>,
}

impl<'scope, 'env> SpeculationPool<'scope, 'env> {
    /// A pool of up to `workers` extra threads (the coordinating search
    /// thread always participates too, so the effective width is at most
    /// `workers + 1`). No threads are spawned until the first window, and
    /// the actual count is capped by the process-wide core-sized worker
    /// budget so concurrently running searches cannot multiply the
    /// machine's thread count.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        scope: &'scope Scope<'scope, 'env>,
        workers: usize,
        oracle: &'scope dyn Oracle,
        env: &'scope InterpEnv,
        method_name: Symbol,
        params: &'scope [(Symbol, Ty)],
        opts: &'scope Options,
        search: &'scope CacheHandle,
        gamma_fp: u128,
        trace: Option<&'scope Session>,
    ) -> SpeculationPool<'scope, 'env> {
        SpeculationPool {
            scope,
            ctx: Ctx {
                oracle,
                env,
                method_name,
                params,
                opts,
                search,
                gamma_fp,
                trace,
            },
            workers,
            granted: Cell::new(0),
            spawned: Cell::new(false),
            shared: Arc::new(Shared {
                state: Mutex::new(State {
                    jobs: Vec::new(),
                    next: 0,
                    done: 0,
                    results: Vec::new(),
                    shutdown: false,
                }),
                signal: Condvar::new(),
            }),
        }
    }

    fn ensure_workers(&self) {
        if self.spawned.replace(true) {
            return;
        }
        let granted = acquire_workers(self.workers);
        self.granted.set(granted);
        for w in 0..granted {
            let shared = Arc::clone(&self.shared);
            let ctx = self.ctx;
            let builder = std::thread::Builder::new().name(format!("speculate-{w}"));
            builder
                .spawn_scoped(self.scope, move || {
                    // Per-worker mutable state: a fresh root Γ is equivalent to
                    // the coordinator's (expansion is a pure function of the
                    // root bindings; see the expansion-memo contract).
                    let mut gamma = Gamma::from_params(ctx.params);
                    let mut scratch = SearchStats::default();
                    let mut jobs_done = 0u64;
                    let mut state = contention::lock(LockSite::SpeculationPool, &shared.state);
                    loop {
                        if state.shutdown {
                            // Drain this worker's trace buffer before the
                            // scoped thread disappears (no-op untraced).
                            rbsyn_trace::flush_current_thread();
                            return;
                        }
                        if state.next < state.jobs.len() {
                            let i = state.next;
                            state.next += 1;
                            let job = SpecJob {
                                id: state.jobs[i].id,
                                expr: Arc::clone(&state.jobs[i].expr),
                            };
                            drop(state);
                            let sp = ctx
                                .trace
                                .and_then(|t| t.sampled(jobs_done).then(|| t.span(Phase::Eval)));
                            jobs_done += 1;
                            let out = run_job(&ctx, &mut gamma, &mut scratch, &job);
                            drop(sp);
                            state = contention::lock(LockSite::SpeculationPool, &shared.state);
                            state.results[i] = Some(out);
                            state.done += 1;
                            if state.done == state.jobs.len() {
                                shared.signal.notify_all();
                            }
                        } else {
                            state = shared.signal.wait(state).unwrap_or_else(|p| p.into_inner());
                        }
                    }
                })
                .expect("spawn speculation worker");
        }
    }

    /// Evaluates a window of frontier items, returning per-item outcome
    /// vectors in input order. The calling thread claims jobs alongside
    /// the workers, so this also works (sequentially) with zero workers.
    pub fn evaluate(&self, jobs: Vec<SpecJob>) -> Vec<SpecOutcomes> {
        let n = jobs.len();
        if n == 0 {
            return Vec::new();
        }
        self.ensure_workers();
        {
            let mut state = contention::lock(LockSite::SpeculationPool, &self.shared.state);
            debug_assert!(state.jobs.is_empty(), "one window at a time");
            state.jobs = jobs;
            state.next = 0;
            state.done = 0;
            state.results = (0..n).map(|_| None).collect();
            self.shared.signal.notify_all();
        }
        let mut gamma = Gamma::from_params(self.ctx.params);
        let mut scratch = SearchStats::default();
        // Participate until every job is claimed…
        loop {
            let job;
            let i;
            {
                let mut state = contention::lock(LockSite::SpeculationPool, &self.shared.state);
                if state.next >= n {
                    break;
                }
                i = state.next;
                state.next += 1;
                job = SpecJob {
                    id: state.jobs[i].id,
                    expr: Arc::clone(&state.jobs[i].expr),
                };
            }
            let out = run_job(&self.ctx, &mut gamma, &mut scratch, &job);
            let mut state = contention::lock(LockSite::SpeculationPool, &self.shared.state);
            state.results[i] = Some(out);
            state.done += 1;
            if state.done == n {
                self.shared.signal.notify_all();
            }
        }
        // …then wait for stragglers running on workers.
        let mut state = contention::lock(LockSite::SpeculationPool, &self.shared.state);
        while state.done < n {
            state = self
                .shared
                .signal
                .wait(state)
                .unwrap_or_else(|p| p.into_inner());
        }
        state.jobs = Vec::new();
        state
            .results
            .drain(..)
            .map(|o| o.expect("completed window has all results"))
            .collect()
    }
}

impl Drop for SpeculationPool<'_, '_> {
    fn drop(&mut self) {
        {
            let mut state = contention::lock(LockSite::SpeculationPool, &self.shared.state);
            state.shutdown = true;
            self.shared.signal.notify_all();
        }
        release_workers(self.granted.get());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_budget_grants_and_releases() {
        // Other tests' pools share this global budget, so only assert
        // race-free properties: grants never exceed the request, zero
        // requests get zero, and releases never underflow/panic.
        let got = acquire_workers(3);
        assert!(got <= 3);
        release_workers(got);
        assert_eq!(acquire_workers(0), 0);
        release_workers(0);
    }
}
