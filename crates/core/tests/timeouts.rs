//! Deadline propagation: `SynthError::Timeout` must surface from both
//! phases of the pipeline — the phase-1 per-spec search (`generate`) and
//! the phase-2 merge (`merge_program`) — and the batch driver must confine
//! one job's timeout to that job.

use rbsyn_core::batch::{run_batch, BatchJob};
use rbsyn_core::engine::Scheduler;
use rbsyn_core::generate::{generate, SearchStats, SpecOracle};
use rbsyn_core::merge::{merge_program, MergeCtx, Tuple};
use rbsyn_core::{Options, SynthError, SynthesisProblem, Synthesizer};
use rbsyn_interp::{InterpEnv, SetupStep, Spec};
use rbsyn_lang::builder::*;
use rbsyn_lang::Ty;
use rbsyn_stdlib::EnvBuilder;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn env() -> InterpEnv {
    EnvBuilder::with_stdlib().finish()
}

/// A spec no candidate can ever pass (`assert false`), so the search runs
/// until some budget stops it.
fn unsatisfiable_spec() -> Spec {
    Spec::new(
        "unsatisfiable",
        vec![SetupStep::CallTarget {
            bind: "xr".into(),
            args: vec![],
        }],
        vec![false_()],
    )
}

/// An already-expired deadline: the next deadline check must fire.
fn expired() -> Option<Instant> {
    Some(Instant::now())
}

/// A scheduler with an already-expired deadline and no cache/executor.
fn expired_sched() -> Scheduler {
    Scheduler::new(expired(), None)
}

#[test]
fn phase1_generate_surfaces_timeout() {
    let env = env();
    let spec = unsatisfiable_spec();
    let opts = Options::default();
    let mut stats = SearchStats::default();
    let r = generate(
        &env,
        "m",
        &[],
        &Ty::Bool,
        &SpecOracle::new(&env, &spec),
        &opts,
        6,
        &expired_sched(),
        &mut stats,
    );
    assert!(matches!(r, Err(SynthError::Timeout)), "got {r:?}");
    // The search did run up to the deadline check, not zero work.
    assert!(stats.popped > 0);
}

#[test]
fn phase2_merge_surfaces_timeout() {
    let env = Arc::new(env());
    let spec = unsatisfiable_spec();
    let opts = Options::default();
    let mut stats = SearchStats::default();
    let spec_oracles = vec![Arc::new(SpecOracle::new(&env, &spec))];
    let sched = expired_sched();
    let mut ctx = MergeCtx {
        env: &env,
        name: "m".into(),
        params: &[],
        specs: std::slice::from_ref(&spec),
        spec_oracles: &spec_oracles,
        opts: &opts,
        sched: &sched,
        stats: &mut stats,
        guard_time: Duration::ZERO,
        known_conds: Vec::new(),
        guards: rbsyn_core::guards::GuardPool::new(),
    };
    let tuples = vec![Tuple {
        expr: true_(),
        cond: true_(),
        specs: vec![0],
    }];
    let r = merge_program(&mut ctx, tuples);
    assert!(matches!(r, Err(SynthError::Timeout)), "got {r:?}");
}

#[test]
fn whole_pipeline_times_out_on_unsatisfiable_problem() {
    let problem = SynthesisProblem::builder("m")
        .returns(Ty::Bool)
        .base_consts()
        .spec(unsatisfiable_spec())
        .build();
    let opts = Options {
        timeout: Some(Duration::from_millis(40)),
        ..Options::default()
    };
    let started = Instant::now();
    let r = Synthesizer::new(env(), problem, opts).run();
    assert!(matches!(r, Err(SynthError::Timeout)), "got {r:?}");
    // The deadline is a real-time bound, not a best-effort suggestion:
    // generous slack only to absorb CI scheduling noise.
    assert!(started.elapsed() < Duration::from_secs(10));
}

#[test]
fn batch_driver_isolates_timeouts_per_job() {
    let solvable = |id: &str| {
        BatchJob::new(
            id,
            || {
                let problem = SynthesisProblem::builder("m")
                    .returns(Ty::Bool)
                    .base_consts()
                    .spec(Spec::new(
                        "returns false",
                        vec![SetupStep::CallTarget {
                            bind: "xr".into(),
                            args: vec![],
                        }],
                        vec![call(var("xr"), "==", [false_()])],
                    ))
                    .build();
                (env(), problem)
            },
            // No deadline at all: only the doomed sibling carries one.
            Options {
                timeout: None,
                ..Options::default()
            },
        )
    };
    let doomed = BatchJob::new(
        "doomed",
        || {
            let problem = SynthesisProblem::builder("m")
                .returns(Ty::Bool)
                .base_consts()
                .spec(unsatisfiable_spec())
                .build();
            (env(), problem)
        },
        Options {
            timeout: Some(Duration::from_millis(30)),
            ..Options::default()
        },
    );

    let jobs = vec![solvable("ok0"), doomed, solvable("ok1")];
    let report = run_batch(&jobs, 3);
    assert_eq!(report.outcomes.len(), 3);
    assert!(
        report.outcomes[0].solved(),
        "ok0: {:?}",
        report.outcomes[0].result
    );
    assert!(
        matches!(report.outcomes[1].result, Err(SynthError::Timeout)),
        "doomed must time out: {:?}",
        report.outcomes[1].result
    );
    assert!(
        report.outcomes[2].solved(),
        "ok1: {:?}",
        report.outcomes[2].result
    );
    assert_eq!(report.stats.timeouts, 1);
    assert_eq!(report.stats.solved, 2);
}
