//! Cache semantics: memoization must be invisible in results.
//!
//! * a property test drives `generate` over random problems, once with a
//!   shared [`CacheHandle`] and once uncached, and demands identical
//!   programs *and* identical effort counters;
//! * batch tests check that sharing one [`SearchCache`] across jobs (the
//!   `run_batch` default) changes nothing observable, sequentially or in
//!   parallel;
//! * a regression test pins the symmetric environment reset in
//!   `Synthesizer::new`: a reused/cloned environment must not leak the
//!   previous problem's effect precision or constants into the next run.

use proptest::prelude::*;
use rbsyn_core::cache::{CacheHandle, SearchCache};
use rbsyn_core::generate::{generate, SearchStats, SpecOracle};
use rbsyn_core::{run_batch, BatchJob, Options, SynthesisProblem, Synthesizer};
use rbsyn_interp::{InterpEnv, SetupStep, Spec};
use rbsyn_lang::builder::*;
use rbsyn_lang::{Expr, Ty, Value};
use rbsyn_stdlib::EnvBuilder;
use std::sync::Arc;

fn blog_env() -> (InterpEnv, rbsyn_lang::ClassId) {
    let mut b = EnvBuilder::with_stdlib();
    let post = b.define_model(
        "Post",
        &[("author", Ty::Str), ("title", Ty::Str), ("slug", Ty::Str)],
    );
    b.add_const(Value::Class(post));
    b.add_const(Value::Bool(true));
    b.add_const(Value::Bool(false));
    b.add_const(Value::Int(0));
    b.add_const(Value::Int(1));
    (b.finish(), post)
}

/// A small random synthesis problem: return type, parameters, and a target
/// expression the spec asserts the result equal to. Every generated
/// problem is solvable (the target is a constant or a parameter).
#[derive(Clone, Debug)]
struct RandomProblem {
    params: Vec<(&'static str, Ty)>,
    goal: Ty,
    call_args: Vec<Expr>,
    expected: Expr,
}

fn arb_problem() -> impl Strategy<Value = RandomProblem> {
    (0usize..6).prop_map(|shape| match shape {
        // Identity over a string parameter.
        0 => RandomProblem {
            params: vec![("arg0", Ty::Str)],
            goal: Ty::Str,
            call_args: vec![str_("val")],
            expected: str_("val"),
        },
        // Identity over an int parameter, two params in scope.
        1 => RandomProblem {
            params: vec![("arg0", Ty::Int), ("arg1", Ty::Str)],
            goal: Ty::Int,
            call_args: vec![int(7), str_("x")],
            expected: int(7),
        },
        // Constant booleans.
        2 => RandomProblem {
            params: vec![],
            goal: Ty::Bool,
            call_args: vec![],
            expected: true_(),
        },
        3 => RandomProblem {
            params: vec![],
            goal: Ty::Bool,
            call_args: vec![],
            expected: false_(),
        },
        // Constant ints from Σ.
        4 => RandomProblem {
            params: vec![],
            goal: Ty::Int,
            call_args: vec![],
            expected: int(0),
        },
        _ => RandomProblem {
            params: vec![],
            goal: Ty::Int,
            call_args: vec![],
            expected: int(1),
        },
    })
}

fn solve_once(p: &RandomProblem, search: Option<&CacheHandle>) -> (String, SearchStats) {
    let (env, _) = blog_env();
    let spec = Spec::new(
        "matches the target",
        vec![SetupStep::CallTarget {
            bind: "xr".into(),
            args: p.call_args.clone(),
        }],
        vec![call(var("xr"), "==", [p.expected.clone()])],
    );
    let params: Vec<(rbsyn_lang::Symbol, Ty)> = p
        .params
        .iter()
        .map(|(n, t)| (rbsyn_lang::Symbol::intern(n), t.clone()))
        .collect();
    let opts = Options::default();
    let mut stats = SearchStats::default();
    let sched = rbsyn_core::engine::Scheduler::new(None, search.cloned());
    let expr = generate(
        &env,
        "m",
        &params,
        &p.goal,
        &SpecOracle::new(&env, &spec),
        &opts,
        opts.max_size,
        &sched,
        &mut stats,
    )
    .expect("generated problems are solvable");
    (expr.compact(), stats)
}

/// Cached and uncached searches return the same program and the same
/// effort counters — memoization is purely a time optimization.
fn check_cached_uncached_agreement(p: RandomProblem) {
    let (env, _) = blog_env();
    let opts = Options::default();
    let shared = CacheHandle::bind(
        Arc::new(SearchCache::new()),
        Arc::new(SearchCache::new()),
        &env.table,
        &opts,
    );
    // Two cached runs against the SAME handle: the second replays the
    // first from the memo.
    let (cached1, s1) = solve_once(&p, Some(&shared));
    let (cached2, s2) = solve_once(&p, Some(&shared));
    let (uncached, s0) = solve_once(&p, None);
    assert_eq!(cached1, uncached, "cached vs uncached program for {p:?}");
    assert_eq!(cached2, uncached, "warm-cache program for {p:?}");
    for (a, b) in [(s1, s0), (s2, s0)] {
        assert_eq!(a.popped, b.popped);
        assert_eq!(a.expanded, b.expanded);
        assert_eq!(a.tested, b.tested);
        assert_eq!(a.deduped, b.deduped);
    }
    // And the warm run actually hit the memo when there was anything
    // to expand (trivial 1-pop searches may resolve before any miss).
    if s0.popped > 1 {
        assert!(s2.expand_hits > 0, "warm run must replay expansions");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn cached_and_uncached_generate_agree(p in arb_problem()) {
        check_cached_uncached_agreement(p);
    }
}

// A fast-but-nontrivial job: identity over a string parameter (a few dozen
// work-list pops, well under a second even unoptimized).
fn trivial_job(id: &str) -> BatchJob {
    BatchJob::new(
        id,
        || {
            let (env, _) = blog_env();
            let problem = SynthesisProblem::builder("m")
                .param("arg0", Ty::Str)
                .returns(Ty::Str)
                .base_consts()
                .spec(Spec::new(
                    "returns its argument",
                    vec![SetupStep::CallTarget {
                        bind: "xr".into(),
                        args: vec![str_("hello")],
                    }],
                    vec![call(var("xr"), "==", [str_("hello")])],
                ))
                .build();
            (env, problem)
        },
        Options::default(),
    )
}

/// Cross-job sharing must be invisible: a batch of identical jobs produces
/// identical programs and counters whether jobs run against one shared
/// cache (sequentially or in parallel) or against private caches.
#[test]
fn batch_cache_sharing_is_deterministic() {
    let jobs: Vec<BatchJob> = (0..4).map(|i| trivial_job(&format!("j{i}"))).collect();
    let shared_seq = run_batch(&jobs, 1);
    let shared_par = run_batch(&jobs, 3);
    let private: Vec<_> = jobs.iter().map(|j| j.run()).collect();
    for ((a, b), c) in shared_seq
        .outcomes
        .iter()
        .zip(shared_par.outcomes.iter())
        .zip(private.iter())
    {
        let (ra, rb, rc) = (
            a.result.as_ref().unwrap(),
            b.result.as_ref().unwrap(),
            c.result.as_ref().unwrap(),
        );
        assert_eq!(ra.program.to_string(), rb.program.to_string());
        assert_eq!(ra.program.to_string(), rc.program.to_string());
        assert_eq!(ra.stats.search.tested, rb.stats.search.tested);
        assert_eq!(ra.stats.search.tested, rc.stats.search.tested);
        assert_eq!(ra.stats.search.popped, rc.stats.search.popped);
    }
}

/// Explicitly sharing one cache across *different* problems must change
/// neither problem's result — entries are keyed by environment content, so
/// a foreign problem's entries are unreachable.
#[test]
fn shared_cache_never_leaks_across_problems() {
    let cache = Arc::new(SearchCache::new());
    let ident_job = trivial_job("ident");
    let bool_job = BatchJob::new(
        "bool",
        || {
            let (env, _) = blog_env();
            let problem = SynthesisProblem::builder("m")
                .returns(Ty::Bool)
                .base_consts()
                .spec(Spec::new(
                    "returns false",
                    vec![SetupStep::CallTarget {
                        bind: "xr".into(),
                        args: vec![],
                    }],
                    vec![call(var("xr"), "==", [false_()])],
                ))
                .build();
            (env, problem)
        },
        Options::default(),
    );
    let shared_a = ident_job.run_shared(&cache);
    let shared_b = bool_job.run_shared(&cache);
    let solo_a = ident_job.run();
    let solo_b = bool_job.run();
    assert_eq!(
        shared_a.result.unwrap().program.to_string(),
        solo_a.result.unwrap().program.to_string()
    );
    assert_eq!(
        shared_b.result.unwrap().program.to_string(),
        solo_b.result.unwrap().program.to_string()
    );
}

/// Regression: `Synthesizer::new` must reset effect precision *and* the
/// constant set symmetrically from the new run's configuration, so an
/// environment that already carries a previous problem's configuration
/// cannot leak it into this run.
#[test]
fn synthesizer_reuse_resets_precision_and_consts() {
    let (env, _) = blog_env();
    // Simulate a previous problem's residue: coarse precision, stray Σ.
    let mut dirty = env.clone();
    dirty.table.set_precision(rbsyn_ty::EffectPrecision::Purity);
    dirty.table.add_const(Value::str("stale"));
    dirty.table.add_const(Value::Int(999));

    let problem = || {
        SynthesisProblem::builder("m")
            .returns(Ty::Bool)
            .base_consts()
            .spec(Spec::new(
                "returns true",
                vec![SetupStep::CallTarget {
                    bind: "xr".into(),
                    args: vec![],
                }],
                vec![call(var("xr"), "==", [true_()])],
            ))
            .build()
    };
    let opts = Options::default();

    let from_dirty = Synthesizer::new(dirty, problem(), opts.clone());
    // The configured table reflects THIS run, not the residue.
    assert_eq!(
        from_dirty.env().table.precision(),
        rbsyn_ty::EffectPrecision::Precise
    );
    let consts: Vec<&Value> = from_dirty
        .env()
        .table
        .consts()
        .iter()
        .map(|(v, _)| v)
        .collect();
    assert_eq!(
        consts.len(),
        5,
        "exactly the problem's base consts: {consts:?}"
    );
    assert!(!consts.contains(&&Value::str("stale")));

    // And the run behaves exactly as from a pristine environment — same
    // program, same effort.
    let clean = Synthesizer::new(blog_env().0, problem(), opts)
        .run()
        .unwrap();
    let dirty_run = from_dirty.run().unwrap();
    assert_eq!(dirty_run.program.to_string(), clean.program.to_string());
    assert_eq!(dirty_run.stats.search.tested, clean.stats.search.tested);
}

/// The configured-environment fingerprint must separate precision and
/// constant configurations, so cache reuse between differently configured
/// runs is structurally impossible.
#[test]
fn env_fingerprints_separate_configurations() {
    let (env, _) = blog_env();
    let base = env.table.fingerprint();
    let mut coarse = env.table.clone();
    coarse.set_precision(rbsyn_ty::EffectPrecision::Purity);
    assert_ne!(base, coarse.fingerprint());
    let mut more_consts = env.table.clone();
    more_consts.add_const(Value::Int(123));
    assert_ne!(base, more_consts.fingerprint());
    more_consts.clear_consts();
    // Σ cleared entirely differs from the original Σ as well.
    assert_ne!(base, more_consts.fingerprint());
}
