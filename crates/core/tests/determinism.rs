//! Engine determinism: programs and effort counters must be a pure
//! function of the problem and the configured [`StrategyKind`] — never of
//! the intra-problem task width, the thread pool, or cache state.
//!
//! * `--intra 1` vs `--intra 4` over problems exercising every parallel
//!   dispatch site (multi-spec phase 1 with and without solution reuse,
//!   Rule-3 guard pairs in the merge) must produce byte-identical
//!   programs and identical `(popped, expanded, tested, deduped)`;
//! * the same holds per strategy when the strategy is fixed — including
//!   the non-default cost-weighted order;
//! * a property test sweeps randomized spec sets through both widths.

use proptest::prelude::*;
use rbsyn_core::{Options, StrategyKind, SynthResult, SynthesisProblem, Synthesizer};
use rbsyn_interp::{InterpEnv, SetupStep, Spec};
use rbsyn_lang::builder::*;
use rbsyn_lang::{Ty, Value};
use rbsyn_stdlib::EnvBuilder;

fn blog_env() -> (InterpEnv, rbsyn_lang::ClassId) {
    let mut b = EnvBuilder::with_stdlib();
    let post = b.define_model(
        "Post",
        &[("author", Ty::Str), ("title", Ty::Str), ("slug", Ty::Str)],
    );
    (b.finish(), post)
}

/// A two-spec problem whose merge needs a Rule-3 guard pair (the parallel
/// prefetch path) and whose phase 1 has no reuse.
fn branching_problem() -> (InterpEnv, SynthesisProblem) {
    let (env, post) = blog_env();
    let seeded = Spec::new(
        "seeded returns true",
        vec![
            SetupStep::Exec(call(
                cls(post),
                "create",
                [hash([("author", str_("alice"))])],
            )),
            SetupStep::CallTarget {
                bind: "xr".into(),
                args: vec![],
            },
        ],
        vec![call(var("xr"), "==", [true_()])],
    );
    let empty = Spec::new(
        "empty returns false",
        vec![SetupStep::CallTarget {
            bind: "xr".into(),
            args: vec![],
        }],
        vec![call(var("xr"), "==", [false_()])],
    );
    let problem = SynthesisProblem::builder("m")
        .returns(Ty::Bool)
        .base_consts()
        .constant(Value::Class(post))
        .spec(seeded)
        .spec(empty)
        .build();
    (env, problem)
}

/// A three-spec problem where specs 2 and 3 are served by solution reuse —
/// the speculative searches for them must be cancelled and discarded.
fn reuse_problem() -> (InterpEnv, SynthesisProblem) {
    let (env, _) = blog_env();
    let mk = |name: &str| {
        Spec::new(
            name,
            vec![SetupStep::CallTarget {
                bind: "xr".into(),
                args: vec![],
            }],
            vec![call(var("xr"), "==", [int(1)])],
        )
    };
    let problem = SynthesisProblem::builder("m")
        .returns(Ty::Int)
        .base_consts()
        .spec(mk("a"))
        .spec(mk("b"))
        .spec(mk("c"))
        .build();
    (env, problem)
}

fn run_with(
    build: &dyn Fn() -> (InterpEnv, SynthesisProblem),
    intra: usize,
    strategy: StrategyKind,
) -> SynthResult {
    let (env, problem) = build();
    let opts = Options {
        intra_parallelism: intra,
        strategy,
        ..Options::default()
    };
    Synthesizer::new(env, problem, opts)
        .run()
        .expect("determinism problems are solvable")
}

fn assert_width_independent(
    build: &dyn Fn() -> (InterpEnv, SynthesisProblem),
    strategy: StrategyKind,
) {
    let seq = run_with(build, 1, strategy);
    let par = run_with(build, 4, strategy);
    assert_eq!(
        seq.program.to_string(),
        par.program.to_string(),
        "programs must be byte-identical for strategy {strategy:?}"
    );
    assert_eq!(
        seq.stats.search.effort(),
        par.stats.search.effort(),
        "effort counters must be width-independent for strategy {strategy:?}"
    );
    assert_eq!(seq.stats.tuples, par.stats.tuples);
    assert_eq!(seq.stats.solution_size, par.stats.solution_size);
    assert_eq!(seq.stats.solution_paths, par.stats.solution_paths);
}

#[test]
fn guard_pair_merge_is_width_independent() {
    assert_width_independent(&branching_problem, StrategyKind::Paper);
}

#[test]
fn solution_reuse_is_width_independent() {
    let seq = run_with(&reuse_problem, 1, StrategyKind::Paper);
    let par = run_with(&reuse_problem, 4, StrategyKind::Paper);
    assert_eq!(seq.program.to_string(), par.program.to_string());
    assert_eq!(seq.stats.search.effort(), par.stats.search.effort());
    assert_eq!(
        seq.stats.tuples, 1,
        "specs b and c must reuse spec a's solution"
    );
    assert_eq!(par.stats.tuples, 1);
}

#[test]
fn fixed_alternative_strategy_is_width_independent() {
    // The cost-weighted order may synthesize a different program than the
    // paper order — but for a fixed strategy the result must not depend on
    // the task width.
    assert_width_independent(&branching_problem, StrategyKind::CostWeighted);
    assert_width_independent(&reuse_problem, StrategyKind::CostWeighted);
}

#[test]
fn obs_equiv_pruning_preserves_programs() {
    // Observational-equivalence dedup may only change *how much work*
    // finds the program, never the program: pruning on vs off must
    // synthesize byte-identical programs (and sizes/paths) while doing no
    // more work with pruning enabled. The full-corpus version of this
    // gate is the CI `obs-equiv` determinism leg and the trajectory's
    // `no-obs-equiv` row.
    let run = |build: &dyn Fn() -> (InterpEnv, SynthesisProblem), obs: bool| {
        let (env, problem) = build();
        let opts = Options {
            obs_equiv: obs,
            ..Options::default()
        };
        Synthesizer::new(env, problem, opts)
            .run()
            .expect("determinism problems are solvable")
    };
    for build in [
        &branching_problem as &dyn Fn() -> (InterpEnv, SynthesisProblem),
        &reuse_problem,
    ] {
        let on = run(build, true);
        let off = run(build, false);
        assert_eq!(
            on.program.to_string(),
            off.program.to_string(),
            "pruning must not change the synthesized program"
        );
        assert_eq!(on.stats.solution_size, off.stats.solution_size);
        assert_eq!(on.stats.solution_paths, off.stats.solution_paths);
        assert!(
            on.stats.search.tested <= off.stats.search.tested,
            "pruning must never test more candidates"
        );
        assert_eq!(
            off.stats.search.obs_pruned, 0,
            "disabled pruning counts nothing"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_spec_sets_prune_identically(mask in arb_spec_mask()) {
        // Property form of the obs-equiv gate over randomized spec sets.
        let run = |obs: bool| {
            let (env, problem) = masked_problem(&mask);
            let opts = Options { obs_equiv: obs, ..Options::default() };
            Synthesizer::new(env, problem, opts).run().expect("solvable")
        };
        let on = run(true);
        let off = run(false);
        prop_assert_eq!(on.program.to_string(), off.program.to_string());
        prop_assert!(on.stats.search.tested <= off.stats.search.tested);
    }
}

#[test]
fn tracing_is_invisible_at_any_width() {
    // The `--trace` invariant: instrumentation only *reads* engine state,
    // so tracing on vs off must synthesize byte-identical programs with
    // identical effort counters — sequentially and at `--intra 4`, where
    // speculation workers and task threads record on their own tracks.
    // The full-benchmark version of this gate is the CI `trace`
    // determinism leg (it diffs `solve` stdout and `--json` output).
    let run = |intra: usize, trace: bool| {
        let (env, problem) = branching_problem();
        let opts = Options {
            intra_parallelism: intra,
            trace: trace.then(|| rbsyn_trace::TraceConfig::with_sample(1)),
            ..Options::default()
        };
        Synthesizer::new(env, problem, opts).run().unwrap()
    };
    for intra in [1, 4] {
        let off = run(intra, false);
        let on = run(intra, true);
        assert_eq!(
            off.program.to_string(),
            on.program.to_string(),
            "tracing must not change the program (intra {intra})"
        );
        assert_eq!(
            off.stats.search.effort(),
            on.stats.search.effort(),
            "tracing must not change effort counters (intra {intra})"
        );
        assert_eq!(off.stats.tuples, on.stats.tuples);
        assert_eq!(off.stats.solution_size, on.stats.solution_size);
        assert_eq!(off.stats.solution_paths, on.stats.solution_paths);
    }
}

#[test]
fn attached_tracer_records_the_run_without_changing_it() {
    // The CLI path: an externally attached session records real events
    // (phase spans, marks, a counter track) while the result stays
    // byte-identical to an untraced run.
    let baseline = {
        let (env, problem) = branching_problem();
        Synthesizer::new(env, problem, Options::default())
            .run()
            .unwrap()
    };
    let session = rbsyn_trace::Session::new(rbsyn_trace::TraceConfig::with_sample(1));
    let traced = {
        let (env, problem) = branching_problem();
        let opts = Options {
            trace: Some(rbsyn_trace::TraceConfig::with_sample(1)),
            ..Options::default()
        };
        Synthesizer::new(env, problem, opts)
            .with_tracer(session.clone())
            .run()
            .unwrap()
    };
    assert_eq!(baseline.program.to_string(), traced.program.to_string());
    assert_eq!(baseline.stats.search.effort(), traced.stats.search.effort());
    let trace = session.finish();
    let json = trace.to_chrome_json(&[]);
    let summary = rbsyn_trace::schema::check_chrome_trace(&json)
        .expect("engine-emitted traces satisfy the schema");
    for span in ["solve", "generate", "guard", "eval", "merge"] {
        assert!(
            summary.span_names.contains(span),
            "missing span {span:?} in {:?}",
            summary.span_names
        );
    }
    assert!(
        summary.counter_tracks.contains("search-stats"),
        "missing counter track in {:?}",
        summary.counter_tracks
    );
}

#[test]
fn caching_is_invisible_at_any_width() {
    let run = |intra: usize, cache: bool| {
        let (env, problem) = branching_problem();
        let opts = Options {
            intra_parallelism: intra,
            cache,
            ..Options::default()
        };
        Synthesizer::new(env, problem, opts).run().unwrap()
    };
    let reference = run(1, true);
    for (intra, cache) in [(1, false), (4, true), (4, false)] {
        let r = run(intra, cache);
        assert_eq!(
            reference.program.to_string(),
            r.program.to_string(),
            "intra {intra}, cache {cache}"
        );
        assert_eq!(
            reference.stats.search.effort(),
            r.stats.search.effort(),
            "intra {intra}, cache {cache}"
        );
    }
}

/// Randomized spec sets: any subset/ordering of these specs must solve
/// identically at both widths (programs and effort counters).
fn arb_spec_mask() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(0usize..4, 1..4)
}

fn masked_problem(mask: &[usize]) -> (InterpEnv, SynthesisProblem) {
    let (env, post) = blog_env();
    let specs: Vec<Spec> = mask
        .iter()
        .map(|&which| match which {
            // Constant result.
            0 => Spec::new(
                "one",
                vec![SetupStep::CallTarget {
                    bind: "xr".into(),
                    args: vec![str_("x")],
                }],
                vec![call(var("xr"), "==", [int(1)])],
            ),
            // Identity-flavoured: result equals the argument's length
            // bucket — solved by a constant too, enabling reuse chains.
            1 => Spec::new(
                "one again",
                vec![SetupStep::CallTarget {
                    bind: "xr".into(),
                    args: vec![str_("y")],
                }],
                vec![call(var("xr"), "==", [int(1)])],
            ),
            // DB-dependent: seeded world, result 0.
            2 => Spec::new(
                "seeded zero",
                vec![
                    SetupStep::Exec(call(cls(post), "create", [hash([("slug", str_("s"))])])),
                    SetupStep::CallTarget {
                        bind: "xr".into(),
                        args: vec![str_("z")],
                    },
                ],
                vec![call(var("xr"), "==", [int(0)])],
            ),
            // Doubly-seeded world, also result 0 (reuses spec 2's
            // solution when both appear; still distinguishable from the
            // empty-world specs by any emptiness test).
            _ => Spec::new(
                "doubly seeded zero",
                vec![
                    SetupStep::Exec(call(cls(post), "create", [hash([("slug", str_("a"))])])),
                    SetupStep::Exec(call(cls(post), "create", [hash([("slug", str_("b"))])])),
                    SetupStep::CallTarget {
                        bind: "xr".into(),
                        args: vec![str_("w")],
                    },
                ],
                vec![call(var("xr"), "==", [int(0)])],
            ),
        })
        .collect();
    let mut b = SynthesisProblem::builder("m")
        .param("arg0", Ty::Str)
        .returns(Ty::Int)
        .base_consts()
        .constant(Value::Class(post));
    for s in specs {
        b = b.spec(s);
    }
    (env, b.build())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_spec_sets_are_width_independent(mask in arb_spec_mask()) {
        let build = move || masked_problem(&mask);
        let seq = run_with(&build, 1, StrategyKind::Paper);
        let par = run_with(&build, 4, StrategyKind::Paper);
        prop_assert_eq!(seq.program.to_string(), par.program.to_string());
        prop_assert_eq!(seq.stats.search.effort(), par.stats.search.effort());
    }
}
