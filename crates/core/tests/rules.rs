//! Rule-level integration tests for the synthesis engine: the S-Eff wrap
//! shape (Fig. 5), narrowing-based pruning (§3.1), merge rules (Fig. 6 /
//! Fig. 13) through `merge_program`, and guidance-mode behaviours.

use rbsyn_core::engine::Scheduler;
use rbsyn_core::generate::{SearchStats, SpecOracle};
use rbsyn_core::merge::{merge_program, MergeCtx, Tuple};
use rbsyn_core::{generate, Guidance, Options, SynthError};
use rbsyn_interp::{run_spec, InterpEnv, SetupStep, Spec};
use rbsyn_lang::builder::*;
use rbsyn_lang::{Program, Ty, Value};
use rbsyn_stdlib::EnvBuilder;
use std::sync::Arc;
use std::time::Duration;

fn blog() -> (InterpEnv, rbsyn_lang::ClassId) {
    let mut b = EnvBuilder::with_stdlib();
    let post = b.define_model(
        "Post",
        &[("author", Ty::Str), ("title", Ty::Str), ("slug", Ty::Str)],
    );
    b.add_const(Value::Class(post));
    b.add_const(Value::Bool(true));
    b.add_const(Value::Bool(false));
    (b.finish(), post)
}

fn write_title_spec(env: &InterpEnv, post: rbsyn_lang::ClassId) -> Spec {
    let _ = env;
    Spec::new(
        "title becomes New",
        vec![
            SetupStep::Bind(
                "p".into(),
                call(
                    cls(post),
                    "create",
                    [hash([("title", str_("Old")), ("slug", str_("s"))])],
                ),
            ),
            SetupStep::CallTarget {
                bind: "xr".into(),
                args: vec![],
            },
        ],
        vec![call(call(var("p"), "title", []), "==", [str_("New")])],
    )
}

/// Like [`write_title_spec`], but the target call passes the new title as
/// an argument — `m("New")` — so the synthesized method can actually
/// construct the write.
///
/// (Root cause of the former release-only failures: the old tests searched
/// with *no* parameters and no `"New"` in Σ, so no candidate could ever
/// produce the demanded title — the search was correctly exhausting its
/// 2M-pop budget on an unsatisfiable problem, which only the release
/// profile lived long enough to finish. The paper's update benchmarks all
/// pass the written value as a method argument.)
fn write_title_arg_spec(env: &InterpEnv, post: rbsyn_lang::ClassId) -> Spec {
    let _ = env;
    Spec::new(
        "title becomes the argument",
        vec![
            SetupStep::Bind(
                "p".into(),
                call(
                    cls(post),
                    "create",
                    [hash([("title", str_("Old")), ("slug", str_("s"))])],
                ),
            ),
            SetupStep::CallTarget {
                bind: "xr".into(),
                args: vec![str_("New")],
            },
        ],
        vec![
            // The returned value must be the written post itself (not just
            // any expression that happens to smuggle the write into a
            // sub-position), which forces the let-wrapped S-Eff shape.
            call(call(var("xr"), "slug", []), "==", [str_("s")]),
            call(call(var("p"), "title", []), "==", [str_("New")]),
        ],
    )
}

#[test]
fn s_eff_wrap_produces_let_effhole_hole_shape() {
    // Synthesize against a spec whose only fix is a title write; the
    // solution must have come through the S-Eff wrap, whose rendered form
    // is `tN = …; ◇-filled write; hole-filled tail`.
    let (env, post) = blog();
    let spec = write_title_arg_spec(&env, post);
    let mut stats = SearchStats::default();
    let opts = Options::default();
    let sol = generate(
        &env,
        "m",
        &[("arg0".into(), Ty::Str)],
        &Ty::Instance(post),
        &SpecOracle::new(&env, &spec),
        &opts,
        opts.max_size,
        &Scheduler::sequential(),
        &mut stats,
    )
    .expect("a title-writing candidate exists");
    let s = sol.compact();
    assert!(s.contains("title="), "wrap must introduce the writer: {s}");
    assert!(s.contains("t0"), "the S-Eff let-binding must appear: {s}");
    // And the solution re-validates.
    let p = Program::new("m", ["arg0"], sol);
    assert!(run_spec(&env, &spec, &p).passed());
}

#[test]
fn type_guidance_prunes_untypable_candidates() {
    // With type guidance the engine must never *test* an ill-typed
    // candidate; we can observe this indirectly: an unsatisfiable Bool
    // spec explores strictly fewer candidates under guidance than without.
    let (env, _) = blog();
    let spec = Spec::new(
        "unsatisfiable",
        vec![SetupStep::CallTarget {
            bind: "xr".into(),
            args: vec![],
        }],
        vec![false_()],
    );
    let run = |guidance: Guidance| {
        let mut opts = Options::with_guidance(guidance);
        opts.max_expansions = 300;
        let mut stats = SearchStats::default();
        let r = generate(
            &env,
            "m",
            &[],
            &Ty::Bool,
            &SpecOracle::new(&env, &spec),
            &opts,
            10,
            &Scheduler::sequential(),
            &mut stats,
        );
        assert!(matches!(r, Err(SynthError::NoSolution { .. })));
        stats.tested
    };
    let typed = run(Guidance::both());
    let untyped = run(Guidance::effects_only());
    assert!(
        typed < untyped,
        "type guidance must shrink the tested set: {typed} vs {untyped}"
    );
}

#[test]
fn merge_rule_1_collapses_identical_solutions() {
    let (env, post) = blog();
    let spec_a = write_title_spec(&env, post);
    let spec_b = write_title_spec(&env, post);
    let specs = vec![spec_a, spec_b];
    let solution = let_(
        "t0",
        call(cls(post), "find_by", [hash([("slug", str_("s"))])]),
        seq([call(var("t0"), "title=", [str_("New")]), true_()]),
    );
    let tuples = vec![
        Tuple {
            expr: solution.clone(),
            cond: true_(),
            specs: vec![0],
        },
        Tuple {
            expr: solution,
            cond: true_(),
            specs: vec![1],
        },
    ];
    let opts = Options::default();
    let mut stats = SearchStats::default();
    let env = Arc::new(env);
    let spec_oracles: Vec<Arc<SpecOracle>> = specs
        .iter()
        .map(|s| Arc::new(SpecOracle::new(&env, s)))
        .collect();
    let sched = Scheduler::sequential();
    let mut ctx = MergeCtx {
        env: &env,
        name: "m".into(),
        params: &[],
        specs: &specs,
        spec_oracles: &spec_oracles,
        opts: &opts,
        sched: &sched,
        stats: &mut stats,
        guard_time: Duration::ZERO,
        known_conds: Vec::new(),
        guards: rbsyn_core::guards::GuardPool::new(),
    };
    let program = merge_program(&mut ctx, tuples).expect("identical tuples merge");
    // Rule 1: one branch, no conditional at all.
    assert_eq!(
        rbsyn_lang::metrics::program_paths(&program),
        1,
        "\n{program}"
    );
    assert!(!program.body.compact().starts_with("if "), "\n{program}");
}

#[test]
#[cfg_attr(debug_assertions, ignore = "guard search; release-profile test")]
fn merge_strengthens_trivial_conditions_with_rule_3() {
    // Two specs with different DB setups and contradictory expectations
    // force Rule 3 to synthesize a distinguishing query.
    let (env, post) = blog();
    let seeded = Spec::new(
        "seeded: return true",
        vec![
            SetupStep::Exec(call(cls(post), "create", [hash([("slug", str_("s"))])])),
            SetupStep::CallTarget {
                bind: "xr".into(),
                args: vec![],
            },
        ],
        vec![call(var("xr"), "==", [true_()])],
    );
    let empty = Spec::new(
        "empty: return false",
        vec![SetupStep::CallTarget {
            bind: "xr".into(),
            args: vec![],
        }],
        vec![call(var("xr"), "==", [false_()])],
    );
    let specs = vec![seeded, empty];
    let tuples = vec![
        Tuple {
            expr: true_(),
            cond: true_(),
            specs: vec![0],
        },
        Tuple {
            expr: false_(),
            cond: true_(),
            specs: vec![1],
        },
    ];
    let opts = Options::default();
    let mut stats = SearchStats::default();
    let env = Arc::new(env);
    let spec_oracles: Vec<Arc<SpecOracle>> = specs
        .iter()
        .map(|s| Arc::new(SpecOracle::new(&env, s)))
        .collect();
    let sched = Scheduler::sequential();
    let mut ctx = MergeCtx {
        env: &env,
        name: "m".into(),
        params: &[],
        specs: &specs,
        spec_oracles: &spec_oracles,
        opts: &opts,
        sched: &sched,
        stats: &mut stats,
        guard_time: Duration::ZERO,
        known_conds: Vec::new(),
        guards: rbsyn_core::guards::GuardPool::new(),
    };
    let program = merge_program(&mut ctx, tuples).expect("rule 3 + rules 4/5 merge");
    // Rules 4/5 then fold `if b then true else false` into `b` itself:
    // single-path, single-line boolean program.
    assert_eq!(
        rbsyn_lang::metrics::program_paths(&program),
        1,
        "\n{program}"
    );
    let (env2, _) = {
        let mut b = EnvBuilder::with_stdlib();
        let p2 = b.define_model(
            "Post",
            &[("author", Ty::Str), ("title", Ty::Str), ("slug", Ty::Str)],
        );
        (b.finish(), p2)
    };
    for s in &specs {
        assert!(
            run_spec(&env2, s, &program).passed(),
            "{:?}\n{program}",
            s.name
        );
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "brute-force mode; release-profile test")]
fn effect_guidance_off_still_wraps_but_unconstrained() {
    // T-only mode must still be able to synthesize writes (via ◇:*), just
    // more slowly — with the new title passed as an argument (see
    // `write_title_arg_spec`) the problem is satisfiable and small enough
    // for brute force.
    let (env, post) = blog();
    let spec = write_title_arg_spec(&env, post);
    let mut opts = Options::with_guidance(Guidance::types_only());
    opts.max_expansions = 2_000_000;
    let mut stats = SearchStats::default();
    let sol = generate(
        &env,
        "m",
        &[("arg0".into(), Ty::Str)],
        &Ty::Instance(post),
        &SpecOracle::new(&env, &spec),
        &opts,
        opts.max_size,
        &Scheduler::sequential(),
        &mut stats,
    )
    .expect("small enough for brute force");
    assert!(sol.compact().contains("title="));
}
