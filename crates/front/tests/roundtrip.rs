//! Round-trip properties of the pretty-printer: pretty-print a parsed (and
//! lowered) file, reparse it, and the result must lower identically.
//!
//! Two flavours:
//! * the whole `benchmarks/` corpus (real files, every construct the suite
//!   uses);
//! * proptest-generated random spec files (adversarial shapes: operator
//!   nesting that needs parentheses, writer sugar, empty arg lists, …).

use proptest::prelude::*;
use rbsyn_front::ast::*;
use rbsyn_front::span::Span;
use rbsyn_front::{lower, parse, to_rbspec};
use std::path::Path;

/// Lowers and fingerprints a file: problem AST + environment fingerprint.
fn lowered_signature(file: &SpecFile) -> (String, u128) {
    let l = lower(file).expect("must lower");
    (format!("{:?}", l.problem), l.env.table.fingerprint())
}

#[test]
fn corpus_files_round_trip() {
    let dir = Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../../benchmarks"));
    let mut checked = 0;
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .expect("corpus dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|e| e == "rbspec"))
        .collect();
    paths.sort();
    for path in paths {
        let src = std::fs::read_to_string(&path).unwrap();
        let parsed = parse(&src).unwrap_or_else(|d| panic!("{}: {d}", path.display()));
        let printed = to_rbspec(&parsed);
        let reparsed = parse(&printed)
            .unwrap_or_else(|d| panic!("{}: reparse failed: {d}\n{printed}", path.display()));
        assert_eq!(
            lowered_signature(&parsed),
            lowered_signature(&reparsed),
            "{}: pretty-print → reparse changed the lowering",
            path.display()
        );
        // The printer is a fixpoint: printing the reparse is identical.
        assert_eq!(
            printed,
            to_rbspec(&reparsed),
            "{}: printer is not a fixpoint",
            path.display()
        );
        checked += 1;
    }
    assert!(checked >= 19, "only {checked} corpus files checked");
}

// ── random spec files ───────────────────────────────────────────────────

fn sp() -> Span {
    Span::default()
}

fn node(kind: ExprKind) -> ExprNode {
    ExprNode { kind, span: sp() }
}

fn arb_lit() -> impl Strategy<Value = Lit> {
    prop_oneof![
        Just(Lit::Nil),
        any::<bool>().prop_map(Lit::Bool),
        any::<i32>().prop_map(|i| Lit::Int(i as i64)),
        "[ -~]{0,8}".prop_map(Lit::Str),
        "[a-z][a-z0-9_]{0,5}".prop_map(Lit::Sym),
    ]
}

/// Random expressions over a fixed scope: the model `Post`, the variables
/// `updated` and `x`, and literals. Covers every operator the printer must
/// re-parenthesize.
fn arb_expr() -> impl Strategy<Value = ExprNode> {
    let leaf = prop_oneof![
        arb_lit().prop_map(|l| node(ExprKind::Lit(l))),
        Just(node(ExprKind::Var("updated".into()))),
        Just(node(ExprKind::Var("x".into()))),
        Just(node(ExprKind::ClassRef("Post".into()))),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            // recv.m(args…) — plain names plus the ?/! suffix forms and the
            // infix-rendered `==`/`[]`/writer forms.
            (
                inner.clone(),
                prop_oneof![
                    "[a-z][a-z0-9_]{0,5}".boxed(),
                    "[a-z][a-z0-9_]{0,4}[?!]".boxed(),
                    Just("==".to_owned()).boxed(),
                    Just("[]".to_owned()).boxed(),
                    Just("title=".to_owned()).boxed(),
                ],
                prop::collection::vec(inner.clone(), 0..3)
            )
                .prop_map(|(r, m, mut a)| {
                    // `==`, `[]` and writers are unary in the surface
                    // syntax; pad/trim the argument list to fit.
                    if m == "==" || m == "[]" || m.ends_with('=') {
                        a.truncate(1);
                        if a.is_empty() {
                            a.push(node(ExprKind::Lit(Lit::Int(0))));
                        }
                    }
                    node(ExprKind::Call {
                        recv: Box::new(r),
                        meth: m,
                        args: a,
                    })
                }),
            prop::collection::vec(("[a-z][a-z0-9_]{0,4}", inner.clone()), 0..3).prop_map(
                |entries| {
                    let mut seen = std::collections::HashSet::new();
                    node(ExprKind::HashLit(
                        entries
                            .into_iter()
                            .filter(|(k, _)| seen.insert(k.clone()))
                            .map(|(k, v)| (k, sp(), v))
                            .collect(),
                    ))
                }
            ),
            inner.clone().prop_map(|e| node(ExprKind::Not(Box::new(e)))),
            (inner.clone(), inner).prop_map(|(a, b)| node(ExprKind::Or(Box::new(a), Box::new(b)))),
        ]
    })
}

/// A random (valid) spec file over one `Post` model: a bind of `x`, the
/// target call, and a couple of assertions built from random expressions.
fn arb_file() -> impl Strategy<Value = SpecFile> {
    (
        arb_expr(),
        prop::collection::vec(arb_expr(), 1..4),
        prop::collection::vec(arb_expr(), 0..3),
    )
        .prop_map(|(bind_value, asserts, target_args)| SpecFile {
            meta: None,
            decls: vec![Decl::Model(ModelDecl {
                name: "Post".into(),
                name_span: sp(),
                writers: true,
                fields: vec![FieldDecl {
                    name: "title".into(),
                    name_span: sp(),
                    ty: TypeExpr {
                        kind: TypeKind::Named("Str".into()),
                        span: sp(),
                    },
                }],
            })],
            options: vec![],
            define: Define {
                name: "m".into(),
                name_span: sp(),
                params: vec![ParamDecl {
                    name: "arg0".into(),
                    name_span: sp(),
                    ty: TypeExpr {
                        kind: TypeKind::Named("Str".into()),
                        span: sp(),
                    },
                }],
                ret: TypeExpr {
                    kind: TypeKind::Named("Bool".into()),
                    span: sp(),
                },
                consts: vec![ConstItem {
                    kind: ConstKind::Base,
                    span: sp(),
                }],
                specs: vec![SpecBlock {
                    title: "generated".into(),
                    title_span: sp(),
                    stmts: {
                        // `x` must be bound before any expression uses it;
                        // the bind's own value must not reference `x` or
                        // `updated`.
                        let mut stmts = vec![Stmt::Bind {
                            name: "x".into(),
                            name_span: sp(),
                            value: strip_vars(bind_value),
                        }];
                        stmts.push(Stmt::Target {
                            bind: "updated".into(),
                            args: target_args.into_iter().map(strip_updated).collect(),
                            span: sp(),
                        });
                        stmts.extend(asserts.into_iter().map(|e| Stmt::Assert(e, sp())));
                        stmts
                    },
                    span: sp(),
                }],
                span: sp(),
            },
        })
}

/// Replaces variable references with a literal (for positions where the
/// variable is not yet in scope).
fn strip_vars(e: ExprNode) -> ExprNode {
    map_expr(e, &|kind| match kind {
        ExprKind::Var(_) => ExprKind::Lit(Lit::Int(1)),
        other => other,
    })
}

/// Replaces `updated` (bound only after the target call) with `x`.
fn strip_updated(e: ExprNode) -> ExprNode {
    map_expr(e, &|kind| match kind {
        ExprKind::Var(v) if v == "updated" => ExprKind::Var("x".into()),
        other => other,
    })
}

fn map_expr(e: ExprNode, f: &dyn Fn(ExprKind) -> ExprKind) -> ExprNode {
    let kind = match e.kind {
        ExprKind::Call { recv, meth, args } => ExprKind::Call {
            recv: Box::new(map_expr(*recv, f)),
            meth,
            args: args.into_iter().map(|a| map_expr(a, f)).collect(),
        },
        ExprKind::HashLit(entries) => ExprKind::HashLit(
            entries
                .into_iter()
                .map(|(k, s, v)| (k, s, map_expr(v, f)))
                .collect(),
        ),
        ExprKind::Not(inner) => ExprKind::Not(Box::new(map_expr(*inner, f))),
        ExprKind::Or(a, b) => ExprKind::Or(Box::new(map_expr(*a, f)), Box::new(map_expr(*b, f))),
        other => other,
    };
    map_leaf(node_with(kind, e.span), f)
}

fn node_with(kind: ExprKind, span: Span) -> ExprNode {
    ExprNode { kind, span }
}

fn map_leaf(e: ExprNode, f: &dyn Fn(ExprKind) -> ExprKind) -> ExprNode {
    match &e.kind {
        ExprKind::Var(_) | ExprKind::Lit(_) | ExprKind::ClassRef(_) => ExprNode {
            kind: f(e.kind.clone()),
            span: e.span,
        },
        _ => e,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn generated_files_round_trip(file in arb_file()) {
        let printed = to_rbspec(&file);
        let reparsed = match parse(&printed) {
            Ok(f) => f,
            Err(d) => panic!("reparse failed: {d}\n--- printed ---\n{printed}"),
        };
        // The generated AST lowers (all names resolve by construction)…
        let sig = lowered_signature(&file);
        // …and the reparse of its pretty-print lowers to the same problem.
        prop_assert_eq!(&sig, &lowered_signature(&reparsed),
            "pretty-print → reparse changed the lowering:\n{}", printed);
        // Printer fixpoint.
        prop_assert_eq!(printed.clone(), to_rbspec(&reparsed), "printer not a fixpoint");
    }
}
