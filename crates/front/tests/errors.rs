//! Span accuracy: every parse/lower diagnostic must point at the exact
//! line and column of the offending token, with the right message.

use rbsyn_front::span::line_col;
use rbsyn_front::{lower, parse, Diagnostic};

/// Parses (and, if parsing succeeds, lowers) `src`, returning the
/// diagnostic it must produce.
fn expect_error(src: &str) -> (Diagnostic, &str) {
    match parse(src) {
        Err(d) => (d, src),
        Ok(file) => match lower(&file) {
            Err(d) => (d, src),
            Ok(_) => panic!("expected a diagnostic for:\n{src}"),
        },
    }
}

/// Asserts `src` fails with `msg_part` at `line:col`.
fn check(src: &str, msg_part: &str, line: usize, col: usize) {
    let (d, src) = expect_error(src);
    assert!(
        d.message.contains(msg_part),
        "expected message containing {msg_part:?}, got {:?}",
        d.message
    );
    let at = line_col(src, d.span.start);
    assert_eq!(at, (line, col), "span of {:?} in:\n{src}", d.message);
}

/// A minimal valid tail so environment-level errors are reached.
const TAIL: &str = "define m() -> Bool do
  spec \"s\" do
    updated = target()
    assert updated
  end
end
";

#[test]
fn bad_type_in_model_field() {
    let src = format!("model User do\n  name: Strr\nend\n{TAIL}");
    check(&src, "unknown type `Strr`", 2, 9);
}

#[test]
fn bad_type_in_param() {
    let src = "define m(arg0: Wat) -> Bool do\n  spec \"s\" do\n    updated = target()\n    assert updated\n  end\nend\n";
    check(src, "unknown type `Wat`", 1, 16);
}

#[test]
fn duplicate_model() {
    let src = format!("model User do\n  name: Str\nend\nmodel User do\n  age: Int\nend\n{TAIL}");
    check(&src, "duplicate class `User`", 4, 7);
}

#[test]
fn model_colliding_with_a_stdlib_class() {
    let src = format!("model String do\n  x: Str\nend\n{TAIL}");
    check(&src, "duplicate class `String`", 1, 7);
}

#[test]
fn duplicate_field() {
    let src = format!("model User do\n  name: Str\n  name: Str\nend\n{TAIL}");
    check(&src, "duplicate field `name`", 3, 3);
}

#[test]
fn explicit_id_column_is_rejected() {
    let src = format!("model User do\n  id: Int\nend\n{TAIL}");
    check(&src, "`id` column is implicit", 2, 3);
}

#[test]
fn unknown_effect_region() {
    let src = format!(
        "model User do\n  name: Str\nend\n\
         def User.touch() -> Bool writes(User.nmae) do\n  true\nend\n{TAIL}"
    );
    check(&src, "`User` has no region `nmae`", 4, 33);
}

#[test]
fn unknown_effect_class() {
    let src = format!("def Ghost.x() -> Bool reads(Ghost.a) do\n  true\nend\n{TAIL}");
    // The owner class is resolved first, so the error lands on `Ghost`.
    check(&src, "unknown class `Ghost`", 1, 5);
}

#[test]
fn unknown_effect_class_in_path() {
    let src = format!(
        "model User do\n  name: Str\nend\n\
         def User.x() -> Bool reads(Ghost.a) do\n  true\nend\n{TAIL}"
    );
    check(&src, "unknown class `Ghost` in effect path", 4, 28);
}

#[test]
fn unknown_global_field_in_effect_path() {
    let src = format!(
        "global Settings do\n  notice: Str\nend\n\
         def Settings.x() -> Bool reads(Settings.notic) do\n  true\nend\n{TAIL}"
    );
    check(&src, "`Settings` has no region `notic`", 4, 32);
}

#[test]
fn unknown_class_in_expression() {
    let src = "define m() -> Bool do\n  spec \"s\" do\n    Ghost.create({})\n    updated = target()\n    assert updated\n  end\nend\n";
    check(src, "unknown class `Ghost`", 3, 5);
}

#[test]
fn unknown_variable_in_assert() {
    let src = "define m() -> Bool do\n  spec \"s\" do\n    updated = target()\n    assert missing\n  end\nend\n";
    check(src, "unknown variable `missing`", 4, 12);
}

#[test]
fn assert_before_target() {
    let src = "define m() -> Bool do\n  spec \"s\" do\n    assert true\n    updated = target()\n  end\nend\n";
    check(src, "assertions must come after the target call", 3, 5);
}

#[test]
fn two_target_calls() {
    let src = "define m() -> Bool do\n  spec \"s\" do\n    updated = target()\n    again = target()\n    assert updated\n  end\nend\n";
    check(src, "only once", 4, 5);
}

#[test]
fn setup_after_asserts() {
    let src = "define m() -> Bool do\n  spec \"s\" do\n    updated = target()\n    assert updated\n    x = true\n  end\nend\n";
    check(src, "setup steps cannot follow assertions", 5, 5);
}

#[test]
fn spec_without_target() {
    let src = "define m() -> Bool do\n  spec \"no call\" do\n    x = true\n  end\nend\n";
    check(src, "never calls the target method", 2, 3);
}

#[test]
fn target_inside_expression() {
    let src =
        "define m() -> Bool do\n  spec \"s\" do\n    x = target().foo\n    assert x\n  end\nend\n";
    let (d, _) = expect_error(src);
    assert!(d.message.contains("cannot be part of a larger expression"));
}

#[test]
fn unknown_option_key() {
    let src = format!("options do\n  max_siez: 44\nend\n{TAIL}");
    check(&src, "unknown option `max_siez`", 2, 3);
}

#[test]
fn bad_strategy_name() {
    let src = format!("options do\n  strategy: speedy\nend\n{TAIL}");
    check(&src, "unknown strategy `speedy`", 2, 13);
}

#[test]
fn unknown_group() {
    let src = format!("benchmark do\n  group: Reddit\nend\n{TAIL}");
    check(&src, "unknown group `Reddit`", 2, 10);
}

#[test]
fn duplicate_hash_type_key() {
    let src = "define m(arg0: {a: Str, a: Int}) -> Bool do\n  spec \"s\" do\n    updated = target()\n    assert updated\n  end\nend\n";
    check(src, "duplicate hash-type key `a`", 1, 25);
}

#[test]
fn duplicate_parameter() {
    let src = "define m(arg0: Str, arg0: Int) -> Bool do\n  spec \"s\" do\n    updated = target()\n    assert updated\n  end\nend\n";
    check(src, "duplicate parameter `arg0`", 1, 21);
}

#[test]
fn define_with_no_specs() {
    let src = "define m() -> Bool do\nend\n";
    check(src, "has no specs", 1, 1);
}

#[test]
fn missing_define_block() {
    let src = "model User do\n  name: Str\nend\n";
    check(src, "no `define` block", 4, 1);
}

#[test]
fn duplicate_define_block() {
    let src = "define m() -> Bool do\n  spec \"s\" do\n    updated = target()\n    assert updated\n  end\nend\ndefine n() -> Bool do\n  spec \"s\" do\n    updated = target()\n    assert updated\n  end\nend\n";
    check(src, "duplicate `define`", 7, 1);
}

#[test]
fn unterminated_string() {
    let src = "define m() -> Bool do\n  spec \"oops\n";
    let (d, _) = expect_error(src);
    assert!(d.message.contains("unterminated string"));
}

#[test]
fn stray_character() {
    check(
        "model User do\n  name: Str\nend\n$\n",
        "unexpected character",
        4,
        1,
    );
}

#[test]
fn empty_def_body() {
    let src = format!("model User do\n  name: Str\nend\ndef User.x() -> Bool do\nend\n{TAIL}");
    let (d, _) = expect_error(&src);
    assert!(d.message.contains("empty body"), "{}", d.message);
}

#[test]
fn def_body_ending_in_a_binding() {
    let src = format!(
        "model User do\n  name: Str\nend\ndef User.x() -> Bool do\n  y = true\nend\n{TAIL}"
    );
    let (d, _) = expect_error(&src);
    assert!(d.message.contains("must be an expression"), "{}", d.message);
}

#[test]
fn rendered_diagnostics_carry_excerpt_and_caret() {
    let src = format!("model User do\n  name: Strr\nend\n{TAIL}");
    let (d, src) = expect_error(&src);
    let rendered = d.render("bad.rbspec", src);
    assert!(
        rendered.contains("bad.rbspec:2:9: error: unknown type `Strr`"),
        "{rendered}"
    );
    assert!(rendered.contains("  name: Strr"), "{rendered}");
    assert!(rendered.contains("^^^^"), "{rendered}");
}
