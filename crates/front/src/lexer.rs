//! Hand-written lexer for `.rbspec` files.
//!
//! Newlines are insignificant (the statement grammar is unambiguous without
//! them); `#` starts a comment running to end of line. Identifiers may end
//! in `?` or `!` (Ruby method-name convention), and identifiers starting
//! with an uppercase letter are *constants* (class names), matching Ruby's
//! lexical rule.

use crate::span::{Diagnostic, Span};

/// One lexical token.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Tok {
    /// Lowercase-led identifier or keyword (`model`, `spec`, `title`,
    /// `exists?`, `use!`).
    Ident(String),
    /// Uppercase-led identifier: a class constant (`User`, `Str`,
    /// `SiteSetting`).
    Const(String),
    /// Integer literal (optionally negative).
    Int(i64),
    /// Double-quoted string literal, escapes resolved.
    Str(String),
    /// Symbol literal `:name`.
    Sym(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `,`
    Comma,
    /// `:` (hash keys, field types; *not* part of symbol literals, which
    /// the lexer folds into [`Tok::Sym`])
    Colon,
    /// `?` (optional-field marker in finite hash types)
    Question,
    /// `=`
    Eq,
    /// `==`
    EqEq,
    /// `->`
    Arrow,
    /// `.`
    Dot,
    /// `!`
    Bang,
    /// `||`
    OrOr,
    /// `*` (effect paths `User.*`)
    Star,
    /// End of input.
    Eof,
}

impl Tok {
    /// Human-readable token name for error messages.
    pub fn describe(&self) -> String {
        match self {
            Tok::Ident(s) => format!("`{s}`"),
            Tok::Const(s) => format!("`{s}`"),
            Tok::Int(i) => format!("`{i}`"),
            Tok::Str(s) => format!("{s:?}"),
            Tok::Sym(s) => format!("`:{s}`"),
            Tok::LParen => "`(`".into(),
            Tok::RParen => "`)`".into(),
            Tok::LBrace => "`{`".into(),
            Tok::RBrace => "`}`".into(),
            Tok::LBracket => "`[`".into(),
            Tok::RBracket => "`]`".into(),
            Tok::Lt => "`<`".into(),
            Tok::Gt => "`>`".into(),
            Tok::Comma => "`,`".into(),
            Tok::Colon => "`:`".into(),
            Tok::Question => "`?`".into(),
            Tok::Eq => "`=`".into(),
            Tok::EqEq => "`==`".into(),
            Tok::Arrow => "`->`".into(),
            Tok::Dot => "`.`".into(),
            Tok::Bang => "`!`".into(),
            Tok::OrOr => "`||`".into(),
            Tok::Star => "`*`".into(),
            Tok::Eof => "end of file".into(),
        }
    }
}

/// A token plus its source span.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// Where it came from.
    pub span: Span,
}

/// Lexes a whole source string.
///
/// # Errors
///
/// Returns a [`Diagnostic`] on unterminated strings, stray characters and
/// malformed escapes.
pub fn lex(source: &str) -> Result<Vec<Token>, Diagnostic> {
    let bytes = source.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let start = i;
        // Decode a full character: a multi-byte byte cast to `char` would
        // mis-decode and build spans that split UTF-8 boundaries.
        let c = source[i..].chars().next().expect("in-bounds char");
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                i += 1;
            }
            '#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => push(&mut toks, Tok::LParen, start, &mut i),
            ')' => push(&mut toks, Tok::RParen, start, &mut i),
            '{' => push(&mut toks, Tok::LBrace, start, &mut i),
            '}' => push(&mut toks, Tok::RBrace, start, &mut i),
            '[' => push(&mut toks, Tok::LBracket, start, &mut i),
            ']' => push(&mut toks, Tok::RBracket, start, &mut i),
            '<' => push(&mut toks, Tok::Lt, start, &mut i),
            '>' => push(&mut toks, Tok::Gt, start, &mut i),
            ',' => push(&mut toks, Tok::Comma, start, &mut i),
            '?' => push(&mut toks, Tok::Question, start, &mut i),
            '.' => push(&mut toks, Tok::Dot, start, &mut i),
            '*' => push(&mut toks, Tok::Star, start, &mut i),
            '!' => push(&mut toks, Tok::Bang, start, &mut i),
            '=' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    toks.push(Token {
                        tok: Tok::EqEq,
                        span: Span::new(start, i),
                    });
                } else {
                    push(&mut toks, Tok::Eq, start, &mut i);
                }
            }
            '|' => {
                if bytes.get(i + 1) == Some(&b'|') {
                    i += 2;
                    toks.push(Token {
                        tok: Tok::OrOr,
                        span: Span::new(start, i),
                    });
                } else {
                    return Err(Diagnostic::new(
                        "stray `|` (did you mean `||`?)",
                        Span::new(start, start + 1),
                    ));
                }
            }
            '-' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    i += 2;
                    toks.push(Token {
                        tok: Tok::Arrow,
                        span: Span::new(start, i),
                    });
                } else if bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit()) {
                    i += 1;
                    let n = lex_int(source, &mut i, start, true)?;
                    toks.push(Token {
                        tok: Tok::Int(n),
                        span: Span::new(start, i),
                    });
                } else {
                    return Err(Diagnostic::new(
                        "stray `-` (only `->` and negative integer literals use it)",
                        Span::new(start, start + 1),
                    ));
                }
            }
            ':' => {
                // `:name` is a symbol literal; a bare `:` is the key/type
                // separator.
                if bytes
                    .get(i + 1)
                    .is_some_and(|b| b.is_ascii_alphabetic() || *b == b'_')
                {
                    i += 1;
                    let word = lex_word(source, &mut i);
                    toks.push(Token {
                        tok: Tok::Sym(word),
                        span: Span::new(start, i),
                    });
                } else {
                    push(&mut toks, Tok::Colon, start, &mut i);
                }
            }
            '"' => {
                i += 1;
                let mut s = String::new();
                loop {
                    let Some(&b) = bytes.get(i) else {
                        return Err(Diagnostic::new(
                            "unterminated string literal",
                            Span::new(start, source.len()),
                        ));
                    };
                    match b {
                        b'"' => {
                            i += 1;
                            break;
                        }
                        b'\\' => {
                            let esc = bytes.get(i + 1).copied();
                            match esc {
                                Some(b'"') => s.push('"'),
                                Some(b'\\') => s.push('\\'),
                                Some(b'n') => s.push('\n'),
                                Some(b't') => s.push('\t'),
                                _ => {
                                    return Err(Diagnostic::new(
                                        "unknown escape (supported: \\\" \\\\ \\n \\t)",
                                        Span::new(i, i + 2),
                                    ))
                                }
                            }
                            i += 2;
                        }
                        b'\n' => {
                            return Err(Diagnostic::new(
                                "unterminated string literal (newline before closing quote)",
                                Span::new(start, i),
                            ))
                        }
                        _ => {
                            // Advance one whole character (strings may hold
                            // multi-byte text, e.g. the `…` in benchmark
                            // names).
                            let ch = source[i..].chars().next().expect("in-bounds char");
                            s.push(ch);
                            i += ch.len_utf8();
                        }
                    }
                }
                toks.push(Token {
                    tok: Tok::Str(s),
                    span: Span::new(start, i),
                });
            }
            c if c.is_ascii_digit() => {
                let n = lex_int(source, &mut i, start, false)?;
                toks.push(Token {
                    tok: Tok::Int(n),
                    span: Span::new(start, i),
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let word = lex_word(source, &mut i);
                let tok = if c.is_ascii_uppercase() {
                    Tok::Const(word)
                } else {
                    Tok::Ident(word)
                };
                toks.push(Token {
                    tok,
                    span: Span::new(start, i),
                });
            }
            other => {
                return Err(Diagnostic::new(
                    format!("unexpected character {other:?}"),
                    Span::new(start, start + other.len_utf8()),
                ));
            }
        }
    }
    toks.push(Token {
        tok: Tok::Eof,
        span: Span::new(source.len(), source.len()),
    });
    Ok(toks)
}

fn push(toks: &mut Vec<Token>, tok: Tok, start: usize, i: &mut usize) {
    *i += 1;
    toks.push(Token {
        tok,
        span: Span::new(start, *i),
    });
}

/// Lexes `[a-zA-Z0-9_]*[?!=]?` starting at `*i` (the caller has checked the
/// first character). The optional trailing `?`/`!` follows Ruby method
/// naming; a trailing `=` is *not* consumed (writer calls are parsed as
/// assignment sugar instead).
fn lex_word(source: &str, i: &mut usize) -> String {
    let bytes = source.as_bytes();
    let start = *i;
    while *i < bytes.len() && (bytes[*i].is_ascii_alphanumeric() || bytes[*i] == b'_') {
        *i += 1;
    }
    if *i < bytes.len() && (bytes[*i] == b'?' || bytes[*i] == b'!') {
        *i += 1;
    }
    source[start..*i].to_owned()
}

fn lex_int(source: &str, i: &mut usize, start: usize, negative: bool) -> Result<i64, Diagnostic> {
    let bytes = source.as_bytes();
    let digits_start = *i;
    while *i < bytes.len() && (bytes[*i].is_ascii_digit() || bytes[*i] == b'_') {
        *i += 1;
    }
    let text: String = source[digits_start..*i]
        .chars()
        .filter(|c| *c != '_')
        .collect();
    let n: i64 = text
        .parse()
        .map_err(|_| Diagnostic::new("integer literal out of range", Span::new(start, *i)))?;
    Ok(if negative { -n } else { n })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn words_and_constants() {
        assert_eq!(
            kinds("model User exists? use! nil"),
            vec![
                Tok::Ident("model".into()),
                Tok::Const("User".into()),
                Tok::Ident("exists?".into()),
                Tok::Ident("use!".into()),
                Tok::Ident("nil".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn symbols_vs_colons() {
        assert_eq!(
            kinds("title: :title"),
            vec![
                Tok::Ident("title".into()),
                Tok::Colon,
                Tok::Sym("title".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn strings_with_escapes_and_unicode() {
        assert_eq!(
            kinds(r#""a\"b" "User#clear_glob…""#),
            vec![
                Tok::Str("a\"b".into()),
                Tok::Str("User#clear_glob…".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn stray_multibyte_characters_error_on_char_boundaries() {
        // `…` is 3 bytes; the error span must cover the whole character,
        // not split it (a split span makes diagnostic rendering panic).
        let err = lex("ab …").unwrap_err();
        assert_eq!(err.span, Span::new(3, 6));
        assert!(
            err.message.contains("unexpected character '…'"),
            "{}",
            err.message
        );
        // Rendering the diagnostic must not panic on the boundary.
        let rendered = err.render("x.rbspec", "ab …");
        assert!(rendered.contains("^"), "{rendered}");
    }

    #[test]
    fn operators_and_numbers() {
        assert_eq!(
            kinds("-> == = || ! -5 2_000_000"),
            vec![
                Tok::Arrow,
                Tok::EqEq,
                Tok::Eq,
                Tok::OrOr,
                Tok::Bang,
                Tok::Int(-5),
                Tok::Int(2_000_000),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("a # comment == stray \" quote\nb"),
            vec![Tok::Ident("a".into()), Tok::Ident("b".into()), Tok::Eof]
        );
    }

    #[test]
    fn errors_carry_spans() {
        let err = lex("abc $").unwrap_err();
        assert_eq!(err.span, Span::new(4, 5));
        let err = lex("\"open").unwrap_err();
        assert!(err.message.contains("unterminated"));
    }
}
