//! Recursive-descent parser for `.rbspec` files.
//!
//! The grammar (see the README format reference) is newline-insensitive:
//! blocks are delimited by `do … end`, lists by commas (optional between
//! block entries), and statements are self-delimiting — every statement
//! starts with `assert`, a binding `x =`, or an expression head, none of
//! which can continue the previous statement.

use crate::ast::*;
use crate::lexer::{lex, Tok, Token};
use crate::span::{Diagnostic, Span};

/// Parses a whole `.rbspec` source string.
///
/// # Errors
///
/// Returns the first lexical or syntactic error as a span-carrying
/// [`Diagnostic`].
pub fn parse(source: &str) -> Result<SpecFile, Diagnostic> {
    let toks = lex(source)?;
    Parser { toks, pos: 0 }.file()
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].tok
    }

    fn span(&self) -> Span {
        self.toks[self.pos].span
    }

    fn prev_span(&self) -> Span {
        self.toks[self.pos.saturating_sub(1)].span
    }

    fn bump(&mut self) -> Token {
        let t = self.toks[self.pos].clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, Diagnostic> {
        Err(Diagnostic::new(msg, self.span()))
    }

    fn expect(&mut self, want: &Tok, what: &str) -> Result<Span, Diagnostic> {
        if self.peek() == want {
            Ok(self.bump().span)
        } else {
            self.err(format!(
                "expected {} {what}, found {}",
                want.describe(),
                self.peek().describe()
            ))
        }
    }

    /// Consumes a keyword (an `Ident` with fixed text).
    fn keyword(&mut self, kw: &str) -> Result<Span, Diagnostic> {
        match self.peek() {
            Tok::Ident(s) if s == kw => Ok(self.bump().span),
            other => self.err(format!("expected `{kw}`, found {}", other.describe())),
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s == kw)
    }

    fn ident(&mut self, what: &str) -> Result<(String, Span), Diagnostic> {
        match self.peek().clone() {
            Tok::Ident(s) => Ok((s, self.bump().span)),
            other => self.err(format!("expected {what}, found {}", other.describe())),
        }
    }

    fn constant(&mut self, what: &str) -> Result<(String, Span), Diagnostic> {
        match self.peek().clone() {
            Tok::Const(s) => Ok((s, self.bump().span)),
            other => self.err(format!(
                "expected {what} (a capitalized name), found {}",
                other.describe()
            )),
        }
    }

    fn string(&mut self, what: &str) -> Result<(String, Span), Diagnostic> {
        match self.peek().clone() {
            Tok::Str(s) => Ok((s, self.bump().span)),
            other => self.err(format!(
                "expected a {what} string, found {}",
                other.describe()
            )),
        }
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if self.peek() == tok {
            self.bump();
            true
        } else {
            false
        }
    }

    // ── file structure ──────────────────────────────────────────────────

    fn file(&mut self) -> Result<SpecFile, Diagnostic> {
        let mut meta = None;
        let mut decls = Vec::new();
        let mut options = Vec::new();
        let mut define = None;
        loop {
            match self.peek().clone() {
                Tok::Eof => break,
                Tok::Ident(kw) => match kw.as_str() {
                    "benchmark" => {
                        if meta.is_some() {
                            return self.err("duplicate `benchmark` block");
                        }
                        meta = Some(self.benchmark_block()?);
                    }
                    "model" => decls.push(Decl::Model(self.model_decl()?)),
                    "global" => decls.push(Decl::Global(self.global_decl()?)),
                    "def" => decls.push(Decl::Def(self.method_def()?)),
                    "options" => {
                        if !options.is_empty() {
                            return self.err("duplicate `options` block");
                        }
                        options = self.options_block()?;
                    }
                    "define" => {
                        if define.is_some() {
                            return self
                                .err("duplicate `define` block (one synthesis problem per file)");
                        }
                        define = Some(self.define_block()?);
                    }
                    other => {
                        return self.err(format!(
                            "expected a top-level item (`benchmark`, `model`, `global`, `def`, \
                             `options` or `define`), found `{other}`"
                        ))
                    }
                },
                other => {
                    return self.err(format!(
                        "expected a top-level item, found {}",
                        other.describe()
                    ))
                }
            }
        }
        let Some(define) = define else {
            return Err(Diagnostic::new(
                "file has no `define` block (nothing to synthesize)",
                self.span(),
            ));
        };
        Ok(SpecFile {
            meta,
            decls,
            options,
            define,
        })
    }

    fn benchmark_block(&mut self) -> Result<Meta, Diagnostic> {
        let start = self.keyword("benchmark")?;
        self.keyword("do")?;
        let mut meta = Meta {
            id: None,
            group: None,
            name: None,
            orig_paths: None,
            span: start,
        };
        while !self.at_keyword("end") {
            let (key, key_span) = self.ident("a metadata key")?;
            self.expect(&Tok::Colon, "after the metadata key")?;
            match key.as_str() {
                "id" => meta.id = Some(self.string("benchmark id")?),
                "name" => meta.name = Some(self.string("benchmark name")?),
                "group" => {
                    let (g, s) = self.constant("a group")?;
                    meta.group = Some((g, s));
                }
                "orig_paths" => match self.peek().clone() {
                    Tok::Int(n) if n >= 0 => {
                        let s = self.bump().span;
                        meta.orig_paths = Some((n as usize, s));
                    }
                    other => {
                        return self.err(format!(
                            "orig_paths takes a non-negative integer, found {}",
                            other.describe()
                        ))
                    }
                },
                other => {
                    return Err(Diagnostic::new(
                        format!(
                            "unknown benchmark key `{other}` \
                             (known: id, group, name, orig_paths)"
                        ),
                        key_span,
                    ))
                }
            }
            self.eat(&Tok::Comma);
        }
        let end = self.keyword("end")?;
        meta.span = start.to(end);
        Ok(meta)
    }

    fn field_list(&mut self) -> Result<Vec<FieldDecl>, Diagnostic> {
        let mut fields = Vec::new();
        while !self.at_keyword("end") {
            let (name, name_span) = self.ident("a field name")?;
            self.expect(&Tok::Colon, "after the field name")?;
            let ty = self.type_expr()?;
            fields.push(FieldDecl {
                name,
                name_span,
                ty,
            });
            self.eat(&Tok::Comma);
        }
        self.keyword("end")?;
        Ok(fields)
    }

    fn model_decl(&mut self) -> Result<ModelDecl, Diagnostic> {
        self.keyword("model")?;
        let (name, name_span) = self.constant("a model name")?;
        let writers = !self.at_keyword("without_writers");
        if !writers {
            self.bump();
        }
        self.keyword("do")?;
        let fields = self.field_list()?;
        Ok(ModelDecl {
            name,
            name_span,
            writers,
            fields,
        })
    }

    fn global_decl(&mut self) -> Result<GlobalDecl, Diagnostic> {
        self.keyword("global")?;
        let (name, name_span) = self.constant("a global class name")?;
        self.keyword("do")?;
        let fields = self.field_list()?;
        Ok(GlobalDecl {
            name,
            name_span,
            fields,
        })
    }

    fn method_def(&mut self) -> Result<MethodDef, Diagnostic> {
        let start = self.keyword("def")?;
        let instance = self.at_keyword("instance");
        if instance {
            self.bump();
        }
        let (owner, owner_span) = self.constant("the owning class")?;
        self.expect(&Tok::Dot, "between the class and the method name")?;
        let (name, name_span) = self.ident("a method name")?;
        let params = self.param_list()?;
        self.expect(&Tok::Arrow, "before the return type")?;
        let ret = self.type_expr()?;
        let mut reads = Vec::new();
        let mut writes = Vec::new();
        let mut hidden = false;
        loop {
            if self.at_keyword("reads") {
                self.bump();
                reads = self.eff_path_list()?;
            } else if self.at_keyword("writes") {
                self.bump();
                writes = self.eff_path_list()?;
            } else if self.at_keyword("hidden") {
                self.bump();
                hidden = true;
            } else {
                break;
            }
        }
        self.keyword("do")?;
        let mut body = Vec::new();
        while !self.at_keyword("end") {
            let stmt = self.stmt()?;
            if let Stmt::Assert(_, span) | Stmt::Target { span, .. } = &stmt {
                return Err(Diagnostic::new(
                    "`assert`/`target` only make sense inside a spec, not a method body",
                    *span,
                ));
            }
            body.push(stmt);
        }
        let end = self.keyword("end")?;
        Ok(MethodDef {
            owner,
            owner_span,
            instance,
            name,
            name_span,
            params,
            ret,
            reads,
            writes,
            hidden,
            body,
            span: start.to(end),
        })
    }

    fn param_list(&mut self) -> Result<Vec<ParamDecl>, Diagnostic> {
        self.expect(&Tok::LParen, "to open the parameter list")?;
        let mut params = Vec::new();
        if !self.eat(&Tok::RParen) {
            loop {
                let (name, name_span) = self.ident("a parameter name")?;
                self.expect(&Tok::Colon, "after the parameter name")?;
                let ty = self.type_expr()?;
                params.push(ParamDecl {
                    name,
                    name_span,
                    ty,
                });
                if self.eat(&Tok::RParen) {
                    break;
                }
                self.expect(&Tok::Comma, "between parameters")?;
                // Tolerate a trailing comma.
                if self.eat(&Tok::RParen) {
                    break;
                }
            }
        }
        Ok(params)
    }

    fn eff_path_list(&mut self) -> Result<Vec<EffPath>, Diagnostic> {
        self.expect(&Tok::LParen, "to open the effect path list")?;
        let mut paths = Vec::new();
        if !self.eat(&Tok::RParen) {
            loop {
                paths.push(self.eff_path()?);
                if self.eat(&Tok::RParen) {
                    break;
                }
                self.expect(&Tok::Comma, "between effect paths")?;
                if self.eat(&Tok::RParen) {
                    break;
                }
            }
        }
        Ok(paths)
    }

    fn eff_path(&mut self) -> Result<EffPath, Diagnostic> {
        let start = self.span();
        // `*`
        if self.eat(&Tok::Star) {
            return Ok(EffPath {
                class: None,
                region: None,
                bare_star: true,
                span: start,
            });
        }
        // `self` or `Class`
        let class = if self.at_keyword("self") {
            self.bump();
            None
        } else {
            Some(
                self.constant("a class (or `self`, or `*`) in the effect path")?
                    .0,
            )
        };
        self.expect(&Tok::Dot, "in the effect path")?;
        let region = if self.eat(&Tok::Star) {
            None
        } else {
            Some(self.ident("a region name (or `*`)")?.0)
        };
        Ok(EffPath {
            class,
            region,
            bare_star: false,
            span: start.to(self.prev_span()),
        })
    }

    fn options_block(&mut self) -> Result<Vec<OptionEntry>, Diagnostic> {
        self.keyword("options")?;
        self.keyword("do")?;
        let mut entries = Vec::new();
        while !self.at_keyword("end") {
            let (key, key_span) = self.ident("an option key")?;
            self.expect(&Tok::Colon, "after the option key")?;
            let value_span = self.span();
            let value = match self.peek().clone() {
                Tok::Int(n) => {
                    self.bump();
                    OptValue::Int(n)
                }
                Tok::Ident(w) => {
                    self.bump();
                    OptValue::Word(w)
                }
                other => {
                    return self.err(format!(
                        "expected an option value (integer or word), found {}",
                        other.describe()
                    ))
                }
            };
            entries.push(OptionEntry {
                key,
                key_span,
                value,
                value_span,
            });
            self.eat(&Tok::Comma);
        }
        self.keyword("end")?;
        Ok(entries)
    }

    fn define_block(&mut self) -> Result<Define, Diagnostic> {
        let start = self.keyword("define")?;
        let (name, name_span) = self.ident("the method name to synthesize")?;
        let params = self.param_list()?;
        self.expect(&Tok::Arrow, "before the return type")?;
        let ret = self.type_expr()?;
        self.keyword("do")?;
        let mut consts = Vec::new();
        if self.at_keyword("consts") {
            self.bump();
            loop {
                consts.push(self.const_item()?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        let mut specs = Vec::new();
        while self.at_keyword("spec") {
            specs.push(self.spec_block()?);
        }
        let end = self.keyword("end")?;
        Ok(Define {
            name,
            name_span,
            params,
            ret,
            consts,
            specs,
            span: start.to(end),
        })
    }

    fn const_item(&mut self) -> Result<ConstItem, Diagnostic> {
        let span = self.span();
        let kind = match self.peek().clone() {
            Tok::Ident(w) if w == "base" => {
                self.bump();
                ConstKind::Base
            }
            Tok::Const(c) => {
                self.bump();
                ConstKind::Class(c)
            }
            _ => ConstKind::Lit(self.literal("a Σ constant")?),
        };
        Ok(ConstItem { kind, span })
    }

    fn literal(&mut self, what: &str) -> Result<Lit, Diagnostic> {
        let lit = match self.peek().clone() {
            Tok::Int(n) => Lit::Int(n),
            Tok::Str(s) => Lit::Str(s),
            Tok::Sym(s) => Lit::Sym(s),
            Tok::Ident(w) if w == "nil" => Lit::Nil,
            Tok::Ident(w) if w == "true" => Lit::Bool(true),
            Tok::Ident(w) if w == "false" => Lit::Bool(false),
            other => {
                return self.err(format!("expected {what}, found {}", other.describe()));
            }
        };
        self.bump();
        Ok(lit)
    }

    fn spec_block(&mut self) -> Result<SpecBlock, Diagnostic> {
        let start = self.keyword("spec")?;
        let (title, title_span) = self.string("spec title")?;
        self.keyword("do")?;
        let mut stmts = Vec::new();
        while !self.at_keyword("end") {
            stmts.push(self.stmt()?);
        }
        let end = self.keyword("end")?;
        Ok(SpecBlock {
            title,
            title_span,
            stmts,
            span: start.to(end),
        })
    }

    // ── statements ──────────────────────────────────────────────────────

    fn stmt(&mut self) -> Result<Stmt, Diagnostic> {
        // `assert expr`
        if self.at_keyword("assert") {
            let span = self.bump().span;
            let e = self.expr()?;
            let span = span.to(e.span);
            return Ok(Stmt::Assert(e, span));
        }
        // `target(args…)` (binds `updated` by convention)
        if self.at_keyword("target") && self.peek2() == &Tok::LParen {
            let start = self.span();
            let (args, end) = self.target_call()?;
            return Ok(Stmt::Target {
                bind: crate::RESULT_VAR.to_owned(),
                args,
                span: start.to(end),
            });
        }
        // `x = expr` or `x = target(args…)`
        if matches!(self.peek(), Tok::Ident(_)) && self.peek2() == &Tok::Eq {
            let (name, name_span) = self.ident("a binding name")?;
            self.expect(&Tok::Eq, "in the binding")?;
            if self.at_keyword("target") && self.peek2() == &Tok::LParen {
                let (args, end) = self.target_call()?;
                return Ok(Stmt::Target {
                    bind: name,
                    args,
                    span: name_span.to(end),
                });
            }
            let value = self.expr()?;
            return Ok(Stmt::Bind {
                name,
                name_span,
                value,
            });
        }
        // Bare expression.
        Ok(Stmt::Exec(self.expr()?))
    }

    /// Parses `target(args…)` after the caller has seen the head; the
    /// target call must be the whole statement (it cannot be a
    /// subexpression — the synthesized method's result only flows through
    /// its binding).
    fn target_call(&mut self) -> Result<(Vec<ExprNode>, Span), Diagnostic> {
        self.keyword("target")?;
        self.expect(&Tok::LParen, "to open the target arguments")?;
        let mut args = Vec::new();
        if !self.eat(&Tok::RParen) {
            loop {
                args.push(self.expr()?);
                if self.eat(&Tok::RParen) {
                    break;
                }
                self.expect(&Tok::Comma, "between target arguments")?;
                if self.eat(&Tok::RParen) {
                    break;
                }
            }
        }
        let end = self.prev_span();
        if self.peek() == &Tok::Dot {
            return self.err(
                "a target call cannot be part of a larger expression; \
                 bind it (`x = target(…)`) and chain on the binding",
            );
        }
        Ok((args, end))
    }

    // ── expressions ─────────────────────────────────────────────────────

    fn expr(&mut self) -> Result<ExprNode, Diagnostic> {
        // `||` — lowest precedence.
        let mut lhs = self.eq_expr()?;
        while self.eat(&Tok::OrOr) {
            let rhs = self.eq_expr()?;
            let span = lhs.span.to(rhs.span);
            lhs = ExprNode {
                kind: ExprKind::Or(Box::new(lhs), Box::new(rhs)),
                span,
            };
        }
        Ok(lhs)
    }

    fn eq_expr(&mut self) -> Result<ExprNode, Diagnostic> {
        let mut lhs = self.unary_expr()?;
        while self.eat(&Tok::EqEq) {
            let rhs = self.unary_expr()?;
            let span = lhs.span.to(rhs.span);
            lhs = ExprNode {
                kind: ExprKind::Call {
                    recv: Box::new(lhs),
                    meth: "==".to_owned(),
                    args: vec![rhs],
                },
                span,
            };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<ExprNode, Diagnostic> {
        if self.peek() == &Tok::Bang {
            let start = self.bump().span;
            let inner = self.unary_expr()?;
            let span = start.to(inner.span);
            return Ok(ExprNode {
                kind: ExprKind::Not(Box::new(inner)),
                span,
            });
        }
        self.postfix_expr()
    }

    fn postfix_expr(&mut self) -> Result<ExprNode, Diagnostic> {
        let mut e = self.primary_expr()?;
        loop {
            if self.eat(&Tok::Dot) {
                let (meth, meth_span) = self.ident("a method name after `.`")?;
                // Writer sugar: `recv.f = e` is the call `f=` with one
                // argument (Ruby attribute assignment).
                if self.peek() == &Tok::Eq {
                    self.bump();
                    let value = self.expr()?;
                    let span = e.span.to(value.span);
                    return Ok(ExprNode {
                        kind: ExprKind::Call {
                            recv: Box::new(e),
                            meth: format!("{meth}="),
                            args: vec![value],
                        },
                        span,
                    });
                }
                let mut args = Vec::new();
                let mut end = meth_span;
                if self.eat(&Tok::LParen) {
                    if !self.eat(&Tok::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if self.eat(&Tok::RParen) {
                                break;
                            }
                            self.expect(&Tok::Comma, "between arguments")?;
                            if self.eat(&Tok::RParen) {
                                break;
                            }
                        }
                    }
                    end = self.prev_span();
                }
                let span = e.span.to(end);
                e = ExprNode {
                    kind: ExprKind::Call {
                        recv: Box::new(e),
                        meth,
                        args,
                    },
                    span,
                };
            } else if self.peek() == &Tok::LBracket {
                // Index sugar: `recv[k]` is the call `[]` with one argument.
                self.bump();
                let key = self.expr()?;
                let end = self.expect(&Tok::RBracket, "to close the index")?;
                let span = e.span.to(end);
                e = ExprNode {
                    kind: ExprKind::Call {
                        recv: Box::new(e),
                        meth: "[]".to_owned(),
                        args: vec![key],
                    },
                    span,
                };
            } else {
                return Ok(e);
            }
        }
    }

    fn primary_expr(&mut self) -> Result<ExprNode, Diagnostic> {
        let span = self.span();
        match self.peek().clone() {
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&Tok::RParen, "to close the parenthesis")?;
                Ok(e)
            }
            Tok::LBrace => {
                self.bump();
                let mut entries = Vec::new();
                if !self.eat(&Tok::RBrace) {
                    loop {
                        let (key, key_span) = self.ident("a hash key")?;
                        self.expect(&Tok::Colon, "after the hash key")?;
                        let value = self.expr()?;
                        entries.push((key, key_span, value));
                        if self.eat(&Tok::RBrace) {
                            break;
                        }
                        self.expect(&Tok::Comma, "between hash entries")?;
                        if self.eat(&Tok::RBrace) {
                            break;
                        }
                    }
                }
                Ok(ExprNode {
                    kind: ExprKind::HashLit(entries),
                    span: span.to(self.prev_span()),
                })
            }
            Tok::Const(c) => {
                self.bump();
                Ok(ExprNode {
                    kind: ExprKind::ClassRef(c),
                    span,
                })
            }
            Tok::Ident(w) if w == "target" => self.err(
                "a target call cannot appear inside an expression; \
                          make it its own statement (`x = target(…)`)",
            ),
            Tok::Ident(w) if matches!(w.as_str(), "nil" | "true" | "false") => {
                let lit = self.literal("a literal")?;
                Ok(ExprNode {
                    kind: ExprKind::Lit(lit),
                    span,
                })
            }
            Tok::Ident(w) => {
                self.bump();
                Ok(ExprNode {
                    kind: ExprKind::Var(w),
                    span,
                })
            }
            Tok::Int(_) | Tok::Str(_) | Tok::Sym(_) => {
                let lit = self.literal("a literal")?;
                Ok(ExprNode {
                    kind: ExprKind::Lit(lit),
                    span,
                })
            }
            other => self.err(format!(
                "expected an expression, found {}",
                other.describe()
            )),
        }
    }

    // ── types ───────────────────────────────────────────────────────────

    fn type_expr(&mut self) -> Result<TypeExpr, Diagnostic> {
        let first = self.type_atom()?;
        if !self.at_keyword("or") {
            return Ok(first);
        }
        let mut parts = vec![first];
        while self.at_keyword("or") {
            self.bump();
            parts.push(self.type_atom()?);
        }
        let span = parts[0].span.to(parts[parts.len() - 1].span);
        Ok(TypeExpr {
            kind: TypeKind::Union(parts),
            span,
        })
    }

    fn type_atom(&mut self) -> Result<TypeExpr, Diagnostic> {
        let span = self.span();
        match self.peek().clone() {
            Tok::Const(name) => {
                self.bump();
                match name.as_str() {
                    "Class" | "Array" if self.peek() == &Tok::Lt => {
                        self.bump();
                        if name == "Class" {
                            let (inner, inner_span) = self.constant("the class name")?;
                            let end = self.expect(&Tok::Gt, "to close `Class<…>`")?;
                            Ok(TypeExpr {
                                kind: TypeKind::ClassOf(inner, inner_span),
                                span: span.to(end),
                            })
                        } else {
                            let inner = self.type_expr()?;
                            let end = self.expect(&Tok::Gt, "to close `Array<…>`")?;
                            Ok(TypeExpr {
                                kind: TypeKind::ArrayOf(Box::new(inner)),
                                span: span.to(end),
                            })
                        }
                    }
                    _ => Ok(TypeExpr {
                        kind: TypeKind::Named(name),
                        span,
                    }),
                }
            }
            Tok::LBrace => {
                self.bump();
                let mut fields = Vec::new();
                if !self.eat(&Tok::RBrace) {
                    loop {
                        let (key, key_span) = self.ident("a hash-type key")?;
                        self.expect(&Tok::Colon, "after the hash-type key")?;
                        let optional = self.eat(&Tok::Question);
                        let ty = self.type_expr()?;
                        fields.push(HashFieldT {
                            key,
                            key_span,
                            optional,
                            ty,
                        });
                        if self.eat(&Tok::RBrace) {
                            break;
                        }
                        self.expect(&Tok::Comma, "between hash-type fields")?;
                        if self.eat(&Tok::RBrace) {
                            break;
                        }
                    }
                }
                Ok(TypeExpr {
                    kind: TypeKind::Hash(fields),
                    span: span.to(self.prev_span()),
                })
            }
            other => self.err(format!(
                "expected a type (`Str`, `Int`, `Bool`, a class name, `Class<…>`, \
                 `Array<…>` or `{{…}}`), found {}",
                other.describe()
            )),
        }
    }
}
