//! Lowering: parsed [`SpecFile`] → interpreter environment + synthesis
//! problem + options.
//!
//! Lowering is deterministic and re-runnable: class ids are assigned by
//! declaration order on a fresh [`EnvBuilder::with_stdlib`], so lowering
//! the same file twice yields interchangeable environments (equal
//! [`ClassTable::fingerprint`](rbsyn_ty::ClassTable::fingerprint)s) — the
//! property the registry-fidelity diff gate relies on.

use crate::ast::*;
use crate::span::{Diagnostic, Span};
use rbsyn_core::{Options, StrategyKind, SynthesisProblem};
use rbsyn_interp::eval::{Evaluator, Locals};
use rbsyn_interp::{InterpEnv, RuntimeError, SetupStep, Spec};
use rbsyn_lang::types::HashField;
use rbsyn_lang::{ClassId, Effect, EffectPair, EffectSet, Expr, FiniteHash, Symbol, Ty, Value};
use rbsyn_stdlib::EnvBuilder;
use rbsyn_ty::{EnumerateAt, MethodKind};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Duration;

/// A fully lowered `.rbspec` file: everything needed to run (or register)
/// one synthesis problem.
pub struct Lowered {
    /// Benchmark id from the metadata block, if any.
    pub id: Option<String>,
    /// Group name from the metadata block, if any (validated against the
    /// known groups).
    pub group: Option<String>,
    /// Display name from the metadata block, if any.
    pub display_name: Option<String>,
    /// Paths through the original method (paper metadata; defaults to 1).
    pub orig_paths: usize,
    /// The interpreter environment (stdlib + declared models/globals/defs).
    pub env: InterpEnv,
    /// The synthesis problem.
    pub problem: SynthesisProblem,
    /// Default options, with the file's `options do … end` patch applied.
    pub options: Options,
}

/// Lowers a parsed file.
///
/// # Errors
///
/// Returns the first semantic error (unknown type, unknown class, bad
/// effect path, duplicate model, malformed spec, …) as a span-carrying
/// [`Diagnostic`].
pub fn lower(file: &SpecFile) -> Result<Lowered, Diagnostic> {
    Lowerer::new().lower(file)
}

const KNOWN_GROUPS: [&str; 4] = ["Synthetic", "Discourse", "Gitlab", "Diaspora"];

struct Lowerer {
    builder: EnvBuilder,
    /// Fields of `global` classes declared in this file (no schema is
    /// registered for globals, so effect-path validation needs its own
    /// record).
    global_fields: HashMap<ClassId, HashSet<Symbol>>,
}

impl Lowerer {
    fn new() -> Lowerer {
        Lowerer {
            builder: EnvBuilder::with_stdlib(),
            global_fields: HashMap::new(),
        }
    }

    fn lower(mut self, file: &SpecFile) -> Result<Lowered, Diagnostic> {
        if let Some(meta) = &file.meta {
            if let Some((g, span)) = &meta.group {
                if !KNOWN_GROUPS.contains(&g.as_str()) {
                    return Err(Diagnostic::new(
                        format!("unknown group `{g}` (known: {})", KNOWN_GROUPS.join(", ")),
                        *span,
                    ));
                }
            }
        }
        for decl in &file.decls {
            match decl {
                Decl::Model(m) => self.lower_model(m)?,
                Decl::Global(g) => self.lower_global(g)?,
                Decl::Def(d) => self.lower_def(d)?,
            }
        }
        let options = self.lower_options(&file.options)?;
        let problem = self.lower_define(&file.define)?;
        let meta = file.meta.as_ref();
        Ok(Lowered {
            id: meta.and_then(|m| m.id.as_ref()).map(|(s, _)| s.clone()),
            group: meta.and_then(|m| m.group.as_ref()).map(|(s, _)| s.clone()),
            display_name: meta.and_then(|m| m.name.as_ref()).map(|(s, _)| s.clone()),
            orig_paths: meta.and_then(|m| m.orig_paths).map(|(n, _)| n).unwrap_or(1),
            env: self.builder.finish(),
            problem,
            options,
        })
    }

    // ── declarations ────────────────────────────────────────────────────

    fn check_fresh_class(&self, name: &str, span: Span) -> Result<(), Diagnostic> {
        if self.builder.hierarchy().find(name).is_some() {
            return Err(Diagnostic::new(
                format!("duplicate class `{name}` (already declared in this file or the stdlib)"),
                span,
            ));
        }
        Ok(())
    }

    fn lower_fields(&self, fields: &[FieldDecl]) -> Result<Vec<(String, Ty)>, Diagnostic> {
        let mut out: Vec<(String, Ty)> = Vec::with_capacity(fields.len());
        for f in fields {
            if out.iter().any(|(n, _)| n == &f.name) {
                return Err(Diagnostic::new(
                    format!("duplicate field `{}`", f.name),
                    f.name_span,
                ));
            }
            if f.name == "id" {
                return Err(Diagnostic::new(
                    "the `id` column is implicit on every model",
                    f.name_span,
                ));
            }
            out.push((f.name.clone(), self.lower_type(&f.ty)?));
        }
        Ok(out)
    }

    fn lower_model(&mut self, m: &ModelDecl) -> Result<(), Diagnostic> {
        self.check_fresh_class(&m.name, m.name_span)?;
        let fields = self.lower_fields(&m.fields)?;
        let cols: Vec<(&str, Ty)> = fields
            .iter()
            .map(|(n, t)| (n.as_str(), t.clone()))
            .collect();
        if m.writers {
            self.builder.define_model(&m.name, &cols);
        } else {
            self.builder.define_model_without_writers(&m.name, &cols);
        }
        Ok(())
    }

    fn lower_global(&mut self, g: &GlobalDecl) -> Result<(), Diagnostic> {
        self.check_fresh_class(&g.name, g.name_span)?;
        let fields = self.lower_fields(&g.fields)?;
        let cols: Vec<(&str, Ty)> = fields
            .iter()
            .map(|(n, t)| (n.as_str(), t.clone()))
            .collect();
        let class = self.builder.define_global(&g.name, &cols);
        self.global_fields.insert(
            class,
            fields.iter().map(|(n, _)| Symbol::intern(n)).collect(),
        );
        Ok(())
    }

    fn lower_def(&mut self, d: &MethodDef) -> Result<(), Diagnostic> {
        let owner = self.resolve_class(&d.owner, d.owner_span)?;
        let kind = if d.instance {
            MethodKind::Instance
        } else {
            MethodKind::Singleton
        };
        let params: Vec<Ty> = d
            .params
            .iter()
            .map(|p| self.lower_type(&p.ty))
            .collect::<Result<_, _>>()?;
        let ret = self.lower_type(&d.ret)?;
        let effect = EffectPair::new(
            self.lower_eff_paths(&d.reads)?,
            self.lower_eff_paths(&d.writes)?,
        );
        let enumerate = if d.hidden {
            EnumerateAt::Never
        } else {
            EnumerateAt::OwnerOnly
        };
        let body = self.lower_def_body(d)?;
        let param_names: Vec<Symbol> = d.params.iter().map(|p| Symbol::intern(&p.name)).collect();
        let expected_args = param_names.len();
        let meth_name = d.name.clone();
        let self_sym = Symbol::intern("self");
        self.builder.method(
            owner,
            kind,
            &d.name,
            params,
            ret,
            effect,
            enumerate,
            Arc::new(move |env, state, recv, args| {
                if args.len() != expected_args {
                    return Err(RuntimeError::Other(format!(
                        "{meth_name} expects {expected_args} argument(s), got {}",
                        args.len()
                    )));
                }
                let mut locals = Locals::new();
                locals.bind(self_sym, recv.clone());
                for (p, v) in param_names.iter().zip(args) {
                    locals.bind(*p, v.clone());
                }
                let mut ev = Evaluator::new(env, state);
                ev.eval(&mut locals, &body)
            }),
        );
        Ok(())
    }

    /// Lowers a `def` body (binds + a final expression) into a nested
    /// `let`-expression.
    fn lower_def_body(&self, d: &MethodDef) -> Result<Expr, Diagnostic> {
        let mut scope: HashSet<String> = d.params.iter().map(|p| p.name.clone()).collect();
        scope.insert("self".to_owned());
        let mut exprs: Vec<(Option<Symbol>, Expr)> = Vec::new();
        for stmt in &d.body {
            match stmt {
                Stmt::Bind { name, value, .. } => {
                    let e = self.lower_expr(value, &scope)?;
                    scope.insert(name.clone());
                    exprs.push((Some(Symbol::intern(name)), e));
                }
                Stmt::Exec(e) => exprs.push((None, self.lower_expr(e, &scope)?)),
                Stmt::Assert(_, _) | Stmt::Target { .. } => unreachable!("rejected by the parser"),
            }
        }
        let Some((last_bind, last)) = exprs.pop() else {
            return Err(Diagnostic::new(
                format!("method `{}` has an empty body", d.name),
                d.span,
            ));
        };
        if last_bind.is_some() {
            return Err(Diagnostic::new(
                format!(
                    "the last statement of `{}` must be an expression (its return value), \
                     not a binding",
                    d.name
                ),
                d.span,
            ));
        }
        let mut body = last;
        for (bind, e) in exprs.into_iter().rev() {
            body = match bind {
                Some(var) => Expr::Let {
                    var,
                    val: Box::new(e),
                    body: Box::new(body),
                },
                None => Expr::Seq(vec![e, body]),
            };
        }
        Ok(body)
    }

    fn lower_eff_paths(&self, paths: &[EffPath]) -> Result<EffectSet, Diagnostic> {
        let mut atoms = Vec::new();
        for p in paths {
            atoms.push(self.lower_eff_path(p)?);
        }
        Ok(EffectSet::from_atoms(atoms))
    }

    fn lower_eff_path(&self, p: &EffPath) -> Result<Effect, Diagnostic> {
        if p.bare_star {
            return Ok(Effect::Star);
        }
        match (&p.class, &p.region) {
            (None, None) => Ok(Effect::SelfStar),
            (None, Some(r)) => Ok(Effect::SelfRegion(Symbol::intern(r))),
            (Some(c), region) => {
                let class = self.builder.hierarchy().find(c).ok_or_else(|| {
                    Diagnostic::new(
                        format!("unknown class `{c}` in effect path (declare it first)"),
                        p.span,
                    )
                })?;
                match region {
                    None => Ok(Effect::ClassStar(class)),
                    Some(r) => {
                        let sym = Symbol::intern(r);
                        let known = match self.builder.hierarchy().schema(class) {
                            Some(schema) => schema.has_column(sym),
                            None => self
                                .global_fields
                                .get(&class)
                                .is_none_or(|fields| fields.contains(&sym)),
                        };
                        if !known {
                            return Err(Diagnostic::new(
                                format!("unknown effect path: `{c}` has no region `{r}`"),
                                p.span,
                            ));
                        }
                        Ok(Effect::Region(class, sym))
                    }
                }
            }
        }
    }

    // ── options ─────────────────────────────────────────────────────────

    fn lower_options(&self, entries: &[OptionEntry]) -> Result<Options, Diagnostic> {
        let mut o = Options::default();
        for e in entries {
            let int = |what: &str| -> Result<i64, Diagnostic> {
                match &e.value {
                    OptValue::Int(n) if *n >= 0 => Ok(*n),
                    _ => Err(Diagnostic::new(
                        format!("{what} takes a non-negative integer"),
                        e.value_span,
                    )),
                }
            };
            match e.key.as_str() {
                "max_size" => o.max_size = int("max_size")? as usize,
                "max_guard_size" => o.max_guard_size = int("max_guard_size")? as usize,
                "max_hash_keys" => o.max_hash_keys = int("max_hash_keys")? as usize,
                "max_expansions" => o.max_expansions = int("max_expansions")? as u64,
                "intra" => o.intra_parallelism = (int("intra")? as usize).max(1),
                "timeout_secs" => {
                    let secs = int("timeout_secs")?;
                    o.timeout = if secs == 0 {
                        None
                    } else {
                        Some(Duration::from_secs(secs as u64))
                    };
                }
                "strategy" => match &e.value {
                    OptValue::Word(w) => {
                        o.strategy = StrategyKind::parse(w).ok_or_else(|| {
                            Diagnostic::new(
                                format!("unknown strategy `{w}` (try `paper`, `cost`)"),
                                e.value_span,
                            )
                        })?;
                    }
                    OptValue::Int(_) => {
                        return Err(Diagnostic::new(
                            "strategy takes a word (`paper`, `cost`)",
                            e.value_span,
                        ))
                    }
                },
                "cache" => match &e.value {
                    OptValue::Word(w) if w == "true" => o.cache = true,
                    OptValue::Word(w) if w == "false" => o.cache = false,
                    _ => {
                        return Err(Diagnostic::new(
                            "cache takes `true` or `false`",
                            e.value_span,
                        ))
                    }
                },
                other => {
                    return Err(Diagnostic::new(
                        format!(
                            "unknown option `{other}` (known: max_size, max_guard_size, \
                             max_hash_keys, max_expansions, timeout_secs, strategy, intra, cache)"
                        ),
                        e.key_span,
                    ))
                }
            }
        }
        Ok(o)
    }

    // ── the define block ────────────────────────────────────────────────

    fn lower_define(&self, d: &Define) -> Result<SynthesisProblem, Diagnostic> {
        let mut b = SynthesisProblem::builder(&d.name);
        let mut seen_params: HashSet<&str> = HashSet::new();
        for p in &d.params {
            if !seen_params.insert(&p.name) {
                return Err(Diagnostic::new(
                    format!("duplicate parameter `{}`", p.name),
                    p.name_span,
                ));
            }
            b = b.param(&p.name, self.lower_type(&p.ty)?);
        }
        b = b.returns(self.lower_type(&d.ret)?);
        for c in &d.consts {
            b = match &c.kind {
                ConstKind::Base => b.base_consts(),
                ConstKind::Lit(l) => b.constant(lower_lit(l)),
                ConstKind::Class(name) => {
                    b.constant(Value::Class(self.resolve_class(name, c.span)?))
                }
            };
        }
        if d.specs.is_empty() {
            return Err(Diagnostic::new(
                format!("`define {}` has no specs", d.name),
                d.span,
            ));
        }
        for s in &d.specs {
            b = b.spec(self.lower_spec(s)?);
        }
        Ok(b.build())
    }

    fn lower_spec(&self, s: &SpecBlock) -> Result<Spec, Diagnostic> {
        let mut steps: Vec<SetupStep> = Vec::new();
        let mut asserts: Vec<Expr> = Vec::new();
        let mut scope: HashSet<String> = HashSet::new();
        let mut target_seen = false;
        for stmt in &s.stmts {
            match stmt {
                Stmt::Assert(e, span) => {
                    if !target_seen {
                        return Err(Diagnostic::new(
                            "assertions must come after the target call",
                            *span,
                        ));
                    }
                    asserts.push(self.lower_expr(e, &scope)?);
                }
                Stmt::Target { bind, args, span } => {
                    if target_seen {
                        return Err(Diagnostic::new(
                            "a spec may call the target method only once",
                            *span,
                        ));
                    }
                    if !asserts.is_empty() {
                        return Err(Diagnostic::new(
                            "the target call must come before the assertions",
                            *span,
                        ));
                    }
                    let args = args
                        .iter()
                        .map(|a| self.lower_expr(a, &scope))
                        .collect::<Result<Vec<_>, _>>()?;
                    scope.insert(bind.clone());
                    steps.push(SetupStep::CallTarget {
                        bind: Symbol::intern(bind),
                        args,
                    });
                    target_seen = true;
                }
                other => {
                    if !asserts.is_empty() {
                        let span = match other {
                            Stmt::Bind { name_span, .. } => *name_span,
                            Stmt::Exec(e) => e.span,
                            _ => unreachable!("assert/target handled above"),
                        };
                        return Err(Diagnostic::new(
                            "setup steps cannot follow assertions",
                            span,
                        ));
                    }
                    match other {
                        Stmt::Bind { name, value, .. } => {
                            let e = self.lower_expr(value, &scope)?;
                            scope.insert(name.clone());
                            steps.push(SetupStep::Bind(Symbol::intern(name), e));
                        }
                        Stmt::Exec(e) => steps.push(SetupStep::Exec(self.lower_expr(e, &scope)?)),
                        _ => unreachable!("assert/target handled above"),
                    }
                }
            }
        }
        if !target_seen {
            return Err(Diagnostic::new(
                format!("spec {:?} never calls the target method", s.title),
                s.span,
            ));
        }
        Ok(Spec::new(&s.title, steps, asserts))
    }

    // ── expressions and types ───────────────────────────────────────────

    fn resolve_class(&self, name: &str, span: Span) -> Result<ClassId, Diagnostic> {
        self.builder.hierarchy().find(name).ok_or_else(|| {
            Diagnostic::new(
                format!("unknown class `{name}` (declare it with `model` or `global` first)"),
                span,
            )
        })
    }

    fn lower_expr(&self, e: &ExprNode, scope: &HashSet<String>) -> Result<Expr, Diagnostic> {
        Ok(match &e.kind {
            ExprKind::Lit(l) => Expr::Lit(lower_lit(l)),
            ExprKind::Var(name) => {
                if !scope.contains(name) {
                    return Err(Diagnostic::new(
                        format!("unknown variable `{name}` (bind it with `{name} = …` first)"),
                        e.span,
                    ));
                }
                Expr::Var(Symbol::intern(name))
            }
            ExprKind::ClassRef(name) => Expr::Lit(Value::Class(self.resolve_class(name, e.span)?)),
            ExprKind::Call { recv, meth, args } => Expr::Call {
                recv: Box::new(self.lower_expr(recv, scope)?),
                meth: Symbol::intern(meth),
                args: args
                    .iter()
                    .map(|a| self.lower_expr(a, scope))
                    .collect::<Result<_, _>>()?,
            },
            ExprKind::HashLit(entries) => Expr::HashLit(
                entries
                    .iter()
                    .map(|(k, _, v)| Ok((Symbol::intern(k), self.lower_expr(v, scope)?)))
                    .collect::<Result<_, Diagnostic>>()?,
            ),
            ExprKind::Not(inner) => Expr::Not(Box::new(self.lower_expr(inner, scope)?)),
            ExprKind::Or(a, b) => Expr::Or(
                Box::new(self.lower_expr(a, scope)?),
                Box::new(self.lower_expr(b, scope)?),
            ),
        })
    }

    fn lower_type(&self, t: &TypeExpr) -> Result<Ty, Diagnostic> {
        Ok(match &t.kind {
            TypeKind::Named(name) => match name.as_str() {
                "Str" => Ty::Str,
                "Int" => Ty::Int,
                "Bool" => Ty::Bool,
                "Nil" => Ty::Nil,
                "Sym" => Ty::Sym,
                "Obj" => Ty::Obj,
                other => Ty::Instance(self.builder.hierarchy().find(other).ok_or_else(|| {
                    Diagnostic::new(
                        format!(
                            "unknown type `{other}` (primitives are Str, Int, Bool, Nil, Sym, \
                             Obj; classes must be declared before use)"
                        ),
                        t.span,
                    )
                })?),
            },
            TypeKind::ClassOf(name, span) => Ty::SingletonClass(self.resolve_class(name, *span)?),
            TypeKind::ArrayOf(inner) => Ty::Array(Box::new(self.lower_type(inner)?)),
            TypeKind::Hash(fields) => {
                let mut out = Vec::with_capacity(fields.len());
                for f in fields {
                    if out.iter().any(|h: &HashField| h.key.as_str() == f.key) {
                        return Err(Diagnostic::new(
                            format!("duplicate hash-type key `{}`", f.key),
                            f.key_span,
                        ));
                    }
                    out.push(HashField {
                        key: Symbol::intern(&f.key),
                        ty: self.lower_type(&f.ty)?,
                        optional: f.optional,
                    });
                }
                Ty::FiniteHash(FiniteHash::new(out))
            }
            TypeKind::Union(parts) => Ty::union(
                parts
                    .iter()
                    .map(|p| self.lower_type(p))
                    .collect::<Result<Vec<_>, _>>()?,
            ),
        })
    }
}

fn lower_lit(l: &Lit) -> Value {
    match l {
        Lit::Nil => Value::Nil,
        Lit::Bool(b) => Value::Bool(*b),
        Lit::Int(i) => Value::Int(*i),
        Lit::Str(s) => Value::str(s),
        Lit::Sym(s) => Value::sym(s),
    }
}
