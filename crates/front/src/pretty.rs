//! Canonical pretty-printer: AST → `.rbspec` text.
//!
//! `parse(to_rbspec(parse(src)))` produces an AST that lowers identically
//! to `parse(src)` — the round-trip property the proptest suite checks —
//! and the printer's output style is the format's canonical style.

use crate::ast::*;

/// Renders a parsed file as canonical `.rbspec` text.
pub fn to_rbspec(file: &SpecFile) -> String {
    let mut out = String::new();
    if let Some(meta) = &file.meta {
        out.push_str("benchmark do\n");
        if let Some((id, _)) = &meta.id {
            out.push_str(&format!("  id: {}\n", str_lit(id)));
        }
        if let Some((g, _)) = &meta.group {
            out.push_str(&format!("  group: {g}\n"));
        }
        if let Some((n, _)) = &meta.name {
            out.push_str(&format!("  name: {}\n", str_lit(n)));
        }
        if let Some((p, _)) = &meta.orig_paths {
            out.push_str(&format!("  orig_paths: {p}\n"));
        }
        out.push_str("end\n\n");
    }
    for decl in &file.decls {
        match decl {
            Decl::Model(m) => {
                let modifier = if m.writers { "" } else { " without_writers" };
                out.push_str(&format!("model {}{modifier} do\n", m.name));
                for f in &m.fields {
                    out.push_str(&format!("  {}: {}\n", f.name, ty(&f.ty)));
                }
                out.push_str("end\n\n");
            }
            Decl::Global(g) => {
                out.push_str(&format!("global {} do\n", g.name));
                for f in &g.fields {
                    out.push_str(&format!("  {}: {}\n", f.name, ty(&f.ty)));
                }
                out.push_str("end\n\n");
            }
            Decl::Def(d) => {
                let kind = if d.instance { "instance " } else { "" };
                out.push_str(&format!(
                    "def {kind}{}.{}({}) -> {}",
                    d.owner,
                    d.name,
                    params(&d.params),
                    ty(&d.ret)
                ));
                if !d.reads.is_empty() {
                    out.push_str(&format!(" reads({})", eff_paths(&d.reads)));
                }
                if !d.writes.is_empty() {
                    out.push_str(&format!(" writes({})", eff_paths(&d.writes)));
                }
                if d.hidden {
                    out.push_str(" hidden");
                }
                out.push_str(" do\n");
                for s in &d.body {
                    out.push_str(&format!("  {}\n", stmt(s)));
                }
                out.push_str("end\n\n");
            }
        }
    }
    if !file.options.is_empty() {
        out.push_str("options do\n");
        for e in &file.options {
            let v = match &e.value {
                OptValue::Int(n) => n.to_string(),
                OptValue::Word(w) => w.clone(),
            };
            out.push_str(&format!("  {}: {v}\n", e.key));
        }
        out.push_str("end\n\n");
    }
    let d = &file.define;
    out.push_str(&format!(
        "define {}({}) -> {} do\n",
        d.name,
        params(&d.params),
        ty(&d.ret)
    ));
    if !d.consts.is_empty() {
        let items: Vec<String> = d
            .consts
            .iter()
            .map(|c| match &c.kind {
                ConstKind::Base => "base".to_owned(),
                ConstKind::Lit(l) => lit(l),
                ConstKind::Class(n) => n.clone(),
            })
            .collect();
        out.push_str(&format!("  consts {}\n", items.join(", ")));
    }
    for s in &d.specs {
        out.push_str(&format!("\n  spec {} do\n", str_lit(&s.title)));
        for st in &s.stmts {
            out.push_str(&format!("    {}\n", stmt(st)));
        }
        out.push_str("  end\n");
    }
    out.push_str("end\n");
    out
}

fn params(ps: &[ParamDecl]) -> String {
    let parts: Vec<String> = ps
        .iter()
        .map(|p| format!("{}: {}", p.name, ty(&p.ty)))
        .collect();
    parts.join(", ")
}

fn eff_paths(paths: &[EffPath]) -> String {
    let parts: Vec<String> = paths
        .iter()
        .map(|p| {
            if p.bare_star {
                "*".to_owned()
            } else {
                let class = p.class.as_deref().unwrap_or("self");
                let region = p.region.as_deref().unwrap_or("*");
                format!("{class}.{region}")
            }
        })
        .collect();
    parts.join(", ")
}

fn stmt(s: &Stmt) -> String {
    match s {
        Stmt::Bind { name, value, .. } => format!("{name} = {}", expr(value)),
        Stmt::Target { bind, args, .. } => {
            let args: Vec<String> = args.iter().map(expr).collect();
            format!("{bind} = target({})", args.join(", "))
        }
        Stmt::Exec(e) => expr(e),
        Stmt::Assert(e, _) => format!("assert {}", expr(e)),
    }
}

/// Renders an expression. Precedence mirrors the parser: `||` is loosest,
/// `==` next, `!` binds tighter, postfix tightest — operands that would
/// re-parse differently get parentheses.
fn expr(e: &ExprNode) -> String {
    match &e.kind {
        ExprKind::Lit(l) => lit(l),
        ExprKind::Var(v) => v.clone(),
        ExprKind::ClassRef(c) => c.clone(),
        ExprKind::Call { recv, meth, args } => {
            if meth == "==" && args.len() == 1 {
                return format!("{} == {}", eq_operand(recv), eq_operand(&args[0]));
            }
            if meth == "[]" && args.len() == 1 {
                return format!("{}[{}]", postfix_operand(recv), expr(&args[0]));
            }
            if let Some(attr) = meth.strip_suffix('=') {
                if args.len() == 1 && !attr.is_empty() {
                    return format!("{}.{attr} = {}", postfix_operand(recv), expr(&args[0]));
                }
            }
            let rendered: Vec<String> = args.iter().map(expr).collect();
            let argstr = if rendered.is_empty() {
                String::new()
            } else {
                format!("({})", rendered.join(", "))
            };
            format!("{}.{meth}{argstr}", postfix_operand(recv))
        }
        ExprKind::HashLit(entries) => {
            let parts: Vec<String> = entries
                .iter()
                .map(|(k, _, v)| format!("{k}: {}", expr(v)))
                .collect();
            format!("{{{}}}", parts.join(", "))
        }
        ExprKind::Not(inner) => format!("!{}", unary_operand(inner)),
        ExprKind::Or(a, b) => format!("{} || {}", eq_operand(a), eq_operand(b)),
    }
}

/// An operand of `==` / `||`: parenthesize nested `||`, nested `==`
/// (associativity kept explicit), and writer sugar (`a.f = b` is greedy —
/// `(a.f = b) || c` re-parses correctly, `a.f = b || c` does not).
fn eq_operand(e: &ExprNode) -> String {
    match &e.kind {
        ExprKind::Or(..) => format!("({})", expr(e)),
        // Covers both `==` and writer methods (`f=`).
        ExprKind::Call { meth, args, .. } if args.len() == 1 && meth.ends_with('=') => {
            format!("({})", expr(e))
        }
        _ => expr(e),
    }
}

/// An operand of `!` — same parenthesization rules as [`eq_operand`].
fn unary_operand(e: &ExprNode) -> String {
    eq_operand(e)
}

/// A receiver of `.m(…)` / `[…]`.
fn postfix_operand(e: &ExprNode) -> String {
    match &e.kind {
        ExprKind::Or(..) | ExprKind::Not(..) => format!("({})", expr(e)),
        ExprKind::Call { meth, args, .. } if meth == "==" && args.len() == 1 => {
            format!("({})", expr(e))
        }
        ExprKind::Call { meth, .. } if meth.ends_with('=') && meth != "==" => {
            format!("({})", expr(e))
        }
        _ => expr(e),
    }
}

fn lit(l: &Lit) -> String {
    match l {
        Lit::Nil => "nil".to_owned(),
        Lit::Bool(b) => b.to_string(),
        Lit::Int(i) => i.to_string(),
        Lit::Str(s) => str_lit(s),
        Lit::Sym(s) => format!(":{s}"),
    }
}

fn str_lit(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            other => out.push(other),
        }
    }
    out.push('"');
    out
}

fn ty(t: &TypeExpr) -> String {
    match &t.kind {
        TypeKind::Named(n) => n.clone(),
        TypeKind::ClassOf(n, _) => format!("Class<{n}>"),
        TypeKind::ArrayOf(inner) => format!("Array<{}>", ty(inner)),
        TypeKind::Hash(fields) => {
            let parts: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{}: {}{}",
                        f.key,
                        if f.optional { "?" } else { "" },
                        ty(&f.ty)
                    )
                })
                .collect();
            format!("{{{}}}", parts.join(", "))
        }
        TypeKind::Union(parts) => {
            let rendered: Vec<String> = parts.iter().map(ty).collect();
            rendered.join(" or ")
        }
    }
}
