//! The parsed, span-carrying form of a `.rbspec` file.
//!
//! This AST mirrors the surface syntax (see the README format reference),
//! not the synthesis IR: names are still strings, types are still spelled
//! out, nothing has been resolved. [`crate::lower()`] turns it into an
//! [`rbsyn_interp::InterpEnv`] + [`rbsyn_core::SynthesisProblem`] pair.

use crate::span::Span;

/// A whole `.rbspec` file.
#[derive(Clone, PartialEq, Debug)]
pub struct SpecFile {
    /// Optional `benchmark do … end` metadata block.
    pub meta: Option<Meta>,
    /// Environment declarations (models, globals, annotated methods), in
    /// declaration order — the order fixes `ClassId` assignment, so it is
    /// semantically meaningful.
    pub decls: Vec<Decl>,
    /// `options do … end` entries, in order.
    pub options: Vec<OptionEntry>,
    /// The (single) `define … do … end` block.
    pub define: Define,
}

/// `benchmark do … end`: registry metadata for corpus files.
#[derive(Clone, PartialEq, Debug)]
pub struct Meta {
    /// Table-1 id (`"S3"`, `"A7"`, …).
    pub id: Option<(String, Span)>,
    /// Group constant (`Synthetic`, `Discourse`, `Gitlab`, `Diaspora`).
    pub group: Option<(String, Span)>,
    /// Human-readable benchmark name.
    pub name: Option<(String, Span)>,
    /// Paths through the original, human-written method (paper metadata;
    /// not derivable from the file).
    pub orig_paths: Option<(usize, Span)>,
    /// The whole block.
    pub span: Span,
}

/// One environment declaration.
#[derive(Clone, PartialEq, Debug)]
pub enum Decl {
    /// `model Name [without_writers] do field: Ty … end`
    Model(ModelDecl),
    /// `global Name do field: Ty … end`
    Global(GlobalDecl),
    /// `def [instance] Owner.name(params) -> Ty [reads(…)] [writes(…)]
    /// [hidden] do … end`
    Def(MethodDef),
}

/// An ActiveRecord-style model declaration.
#[derive(Clone, PartialEq, Debug)]
pub struct ModelDecl {
    /// Class name.
    pub name: String,
    /// Span of the name.
    pub name_span: Span,
    /// `false` when declared `without_writers` (the paper's A9 library
    /// adjustment, §5.2).
    pub writers: bool,
    /// Columns.
    pub fields: Vec<FieldDecl>,
}

/// An app-global singleton declaration.
#[derive(Clone, PartialEq, Debug)]
pub struct GlobalDecl {
    /// Class name.
    pub name: String,
    /// Span of the name.
    pub name_span: Span,
    /// Fields (each becomes a singleton reader/writer pair with region
    /// effects).
    pub fields: Vec<FieldDecl>,
}

/// `name: Ty` inside a model/global block.
#[derive(Clone, PartialEq, Debug)]
pub struct FieldDecl {
    /// Field name.
    pub name: String,
    /// Span of the name.
    pub name_span: Span,
    /// Declared type.
    pub ty: TypeExpr,
}

/// An annotated library-method definition: signature, read/write effect
/// paths, and an expression body the interpreter evaluates.
#[derive(Clone, PartialEq, Debug)]
pub struct MethodDef {
    /// Owning class name.
    pub owner: String,
    /// Span of the owner name.
    pub owner_span: Span,
    /// `true` for instance methods (`def instance …`), `false` for
    /// singleton (class-level) methods.
    pub instance: bool,
    /// Method name (may end in `?`/`!`).
    pub name: String,
    /// Span of the method name.
    pub name_span: Span,
    /// Typed parameters.
    pub params: Vec<ParamDecl>,
    /// Return type.
    pub ret: TypeExpr,
    /// Read effect paths (`reads(User.name, …)`); empty = pure reads.
    pub reads: Vec<EffPath>,
    /// Write effect paths.
    pub writes: Vec<EffPath>,
    /// `hidden` methods are callable from specs but never offered to the
    /// search ([`rbsyn_ty::EnumerateAt::Never`]).
    pub hidden: bool,
    /// Body statements; the last must be an expression (the return value).
    pub body: Vec<Stmt>,
    /// The whole definition.
    pub span: Span,
}

/// A typed parameter `name: Ty`.
#[derive(Clone, PartialEq, Debug)]
pub struct ParamDecl {
    /// Parameter name.
    pub name: String,
    /// Span of the name.
    pub name_span: Span,
    /// Declared type.
    pub ty: TypeExpr,
}

/// One effect path: `*`, `Class.*`, `Class.region`, `self.*` or
/// `self.region`.
#[derive(Clone, PartialEq, Debug)]
pub struct EffPath {
    /// Class name; `None` means `self` (or, with `region: None` and
    /// `bare_star`, the global `*`).
    pub class: Option<String>,
    /// Region name; `None` means `.*`.
    pub region: Option<String>,
    /// `true` for the bare `*` path.
    pub bare_star: bool,
    /// Source span of the whole path.
    pub span: Span,
}

/// One `key: value` entry of `options do … end`.
#[derive(Clone, PartialEq, Debug)]
pub struct OptionEntry {
    /// Option key (`max_size`, `strategy`, `timeout_secs`, …).
    pub key: String,
    /// Span of the key.
    pub key_span: Span,
    /// The value.
    pub value: OptValue,
    /// Span of the value.
    pub value_span: Span,
}

/// An option value.
#[derive(Clone, PartialEq, Debug)]
pub enum OptValue {
    /// Integer value.
    Int(i64),
    /// Bare word (`paper`, `cost`, `true`, `false`).
    Word(String),
}

/// The `define name(params) -> Ty do … end` block.
#[derive(Clone, PartialEq, Debug)]
pub struct Define {
    /// Name of the method to synthesize.
    pub name: String,
    /// Span of the name.
    pub name_span: Span,
    /// Typed parameters.
    pub params: Vec<ParamDecl>,
    /// Return type.
    pub ret: TypeExpr,
    /// The constant set `Σ`, in order.
    pub consts: Vec<ConstItem>,
    /// The specs, in order.
    pub specs: Vec<SpecBlock>,
    /// The whole block.
    pub span: Span,
}

/// One item of the `consts …` list.
#[derive(Clone, PartialEq, Debug)]
pub struct ConstItem {
    /// What the item is.
    pub kind: ConstKind,
    /// Source span.
    pub span: Span,
}

/// The kinds of `Σ` entries.
#[derive(Clone, PartialEq, Debug)]
pub enum ConstKind {
    /// `base` — the paper's base constant set (`true`, `false`, `0`, `1`,
    /// `""`; §5.1).
    Base,
    /// A literal value.
    Lit(Lit),
    /// A class constant (`User`).
    Class(String),
}

/// `spec "title" do … end`.
#[derive(Clone, PartialEq, Debug)]
pub struct SpecBlock {
    /// Spec title.
    pub title: String,
    /// Span of the title string.
    pub title_span: Span,
    /// Setup statements and assertions, in order.
    pub stmts: Vec<Stmt>,
    /// The whole block.
    pub span: Span,
}

/// A statement inside a spec (or a `def` body).
#[derive(Clone, PartialEq, Debug)]
pub enum Stmt {
    /// `x = expr` — a setup binding.
    Bind {
        /// Bound name.
        name: String,
        /// Span of the name.
        name_span: Span,
        /// Bound expression.
        value: ExprNode,
    },
    /// `[x =] target(args…)` — the call to the method under synthesis.
    Target {
        /// Variable receiving the result (`updated` when unbound).
        bind: String,
        /// Argument expressions.
        args: Vec<ExprNode>,
        /// Span of the whole statement.
        span: Span,
    },
    /// A bare expression evaluated for effect.
    Exec(ExprNode),
    /// `assert expr` — one postcondition assertion.
    Assert(ExprNode, Span),
}

/// A literal value.
#[derive(Clone, PartialEq, Debug)]
pub enum Lit {
    /// `nil`
    Nil,
    /// `true` / `false`
    Bool(bool),
    /// Integer.
    Int(i64),
    /// String.
    Str(String),
    /// Symbol `:name`.
    Sym(String),
}

/// A spanned expression.
#[derive(Clone, PartialEq, Debug)]
pub struct ExprNode {
    /// The expression.
    pub kind: ExprKind,
    /// Source span.
    pub span: Span,
}

/// Surface expressions (a strict subset of λ_syn: no holes, no `let`/`if`
/// — specs are straight-line setup plus assertions).
#[derive(Clone, PartialEq, Debug)]
pub enum ExprKind {
    /// Literal.
    Lit(Lit),
    /// Variable reference (lowercase identifier).
    Var(String),
    /// Class constant used as a value (`User`).
    ClassRef(String),
    /// Method call `recv.m(args…)`; writer sugar `recv.f = e` parses as
    /// `recv.f=(e)` and index sugar `recv[k]` as `recv.[](k)`.
    Call {
        /// Receiver.
        recv: Box<ExprNode>,
        /// Method name.
        meth: String,
        /// Arguments.
        args: Vec<ExprNode>,
    },
    /// Hash literal `{k: e, …}` (symbol keys).
    HashLit(Vec<(String, Span, ExprNode)>),
    /// `!e`
    Not(Box<ExprNode>),
    /// `a || b`
    Or(Box<ExprNode>, Box<ExprNode>),
}

/// A spanned type expression.
#[derive(Clone, PartialEq, Debug)]
pub struct TypeExpr {
    /// The type.
    pub kind: TypeKind,
    /// Source span.
    pub span: Span,
}

/// Surface types.
#[derive(Clone, PartialEq, Debug)]
pub enum TypeKind {
    /// A named type: `Str`, `Int`, `Bool`, `Nil`, `Sym`, `Obj`, or a class
    /// name (instance type).
    Named(String),
    /// `Class<Name>` — the singleton class type.
    ClassOf(String, Span),
    /// `Array<Ty>`.
    ArrayOf(Box<TypeExpr>),
    /// Finite hash type `{k: Ty, j: ?Ty, …}` (`?` marks optional keys).
    Hash(Vec<HashFieldT>),
    /// Union `Ty or Ty`.
    Union(Vec<TypeExpr>),
}

/// One field of a finite hash type.
#[derive(Clone, PartialEq, Debug)]
pub struct HashFieldT {
    /// Key name.
    pub key: String,
    /// Span of the key.
    pub key_span: Span,
    /// `true` when written `?Ty`.
    pub optional: bool,
    /// Value type.
    pub ty: TypeExpr,
}
