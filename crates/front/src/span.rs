//! Byte spans and rendered diagnostics.
//!
//! Every token, AST node and lowering error carries a [`Span`] into the
//! original source; [`Diagnostic::render`] turns a span back into the
//! `file:line:column` + source-excerpt form compilers print.

use std::fmt;

/// A half-open byte range `[start, end)` into a source string.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct Span {
    /// First byte of the spanned text.
    pub start: usize,
    /// One past the last byte.
    pub end: usize,
}

impl Span {
    /// Builds a span.
    pub fn new(start: usize, end: usize) -> Span {
        Span { start, end }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

/// 1-based line and column of a byte offset (columns count characters, so
/// diagnostics stay aligned on multi-byte source).
pub fn line_col(source: &str, offset: usize) -> (usize, usize) {
    let offset = offset.min(source.len());
    let mut line = 1;
    let mut col = 1;
    for (i, c) in source.char_indices() {
        if i >= offset {
            break;
        }
        if c == '\n' {
            line += 1;
            col = 1;
        } else {
            col += 1;
        }
    }
    (line, col)
}

/// A parse or lowering error anchored to a source location.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Diagnostic {
    /// What went wrong.
    pub message: String,
    /// Where (into the source the file was parsed from).
    pub span: Span,
}

impl Diagnostic {
    /// Builds a diagnostic.
    pub fn new(message: impl Into<String>, span: Span) -> Diagnostic {
        Diagnostic {
            message: message.into(),
            span,
        }
    }

    /// Renders as `origin:line:col: message` followed by the offending
    /// source line with a caret run under the spanned text.
    pub fn render(&self, origin: &str, source: &str) -> String {
        let (line, col) = line_col(source, self.span.start);
        let mut out = format!("{origin}:{line}:{col}: error: {}\n", self.message);
        // The full source line containing the span start.
        let line_start = source[..self.span.start.min(source.len())]
            .rfind('\n')
            .map(|i| i + 1)
            .unwrap_or(0);
        let line_end = source[line_start..]
            .find('\n')
            .map(|i| line_start + i)
            .unwrap_or(source.len());
        let text = &source[line_start..line_end];
        out.push_str(&format!("{line:>5} | {text}\n"));
        // Both the padding and the caret run count *characters*, so the
        // underline stays aligned over multi-byte source.
        let span_start = self.span.start.min(source.len());
        let caret_len = source[span_start..self.span.end.min(line_end).max(span_start)]
            .chars()
            .count()
            .max(1);
        let pad: usize = source[line_start..span_start].chars().count();
        out.push_str(&format!(
            "      | {}{}\n",
            " ".repeat(pad),
            "^".repeat(caret_len)
        ));
        out
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} at bytes {}..{}",
            self.message, self.span.start, self.span.end
        )
    }
}

impl std::error::Error for Diagnostic {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_col_is_one_based() {
        let src = "ab\ncd\nef";
        assert_eq!(line_col(src, 0), (1, 1));
        assert_eq!(line_col(src, 1), (1, 2));
        assert_eq!(line_col(src, 3), (2, 1));
        assert_eq!(line_col(src, 7), (3, 2));
        assert_eq!(line_col(src, 999), (3, 3), "clamped to the end");
    }

    #[test]
    fn render_underlines_the_span() {
        let src = "model User do\n  nmae: Str\nend\n";
        let d = Diagnostic::new("unknown type", Span::new(22, 25));
        let r = d.render("x.rbspec", src);
        assert!(r.starts_with("x.rbspec:2:9: error: unknown type\n"), "{r}");
        assert!(r.contains("  nmae: Str"), "{r}");
        assert!(r.contains("        ^^^"), "{r}");
    }

    #[test]
    fn spans_join() {
        assert_eq!(Span::new(3, 5).to(Span::new(9, 12)), Span::new(3, 12));
    }

    #[test]
    fn carets_count_characters_not_bytes() {
        // `é` is two bytes; the span covers `éé` (4 bytes, 2 chars) after
        // a 2-char prefix — expect 2 spaces of padding and 2 carets.
        let src = "ab\u{e9}\u{e9}cd";
        let d = Diagnostic::new("boom", Span::new(2, 6));
        let r = d.render("x", src);
        assert!(r.contains("\n      |   ^^\n"), "{r}");
    }
}
