//! Textual spec frontend: parse `.rbspec` files into synthesis problems.
//!
//! RbSyn's input language is a Ruby DSL of typed, effect-annotated specs
//! (`define :name do spec … setup … postcond … end`, paper §4). This crate
//! gives the reproduction the same property — synthesis problems as *data*
//! — via a small textual format:
//!
//! ```text
//! model Issue do
//!   title: Str
//!   state: Str
//! end
//!
//! define close_issue(arg0: Str) -> Issue do
//!   consts base, "closed", Issue
//!
//!   spec "closing flips the state" do
//!     Issue.create({title: "Slow search", state: "opened"})
//!     issue = Issue.find_by({title: "Slow search"})
//!     updated = target("Slow search")
//!     assert updated.id == issue.id
//!     assert updated.state == "closed"
//!   end
//! end
//! ```
//!
//! The pipeline is `parse` (hand-written lexer + recursive descent, every
//! node span-carrying) → [`lower()`] (resolve names against a fresh
//! stdlib [`EnvBuilder`](rbsyn_stdlib::EnvBuilder), build the
//! [`SynthesisProblem`](rbsyn_core::SynthesisProblem) and
//! [`Options`](rbsyn_core::Options)) → a [`Lowered`] bundle ready to hand
//! to the synthesizer, the batch driver, or the benchmark registry.
//! Errors at either stage come back as [`Diagnostic`]s that render as
//! `file:line:col` plus a source excerpt.
//!
//! See the README's “`.rbspec` format reference” for the full grammar and
//! `benchmarks/*.rbspec` for the 19-benchmark corpus.

#![deny(missing_docs)]

pub mod ast;
pub mod lexer;
pub mod lower;
pub mod parser;
pub mod pretty;
pub mod span;

pub use ast::SpecFile;
pub use lower::{lower, Lowered};
pub use parser::parse;
pub use pretty::to_rbspec;
pub use span::{Diagnostic, Span};

use std::path::{Path, PathBuf};
use std::sync::Arc;

/// The conventional postcondition variable a bare `target(…)` binds
/// (`updated` in the paper's Fig. 1).
pub const RESULT_VAR: &str = "updated";

/// A parsed-and-lowered spec file, with enough context to re-lower (fresh
/// environments per run) and to render diagnostics.
pub struct LoadedSpec {
    /// Where the source came from (path or a caller-chosen label).
    pub origin: String,
    /// The raw source (kept for diagnostic rendering).
    pub source: String,
    /// The parsed file, shared so benchmark builders can re-lower it.
    pub file: Arc<SpecFile>,
    /// The first lowering's result (environment, problem, options, meta).
    pub lowered: Lowered,
}

impl LoadedSpec {
    /// A fresh environment + problem pair, re-lowered from the parsed AST
    /// exactly like benchmark registry builders rebuild their environments
    /// (environments must not leak state between runs).
    pub fn build(&self) -> (rbsyn_interp::InterpEnv, rbsyn_core::SynthesisProblem) {
        let lowered = lower::lower(&self.file).expect("re-lowering a validated file succeeds");
        (lowered.env, lowered.problem)
    }

    /// The benchmark id: metadata `id:` when present, else the origin's
    /// file stem.
    pub fn id(&self) -> String {
        if let Some(id) = &self.lowered.id {
            return id.clone();
        }
        Path::new(&self.origin)
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| self.origin.clone())
    }
}

/// Parses and lowers a source string. The error is fully rendered
/// (`origin:line:col: error: …` + excerpt), ready to print.
pub fn load_str(source: &str, origin: &str) -> Result<LoadedSpec, String> {
    let render = |d: Diagnostic| d.render(origin, source);
    let file = parse(source).map_err(render)?;
    let lowered = lower::lower(&file).map_err(render)?;
    Ok(LoadedSpec {
        origin: origin.to_owned(),
        source: source.to_owned(),
        file: Arc::new(file),
        lowered,
    })
}

/// Reads, parses and lowers one `.rbspec` file.
pub fn load_file(path: &Path) -> Result<LoadedSpec, String> {
    let source = std::fs::read_to_string(path)
        .map_err(|e| format!("{}: cannot read: {e}", path.display()))?;
    load_str(&source, &path.display().to_string())
}

/// Lists a directory's `.rbspec` files, sorted by file name for
/// determinism — the one corpus-walk rule every consumer (corpus loader,
/// `speccheck`, `trajectory`) shares.
///
/// # Errors
///
/// Unreadable directories and directories without any `.rbspec` file are
/// errors (a vanished corpus must never read as "nothing to check").
pub fn spec_paths(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("{}: cannot read directory: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|e| e == "rbspec"))
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(format!("{}: no .rbspec files found", dir.display()));
    }
    Ok(paths)
}

/// Like [`spec_paths`], but walks subdirectories too (depth-first,
/// children sorted by name), so nested corpora such as
/// `benchmarks/generated/` are found. Used by `speccheck`; the benchmark
/// registry stays non-recursive on purpose (the 19-benchmark corpus must
/// not silently absorb generated problems).
///
/// # Errors
///
/// Unreadable directories are errors; so is a walk that finds no
/// `.rbspec` file at all.
pub fn spec_paths_recursive(dir: &Path) -> Result<Vec<PathBuf>, String> {
    fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
            .map_err(|e| format!("{}: cannot read directory: {e}", dir.display()))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for p in entries {
            if p.is_dir() {
                walk(&p, out)?;
            } else if p.extension().is_some_and(|e| e == "rbspec") {
                out.push(p);
            }
        }
        Ok(())
    }
    let mut paths = Vec::new();
    walk(dir, &mut paths)?;
    if paths.is_empty() {
        return Err(format!(
            "{}: no .rbspec files found (recursive)",
            dir.display()
        ));
    }
    Ok(paths)
}

/// Loads every `.rbspec` file in a directory (via [`spec_paths`]).
/// Collects *all* failures instead of stopping at the first, so a corpus
/// lint reports every broken file in one pass.
///
/// # Errors
///
/// The error is the concatenation of every file's rendered diagnostics.
pub fn load_dir(dir: &Path) -> Result<Vec<LoadedSpec>, String> {
    let paths = spec_paths(dir)?;
    let mut specs = Vec::with_capacity(paths.len());
    let mut errors = String::new();
    for p in &paths {
        match load_file(p) {
            Ok(s) => specs.push(s),
            Err(e) => errors.push_str(&e),
        }
    }
    if errors.is_empty() {
        Ok(specs)
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINI: &str = r#"
model Issue do
  title: Str
  state: Str
end

define close_issue(arg0: Str) -> Issue do
  consts base, "closed", Issue

  spec "closing flips the state" do
    Issue.create({title: "Slow search", state: "opened"})
    issue = Issue.find_by({title: "Slow search"})
    updated = target("Slow search")
    assert updated.id == issue.id
    assert updated.state == "closed"
  end
end
"#;

    #[test]
    fn mini_file_loads() {
        let s = load_str(MINI, "mini.rbspec").expect("loads");
        assert_eq!(s.id(), "mini");
        assert_eq!(s.lowered.problem.name, "close_issue");
        assert_eq!(s.lowered.problem.specs.len(), 1);
        assert_eq!(
            s.lowered.problem.consts.len(),
            7,
            "base (5) + string + class"
        );
        s.lowered.problem.validate().expect("valid problem");
        // The environment knows the model.
        assert!(s.lowered.env.table.hierarchy.find("Issue").is_some());
    }

    #[test]
    fn rebuild_is_deterministic() {
        let s = load_str(MINI, "mini.rbspec").unwrap();
        let (env1, p1) = s.build();
        let (env2, p2) = s.build();
        assert_eq!(env1.table.fingerprint(), env2.table.fingerprint());
        assert_eq!(format!("{p1:?}"), format!("{p2:?}"));
    }

    #[test]
    fn recursive_walk_finds_nested_specs() {
        let root = std::env::temp_dir().join("rbsyn-front-recursive-test");
        let nested = root.join("sub").join("deeper");
        std::fs::create_dir_all(&nested).unwrap();
        std::fs::write(root.join("b.rbspec"), "x").unwrap();
        std::fs::write(root.join("a.rbspec"), "x").unwrap();
        std::fs::write(nested.join("c.rbspec"), "x").unwrap();
        std::fs::write(root.join("ignored.txt"), "x").unwrap();
        let found = spec_paths_recursive(&root).unwrap();
        let names: Vec<String> = found
            .iter()
            .map(|p| {
                p.strip_prefix(&root)
                    .unwrap()
                    .to_string_lossy()
                    .into_owned()
            })
            .collect();
        assert_eq!(names, ["a.rbspec", "b.rbspec", "sub/deeper/c.rbspec"]);
        // The non-recursive walk must not see the nested file.
        assert_eq!(spec_paths(&root).unwrap().len(), 2);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn errors_render_with_location() {
        let Err(err) = load_str("model Issue do\n  title: Strr\nend\ndefine m() -> Bool do\n  spec \"s\" do\n    updated = target()\n    assert updated\n  end\nend\n", "x.rbspec") else {
            panic!("expected a diagnostic")
        };
        assert!(err.contains("x.rbspec:2:10"), "{err}");
        assert!(err.contains("unknown type `Strr`"), "{err}");
    }
}
