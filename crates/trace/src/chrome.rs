//! Chrome trace-event JSON export (the "JSON Array Format" with the
//! object envelope), loadable in Perfetto and `chrome://tracing`.
//!
//! One process (`pid` 1), one Chrome thread per [`ThreadTrack`]. Span
//! begin/end pairs become `B`/`E` events, instants become `i` (thread
//! scope), counter samples become `C`. Timestamps are microseconds with
//! nanosecond precision kept in the fractional part. Hand-rolled like
//! every other JSON writer in the workspace — no serializer dependency.

use crate::{Event, EventKind, Trace};
use std::fmt::Write as _;

/// Escapes `s` as JSON string *content* (no surrounding quotes).
pub(crate) fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Nanoseconds → microsecond timestamp string (`123.456`).
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

fn meta_event(out: &mut String, name: &str, tid: u64, value: &str) {
    let _ = write!(
        out,
        "{{\"ph\":\"M\",\"name\":\"{name}\",\"pid\":1,\"tid\":{tid},\
         \"args\":{{\"name\":\"{}\"}}}}",
        esc(value)
    );
}

impl Trace {
    /// Renders the trace as Chrome trace-event JSON. `meta` lands in the
    /// envelope's `otherData` (benchmark id, host facts, …). Unbalanced
    /// spans are repaired: a stray close is skipped, a span still open at
    /// the end of its track is closed at the track's last timestamp — the
    /// export never produces an event stream a viewer rejects.
    pub fn to_chrome_json(&self, meta: &[(&str, &str)]) -> String {
        let mut out = String::new();
        out.push_str("{\"displayTimeUnit\":\"ms\",\"otherData\":{");
        let _ = write!(out, "\"dropped_events\":\"{}\"", self.dropped);
        for (k, v) in meta {
            let _ = write!(out, ",\"{}\":\"{}\"", esc(k), esc(v));
        }
        out.push_str("},\"traceEvents\":[");
        let mut first = true;
        let mut push = |out: &mut String, ev: &str| {
            if !std::mem::take(&mut first) {
                out.push(',');
            }
            out.push_str(ev);
        };
        {
            let mut m = String::new();
            meta_event(&mut m, "process_name", 0, "rbsyn");
            push(&mut out, &m);
        }
        for track in &self.tracks {
            let mut m = String::new();
            meta_event(&mut m, "thread_name", track.tid, &track.name);
            push(&mut out, &m);
            // Name stack: E events echo the matching B's name, and spans
            // left open (a search cut short by a panic-path flush) are
            // closed at the track's final timestamp.
            let mut open: Vec<&str> = Vec::new();
            let last_ts = track.events.last().map_or(0, |e| e.ts);
            for Event { ts, kind } in &track.events {
                let tid = track.tid;
                let ts = us(*ts);
                match kind {
                    EventKind::Begin { name, detail } => {
                        open.push(name);
                        let args = match detail {
                            Some(d) => format!(",\"args\":{{\"detail\":\"{}\"}}", esc(d)),
                            None => String::new(),
                        };
                        push(
                            &mut out,
                            &format!(
                                "{{\"ph\":\"B\",\"name\":\"{name}\",\"cat\":\"phase\",\
                                 \"pid\":1,\"tid\":{tid},\"ts\":{ts}{args}}}"
                            ),
                        );
                    }
                    EventKind::End => {
                        let Some(name) = open.pop() else { continue };
                        push(
                            &mut out,
                            &format!(
                                "{{\"ph\":\"E\",\"name\":\"{name}\",\"cat\":\"phase\",\
                                 \"pid\":1,\"tid\":{tid},\"ts\":{ts}}}"
                            ),
                        );
                    }
                    EventKind::Instant(name) => push(
                        &mut out,
                        &format!(
                            "{{\"ph\":\"i\",\"name\":\"{name}\",\"cat\":\"mark\",\"s\":\"t\",\
                             \"pid\":1,\"tid\":{tid},\"ts\":{ts}}}"
                        ),
                    ),
                    EventKind::Counter {
                        track: ctrack,
                        values,
                    } => {
                        let mut args = String::new();
                        for (i, (k, v)) in values.iter().enumerate() {
                            if i > 0 {
                                args.push(',');
                            }
                            let _ = write!(args, "\"{k}\":{v}");
                        }
                        push(
                            &mut out,
                            &format!(
                                "{{\"ph\":\"C\",\"name\":\"{ctrack}\",\"pid\":1,\
                                 \"tid\":{tid},\"ts\":{ts},\"args\":{{{args}}}}}"
                            ),
                        );
                    }
                }
            }
            while let Some(name) = open.pop() {
                push(
                    &mut out,
                    &format!(
                        "{{\"ph\":\"E\",\"name\":\"{name}\",\"cat\":\"phase\",\
                         \"pid\":1,\"tid\":{},\"ts\":{}}}",
                        track.tid,
                        us(last_ts)
                    ),
                );
            }
        }
        out.push_str("]}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Mark, Phase, Session, TraceConfig};

    #[test]
    fn escaping_covers_quotes_backslashes_and_controls() {
        assert_eq!(esc("a\"b"), "a\\\"b");
        assert_eq!(esc("a\\b"), "a\\\\b");
        assert_eq!(esc("a\nb\tc"), "a\\nb\\tc");
        assert_eq!(esc("\u{1}"), "\\u0001");
    }

    #[test]
    fn detail_strings_are_escaped_into_valid_json() {
        let s = Session::new(TraceConfig::default());
        {
            let _sp = s.span_with(Phase::Generate, Some("Array<\"x\">\n".to_owned()));
            s.mark(Mark::OracleRun);
        }
        let json = s.finish().to_chrome_json(&[("quote\"key", "va\\lue")]);
        let summary = crate::schema::check_chrome_trace(&json).expect("valid JSON");
        assert!(summary.span_names.contains("generate"));
    }

    #[test]
    fn unbalanced_spans_are_repaired() {
        let s = Session::new(TraceConfig::default());
        let sp = s.span(Phase::Merge);
        std::mem::forget(sp); // simulate a span never closed
        let json = s.finish().to_chrome_json(&[]);
        let b = json.matches("\"ph\":\"B\"").count();
        let e = json.matches("\"ph\":\"E\"").count();
        assert_eq!(b, e, "open spans are closed at track end");
        crate::schema::check_chrome_trace(&json).expect("valid after repair");
    }
}
