//! Search-event tracing for the synthesis engine.
//!
//! A [`Session`] collects timestamped events — RAII phase [`Span`]s,
//! instant [`Mark`]s, and counter samples — from every thread that touches
//! a synthesis run, and turns them into two exports: Chrome trace-event
//! JSON ([`Trace::to_chrome_json`], loadable in Perfetto or
//! `chrome://tracing`, one track per thread) and a compact aggregated
//! self/total-time profile per phase and goal type ([`Trace::profile`]).
//!
//! ## Recording model
//!
//! Threads never contend while recording. Each thread owns a
//! **thread-local ring buffer** ([`TraceConfig::capacity`] events,
//! wraparound drops the *oldest* and counts them) and pushes events with
//! plain `RefCell` access — no atomics, no locks, no allocation beyond
//! the ring itself. Buffers drain into the session's collector (the only
//! lock, taken once per flush, never per event) at explicit boundaries:
//! the end of every executor task, speculation-worker shutdown, batch-job
//! completion, and [`Session::finish`] on the coordinating thread. The
//! engine holds the session as an `Option`: with tracing off every
//! instrumentation site is one `None` check, so tracing off is zero-cost
//! and — because recording only *reads* engine state — tracing on leaves
//! synthesized programs and effort counters byte-identical.
//!
//! ## Timestamps
//!
//! A session carries one monotonic epoch ([`std::time::Instant`] captured
//! at construction); every event stores nanoseconds since that epoch, so
//! tracks from different threads share a timeline without clock math.

#![deny(missing_docs)]

mod chrome;
mod profile;
pub mod schema;

pub use profile::{Profile, ProfileRow};

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::time::Instant;

/// Tracing knobs, carried by the engine's `Options::trace`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceConfig {
    /// Candidate-lifecycle sampling stride: hot per-candidate events
    /// (frontier pops, expansions, oracle runs, obs-equiv prunes) are
    /// recorded every `sample`-th occurrence, counting from the first.
    /// Phase spans and counter samples are never sampled away. Clamped to
    /// at least 1.
    pub sample: u64,
    /// Per-thread ring capacity in events; when a thread records more
    /// than this between flushes, the oldest events are dropped (and
    /// counted in [`Trace::dropped`]).
    pub capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> TraceConfig {
        TraceConfig {
            sample: 64,
            capacity: 1 << 16,
        }
    }
}

impl TraceConfig {
    /// A config with the given sampling stride and the default capacity.
    pub fn with_sample(sample: u64) -> TraceConfig {
        TraceConfig {
            sample,
            ..TraceConfig::default()
        }
    }
}

/// The engine phases a [`Span`] can cover. A closed set of static names:
/// recording a span never formats or allocates for its name.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// One whole synthesis run.
    Solve,
    /// A per-spec work-list search (phase 1).
    Generate,
    /// Guard covering inside the merge (quick passers + pool queries).
    Guard,
    /// Interpreter-backed oracle evaluation (sampled per candidate).
    Eval,
    /// Merging per-spec solutions into one branching program (phase 2).
    Merge,
    /// A speculative per-spec search task on an executor thread.
    SpecSearch,
}

impl Phase {
    /// The stable span name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Solve => "solve",
            Phase::Generate => "generate",
            Phase::Guard => "guard",
            Phase::Eval => "eval",
            Phase::Merge => "merge",
            Phase::SpecSearch => "spec_search",
        }
    }
}

/// Instant events — points on the timeline, no duration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mark {
    /// A work-list pop (sampled).
    FrontierPop,
    /// A one-step candidate expansion (sampled).
    Expand,
    /// A frontier item pruned by observational equivalence (sampled).
    ObsPrune,
    /// An interpreter-backed oracle judgement (sampled).
    OracleRun,
    /// A memo answered a search request (expansion list, verdict, …).
    CacheHit,
    /// A guard-pool covering query (lazy stream advance or count).
    CoveringQuery,
    /// The deadline/cancellation poll fired and stopped a search.
    DeadlineHit,
}

impl Mark {
    /// The stable event name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            Mark::FrontierPop => "frontier_pop",
            Mark::Expand => "expand",
            Mark::ObsPrune => "obs_prune",
            Mark::OracleRun => "oracle_run",
            Mark::CacheHit => "cache_hit",
            Mark::CoveringQuery => "covering_query",
            Mark::DeadlineHit => "deadline_hit",
        }
    }
}

/// What one recorded event is.
#[derive(Clone, Debug)]
pub enum EventKind {
    /// A span opened (closed by the matching [`EventKind::End`] on the
    /// same thread). `detail` refines the phase — e.g. the goal type of a
    /// `generate` span — and feeds the per-goal-type profile rows.
    Begin {
        /// Phase name (static; see [`Phase::name`]).
        name: &'static str,
        /// Optional refinement (goal type, spec name).
        detail: Option<Box<str>>,
    },
    /// The innermost open span on this thread closed.
    End,
    /// An instant event (see [`Mark::name`]).
    Instant(&'static str),
    /// A counter sample: one named track, a snapshot of named values.
    Counter {
        /// Counter-track name (`search-stats`, `lock-contention`).
        track: &'static str,
        /// `(series, value)` pairs, exported as the sample's args.
        values: Box<[(&'static str, u64)]>,
    },
}

/// One recorded event: nanoseconds since the session epoch plus payload.
#[derive(Clone, Debug)]
pub struct Event {
    /// Nanoseconds since [`Session`] construction.
    pub ts: u64,
    /// Payload.
    pub kind: EventKind,
}

/// A bounded FIFO of events: wraparound drops the oldest.
struct Ring {
    buf: VecDeque<Event>,
    cap: usize,
    dropped: u64,
}

impl Ring {
    fn new(cap: usize) -> Ring {
        Ring {
            buf: VecDeque::with_capacity(cap.clamp(1, 1024)),
            cap: cap.max(1),
            dropped: 0,
        }
    }

    fn push(&mut self, ev: Event) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(ev);
    }
}

/// One thread's drained events.
struct Chunk {
    tid: u64,
    name: String,
    events: Vec<Event>,
    dropped: u64,
}

struct Inner {
    /// Distinguishes sessions so a pooled thread whose local buffer
    /// belongs to a finished session re-registers with the live one.
    id: u64,
    epoch: Instant,
    cfg: TraceConfig,
    next_tid: AtomicU64,
    done: Mutex<Vec<Chunk>>,
}

/// A live tracing session. Cheap to clone (an `Arc`); the engine threads
/// record through clones and the owner calls [`Session::finish`] once.
#[derive(Clone)]
pub struct Session {
    inner: Arc<Inner>,
}

thread_local! {
    static LOCAL: RefCell<Option<LocalBuf>> = const { RefCell::new(None) };
}

struct LocalBuf {
    session: Weak<Inner>,
    session_id: u64,
    tid: u64,
    name: String,
    ring: Ring,
}

impl LocalBuf {
    /// Drains the ring into the owning session's collector (a no-op when
    /// the session is gone). The buffer stays registered so the thread
    /// keeps its track id across flushes.
    fn flush(&mut self) {
        if self.ring.buf.is_empty() && self.ring.dropped == 0 {
            return;
        }
        let Some(inner) = self.session.upgrade() else {
            self.ring.buf.clear();
            self.ring.dropped = 0;
            return;
        };
        let events: Vec<Event> = self.ring.buf.drain(..).collect();
        let dropped = std::mem::take(&mut self.ring.dropped);
        inner.done.lock().expect("trace collector").push(Chunk {
            tid: self.tid,
            name: self.name.clone(),
            events,
            dropped,
        });
    }
}

static NEXT_SESSION: AtomicU64 = AtomicU64::new(1);

impl Session {
    /// Opens a session; its epoch is *now*.
    pub fn new(cfg: TraceConfig) -> Session {
        Session {
            inner: Arc::new(Inner {
                id: NEXT_SESSION.fetch_add(1, Ordering::Relaxed),
                epoch: Instant::now(),
                cfg: TraceConfig {
                    sample: cfg.sample.max(1),
                    capacity: cfg.capacity.max(1),
                },
                next_tid: AtomicU64::new(0),
                done: Mutex::new(Vec::new()),
            }),
        }
    }

    /// The session's config (sampling stride clamped to ≥ 1).
    pub fn config(&self) -> &TraceConfig {
        &self.inner.cfg
    }

    /// Is the `n`-th occurrence (0-based) of a sampled event recorded?
    /// Always true for `n = 0`, so every sampled series shows at least
    /// its first instance.
    pub fn sampled(&self, n: u64) -> bool {
        n.is_multiple_of(self.inner.cfg.sample)
    }

    fn now(&self) -> u64 {
        self.inner.epoch.elapsed().as_nanos() as u64
    }

    fn record(&self, kind: EventKind) {
        let ts = self.now();
        LOCAL.with(|slot| {
            let mut slot = slot.borrow_mut();
            let reinit = match slot.as_ref() {
                Some(buf) => buf.session_id != self.inner.id,
                None => true,
            };
            if reinit {
                if let Some(mut old) = slot.take() {
                    old.flush();
                }
                let tid = self.inner.next_tid.fetch_add(1, Ordering::Relaxed);
                let name = std::thread::current()
                    .name()
                    .map(str::to_owned)
                    .unwrap_or_else(|| format!("thread-{tid}"));
                *slot = Some(LocalBuf {
                    session: Arc::downgrade(&self.inner),
                    session_id: self.inner.id,
                    tid,
                    name,
                    ring: Ring::new(self.inner.cfg.capacity),
                });
            }
            if let Some(buf) = slot.as_mut() {
                buf.ring.push(Event { ts, kind });
            }
        });
    }

    /// Opens a phase span; it closes when the guard drops.
    #[must_use = "the span closes when the guard drops"]
    pub fn span(&self, phase: Phase) -> Span {
        self.span_with(phase, None)
    }

    /// Opens a phase span refined by a detail string (e.g. the goal type
    /// of a `generate` span). The allocation happens only with tracing on.
    #[must_use = "the span closes when the guard drops"]
    pub fn span_with(&self, phase: Phase, detail: Option<String>) -> Span {
        self.record(EventKind::Begin {
            name: phase.name(),
            detail: detail.map(String::into_boxed_str),
        });
        Span {
            session: self.clone(),
        }
    }

    /// Records an instant event.
    pub fn mark(&self, m: Mark) {
        self.record(EventKind::Instant(m.name()));
    }

    /// Records a counter sample on the named track.
    pub fn counter(&self, track: &'static str, values: &[(&'static str, u64)]) {
        self.record(EventKind::Counter {
            track,
            values: values.to_vec().into_boxed_slice(),
        });
    }

    /// Emits a synthetic track of back-to-back spans from externally
    /// measured per-phase totals (the run's wall-clock decomposition).
    /// Guarantees every listed phase appears as a span in the export even
    /// when live sampling saw none of its work — e.g. a single-spec
    /// problem whose merge is instantaneous.
    pub fn phase_totals(&self, track: &str, totals: &[(Phase, u64)]) {
        let mut events = Vec::with_capacity(totals.len() * 2);
        let mut at = 0u64;
        for &(phase, ns) in totals {
            events.push(Event {
                ts: at,
                kind: EventKind::Begin {
                    name: phase.name(),
                    detail: None,
                },
            });
            at = at.saturating_add(ns);
            events.push(Event {
                ts: at,
                kind: EventKind::End,
            });
        }
        let tid = self.inner.next_tid.fetch_add(1, Ordering::Relaxed);
        self.inner
            .done
            .lock()
            .expect("trace collector")
            .push(Chunk {
                tid,
                name: track.to_owned(),
                events,
                dropped: 0,
            });
    }

    /// Flushes the calling thread's buffer and collects every drained
    /// chunk into a [`Trace`]. Threads that recorded but have not flushed
    /// (none, once the engine's task/worker/job boundaries are honoured)
    /// contribute nothing.
    pub fn finish(&self) -> Trace {
        flush_current_thread();
        let mut chunks: Vec<Chunk> =
            std::mem::take(&mut *self.inner.done.lock().expect("trace collector"));
        chunks.sort_by_key(|c| c.tid);
        let mut tracks: Vec<ThreadTrack> = Vec::new();
        let mut dropped = 0u64;
        for c in chunks {
            dropped += c.dropped;
            match tracks.last_mut() {
                Some(t) if t.tid == c.tid => t.events.extend(c.events),
                _ => tracks.push(ThreadTrack {
                    tid: c.tid,
                    name: c.name,
                    events: c.events,
                }),
            }
        }
        Trace { tracks, dropped }
    }
}

/// Flushes the calling thread's local buffer into its session, if it has
/// one. The engine calls this at task, worker and job boundaries; with
/// tracing off (no local buffer) it is one thread-local `None` check.
pub fn flush_current_thread() {
    LOCAL.with(|slot| {
        if let Some(buf) = slot.borrow_mut().as_mut() {
            buf.flush();
        }
    });
}

/// RAII guard for a phase span; records the close on drop.
pub struct Span {
    session: Session,
}

impl Drop for Span {
    fn drop(&mut self) {
        self.session.record(EventKind::End);
    }
}

/// One thread's chronological event track.
pub struct ThreadTrack {
    /// Session-scoped track id (registration order).
    pub tid: u64,
    /// Thread (or synthetic track) name.
    pub name: String,
    /// Events in recording order.
    pub events: Vec<Event>,
}

/// A finished session's collected events, ready for export.
pub struct Trace {
    /// Per-thread tracks, ordered by track id.
    pub tracks: Vec<ThreadTrack>,
    /// Events lost to ring wraparound, across all threads.
    pub dropped: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_wraparound_drops_oldest() {
        let mut r = Ring::new(3);
        for i in 0..10u64 {
            r.push(Event {
                ts: i,
                kind: EventKind::Instant("x"),
            });
        }
        assert_eq!(r.dropped, 7);
        let kept: Vec<u64> = r.buf.iter().map(|e| e.ts).collect();
        assert_eq!(kept, vec![7, 8, 9], "the oldest events are dropped");
    }

    #[test]
    fn session_collects_and_counts_drops() {
        let s = Session::new(TraceConfig {
            sample: 1,
            capacity: 4,
        });
        for _ in 0..9 {
            s.mark(Mark::FrontierPop);
        }
        let t = s.finish();
        assert_eq!(t.dropped, 5);
        assert_eq!(t.tracks.len(), 1);
        assert_eq!(t.tracks[0].events.len(), 4);
    }

    #[test]
    fn sampling_counts_from_the_first() {
        let s = Session::new(TraceConfig::with_sample(64));
        assert!(s.sampled(0), "first occurrence always recorded");
        assert!(!s.sampled(1));
        assert!(s.sampled(64));
        let every = Session::new(TraceConfig::with_sample(0));
        assert!(every.sampled(7), "stride clamps to 1");
    }

    #[test]
    fn cross_thread_flush_lands_in_one_trace() {
        let s = Session::new(TraceConfig::default());
        s.mark(Mark::CacheHit);
        let s2 = s.clone();
        std::thread::spawn(move || {
            s2.mark(Mark::Expand);
            flush_current_thread();
        })
        .join()
        .unwrap();
        let t = s.finish();
        assert_eq!(t.tracks.len(), 2, "each thread is its own track");
        assert_eq!(t.dropped, 0);
    }

    #[test]
    fn phase_totals_make_a_synthetic_track() {
        let s = Session::new(TraceConfig::default());
        s.phase_totals(
            "phase-totals",
            &[(Phase::Generate, 5), (Phase::Merge, 0), (Phase::Eval, 2)],
        );
        let t = s.finish();
        assert_eq!(t.tracks.len(), 1);
        assert_eq!(t.tracks[0].name, "phase-totals");
        assert_eq!(t.tracks[0].events.len(), 6, "a begin/end pair per phase");
    }
}
