//! The aggregated self/total-time profile: spans folded per phase (and
//! per detail — the goal type of `generate` spans), plus instant-event
//! counts. The compact companion to the Chrome export: one table instead
//! of a timeline, for terminals and CI logs.

use crate::{Event, EventKind, Trace};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One profile row: a span name (with optional detail) aggregated across
/// every occurrence on every thread.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProfileRow {
    /// `phase` or `phase [detail]`.
    pub name: String,
    /// Completed (or repair-closed) spans folded in.
    pub count: u64,
    /// Wall-clock nanoseconds between begin and end, summed.
    pub total_ns: u64,
    /// Total minus time spent in child spans on the same thread.
    pub self_ns: u64,
}

/// A rendered-ready aggregation of a [`Trace`].
#[derive(Clone, Debug, Default)]
pub struct Profile {
    /// Span rows, widest total first.
    pub rows: Vec<ProfileRow>,
    /// Instant-event counts by name (sampled series undercount by design).
    pub marks: Vec<(String, u64)>,
}

#[derive(Default)]
struct Agg {
    count: u64,
    total_ns: u64,
    self_ns: u64,
}

struct Open {
    key: String,
    start: u64,
    child_ns: u64,
}

impl Trace {
    /// Aggregates span self/total times per `phase [detail]` key and
    /// counts instant events. Span nesting is resolved per thread: a
    /// parent's self time excludes its children's totals; spans left open
    /// close at their track's last timestamp (mirroring the Chrome
    /// export's repair).
    pub fn profile(&self) -> Profile {
        let mut spans: BTreeMap<String, Agg> = BTreeMap::new();
        let mut marks: BTreeMap<String, u64> = BTreeMap::new();
        for track in &self.tracks {
            let mut stack: Vec<Open> = Vec::new();
            let last_ts = track.events.last().map_or(0, |e| e.ts);
            let close = |stack: &mut Vec<Open>, spans: &mut BTreeMap<String, Agg>, ts: u64| {
                let Some(open) = stack.pop() else { return };
                let total = ts.saturating_sub(open.start);
                let row = spans.entry(open.key).or_default();
                row.count += 1;
                row.total_ns += total;
                row.self_ns += total.saturating_sub(open.child_ns);
                if let Some(parent) = stack.last_mut() {
                    parent.child_ns += total;
                }
            };
            for Event { ts, kind } in &track.events {
                match kind {
                    EventKind::Begin { name, detail } => {
                        let key = match detail {
                            Some(d) => format!("{name} [{d}]"),
                            None => (*name).to_owned(),
                        };
                        stack.push(Open {
                            key,
                            start: *ts,
                            child_ns: 0,
                        });
                    }
                    EventKind::End => close(&mut stack, &mut spans, *ts),
                    EventKind::Instant(name) => {
                        *marks.entry((*name).to_owned()).or_default() += 1;
                    }
                    EventKind::Counter { .. } => {}
                }
            }
            while !stack.is_empty() {
                close(&mut stack, &mut spans, last_ts);
            }
        }
        let mut rows: Vec<ProfileRow> = spans
            .into_iter()
            .map(|(name, a)| ProfileRow {
                name,
                count: a.count,
                total_ns: a.total_ns,
                self_ns: a.self_ns,
            })
            .collect();
        rows.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(&b.name)));
        Profile {
            rows,
            marks: marks.into_iter().collect(),
        }
    }
}

fn secs(ns: u64) -> String {
    format!("{:.3}s", ns as f64 / 1e9)
}

impl Profile {
    /// Renders the profile as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let width = self
            .rows
            .iter()
            .map(|r| r.name.len())
            .chain(self.marks.iter().map(|(n, _)| n.len()))
            .max()
            .unwrap_or(5)
            .max(5);
        let _ = writeln!(
            out,
            "{:<width$}  {:>7}  {:>10}  {:>10}",
            "phase", "count", "total", "self"
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{:<width$}  {:>7}  {:>10}  {:>10}",
                r.name,
                r.count,
                secs(r.total_ns),
                secs(r.self_ns)
            );
        }
        for (name, count) in &self.marks {
            let _ = writeln!(out, "{name:<width$}  {count:>7}  {:>10}  {:>10}", "-", "-");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EventKind, ThreadTrack};

    fn begin(ts: u64, name: &'static str) -> Event {
        Event {
            ts,
            kind: EventKind::Begin { name, detail: None },
        }
    }

    fn end(ts: u64) -> Event {
        Event {
            ts,
            kind: EventKind::End,
        }
    }

    #[test]
    fn nesting_splits_self_from_total() {
        let trace = Trace {
            tracks: vec![ThreadTrack {
                tid: 0,
                name: "main".into(),
                events: vec![begin(0, "merge"), begin(10, "guard"), end(40), end(100)],
            }],
            dropped: 0,
        };
        let p = trace.profile();
        let merge = p.rows.iter().find(|r| r.name == "merge").unwrap();
        let guard = p.rows.iter().find(|r| r.name == "guard").unwrap();
        assert_eq!(merge.total_ns, 100);
        assert_eq!(merge.self_ns, 70, "child guard time excluded");
        assert_eq!(guard.total_ns, 30);
        assert_eq!(guard.self_ns, 30);
    }

    #[test]
    fn detail_makes_a_distinct_row_and_render_aligns() {
        let trace = Trace {
            tracks: vec![ThreadTrack {
                tid: 0,
                name: "main".into(),
                events: vec![
                    Event {
                        ts: 0,
                        kind: EventKind::Begin {
                            name: "generate",
                            detail: Some("Bool".into()),
                        },
                    },
                    end(5),
                    begin(6, "generate"),
                    // left open: closes at last ts (8)
                    Event {
                        ts: 8,
                        kind: EventKind::Instant("frontier_pop"),
                    },
                ],
            }],
            dropped: 0,
        };
        let p = trace.profile();
        assert!(p.rows.iter().any(|r| r.name == "generate [Bool]"));
        assert!(p
            .rows
            .iter()
            .any(|r| r.name == "generate" && r.total_ns == 2));
        assert_eq!(p.marks, vec![("frontier_pop".to_owned(), 1)]);
        let rendered = p.render();
        assert!(rendered.contains("generate [Bool]"));
        assert!(rendered.contains("frontier_pop"));
    }
}
