//! A small schema checker for Chrome trace-event JSON.
//!
//! The workspace writes all its JSON by hand, so it validates it the same
//! way: a minimal recursive-descent JSON parser (values only, no
//! serde-style binding) plus the structural rules a trace viewer relies
//! on — `traceEvents` array, known `ph` types, numeric `pid`/`tid`/`ts`,
//! named begin/instant/counter events, and begin/end balance per thread.
//! `solve --trace` self-checks its output through this module and the CI
//! `trace` leg re-checks the artifact with the `tracecheck` binary.

use std::collections::BTreeSet;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (duplicate keys kept).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn is_num(&self) -> bool {
        matches!(self, Json::Num(_))
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("JSON parse error at byte {}: {msg}", self.i)
    }

    fn skip_ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", c as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.i += 1;
            } else {
                break;
            }
        }
        let s = std::str::from_utf8(&self.b[start..self.i]).map_err(|_| self.err("bad utf8"))?;
        s.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(&format!("bad number {s:?}")))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.i += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(e) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.i += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                if self.b[self.i..].starts_with(b"\\u") {
                                    self.i += 2;
                                    let lo = self.hex4()?;
                                    let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(c)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(ch.ok_or_else(|| self.err("bad \\u escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                c if c < 0x20 => return Err(self.err("raw control char in string")),
                c if c < 0x80 => out.push(c as char),
                _ => {
                    // Multi-byte UTF-8: copy the sequence through.
                    let start = self.i - 1;
                    while self.peek().is_some_and(|b| b & 0xC0 == 0x80) {
                        self.i += 1;
                    }
                    let s = std::str::from_utf8(&self.b[start..self.i])
                        .map_err(|_| self.err("bad utf8 in string"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        if self.i + 4 > self.b.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.b[self.i..self.i + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.i += 4;
        Ok(v)
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Parses a complete JSON document (rejecting trailing garbage).
///
/// # Errors
///
/// A human-readable message with the failing byte offset.
pub fn parse(src: &str) -> Result<Json, String> {
    let mut p = Parser {
        b: src.as_bytes(),
        i: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.i != p.b.len() {
        return Err(p.err("trailing data after document"));
    }
    Ok(v)
}

/// What [`check_chrome_trace`] learned about a valid trace.
#[derive(Clone, Debug, Default)]
pub struct TraceSummary {
    /// Total events in `traceEvents`.
    pub events: usize,
    /// Distinct duration-span names (`B`/`X` events).
    pub span_names: BTreeSet<String>,
    /// Distinct counter-track names (`C` events).
    pub counter_tracks: BTreeSet<String>,
    /// Distinct `(pid, tid)` pairs seen.
    pub threads: usize,
}

const PHASES: [&str; 6] = ["B", "E", "X", "i", "C", "M"];

/// Validates Chrome trace-event JSON and summarizes its contents.
///
/// # Errors
///
/// The first structural violation, with the offending event index.
pub fn check_chrome_trace(src: &str) -> Result<TraceSummary, String> {
    let doc = parse(src)?;
    let Some(Json::Arr(events)) = doc.get("traceEvents") else {
        return Err("top-level object must carry a \"traceEvents\" array".to_owned());
    };
    let mut summary = TraceSummary {
        events: events.len(),
        ..TraceSummary::default()
    };
    let mut threads: BTreeSet<(u64, u64)> = BTreeSet::new();
    // Begin/end nesting depth per (pid, tid).
    let mut depth: std::collections::BTreeMap<(u64, u64), i64> = Default::default();
    for (i, ev) in events.iter().enumerate() {
        let fail = |msg: &str| Err(format!("event {i}: {msg}"));
        if !matches!(ev, Json::Obj(_)) {
            return fail("not an object");
        }
        let Some(ph) = ev.get("ph").and_then(Json::as_str) else {
            return fail("missing \"ph\"");
        };
        if !PHASES.contains(&ph) {
            return fail(&format!("unknown phase type {ph:?}"));
        }
        let num = |key: &str| -> Result<u64, String> {
            match ev.get(key) {
                Some(Json::Num(n)) if *n >= 0.0 => Ok(*n as u64),
                Some(Json::Num(_)) => Err(format!("event {i}: negative \"{key}\"")),
                _ => Err(format!("event {i}: missing numeric \"{key}\"")),
            }
        };
        let pid = num("pid")?;
        let tid = num("tid")?;
        threads.insert((pid, tid));
        if ph != "M" {
            num("ts")?;
        }
        let name = ev.get("name").and_then(Json::as_str);
        if name.is_none() && ph != "E" {
            return fail("missing \"name\"");
        }
        match ph {
            "B" => {
                summary.span_names.insert(name.unwrap().to_owned());
                *depth.entry((pid, tid)).or_default() += 1;
            }
            "E" => {
                let d = depth.entry((pid, tid)).or_default();
                *d -= 1;
                if *d < 0 {
                    return fail("end without a matching begin on its thread");
                }
            }
            "X" => {
                num("dur")?;
                summary.span_names.insert(name.unwrap().to_owned());
            }
            "C" => {
                summary.counter_tracks.insert(name.unwrap().to_owned());
                match ev.get("args") {
                    Some(Json::Obj(members)) if !members.is_empty() => {
                        if members.iter().any(|(_, v)| !v.is_num()) {
                            return fail("counter args must be numeric");
                        }
                    }
                    _ => return fail("counter needs a non-empty \"args\" object"),
                }
            }
            "i" | "M" => {}
            _ => unreachable!(),
        }
    }
    if let Some(((pid, tid), d)) = depth.iter().find(|(_, d)| **d != 0) {
        return Err(format!(
            "thread ({pid},{tid}) ends with unbalanced span depth {d}"
        ));
    }
    summary.threads = threads.len();
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_arrays_objects_and_escapes() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(
            parse(" [1, 2.5, -3e2] ").unwrap(),
            Json::Arr(vec![Json::Num(1.0), Json::Num(2.5), Json::Num(-300.0)])
        );
        let obj = parse(r#"{"a": "x\n\"y\"", "b": true}"#).unwrap();
        assert_eq!(obj.get("a").unwrap(), &Json::Str("x\n\"y\"".to_owned()));
        assert_eq!(parse(r#""é😀""#).unwrap(), Json::Str("é😀".to_owned()));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
    }

    #[test]
    fn accepts_a_minimal_trace_and_reports_contents() {
        let src = r#"{"traceEvents":[
            {"ph":"B","name":"generate","pid":1,"tid":0,"ts":0.0},
            {"ph":"i","name":"frontier_pop","s":"t","pid":1,"tid":0,"ts":1.0},
            {"ph":"C","name":"search-stats","pid":1,"tid":0,"ts":2.0,"args":{"popped":3}},
            {"ph":"E","pid":1,"tid":0,"ts":5.0}
        ]}"#;
        let s = check_chrome_trace(src).unwrap();
        assert_eq!(s.events, 4);
        assert!(s.span_names.contains("generate"));
        assert!(s.counter_tracks.contains("search-stats"));
        assert_eq!(s.threads, 1);
    }

    #[test]
    fn rejects_unbalanced_and_untyped_events() {
        let unbalanced = r#"{"traceEvents":[{"ph":"E","pid":1,"tid":0,"ts":1.0}]}"#;
        assert!(check_chrome_trace(unbalanced)
            .unwrap_err()
            .contains("without a matching begin"));
        let open = r#"{"traceEvents":[{"ph":"B","name":"x","pid":1,"tid":0,"ts":1.0}]}"#;
        assert!(check_chrome_trace(open).unwrap_err().contains("unbalanced"));
        let bad_ph = r#"{"traceEvents":[{"ph":"Z","name":"x","pid":1,"tid":0,"ts":1.0}]}"#;
        assert!(check_chrome_trace(bad_ph).is_err());
        let bad_counter =
            r#"{"traceEvents":[{"ph":"C","name":"c","pid":1,"tid":0,"ts":1.0,"args":{}}]}"#;
        assert!(check_chrome_trace(bad_counter).is_err());
    }
}
