//! End-to-end: record a multi-thread session, export it, and re-validate
//! the export with the crate's own schema checker — the same round trip
//! `solve --trace` performs on every run.

use rbsyn_trace::{flush_current_thread, Mark, Phase, Session, TraceConfig};

#[test]
fn session_exports_valid_chrome_json_with_all_tracks() {
    let s = Session::new(TraceConfig::with_sample(1));
    {
        let _solve = s.span(Phase::Solve);
        {
            let _gen = s.span_with(Phase::Generate, Some("Bool".to_owned()));
            s.mark(Mark::FrontierPop);
            s.mark(Mark::OracleRun);
        }
        {
            let _merge = s.span(Phase::Merge);
            let _guard = s.span(Phase::Guard);
            s.mark(Mark::CoveringQuery);
        }
        s.counter("search-stats", &[("popped", 12), ("tested", 7)]);
    }
    let worker = s.clone();
    std::thread::Builder::new()
        .name("intra-worker".to_owned())
        .spawn(move || {
            let _eval = worker.span(Phase::Eval);
            worker.mark(Mark::OracleRun);
            drop(_eval);
            flush_current_thread();
        })
        .unwrap()
        .join()
        .unwrap();
    s.phase_totals(
        "phase-totals",
        &[
            (Phase::Generate, 1_000),
            (Phase::Guard, 500),
            (Phase::Merge, 200),
            (Phase::Eval, 700),
        ],
    );

    let trace = s.finish();
    assert_eq!(trace.tracks.len(), 3, "main, worker and synthetic tracks");
    let json = trace.to_chrome_json(&[("benchmark", "roundtrip")]);
    let summary = rbsyn_trace::schema::check_chrome_trace(&json).expect("self-check passes");
    for phase in ["solve", "generate [Bool]", "guard", "merge", "eval"] {
        let bare = phase.split(' ').next().unwrap();
        assert!(
            summary.span_names.iter().any(|n| n == bare),
            "missing span {bare:?} in {:?}",
            summary.span_names
        );
    }
    assert!(summary.counter_tracks.contains("search-stats"));
    assert!(json.contains("\"intra-worker\""), "worker track is named");

    let profile = trace.profile();
    let solve = profile.rows.iter().find(|r| r.name == "solve").unwrap();
    assert!(
        solve.self_ns <= solve.total_ns,
        "self time excludes children"
    );
    assert!(profile
        .marks
        .iter()
        .any(|(n, c)| n == "oracle_run" && *c == 2));
}
