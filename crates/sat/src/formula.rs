//! Propositional formulas over numbered atoms.

use std::fmt;

/// A propositional formula. Atoms are dense `u32` indices; the synthesizer
//  maps canonicalized branch-condition strings to atoms.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Formula {
    /// Constant true.
    True,
    /// Constant false.
    False,
    /// Atom `z_i`.
    Var(u32),
    /// Negation.
    Not(Box<Formula>),
    /// Conjunction.
    And(Box<Formula>, Box<Formula>),
    /// Disjunction.
    Or(Box<Formula>, Box<Formula>),
}

impl Formula {
    /// `¬f`. (Named like the other connective constructors; this is a
    /// static constructor, not `std::ops::Not`.)
    #[allow(clippy::should_implement_trait)]
    pub fn not(f: Formula) -> Formula {
        Formula::Not(Box::new(f))
    }

    /// `a ∧ b`.
    pub fn and(a: Formula, b: Formula) -> Formula {
        Formula::And(Box::new(a), Box::new(b))
    }

    /// `a ∨ b`.
    pub fn or(a: Formula, b: Formula) -> Formula {
        Formula::Or(Box::new(a), Box::new(b))
    }

    /// `a ⇒ b`, as `¬a ∨ b`.
    pub fn implies(a: Formula, b: Formula) -> Formula {
        Formula::or(Formula::not(a), b)
    }

    /// Largest atom index + 1 (0 for closed formulas).
    pub fn num_vars(&self) -> u32 {
        match self {
            Formula::True | Formula::False => 0,
            Formula::Var(v) => v + 1,
            Formula::Not(f) => f.num_vars(),
            Formula::And(a, b) | Formula::Or(a, b) => a.num_vars().max(b.num_vars()),
        }
    }

    /// Evaluates under an assignment (index = atom).
    pub fn eval(&self, assignment: &[bool]) -> bool {
        match self {
            Formula::True => true,
            Formula::False => false,
            Formula::Var(v) => assignment[*v as usize],
            Formula::Not(f) => !f.eval(assignment),
            Formula::And(a, b) => a.eval(assignment) && b.eval(assignment),
            Formula::Or(a, b) => a.eval(assignment) || b.eval(assignment),
        }
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::True => write!(f, "⊤"),
            Formula::False => write!(f, "⊥"),
            Formula::Var(v) => write!(f, "z{v}"),
            Formula::Not(x) => write!(f, "¬({x})"),
            Formula::And(a, b) => write!(f, "({a} ∧ {b})"),
            Formula::Or(a, b) => write!(f, "({a} ∨ {b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_and_num_vars() {
        let f = Formula::implies(
            Formula::Var(0),
            Formula::or(Formula::Var(1), Formula::False),
        );
        assert_eq!(f.num_vars(), 2);
        assert!(f.eval(&[false, false]));
        assert!(f.eval(&[true, true]));
        assert!(!f.eval(&[true, false]));
    }

    #[test]
    fn display_is_readable() {
        let f = Formula::and(Formula::Var(0), Formula::not(Formula::Var(1)));
        assert_eq!(f.to_string(), "(z0 ∧ ¬(z1))");
    }
}
