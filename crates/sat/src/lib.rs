//! A small, complete SAT solver for the branch-condition implication checks
//! of §3.3.
//!
//! RbSyn maps every unique branch condition `b` to a fresh boolean variable
//! `z`, encodes `!b` as `¬z` and `b₁ ∨ b₂` as `z₁ ∨ z₂`, and then asks a SAT
//! solver whether `b₁ ⇒ b₂` is valid — i.e. whether `b₁ ∧ ¬b₂` is
//! unsatisfiable. The formulas are tiny (a handful of atoms), so a DPLL
//! solver with unit propagation is more than enough; completeness is what
//! matters, since both SAT and UNSAT answers drive merge decisions.

pub mod cnf;
pub mod formula;
pub mod solver;

pub use cnf::{Clause, Cnf, Lit};
pub use formula::Formula;
pub use solver::{is_satisfiable, is_valid_implication, Solver};
