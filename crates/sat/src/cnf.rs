//! CNF representation and Tseitin transformation.

use crate::formula::Formula;

/// A literal: a variable with a sign.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Lit {
    /// Variable index.
    pub var: u32,
    /// `true` for the positive literal.
    pub positive: bool,
}

impl Lit {
    /// Positive literal of `var`.
    pub fn pos(var: u32) -> Lit {
        Lit {
            var,
            positive: true,
        }
    }

    /// Negative literal of `var`.
    pub fn neg(var: u32) -> Lit {
        Lit {
            var,
            positive: false,
        }
    }

    /// The complementary literal.
    pub fn negate(self) -> Lit {
        Lit {
            var: self.var,
            positive: !self.positive,
        }
    }
}

/// A disjunction of literals.
pub type Clause = Vec<Lit>;

/// A CNF instance: clauses over `num_vars` variables.
#[derive(Clone, Debug, Default)]
pub struct Cnf {
    /// Number of variables (indices `0..num_vars`).
    pub num_vars: u32,
    /// The clause set.
    pub clauses: Vec<Clause>,
}

impl Cnf {
    /// Fresh variable.
    fn fresh(&mut self) -> u32 {
        let v = self.num_vars;
        self.num_vars += 1;
        v
    }

    /// Tseitin-encodes `f`, returning a CNF equisatisfiable with `f`.
    ///
    /// Each connective gets a definition variable; the root literal is
    /// asserted as a unit clause. Constants fold away before encoding.
    pub fn from_formula(f: &Formula) -> Cnf {
        let mut cnf = Cnf {
            num_vars: f.num_vars(),
            clauses: Vec::new(),
        };
        match cnf.encode(f) {
            Enc::True => {}                             // trivially satisfiable, no clauses
            Enc::False => cnf.clauses.push(Vec::new()), // empty clause = UNSAT
            Enc::Lit(l) => cnf.clauses.push(vec![l]),
        }
        cnf
    }

    fn encode(&mut self, f: &Formula) -> Enc {
        match f {
            Formula::True => Enc::True,
            Formula::False => Enc::False,
            Formula::Var(v) => Enc::Lit(Lit::pos(*v)),
            Formula::Not(x) => match self.encode(x) {
                Enc::True => Enc::False,
                Enc::False => Enc::True,
                Enc::Lit(l) => Enc::Lit(l.negate()),
            },
            Formula::And(a, b) => {
                let (ea, eb) = (self.encode(a), self.encode(b));
                match (ea, eb) {
                    (Enc::False, _) | (_, Enc::False) => Enc::False,
                    (Enc::True, e) | (e, Enc::True) => e,
                    (Enc::Lit(la), Enc::Lit(lb)) => {
                        let d = Lit::pos(self.fresh());
                        // d ↔ (la ∧ lb)
                        self.clauses.push(vec![d.negate(), la]);
                        self.clauses.push(vec![d.negate(), lb]);
                        self.clauses.push(vec![la.negate(), lb.negate(), d]);
                        Enc::Lit(d)
                    }
                }
            }
            Formula::Or(a, b) => {
                let (ea, eb) = (self.encode(a), self.encode(b));
                match (ea, eb) {
                    (Enc::True, _) | (_, Enc::True) => Enc::True,
                    (Enc::False, e) | (e, Enc::False) => e,
                    (Enc::Lit(la), Enc::Lit(lb)) => {
                        let d = Lit::pos(self.fresh());
                        // d ↔ (la ∨ lb)
                        self.clauses.push(vec![d.negate(), la, lb]);
                        self.clauses.push(vec![la.negate(), d]);
                        self.clauses.push(vec![lb.negate(), d]);
                        Enc::Lit(d)
                    }
                }
            }
        }
    }
}

enum Enc {
    True,
    False,
    Lit(Lit),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literals_negate() {
        let l = Lit::pos(3);
        assert_eq!(l.negate(), Lit::neg(3));
        assert_eq!(l.negate().negate(), l);
    }

    #[test]
    fn constants_fold() {
        let t = Cnf::from_formula(&Formula::True);
        assert!(t.clauses.is_empty());
        let f = Cnf::from_formula(&Formula::False);
        assert_eq!(f.clauses, vec![Vec::<Lit>::new()]);
        // x ∧ ⊤ folds to x.
        let fx = Cnf::from_formula(&Formula::and(Formula::Var(0), Formula::True));
        assert_eq!(fx.clauses, vec![vec![Lit::pos(0)]]);
    }

    #[test]
    fn tseitin_produces_definitions() {
        let f = Formula::and(Formula::Var(0), Formula::Var(1));
        let cnf = Cnf::from_formula(&f);
        // Three defining clauses + one root unit.
        assert_eq!(cnf.clauses.len(), 4);
        assert_eq!(cnf.num_vars, 3);
    }
}
