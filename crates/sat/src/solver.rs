//! DPLL with unit propagation.

use crate::cnf::{Cnf, Lit};
use crate::formula::Formula;

/// Assignment state per variable.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Assign {
    Unset,
    True,
    False,
}

/// A DPLL solver over one CNF instance.
pub struct Solver {
    cnf: Cnf,
    assign: Vec<Assign>,
}

impl Solver {
    /// Builds a solver for `cnf`.
    pub fn new(cnf: Cnf) -> Solver {
        let n = cnf.num_vars as usize;
        Solver {
            cnf,
            assign: vec![Assign::Unset; n],
        }
    }

    fn lit_value(&self, l: Lit) -> Assign {
        match (self.assign[l.var as usize], l.positive) {
            (Assign::Unset, _) => Assign::Unset,
            (Assign::True, true) | (Assign::False, false) => Assign::True,
            _ => Assign::False,
        }
    }

    /// Unit propagation: returns `false` on conflict; records assigned vars
    /// in `trail`.
    fn propagate(&mut self, trail: &mut Vec<u32>) -> bool {
        loop {
            let mut changed = false;
            for ci in 0..self.cnf.clauses.len() {
                let mut unassigned: Option<Lit> = None;
                let mut satisfied = false;
                let mut unassigned_count = 0;
                for &l in &self.cnf.clauses[ci] {
                    match self.lit_value(l) {
                        Assign::True => {
                            satisfied = true;
                            break;
                        }
                        Assign::Unset => {
                            unassigned_count += 1;
                            unassigned = Some(l);
                        }
                        Assign::False => {}
                    }
                }
                if satisfied {
                    continue;
                }
                match (unassigned_count, unassigned) {
                    (0, _) => return false, // conflict: all literals false
                    (1, Some(l)) => {
                        self.assign[l.var as usize] = if l.positive {
                            Assign::True
                        } else {
                            Assign::False
                        };
                        trail.push(l.var);
                        changed = true;
                    }
                    _ => {}
                }
            }
            if !changed {
                return true;
            }
        }
    }

    fn undo(&mut self, trail: &[u32]) {
        for &v in trail {
            self.assign[v as usize] = Assign::Unset;
        }
    }

    /// Is the instance satisfiable?
    pub fn solve(&mut self) -> bool {
        let mut trail = Vec::new();
        if !self.propagate(&mut trail) {
            self.undo(&trail);
            return false;
        }
        let next = self.assign.iter().position(|a| *a == Assign::Unset);
        let Some(v) = next else {
            self.undo(&trail);
            return true; // complete assignment, no conflict
        };
        for choice in [Assign::True, Assign::False] {
            self.assign[v] = choice;
            if self.solve() {
                self.assign[v] = Assign::Unset;
                self.undo(&trail);
                return true;
            }
            self.assign[v] = Assign::Unset;
        }
        self.undo(&trail);
        false
    }
}

/// Is `f` satisfiable?
pub fn is_satisfiable(f: &Formula) -> bool {
    Solver::new(Cnf::from_formula(f)).solve()
}

/// Is `a ⇒ b` valid? Checked as UNSAT(`a ∧ ¬b`) — the §3.3 implication
/// check over the boolean skeleton of branch conditions.
pub fn is_valid_implication(a: &Formula, b: &Formula) -> bool {
    !is_satisfiable(&Formula::and(a.clone(), Formula::not(b.clone())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::Formula as F;

    #[test]
    fn trivial_instances() {
        assert!(is_satisfiable(&F::True));
        assert!(!is_satisfiable(&F::False));
        assert!(is_satisfiable(&F::Var(0)));
        assert!(!is_satisfiable(&F::and(F::Var(0), F::not(F::Var(0)))));
    }

    #[test]
    fn implication_basics() {
        // b ⇒ true, false ⇒ b, b ⇒ b.
        assert!(is_valid_implication(&F::Var(0), &F::True));
        assert!(is_valid_implication(&F::False, &F::Var(0)));
        assert!(is_valid_implication(&F::Var(0), &F::Var(0)));
        // z0 does not imply z1.
        assert!(!is_valid_implication(&F::Var(0), &F::Var(1)));
        // z0 ⇒ z0 ∨ z1 (the Rule-2 disjunction shape).
        assert!(is_valid_implication(
            &F::Var(0),
            &F::or(F::Var(0), F::Var(1))
        ));
        // z0 ∧ z1 ⇒ z0.
        assert!(is_valid_implication(
            &F::and(F::Var(0), F::Var(1)),
            &F::Var(0)
        ));
        // ¬z0 vs z0 are not in implication either way.
        assert!(!is_valid_implication(&F::not(F::Var(0)), &F::Var(0)));
        assert!(!is_valid_implication(&F::Var(0), &F::not(F::Var(0))));
    }

    #[test]
    fn branch_condition_shapes() {
        // The §2.2 scenario: b and !b — the merge rules ask whether
        // b1 ⇒ b2 where b2 = ¬b1; must be invalid.
        let b = F::Var(0);
        let nb = F::not(F::Var(0));
        assert!(!is_valid_implication(&b, &nb));
        // true ⇒ true holds (what makes Rule 3 fire for trivial guards).
        assert!(is_valid_implication(&F::True, &F::True));
        // (b1 ∨ b2) ⇒ b1 is invalid.
        assert!(!is_valid_implication(
            &F::or(F::Var(0), F::Var(1)),
            &F::Var(0)
        ));
    }

    /// Brute-force reference check on all 3-variable formulas of a fixed
    /// shape grammar, depth ≤ 3.
    #[test]
    fn agrees_with_truth_tables() {
        fn gen(depth: usize) -> Vec<F> {
            if depth == 0 {
                return vec![F::Var(0), F::Var(1), F::Var(2), F::True, F::False];
            }
            let sub = gen(depth - 1);
            let mut out = Vec::new();
            for (i, a) in sub.iter().enumerate() {
                out.push(F::not(a.clone()));
                // Pair with a small sample to keep the test fast.
                for b in sub.iter().skip(i % 3).step_by(3) {
                    out.push(F::and(a.clone(), b.clone()));
                    out.push(F::or(a.clone(), b.clone()));
                }
            }
            out
        }
        fn brute_sat(f: &F) -> bool {
            for bits in 0..8u32 {
                let assignment = [bits & 1 != 0, bits & 2 != 0, bits & 4 != 0];
                if f.eval(&assignment) {
                    return true;
                }
            }
            false
        }
        for f in gen(2) {
            assert_eq!(is_satisfiable(&f), brute_sat(&f), "disagreement on {f}");
        }
    }
}
