//! `specgen` — generate, fuzz, and differentially gate `.rbspec`
//! synthesis problems.
//!
//! ```text
//! specgen --out DIR [--count N] [--seed S]   generate a corpus into DIR
//! specgen --regen [--dir DIR]                regenerate DIR from its MANIFEST.txt
//! specgen --fuzz N [--seed S] [--target frontend|snapshot]
//!                                            fuzz the frontend (default) or the
//!                                            snapshot decoder with N mutants
//! specgen --gate [--dir DIR] [--sample N]    solve generated problems and check
//!                                            obs-equivalence vs hidden references
//! ```
//!
//! Exit codes follow the shared contract in [`rbsyn_core::exit`]: `0`
//! success, `1` gate mismatch / fuzz failure / generation error, `2`
//! usage, `4` gate ran clean but some problems timed out.

use rbsyn_core::exit;
use rbsyn_specgen::{
    gen_candidate, parse_header, read_manifest, run_fuzz, run_snapshot_fuzz, solve_and_check,
    write_corpus, Verdict, DEFAULT_COUNT, DEFAULT_SEED,
};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "usage: specgen --out DIR [--count N] [--seed S]
       specgen --regen [--dir DIR]
       specgen --fuzz N [--seed S] [--target frontend|snapshot]
       specgen --gate [--dir DIR] [--sample N]";

fn usage() -> ExitCode {
    eprintln!("{USAGE}");
    ExitCode::from(exit::USAGE as u8)
}

fn code(c: i32) -> ExitCode {
    ExitCode::from(c as u8)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out: Option<PathBuf> = None;
    let mut dir: Option<PathBuf> = None;
    let mut count: Option<usize> = None;
    let mut seed: Option<u64> = None;
    let mut sample: Option<usize> = None;
    let mut fuzz: Option<usize> = None;
    let mut target: Option<String> = None;
    let mut regen = false;
    let mut gate = false;

    macro_rules! take {
        ($it:expr, $flag:expr) => {
            match $it.next() {
                Some(v) => v,
                None => {
                    eprintln!("specgen: {} expects a value", $flag);
                    return usage();
                }
            }
        };
    }

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out = Some(PathBuf::from(take!(it, "--out"))),
            "--dir" => dir = Some(PathBuf::from(take!(it, "--dir"))),
            "--count" => count = take!(it, "--count").parse().ok(),
            "--seed" => seed = take!(it, "--seed").parse().ok(),
            "--sample" => sample = take!(it, "--sample").parse().ok(),
            "--fuzz" => fuzz = take!(it, "--fuzz").parse().ok(),
            "--target" => target = Some(take!(it, "--target").clone()),
            "--regen" => regen = true,
            "--gate" => gate = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("specgen: unknown argument `{other}`");
                return usage();
            }
        }
    }

    let default_dir = || PathBuf::from("benchmarks/generated");

    if target.is_some() && fuzz.is_none() {
        eprintln!("specgen: --target only applies to --fuzz");
        return usage();
    }
    if let Some(n) = fuzz {
        let target = target.as_deref().unwrap_or("frontend");
        let report = match target {
            "frontend" => run_fuzz(seed.unwrap_or(DEFAULT_SEED), n),
            "snapshot" => run_snapshot_fuzz(seed.unwrap_or(DEFAULT_SEED), n),
            other => {
                eprintln!("specgen: unknown fuzz target `{other}` (try frontend, snapshot)");
                return usage();
            }
        };
        println!(
            "specgen fuzz ({target}): {} iterations, {} accepted, {} rejected, {} failures",
            report.iterations,
            report.accepted,
            report.rejected,
            report.failures.len()
        );
        for f in &report.failures {
            eprintln!("FAIL {f}");
        }
        return if report.failures.is_empty() {
            ExitCode::SUCCESS
        } else {
            code(exit::OTHER)
        };
    }

    if gate {
        return run_gate(&dir.unwrap_or_else(default_dir), sample);
    }

    if regen {
        let d = dir.unwrap_or_else(default_dir);
        let (s, c) = match read_manifest(&d) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("specgen: {e}");
                return code(exit::OTHER);
            }
        };
        eprintln!(
            "specgen: regenerating {c} problems (seed {s}) into {}",
            d.display()
        );
        return match write_corpus(&d, s, c, true) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("specgen: {e}");
                code(exit::OTHER)
            }
        };
    }

    if let Some(d) = out {
        let s = seed.unwrap_or(DEFAULT_SEED);
        let c = count.unwrap_or(DEFAULT_COUNT);
        eprintln!(
            "specgen: generating {c} problems (seed {s}) into {}",
            d.display()
        );
        return match write_corpus(&d, s, c, true) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("specgen: {e}");
                code(exit::OTHER)
            }
        };
    }

    usage()
}

/// The differential gate: for each (sampled) generated file, re-derive
/// the hidden reference from the provenance header, byte-compare the
/// regenerated text, solve under the file's own options (timeout
/// honored), and require observational equivalence. Exit `0` when all
/// solved, `4` when the only failures are clean timeouts, `1` otherwise.
fn run_gate(dir: &Path, sample: Option<usize>) -> ExitCode {
    let paths = match rbsyn_front::spec_paths(dir) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("specgen: {e}");
            return code(exit::OTHER);
        }
    };
    let stride = sample.map(|n| (paths.len() / n.max(1)).max(1)).unwrap_or(1);
    let picked: Vec<&PathBuf> = paths.iter().step_by(stride).collect();
    let (mut solved, mut timeouts, mut failures) = (0usize, 0usize, 0usize);
    for path in picked {
        let name = path
            .file_name()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.display().to_string());
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("FAIL {name}: cannot read: {e}");
                failures += 1;
                continue;
            }
        };
        let Some(key) = parse_header(&text) else {
            eprintln!("FAIL {name}: missing specgen provenance header");
            failures += 1;
            continue;
        };
        let Some(c) = gen_candidate(key.seed, key.index, key.attempt) else {
            eprintln!("FAIL {name}: header does not regenerate a candidate");
            failures += 1;
            continue;
        };
        if c.text != text {
            eprintln!("FAIL {name}: regenerated text differs from file on disk");
            failures += 1;
            continue;
        }
        match solve_and_check(&c, true) {
            Verdict::Solved(_) => {
                println!("ok   {name}");
                solved += 1;
            }
            Verdict::Timeout => {
                println!("time {name}");
                timeouts += 1;
            }
            Verdict::NoSolution => {
                eprintln!("FAIL {name}: search exhausted without a program");
                failures += 1;
            }
            Verdict::Mismatch => {
                eprintln!("FAIL {name}: solution not obs-equivalent to hidden reference");
                failures += 1;
            }
            Verdict::Error(e) => {
                eprintln!("FAIL {name}: {e}");
                failures += 1;
            }
        }
    }
    println!("specgen gate: {solved} solved, {timeouts} timed out, {failures} failed");
    if failures > 0 {
        code(exit::OTHER)
    } else if timeouts > 0 {
        code(exit::TIMEOUT)
    } else {
        ExitCode::SUCCESS
    }
}
