//! Snapshot fuzzing: mutate serialized template-memo snapshots and check
//! the restore path is total — [`restore_from_bytes`] must never panic,
//! and a rejected mutant must leave the target cache completely cold
//! (the restore is all-or-nothing, so a half-decoded snapshot can never
//! leak entries into a live cache).
//!
//! This is the persistence-side twin of the frontend fuzzer
//! ([`crate::fuzz`]): same deterministic seeded mutations, same totality
//! contract, applied to the binary format of `rbsyn_core::snapshot`
//! instead of `.rbspec` text. Driven by `specgen --fuzz N --target
//! snapshot`.

use crate::fuzz::FuzzReport;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rbsyn_core::snapshot::{restore_from_bytes, snapshot_to_bytes};
use rbsyn_core::SearchCache;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A base snapshot with structural variety: several environments, keys
/// of different lengths, and expressions exercising every encoder tag
/// (literals, variables, calls, branches, lets, hashes, sequences,
/// boolean operators and both hole kinds would be overkill — holes never
/// appear in memoized templates, so the base sticks to what production
/// snapshots contain).
fn base_snapshot() -> Vec<u8> {
    use rbsyn_lang::builder::*;
    let cache = SearchCache::new();
    cache.seed_template(
        7,
        "consts".to_owned(),
        vec![nil(), true_(), int(42), str_("closed"), sym("state")],
    );
    cache.seed_template(7, "vars".to_owned(), vec![var("arg0"), var("t0")]);
    cache.seed_template(
        7,
        "calls".to_owned(),
        vec![
            call(var("user"), "name", []),
            call(var("Issue"), "find_by", [hash([("title", var("arg0"))])]),
        ],
    );
    cache.seed_template(
        99,
        "branchy".to_owned(),
        vec![if_(
            not(var("c")),
            seq([int(1), int(2)]),
            let_("x", or(var("a"), var("b")), var("x")),
        )],
    );
    cache.seed_template(u128::MAX, "edge-env".to_owned(), vec![int(i64::MIN)]);
    snapshot_to_bytes(&cache)
}

/// Applies 1–3 random byte-level mutations: flip, insert, delete a short
/// range, truncate, or duplicate a short range.
fn mutate(rng: &mut StdRng, base: &[u8]) -> Vec<u8> {
    let mut bytes = base.to_vec();
    let ops = 1 + rng.gen_range(0..3u32);
    for _ in 0..ops {
        if bytes.is_empty() {
            bytes.push(0);
        }
        match rng.gen_range(0..5u32) {
            0 => {
                let i = rng.gen_range(0..bytes.len());
                bytes[i] ^= rng.gen_range(1..256u32) as u8;
            }
            1 => {
                let i = rng.gen_range(0..bytes.len() + 1);
                bytes.insert(i, rng.gen_range(0..256u32) as u8);
            }
            2 => {
                let i = rng.gen_range(0..bytes.len());
                let n = (1 + rng.gen_range(0..16usize)).min(bytes.len() - i);
                bytes.drain(i..i + n);
            }
            3 => {
                let i = rng.gen_range(0..bytes.len() + 1);
                bytes.truncate(i);
            }
            _ => {
                let i = rng.gen_range(0..bytes.len());
                let n = (1 + rng.gen_range(0..16usize)).min(bytes.len() - i);
                let dup: Vec<u8> = bytes[i..i + n].to_vec();
                bytes.splice(i..i, dup);
            }
        }
    }
    bytes
}

/// Restores one mutant into a fresh cache under `catch_unwind` and
/// checks the contract. `Ok(true)` = accepted (the mutant happened to be
/// a valid snapshot), `Ok(false)` = rejected with the cache still cold,
/// `Err` = contract violation.
fn check_one(bytes: &[u8]) -> Result<bool, String> {
    let cache = SearchCache::new();
    match catch_unwind(AssertUnwindSafe(|| restore_from_bytes(bytes, &cache))) {
        Ok(Ok(_)) => Ok(true),
        Ok(Err(_)) => {
            if cache.export_templates().is_empty() {
                Ok(false)
            } else {
                Err("rejected snapshot leaked entries into the cache".to_owned())
            }
        }
        Err(_) => Err("snapshot restore panicked".to_owned()),
    }
}

/// Fuzzes the snapshot decoder for `iterations` mutants derived from
/// `seed`. Deterministic for a fixed `(seed, iterations)`.
pub fn run_snapshot_fuzz(seed: u64, iterations: usize) -> FuzzReport {
    // Panics are expected to be *absent*; keep the default hook quiet so
    // a violating iteration doesn't spew a backtrace per mutant.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    let base = base_snapshot();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x736e_6170); // "snap"
    let mut report = FuzzReport {
        iterations,
        accepted: 0,
        rejected: 0,
        failures: Vec::new(),
    };
    for i in 0..iterations {
        let mutant = mutate(&mut rng, &base);
        match check_one(&mutant) {
            Ok(true) => report.accepted += 1,
            Ok(false) => report.rejected += 1,
            Err(why) => {
                let prefix: Vec<u8> = mutant.iter().copied().take(48).collect();
                report
                    .failures
                    .push(format!("iteration {i}: {why}\n  bytes: {prefix:02x?}…"));
            }
        }
    }

    std::panic::set_hook(prev_hook);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pristine_base_is_accepted() {
        assert_eq!(check_one(&base_snapshot()), Ok(true));
    }

    #[test]
    fn short_snapshot_fuzz_run_is_clean_and_deterministic() {
        let a = run_snapshot_fuzz(42, 300);
        assert!(a.failures.is_empty(), "{:?}", a.failures);
        assert_eq!(a.accepted + a.rejected, 300);
        // A checksummed format rejects essentially every mutant; if the
        // fuzzer somehow accepted a majority, it stopped mutating.
        assert!(a.rejected > a.accepted, "mutations must mostly be rejected");
        let b = run_snapshot_fuzz(42, 300);
        assert_eq!(a.accepted, b.accepted);
        assert_eq!(a.rejected, b.rejected);
    }
}
