//! **specgen** — a seeded generator of solvable-by-construction `.rbspec`
//! synthesis problems, a frontend fuzzer, and a differential solve gate.
//!
//! The paper's evaluation rests on 19 hand-ported benchmarks; this crate
//! stress-tests the whole pipeline with *generated* ones. Three modes,
//! all driven by the `specgen` binary:
//!
//! - **Corpus generation** ([`gen::write_corpus`]): derive `count`
//!   problems from a single seed, each with a hidden reference program
//!   that is expressible in the search space and verified to solve under
//!   a deterministic expansion budget. The checked-in corpus under
//!   `benchmarks/generated/` is byte-reproducible from its
//!   `MANIFEST.txt`.
//! - **Fuzzing** ([`fuzz::run_fuzz`]): mutate well-formed files at the
//!   byte and token level and assert the frontend never panics and every
//!   rejection carries an in-bounds source span. The snapshot variant
//!   ([`snapfuzz::run_snapshot_fuzz`], `--fuzz N --target snapshot`)
//!   applies the same discipline to serialized template-memo snapshots:
//!   restore never panics, and a rejected mutant leaves the cache cold.
//! - **Differential gate** ([`gen::solve_and_check`]): re-derive each
//!   file's hidden reference from its provenance header, solve the
//!   problem, and require the solution to be observationally equivalent
//!   to the reference (evaluation fingerprints over every spec world) —
//!   or to time out cleanly.
//!
//! Everything is a pure function of the seed: no time, no process ids,
//! no map-iteration order.

#![deny(missing_docs)]

pub mod fuzz;
pub mod gen;
pub mod snapfuzz;

pub use fuzz::{run_fuzz, FuzzReport};
pub use gen::{
    gen_candidate, gen_candidate_with, generate_problem, parse_header, read_manifest,
    solve_and_check, write_corpus, Candidate, GenKey, Verdict, DEFAULT_COUNT, DEFAULT_SEED,
};
pub use snapfuzz::run_snapshot_fuzz;
