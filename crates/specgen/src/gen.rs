//! Seeded generation of solvable-by-construction `.rbspec` problems.
//!
//! Every problem starts from a *hidden reference program* sampled from the
//! same λ_syn grammar the synthesizer searches (params, Σ literals, and
//! enumerable stdlib/model methods only, so the reference is expressible
//! inside the search space by construction). The generator then:
//!
//! 1. samples a model schema, optional effect-annotated helper `def`s, a
//!    target signature, and per-spec setup code (seed rows, argument
//!    literals);
//! 2. lowers a provisional file and *executes* the reference against each
//!    spec's setup world with `rbsyn-interp`;
//! 3. turns the observed results into passing assertions (result pins,
//!    `Model.count` pins, `exists?` probes) — the spec passes because it
//!    was derived from an actual run;
//! 4. pretty-prints the finished file via [`to_rbspec`], re-parses and
//!    re-lowers it (the full lexer→parser→lowering path), and re-validates
//!    the reference against the reloaded problem;
//! 5. solves the problem under its deterministic expansion budget and
//!    checks the solution is observationally equivalent to the reference
//!    ([`PreparedSpec::run_traced`] fingerprints over every spec world).
//!
//! Step 5 failing (no solution, or an observably different one) rejects
//! the attempt and the generator retries with `attempt + 1` — so every
//! emitted problem is *verified solvable*. The whole pipeline is a pure
//! function of `(seed, index, attempt)`: the vendored [`rand`] xorshift
//! generator is the only randomness source, which is what makes the
//! checked-in corpus byte-reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rbsyn_core::{SynthError, Synthesizer};
use rbsyn_front::ast::{
    ConstItem, ConstKind, Decl, Define, EffPath, ExprKind, ExprNode, FieldDecl, Lit, Meta,
    MethodDef, ModelDecl, OptValue, OptionEntry, ParamDecl, SpecBlock, SpecFile, Stmt, TypeExpr,
    TypeKind,
};
use rbsyn_front::{load_str, to_rbspec, LoadedSpec, Span};
use rbsyn_interp::eval::{Evaluator, Locals};
use rbsyn_interp::{run_spec, PreparedSpec, SetupStep, Spec, WorldState};
use rbsyn_lang::builder as lb;
use rbsyn_lang::{ClassId, Expr, Program, Symbol, Value};
use std::path::Path;

/// Default corpus seed (recorded in the manifest; any seed works).
pub const DEFAULT_SEED: u64 = 20260807;
/// Default corpus size.
pub const DEFAULT_COUNT: usize = 500;
/// Attempt cap per index before generation reports a hard error.
const MAX_ATTEMPTS: u32 = 1000;

// ── name and literal pools (all decisions draw from fixed tables) ───────

const MODEL_NAMES: [&str; 12] = [
    "Post", "User", "Order", "Item", "Account", "Ticket", "Invoice", "Review", "Message",
    "Product", "Shipment", "Tag",
];

const FIELD_POOL: [(&str, Prim); 15] = [
    ("title", Prim::Str),
    ("name", Prim::Str),
    ("state", Prim::Str),
    ("label", Prim::Str),
    ("slug", Prim::Str),
    ("body", Prim::Str),
    ("owner", Prim::Str),
    ("kind", Prim::Str),
    ("score", Prim::Int),
    ("rank", Prim::Int),
    ("qty", Prim::Int),
    ("level", Prim::Int),
    ("active", Prim::Bool),
    ("flag", Prim::Bool),
    ("done", Prim::Bool),
];

const FN_NAMES: [&str; 10] = [
    "lookup",
    "tally",
    "register",
    "describe",
    "adjust",
    "probe",
    "resolve",
    "apply_op",
    "collect_info",
    "touch",
];

const STR_LITS: [&str; 10] = [
    "alpha", "beta", "gamma", "delta", "omega", "hello", "ruby", "spec", "zap", "kilo",
];

const INT_LITS: [i64; 8] = [0, 1, 2, 3, 5, 7, 9, 42];

// ── sampled problem shape ───────────────────────────────────────────────

/// Primitive column/value types the generator deals in.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Prim {
    Str,
    Int,
    Bool,
}

/// A generated type: a primitive or an instance of the n-th sampled model.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum GenTy {
    Prim(Prim),
    Inst(usize),
}

/// One sampled ActiveRecord-style model.
struct ModelShape {
    name: &'static str,
    fields: Vec<(&'static str, Prim)>,
}

/// Effect-annotated helper-method templates (each becomes a `def`).
enum Helper {
    /// `def M.total() -> Int reads(M.*) do M.count end`
    Total { model: usize },
    /// `def M.has_f(v: T) -> Bool reads(M.*) do M.exists?({f: v}) end`
    Has { model: usize, field: usize },
    /// `def M.add_f(v: T) -> M reads(M.*) writes(M.*) do M.create!({f: v}) end`
    Add {
        model: usize,
        field: usize,
        hidden: bool,
    },
}

/// Everything sampled *before* the reference program.
struct Shape {
    models: Vec<ModelShape>,
    helpers: Vec<Helper>,
    fname: &'static str,
    params: Vec<GenTy>,
    ret: GenTy,
}

/// A literal value drawn from the pools.
#[derive(Clone, Copy)]
enum LitVal {
    S(&'static str),
    I(i64),
    B(bool),
}

/// Per-spec setup: statements (rows + binds + target call, no asserts)
/// plus the `(model, field, literal)` triples seeded into the world
/// (candidates for `exists?` assertions).
struct SpecPlan {
    stmts: Vec<Stmt>,
    seeded: Vec<(usize, usize, LitVal)>,
}

/// A fully generated, frontend-validated problem whose hidden reference
/// passes every spec. Produced by [`gen_candidate`]; [`generate_problem`]
/// additionally guarantees it solves and matches the reference.
pub struct Candidate {
    /// Corpus index (drives the file name and benchmark id).
    pub index: usize,
    /// Attempt at which generation succeeded (recorded in the header).
    pub attempt: u32,
    /// Full file text: provenance header + canonical `.rbspec` body.
    pub text: String,
    /// The hidden reference program (never written to the file).
    pub reference: Program,
    /// The re-loaded file (parsed and lowered from `text`).
    pub loaded: LoadedSpec,
}

/// Outcome of solving a candidate and comparing against its reference.
pub enum Verdict {
    /// Solved, and the solution is observationally equivalent to the
    /// hidden reference on every spec world.
    Solved(Box<Program>),
    /// The solver hit its wall-clock deadline (clean exit 4 territory).
    Timeout,
    /// The bounded search exhausted without a program.
    NoSolution,
    /// A program was found but its evaluation fingerprints differ from the
    /// reference's on some spec world.
    Mismatch,
    /// Anything else (setup error, bad problem).
    Error(String),
}

// ── deterministic seed mixing ───────────────────────────────────────────

/// splitmix64-style finalizer combining corpus seed, index and attempt
/// into one RNG seed.
fn mix3(seed: u64, index: u64, attempt: u64) -> u64 {
    let mut z = seed
        ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ attempt.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn pick<'a, T>(rng: &mut StdRng, pool: &'a [T]) -> &'a T {
    &pool[rng.gen_range(0..pool.len())]
}

/// [`pick`] specialized to the `&'static str` pools (sidesteps the
/// `&&str` inference trap at value position).
fn pick_str(rng: &mut StdRng, pool: &'static [&'static str]) -> &'static str {
    pool[rng.gen_range(0..pool.len())]
}

fn sample_distinct(rng: &mut StdRng, pool_len: usize, n: usize) -> Vec<usize> {
    let mut picked: Vec<usize> = Vec::with_capacity(n);
    while picked.len() < n.min(pool_len) {
        let i = rng.gen_range(0..pool_len);
        if !picked.contains(&i) {
            picked.push(i);
        }
    }
    picked
}

// ── surface-AST construction helpers ────────────────────────────────────

fn sp() -> Span {
    Span::default()
}

fn node(kind: ExprKind) -> ExprNode {
    ExprNode { kind, span: sp() }
}

fn f_var(n: &str) -> ExprNode {
    node(ExprKind::Var(n.to_owned()))
}

fn f_int(i: i64) -> ExprNode {
    node(ExprKind::Lit(Lit::Int(i)))
}

fn f_str(s: &str) -> ExprNode {
    node(ExprKind::Lit(Lit::Str(s.to_owned())))
}

fn f_bool(b: bool) -> ExprNode {
    node(ExprKind::Lit(Lit::Bool(b)))
}

fn f_class(n: &str) -> ExprNode {
    node(ExprKind::ClassRef(n.to_owned()))
}

fn f_call(recv: ExprNode, meth: &str, args: Vec<ExprNode>) -> ExprNode {
    node(ExprKind::Call {
        recv: Box::new(recv),
        meth: meth.to_owned(),
        args,
    })
}

fn f_hash(entries: Vec<(&str, ExprNode)>) -> ExprNode {
    node(ExprKind::HashLit(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_owned(), sp(), v))
            .collect(),
    ))
}

fn f_ty(name: &str) -> TypeExpr {
    TypeExpr {
        kind: TypeKind::Named(name.to_owned()),
        span: sp(),
    }
}

fn f_lit(l: LitVal) -> ExprNode {
    match l {
        LitVal::S(s) => f_str(s),
        LitVal::I(i) => f_int(i),
        LitVal::B(b) => f_bool(b),
    }
}

// ── dual (surface + λ_syn) expressions for derived assertions ───────────

/// An expression built in both representations at once: the surface form
/// goes into the emitted file, the λ_syn form is evaluated right away to
/// confirm the assertion actually holds in the post-target world.
struct Dual {
    front: ExprNode,
    lang: Expr,
}

fn d_var(n: &str) -> Dual {
    Dual {
        front: f_var(n),
        lang: lb::var(n),
    }
}

fn d_int(i: i64) -> Dual {
    Dual {
        front: f_int(i),
        lang: lb::int(i),
    }
}

fn d_str(s: &str) -> Dual {
    Dual {
        front: f_str(s),
        lang: lb::str_(s),
    }
}

fn d_class(name: &str, id: ClassId) -> Dual {
    Dual {
        front: f_class(name),
        lang: lb::cls(id),
    }
}

fn d_lit(l: LitVal) -> Dual {
    match l {
        LitVal::S(s) => d_str(s),
        LitVal::I(i) => d_int(i),
        LitVal::B(true) => Dual {
            front: f_bool(true),
            lang: lb::true_(),
        },
        LitVal::B(false) => Dual {
            front: f_bool(false),
            lang: lb::false_(),
        },
    }
}

fn d_not(inner: Dual) -> Dual {
    Dual {
        front: node(ExprKind::Not(Box::new(inner.front))),
        lang: lb::not(inner.lang),
    }
}

fn d_call(recv: Dual, meth: &str, args: Vec<Dual>) -> Dual {
    let (fronts, langs): (Vec<_>, Vec<_>) = args.into_iter().map(|d| (d.front, d.lang)).unzip();
    Dual {
        front: f_call(recv.front, meth, fronts),
        lang: lb::call(recv.lang, meth, langs),
    }
}

fn d_eq(a: Dual, b: Dual) -> Dual {
    d_call(a, "==", vec![b])
}

fn d_hash1(key: &str, val: Dual) -> Dual {
    Dual {
        front: f_hash(vec![(key, val.front)]),
        lang: lb::hash([(key, val.lang)]),
    }
}

// ── shape sampling ──────────────────────────────────────────────────────

fn prim_name(p: Prim) -> &'static str {
    match p {
        Prim::Str => "Str",
        Prim::Int => "Int",
        Prim::Bool => "Bool",
    }
}

fn genty_name(shape: &Shape, t: GenTy) -> &'static str {
    match t {
        GenTy::Prim(p) => prim_name(p),
        GenTy::Inst(m) => shape.models[m].name,
    }
}

fn lit_for(rng: &mut StdRng, p: Prim) -> LitVal {
    match p {
        Prim::Str => LitVal::S(pick_str(rng, &STR_LITS)),
        Prim::Int => LitVal::I(*pick(rng, &INT_LITS)),
        Prim::Bool => LitVal::B(rng.gen_range(0..2u32) == 0),
    }
}

fn helper_name(shape: &Shape, h: &Helper) -> String {
    match h {
        Helper::Total { .. } => "total".to_owned(),
        Helper::Has { model, field } => format!("has_{}", shape.models[*model].fields[*field].0),
        Helper::Add { model, field, .. } => {
            format!("add_{}", shape.models[*model].fields[*field].0)
        }
    }
}

fn sample_shape(rng: &mut StdRng) -> Shape {
    let model_count = 1 + rng.gen_range(0..2usize);
    let models: Vec<ModelShape> = sample_distinct(rng, MODEL_NAMES.len(), model_count)
        .into_iter()
        .map(|mi| {
            let nfields = 1 + rng.gen_range(0..3usize);
            let fields = sample_distinct(rng, FIELD_POOL.len(), nfields)
                .into_iter()
                .map(|fi| FIELD_POOL[fi])
                .collect();
            ModelShape {
                name: MODEL_NAMES[mi],
                fields,
            }
        })
        .collect();

    let param_count = rng.gen_range(0..3usize);
    let params: Vec<GenTy> = (0..param_count)
        .map(|_| match rng.gen_range(0..10u32) {
            0..=3 => GenTy::Prim(Prim::Str),
            4..=6 => GenTy::Prim(Prim::Int),
            7..=8 => GenTy::Prim(Prim::Bool),
            _ => GenTy::Inst(rng.gen_range(0..models.len())),
        })
        .collect();

    let ret = match rng.gen_range(0..10u32) {
        0..=2 => GenTy::Prim(Prim::Str),
        3..=5 => GenTy::Prim(Prim::Int),
        6..=7 => GenTy::Prim(Prim::Bool),
        _ => GenTy::Inst(rng.gen_range(0..models.len())),
    };

    let mut shape = Shape {
        models,
        helpers: Vec::new(),
        fname: pick_str(rng, &FN_NAMES),
        params,
        ret,
    };

    if rng.gen_range(0..2u32) == 0 {
        let want = 1 + rng.gen_range(0..2usize);
        for _ in 0..want {
            let model = rng.gen_range(0..shape.models.len());
            let field = rng.gen_range(0..shape.models[model].fields.len());
            let h = match rng.gen_range(0..3u32) {
                0 => Helper::Total { model },
                1 => Helper::Has { model, field },
                _ => Helper::Add {
                    model,
                    field,
                    hidden: rng.gen_range(0..4u32) == 0,
                },
            };
            let name = helper_name(&shape, &h);
            if !shape.helpers.iter().any(|e| helper_name(&shape, e) == name) {
                shape.helpers.push(h);
            }
        }
    }
    shape
}

// ── reference-program sampling (type-directed, search-space-only) ───────

fn params_of(shape: &Shape, want: GenTy) -> Vec<usize> {
    shape
        .params
        .iter()
        .enumerate()
        .filter(|(_, t)| **t == want)
        .map(|(i, _)| i)
        .collect()
}

fn arg_name(i: usize) -> String {
    format!("arg{i}")
}

/// A model whose field list contains a column of primitive type `p`,
/// together with that field's index.
fn model_with_field(shape: &Shape, p: Prim) -> Option<(usize, Vec<usize>)> {
    for (mi, m) in shape.models.iter().enumerate() {
        let fs: Vec<usize> = m
            .fields
            .iter()
            .enumerate()
            .filter(|(_, (_, fp))| *fp == p)
            .map(|(i, _)| i)
            .collect();
        if !fs.is_empty() {
            return Some((mi, fs));
        }
    }
    None
}

fn leaf(rng: &mut StdRng, shape: &Shape, ids: &[ClassId], want: GenTy) -> Expr {
    match want {
        GenTy::Prim(p) => {
            let ps = params_of(shape, want);
            if !ps.is_empty() && rng.gen_range(0..2u32) == 0 {
                lb::var(&arg_name(*pick(rng, &ps)))
            } else {
                match p {
                    Prim::Str => lb::str_(pick_str(rng, &STR_LITS)),
                    Prim::Int => lb::int(*pick(rng, &INT_LITS)),
                    Prim::Bool => {
                        if rng.gen_range(0..2u32) == 0 {
                            lb::true_()
                        } else {
                            lb::false_()
                        }
                    }
                }
            }
        }
        GenTy::Inst(mi) => {
            let ps = params_of(shape, want);
            if !ps.is_empty() && rng.gen_range(0..2u32) == 0 {
                lb::var(&arg_name(*pick(rng, &ps)))
            } else {
                let m = &shape.models[mi];
                let fi = rng.gen_range(0..m.fields.len());
                let (fname, fp) = m.fields[fi];
                let v = leaf(rng, shape, ids, GenTy::Prim(fp));
                lb::call(lb::cls(ids[mi]), "create!", [lb::hash([(fname, v)])])
            }
        }
    }
}

/// A model-instance source guaranteed to have field `fi` populated:
/// either an instance-typed parameter (spec setup rows set every column)
/// or a fresh `create!` that sets exactly that field.
fn inst_source(rng: &mut StdRng, shape: &Shape, ids: &[ClassId], mi: usize, fi: usize) -> Expr {
    let ps = params_of(shape, GenTy::Inst(mi));
    if !ps.is_empty() && rng.gen_range(0..2u32) == 0 {
        lb::var(&arg_name(*pick(rng, &ps)))
    } else {
        let (fname, fp) = shape.models[mi].fields[fi];
        let v = leaf(rng, shape, ids, GenTy::Prim(fp));
        lb::call(lb::cls(ids[mi]), "create!", [lb::hash([(fname, v)])])
    }
}

fn sample_expr(
    rng: &mut StdRng,
    shape: &Shape,
    ids: &[ClassId],
    want: GenTy,
    depth: usize,
) -> Expr {
    if depth == 0 {
        return leaf(rng, shape, ids, want);
    }
    match want {
        GenTy::Prim(Prim::Str) => {
            let mut opts: Vec<u32> = vec![0, 0, 1, 2];
            if model_with_field(shape, Prim::Str).is_some() {
                opts.push(3);
                opts.push(3);
            }
            match *pick(rng, &opts) {
                0 => {
                    let op = *pick(rng, &["upcase", "downcase", "reverse", "strip"]);
                    lb::call(sample_expr(rng, shape, ids, want, depth - 1), op, [])
                }
                1 => lb::call(
                    sample_expr(rng, shape, ids, want, depth - 1),
                    "+",
                    [leaf(rng, shape, ids, want)],
                ),
                2 => lb::call(
                    sample_expr(rng, shape, ids, GenTy::Prim(Prim::Int), depth - 1),
                    "to_s",
                    [],
                ),
                _ => {
                    let (mi, fs) = model_with_field(shape, Prim::Str).expect("checked above");
                    let fi = *pick(rng, &fs);
                    let recv = inst_source(rng, shape, ids, mi, fi);
                    lb::call(recv, shape.models[mi].fields[fi].0, [])
                }
            }
        }
        GenTy::Prim(Prim::Int) => {
            let mut opts: Vec<u32> = vec![0, 0, 1, 2, 2, 3, 4];
            if model_with_field(shape, Prim::Int).is_some() {
                opts.push(5);
            }
            match *pick(rng, &opts) {
                0 => {
                    let op = *pick(rng, &["+", "-", "*"]);
                    lb::call(
                        sample_expr(rng, shape, ids, want, depth - 1),
                        op,
                        [leaf(rng, shape, ids, want)],
                    )
                }
                1 => lb::call(
                    sample_expr(rng, shape, ids, GenTy::Prim(Prim::Str), depth - 1),
                    "length",
                    [],
                ),
                2 => {
                    let mi = rng.gen_range(0..shape.models.len());
                    lb::call(lb::cls(ids[mi]), "count", [])
                }
                3 => {
                    let op = *pick(rng, &["succ", "pred"]);
                    lb::call(sample_expr(rng, shape, ids, want, depth - 1), op, [])
                }
                4 => {
                    let mi = rng.gen_range(0..shape.models.len());
                    lb::call(lb::cls(ids[mi]), "delete_all", [])
                }
                _ => {
                    let (mi, fs) = model_with_field(shape, Prim::Int).expect("checked above");
                    let fi = *pick(rng, &fs);
                    let recv = inst_source(rng, shape, ids, mi, fi);
                    lb::call(recv, shape.models[mi].fields[fi].0, [])
                }
            }
        }
        GenTy::Prim(Prim::Bool) => {
            let mut opts: Vec<u32> = vec![0, 0, 1, 2, 3, 4, 4];
            if model_with_field(shape, Prim::Bool).is_some() {
                opts.push(5);
            }
            match *pick(rng, &opts) {
                0 => {
                    let t = if rng.gen_range(0..2u32) == 0 {
                        GenTy::Prim(Prim::Str)
                    } else {
                        GenTy::Prim(Prim::Int)
                    };
                    lb::call(
                        sample_expr(rng, shape, ids, t, depth - 1),
                        "==",
                        [leaf(rng, shape, ids, t)],
                    )
                }
                1 => lb::call(
                    sample_expr(rng, shape, ids, GenTy::Prim(Prim::Str), depth - 1),
                    "empty?",
                    [],
                ),
                2 => {
                    let op = *pick(rng, &["include?", "start_with?", "end_with?"]);
                    lb::call(
                        sample_expr(rng, shape, ids, GenTy::Prim(Prim::Str), depth - 1),
                        op,
                        [lb::str_(pick_str(rng, &STR_LITS))],
                    )
                }
                3 => {
                    let op = *pick(rng, &["zero?", "even?", "odd?", "positive?"]);
                    lb::call(
                        sample_expr(rng, shape, ids, GenTy::Prim(Prim::Int), depth - 1),
                        op,
                        [],
                    )
                }
                4 => {
                    let mi = rng.gen_range(0..shape.models.len());
                    let m = &shape.models[mi];
                    let fi = rng.gen_range(0..m.fields.len());
                    let (fname, fp) = m.fields[fi];
                    let v = leaf(rng, shape, ids, GenTy::Prim(fp));
                    lb::call(lb::cls(ids[mi]), "exists?", [lb::hash([(fname, v)])])
                }
                _ => {
                    let (mi, fs) = model_with_field(shape, Prim::Bool).expect("checked above");
                    let fi = *pick(rng, &fs);
                    let recv = inst_source(rng, shape, ids, mi, fi);
                    lb::call(recv, shape.models[mi].fields[fi].0, [])
                }
            }
        }
        GenTy::Inst(mi) => {
            let m = &shape.models[mi];
            let fi = rng.gen_range(0..m.fields.len());
            let (fname, fp) = m.fields[fi];
            let v = sample_expr(rng, shape, ids, GenTy::Prim(fp), depth - 1);
            let meth = if rng.gen_range(0..3u32) == 0 {
                "find_or_create_by"
            } else {
                "create!"
            };
            lb::call(lb::cls(ids[mi]), meth, [lb::hash([(fname, v)])])
        }
    }
}

fn expr_size(e: &Expr) -> usize {
    match e {
        Expr::Lit(_) | Expr::Var(_) | Expr::Hole(_) | Expr::EffHole(_) => 1,
        Expr::Call { recv, args, .. } => {
            1 + expr_size(recv) + args.iter().map(expr_size).sum::<usize>()
        }
        Expr::HashLit(entries) => 1 + entries.iter().map(|(_, v)| expr_size(v)).sum::<usize>(),
        Expr::Seq(es) => 1 + es.iter().map(expr_size).sum::<usize>(),
        Expr::If { cond, then, els } => 1 + expr_size(cond) + expr_size(then) + expr_size(els),
        Expr::Let { val, body, .. } => 1 + expr_size(val) + expr_size(body),
        Expr::Not(inner) => 1 + expr_size(inner),
        Expr::Or(a, b) => 1 + expr_size(a) + expr_size(b),
    }
}

fn collect_consts(e: &Expr, lits: &mut Vec<Value>, classes: &mut Vec<ClassId>) {
    match e {
        Expr::Lit(Value::Class(c)) => {
            if !classes.contains(c) {
                classes.push(*c);
            }
        }
        Expr::Lit(v) => {
            let base = matches!(
                v,
                Value::Nil | Value::Bool(_) | Value::Int(0) | Value::Int(1)
            ) || matches!(v, Value::Str(s) if s.is_empty());
            if !base && !lits.contains(v) {
                lits.push(v.clone());
            }
        }
        Expr::Var(_) | Expr::Hole(_) | Expr::EffHole(_) => {}
        Expr::Call { recv, args, .. } => {
            collect_consts(recv, lits, classes);
            for a in args {
                collect_consts(a, lits, classes);
            }
        }
        Expr::HashLit(entries) => {
            for (_, v) in entries {
                collect_consts(v, lits, classes);
            }
        }
        Expr::Seq(es) => {
            for x in es {
                collect_consts(x, lits, classes);
            }
        }
        Expr::If { cond, then, els } => {
            collect_consts(cond, lits, classes);
            collect_consts(then, lits, classes);
            collect_consts(els, lits, classes);
        }
        Expr::Let { val, body, .. } => {
            collect_consts(val, lits, classes);
            collect_consts(body, lits, classes);
        }
        Expr::Not(inner) => collect_consts(inner, lits, classes),
        Expr::Or(a, b) => {
            collect_consts(a, lits, classes);
            collect_consts(b, lits, classes);
        }
    }
}

// ── spec-setup planning ─────────────────────────────────────────────────

fn row_create(m: &ModelShape, lits: &[LitVal]) -> ExprNode {
    let entries = m
        .fields
        .iter()
        .zip(lits)
        .map(|((fname, _), l)| (*fname, f_lit(*l)))
        .collect();
    f_call(f_class(m.name), "create", vec![f_hash(entries)])
}

fn plan_spec(rng: &mut StdRng, shape: &Shape) -> SpecPlan {
    let mut stmts = Vec::new();
    let mut seeded = Vec::new();
    for (mi, m) in shape.models.iter().enumerate() {
        let rows = rng.gen_range(0..3u32);
        for _ in 0..rows {
            let lits: Vec<LitVal> = m.fields.iter().map(|(_, p)| lit_for(rng, *p)).collect();
            for (fi, l) in lits.iter().enumerate() {
                seeded.push((mi, fi, *l));
            }
            stmts.push(Stmt::Exec(row_create(m, &lits)));
        }
    }
    let mut args = Vec::new();
    let mut bindn = 0usize;
    for p in &shape.params {
        match p {
            GenTy::Prim(pr) => args.push(f_lit(lit_for(rng, *pr))),
            GenTy::Inst(mi) => {
                let m = &shape.models[*mi];
                let lits: Vec<LitVal> = m.fields.iter().map(|(_, pr)| lit_for(rng, *pr)).collect();
                for (fi, l) in lits.iter().enumerate() {
                    seeded.push((*mi, fi, *l));
                }
                let name = format!("a{bindn}");
                bindn += 1;
                stmts.push(Stmt::Bind {
                    name: name.clone(),
                    name_span: sp(),
                    value: row_create(m, &lits),
                });
                args.push(f_var(&name));
            }
        }
    }
    stmts.push(Stmt::Target {
        bind: "updated".to_owned(),
        args,
        span: sp(),
    });
    SpecPlan { stmts, seeded }
}

// ── file assembly ───────────────────────────────────────────────────────

fn eff_star(class: &str) -> EffPath {
    EffPath {
        class: Some(class.to_owned()),
        region: None,
        bare_star: false,
        span: sp(),
    }
}

fn helper_def(shape: &Shape, h: &Helper) -> MethodDef {
    let (model, params, ret, reads, writes, hidden, body): (
        usize,
        Vec<ParamDecl>,
        TypeExpr,
        Vec<EffPath>,
        Vec<EffPath>,
        bool,
        ExprNode,
    ) = match h {
        Helper::Total { model } => {
            let name = shape.models[*model].name;
            (
                *model,
                vec![],
                f_ty("Int"),
                vec![eff_star(name)],
                vec![],
                false,
                f_call(f_class(name), "count", vec![]),
            )
        }
        Helper::Has { model, field } => {
            let name = shape.models[*model].name;
            let (fname, fp) = shape.models[*model].fields[*field];
            (
                *model,
                vec![ParamDecl {
                    name: "v".to_owned(),
                    name_span: sp(),
                    ty: f_ty(prim_name(fp)),
                }],
                f_ty("Bool"),
                vec![eff_star(name)],
                vec![],
                false,
                f_call(
                    f_class(name),
                    "exists?",
                    vec![f_hash(vec![(fname, f_var("v"))])],
                ),
            )
        }
        Helper::Add {
            model,
            field,
            hidden,
        } => {
            let name = shape.models[*model].name;
            let (fname, fp) = shape.models[*model].fields[*field];
            (
                *model,
                vec![ParamDecl {
                    name: "v".to_owned(),
                    name_span: sp(),
                    ty: f_ty(prim_name(fp)),
                }],
                f_ty(name),
                vec![eff_star(name)],
                vec![eff_star(name)],
                *hidden,
                f_call(
                    f_class(name),
                    "create!",
                    vec![f_hash(vec![(fname, f_var("v"))])],
                ),
            )
        }
    };
    MethodDef {
        owner: shape.models[model].name.to_owned(),
        owner_span: sp(),
        instance: false,
        name: helper_name(shape, h),
        name_span: sp(),
        params,
        ret,
        reads,
        writes,
        hidden,
        body: vec![Stmt::Exec(body)],
        span: sp(),
    }
}

fn build_file(
    shape: &Shape,
    index: usize,
    plans: &[SpecPlan],
    asserts: &[Vec<ExprNode>],
    consts: Vec<ConstItem>,
    options: Vec<OptionEntry>,
) -> SpecFile {
    let mut decls: Vec<Decl> = shape
        .models
        .iter()
        .map(|m| {
            Decl::Model(ModelDecl {
                name: m.name.to_owned(),
                name_span: sp(),
                writers: true,
                fields: m
                    .fields
                    .iter()
                    .map(|(n, p)| FieldDecl {
                        name: (*n).to_owned(),
                        name_span: sp(),
                        ty: f_ty(prim_name(*p)),
                    })
                    .collect(),
            })
        })
        .collect();
    for h in &shape.helpers {
        decls.push(Decl::Def(helper_def(shape, h)));
    }
    let specs: Vec<SpecBlock> = plans
        .iter()
        .zip(asserts)
        .enumerate()
        .map(|(j, (p, asr))| SpecBlock {
            title: format!("case {}", j + 1),
            title_span: sp(),
            stmts: p
                .stmts
                .iter()
                .cloned()
                .chain(asr.iter().cloned().map(|e| Stmt::Assert(e, sp())))
                .collect(),
            span: sp(),
        })
        .collect();
    SpecFile {
        meta: Some(Meta {
            id: Some((format!("gen{index:04}"), sp())),
            group: Some(("Synthetic".to_owned(), sp())),
            name: Some((shape.fname.to_owned(), sp())),
            orig_paths: Some((1, sp())),
            span: sp(),
        }),
        decls,
        options,
        define: Define {
            name: shape.fname.to_owned(),
            name_span: sp(),
            params: shape
                .params
                .iter()
                .enumerate()
                .map(|(i, t)| ParamDecl {
                    name: arg_name(i),
                    name_span: sp(),
                    ty: f_ty(genty_name(shape, *t)),
                })
                .collect(),
            ret: f_ty(genty_name(shape, shape.ret)),
            consts,
            specs,
            span: sp(),
        },
    }
}

fn build_consts(lits: &[Value], classes: &[ClassId]) -> Vec<ConstItem> {
    let mut out = vec![ConstItem {
        kind: ConstKind::Base,
        span: sp(),
    }];
    for v in lits {
        let lit = match v {
            Value::Int(i) => Lit::Int(*i),
            Value::Str(s) => Lit::Str(s.to_string()),
            _ => continue,
        };
        out.push(ConstItem {
            kind: ConstKind::Lit(lit),
            span: sp(),
        });
    }
    for c in classes {
        out.push(ConstItem {
            kind: ConstKind::Class(c.name.as_str().to_owned()),
            span: sp(),
        });
    }
    out
}

fn build_options(ref_size: usize) -> Vec<OptionEntry> {
    let entry = |key: &str, v: i64| OptionEntry {
        key: key.to_owned(),
        key_span: sp(),
        value: OptValue::Int(v),
        value_span: sp(),
    };
    vec![
        entry("max_size", (ref_size + 3).clamp(4, 10) as i64),
        entry("max_expansions", 200_000),
        entry("timeout_secs", 30),
    ]
}

// ── assertion derivation ────────────────────────────────────────────────

fn derive_asserts(
    rng: &mut StdRng,
    shape: &Shape,
    ids: &[ClassId],
    env: &rbsyn_interp::InterpEnv,
    spec: &Spec,
    reference: &Program,
    plan: &SpecPlan,
) -> Option<Vec<ExprNode>> {
    let mut state = WorldState::fresh(env);
    let mut ev = Evaluator::new(env, &mut state);
    let mut locals = Locals::new();
    for step in &spec.steps {
        match step {
            SetupStep::Bind(name, e) => {
                let v = ev.eval(&mut locals, e).ok()?;
                locals.bind(*name, v);
            }
            SetupStep::Exec(e) => {
                ev.eval(&mut locals, e).ok()?;
            }
            SetupStep::CallTarget { bind, args } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(ev.eval(&mut locals, a).ok()?);
                }
                let v = ev.call_program(reference, vals).ok()?;
                locals.bind(*bind, v);
            }
            SetupStep::Native(_) => return None,
        }
    }
    let updated = locals.get(Symbol::intern("updated")).cloned()?;
    let mut out: Vec<Dual> = Vec::new();
    match &updated {
        Value::Bool(true) => out.push(d_var("updated")),
        Value::Bool(false) => out.push(d_not(d_var("updated"))),
        Value::Int(n) => out.push(d_eq(d_var("updated"), d_int(*n))),
        Value::Str(s) => out.push(d_eq(d_var("updated"), d_str(s))),
        Value::Obj(_) => {
            let GenTy::Inst(mi) = shape.ret else {
                return None;
            };
            out.push(d_call(d_var("updated"), "persisted?", vec![]));
            for (fname, _) in &shape.models[mi].fields {
                let d = d_call(d_var("updated"), fname, vec![]);
                match ev.eval(&mut locals, &d.lang).ok()? {
                    Value::Str(s) => out.push(d_eq(d, d_str(&s))),
                    Value::Int(n) => out.push(d_eq(d, d_int(n))),
                    Value::Bool(true) => out.push(d),
                    Value::Bool(false) => out.push(d_not(d)),
                    _ => {}
                }
            }
        }
        _ => return None,
    }
    for (mi, m) in shape.models.iter().enumerate() {
        if rng.gen_range(0..2u32) == 1 {
            continue;
        }
        let d = d_eq(
            d_call(d_class(m.name, ids[mi]), "count", vec![]),
            d_int(
                match ev.eval(&mut locals, &lb::call(lb::cls(ids[mi]), "count", [])) {
                    Ok(Value::Int(c)) => c,
                    _ => continue,
                },
            ),
        );
        out.push(d);
    }
    if !plan.seeded.is_empty() && rng.gen_range(0..2u32) == 0 {
        let (mi, fi, l) = plan.seeded[rng.gen_range(0..plan.seeded.len())];
        let m = &shape.models[mi];
        let d = d_call(
            d_class(m.name, ids[mi]),
            "exists?",
            vec![d_hash1(m.fields[fi].0, d_lit(l))],
        );
        if matches!(ev.eval(&mut locals, &d.lang), Ok(Value::Bool(true))) {
            out.push(d);
        }
    }
    let mut fronts = Vec::new();
    for d in out.into_iter().take(4) {
        if ev.eval(&mut locals, &d.lang).ok()?.truthy() {
            fronts.push(d.front);
        }
    }
    if fronts.is_empty() {
        return None;
    }
    Some(fronts)
}

// ── candidate generation and the differential gate ──────────────────────

fn header(seed: u64, index: usize, attempt: u32) -> String {
    format!(
        "# Generated by specgen; do not edit — `specgen --regen` rewrites this directory.\n\
         # specgen: seed={seed} index={index} attempt={attempt}\n\n"
    )
}

/// The `(seed, index, attempt)` triple recorded in a generated file's
/// header — everything needed to re-derive the file and its hidden
/// reference deterministically.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct GenKey {
    /// Corpus seed.
    pub seed: u64,
    /// Corpus index.
    pub index: usize,
    /// Accepted attempt number.
    pub attempt: u32,
}

/// Parses the `# specgen: seed=… index=… attempt=…` header line of a
/// generated file.
pub fn parse_header(text: &str) -> Option<GenKey> {
    for line in text.lines().take(5) {
        let Some(rest) = line.strip_prefix("# specgen: ") else {
            continue;
        };
        let (mut seed, mut index, mut attempt) = (None, None, None);
        for part in rest.split_whitespace() {
            let (k, v) = part.split_once('=')?;
            match k {
                "seed" => seed = v.parse().ok(),
                "index" => index = v.parse().ok(),
                "attempt" => attempt = v.parse().ok(),
                _ => {}
            }
        }
        return Some(GenKey {
            seed: seed?,
            index: index?,
            attempt: attempt?,
        });
    }
    None
}

/// Generates one candidate problem for `(seed, index, attempt)`: sampled,
/// executed, printed, re-loaded through the full frontend, and validated
/// (reference passes every spec; printing is canonical). Returns `None`
/// when this attempt dead-ends (the caller retries with `attempt + 1`).
/// Does **not** run the solver — see [`generate_problem`].
pub fn gen_candidate(seed: u64, index: usize, attempt: u32) -> Option<Candidate> {
    gen_candidate_with(seed, index, attempt, None)
}

/// [`gen_candidate`] with an explicit spec-count override (used to build
/// oversized, >64-spec problems that exercise the guard-pool fallback).
pub fn gen_candidate_with(
    seed: u64,
    index: usize,
    attempt: u32,
    spec_count: Option<usize>,
) -> Option<Candidate> {
    let mut rng = StdRng::seed_from_u64(mix3(seed, index as u64, attempt as u64));
    let shape = sample_shape(&mut rng);
    let nspecs = spec_count.unwrap_or_else(|| 1 + rng.gen_range(0..3usize));
    let plans: Vec<SpecPlan> = (0..nspecs).map(|_| plan_spec(&mut rng, &shape)).collect();

    // Pass 1: provisional file (placeholder asserts) to get lowered setup
    // steps and the environment's class ids.
    let provisional: Vec<Vec<ExprNode>> = (0..nspecs).map(|_| vec![f_bool(true)]).collect();
    let file1 = build_file(&shape, index, &plans, &provisional, vec![], vec![]);
    let lowered1 = rbsyn_front::lower(&file1).ok()?;
    let ids: Vec<ClassId> = shape
        .models
        .iter()
        .map(|m| lowered1.env.table.hierarchy.find(m.name))
        .collect::<Option<Vec<_>>>()?;

    // The hidden reference, sampled from the search grammar.
    let depth = 1 + rng.gen_range(0..2usize);
    let body = sample_expr(&mut rng, &shape, &ids, shape.ret, depth);
    let param_syms: Vec<Symbol> = (0..shape.params.len())
        .map(|i| Symbol::intern(&arg_name(i)))
        .collect();
    let reference = Program::from_parts(Symbol::intern(shape.fname), param_syms, body);

    // Execute the reference against each spec world and derive asserts.
    let mut all_asserts: Vec<Vec<ExprNode>> = Vec::with_capacity(nspecs);
    for (j, spec) in lowered1.problem.specs.iter().enumerate() {
        all_asserts.push(derive_asserts(
            &mut rng,
            &shape,
            &ids,
            &lowered1.env,
            spec,
            &reference,
            &plans[j],
        )?);
    }

    // Pass 2: the real file, with Σ covering every reference terminal.
    let mut lits = Vec::new();
    let mut classes = Vec::new();
    collect_consts(&reference.body, &mut lits, &mut classes);
    let file2 = build_file(
        &shape,
        index,
        &plans,
        &all_asserts,
        build_consts(&lits, &classes),
        build_options(expr_size(&reference.body)),
    );
    let body_text = to_rbspec(&file2);
    let text = format!("{}{body_text}", header(seed, index, attempt));

    // Full frontend round trip: parse + lower + canonical re-print.
    let origin = format!("gen{index:04}.rbspec");
    let loaded = load_str(&text, &origin).ok()?;
    if to_rbspec(&loaded.file) != body_text {
        return None;
    }
    for spec in &loaded.lowered.problem.specs {
        if !run_spec(&loaded.lowered.env, spec, &reference).passed() {
            return None;
        }
    }
    Some(Candidate {
        index,
        attempt,
        text,
        reference,
        loaded,
    })
}

/// Solves a candidate under its file options and compares the solution
/// against the hidden reference by observational equivalence: both
/// programs must pass every spec with identical
/// [`PreparedSpec::run_traced`] evaluation fingerprints.
///
/// With `honor_timeout: false` the file's wall-clock deadline is dropped
/// and only the deterministic `max_expansions` budget bounds the search —
/// that is the generation-time acceptance test, and it is
/// machine-independent.
pub fn solve_and_check(c: &Candidate, honor_timeout: bool) -> Verdict {
    let (env, problem) = c.loaded.build();
    let mut opts = c.loaded.lowered.options.clone();
    if !honor_timeout {
        opts.timeout = None;
    }
    match Synthesizer::new(env, problem, opts).run() {
        Ok(res) => {
            let (env2, problem2) = c.loaded.build();
            for spec in &problem2.specs {
                let prepared = match PreparedSpec::prepare(&env2, spec) {
                    Ok(p) => p,
                    Err(e) => return Verdict::Error(format!("spec setup failed: {e:?}")),
                };
                let (o1, f1) = prepared.run_traced(&env2, &res.program);
                let (o2, f2) = prepared.run_traced(&env2, &c.reference);
                if !o1.passed() || !o2.passed() || f1.is_none() || f1 != f2 {
                    return Verdict::Mismatch;
                }
            }
            Verdict::Solved(Box::new(res.program))
        }
        Err(SynthError::Timeout) => Verdict::Timeout,
        Err(
            SynthError::NoSolution { .. } | SynthError::MergeFailed | SynthError::GuardNotFound,
        ) => Verdict::NoSolution,
        Err(e) => Verdict::Error(format!("{e:?}")),
    }
}

/// Generates the corpus problem for `(seed, index)`: retries attempts
/// until one both survives [`gen_candidate`] and is *verified solvable*
/// (solves within its deterministic budget, observationally equivalent to
/// its hidden reference).
pub fn generate_problem(seed: u64, index: usize) -> Result<Candidate, String> {
    for attempt in 0..MAX_ATTEMPTS {
        if let Some(c) = gen_candidate(seed, index, attempt) {
            if matches!(solve_and_check(&c, false), Verdict::Solved(_)) {
                return Ok(c);
            }
        }
    }
    Err(format!(
        "specgen: index {index}: no solvable problem within {MAX_ATTEMPTS} attempts"
    ))
}

// ── corpus I/O ──────────────────────────────────────────────────────────

/// Writes the full corpus (plus `MANIFEST.txt`) into `dir`, creating it
/// if needed. Byte-reproducible for a fixed `(seed, count)`.
pub fn write_corpus(dir: &Path, seed: u64, count: usize, verbose: bool) -> Result<(), String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for index in 0..count {
        let c = generate_problem(seed, index)?;
        let path = dir.join(format!("gen{index:04}.rbspec"));
        rbsyn_lang::persist::atomic_write(&path, c.text.as_bytes())
            .map_err(|e| format!("{}: {e}", path.display()))?;
        if verbose && (index + 1) % 25 == 0 {
            eprintln!("  specgen: {}/{count} problems written", index + 1);
        }
    }
    let manifest = format!(
        "# specgen corpus manifest — regenerate with `specgen --regen`.\n\
         version 1\nseed {seed}\ncount {count}\n"
    );
    rbsyn_lang::persist::atomic_write(&dir.join("MANIFEST.txt"), manifest.as_bytes())
        .map_err(|e| format!("{}: {e}", dir.display()))?;
    Ok(())
}

/// Reads `(seed, count)` back from a corpus directory's `MANIFEST.txt`.
pub fn read_manifest(dir: &Path) -> Result<(u64, usize), String> {
    let path = dir.join("MANIFEST.txt");
    let text = std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut seed = None;
    let mut count = None;
    for line in text.lines() {
        if let Some(v) = line.strip_prefix("seed ") {
            seed = v.trim().parse().ok();
        } else if let Some(v) = line.strip_prefix("count ") {
            count = v.trim().parse().ok();
        }
    }
    match (seed, count) {
        (Some(s), Some(c)) => Ok((s, c)),
        _ => Err(format!("{}: missing seed/count lines", path.display())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidates_are_deterministic() {
        let mut first = None;
        for attempt in 0..50 {
            if let Some(c) = gen_candidate(7, 0, attempt) {
                first = Some((attempt, c.text));
                break;
            }
        }
        let (attempt, text) = first.expect("some attempt under 50 yields a candidate");
        let again = gen_candidate(7, 0, attempt).expect("same attempt regenerates");
        assert_eq!(again.text, text, "generation must be a pure function");
    }

    #[test]
    fn candidate_text_parses_and_reference_passes() {
        let mut found = 0;
        for index in 0..6 {
            for attempt in 0..50 {
                let Some(c) = gen_candidate(11, index, attempt) else {
                    continue;
                };
                found += 1;
                assert!(c.text.starts_with("# Generated by specgen"));
                let key = parse_header(&c.text).expect("header parses");
                assert_eq!(
                    key,
                    GenKey {
                        seed: 11,
                        index,
                        attempt
                    }
                );
                // gen_candidate already re-validated the reference through
                // the reloaded file; spot-check the problem is well-formed.
                c.loaded.lowered.problem.validate().expect("valid problem");
                break;
            }
        }
        assert!(
            found >= 4,
            "most indices should generate within 50 attempts"
        );
    }

    #[test]
    fn generated_problem_solves_and_matches_reference() {
        let c = generate_problem(3, 0).expect("index 0 generates");
        match solve_and_check(&c, false) {
            Verdict::Solved(_) => {}
            _ => panic!("accepted problem must re-solve deterministically"),
        }
    }

    #[test]
    fn oversized_spec_count_survives_the_pipeline() {
        // 65 specs is one past the guard pool's inline bitvector word:
        // problems this wide must still generate, print, re-load, and
        // validate. Since PR 8 there is no legacy fallback to hide in —
        // the pool spills its vectors into heap words and the same BDD
        // engine answers every spec count.
        let mut produced = None;
        'outer: for index in 0..4 {
            for attempt in 0..80 {
                if let Some(c) = gen_candidate_with(13, index, attempt, Some(65)) {
                    produced = Some(c);
                    break 'outer;
                }
            }
        }
        let c = produced.expect("an oversized candidate generates");
        let problem = &c.loaded.lowered.problem;
        assert!(
            problem.specs.len() > 64,
            "override must overflow one bitvector word, got {}",
            problem.specs.len()
        );
        problem
            .validate()
            .expect("oversized problem is well-formed");
        // And it is deterministic like every other candidate.
        let key = parse_header(&c.text).expect("header parses");
        let again = gen_candidate_with(key.seed, key.index, key.attempt, Some(65))
            .expect("same key regenerates");
        assert_eq!(again.text, c.text);
        // The oversized problem solves through the unified pool engine,
        // and BDD semantics on/off synthesize byte-identical programs.
        let mut programs = Vec::new();
        for bdd in [true, false] {
            let (env, problem) = c.loaded.build();
            let mut opts = c.loaded.lowered.options.clone();
            opts.timeout = None;
            opts.bdd = bdd;
            let res = Synthesizer::new(env, problem, opts)
                .run()
                .expect("oversized problem solves");
            programs.push(res.program.body.compact());
        }
        assert_eq!(
            programs[0], programs[1],
            "bdd on/off must agree on the oversized problem"
        );
    }

    #[test]
    fn manifest_round_trips() {
        let dir = std::env::temp_dir().join("specgen-manifest-test");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("MANIFEST.txt"),
            "# c\nversion 1\nseed 42\ncount 7\n",
        )
        .unwrap();
        assert_eq!(read_manifest(&dir).unwrap(), (42, 7));
    }
}
