//! Frontend fuzzing: mutate well-formed `.rbspec` sources and check the
//! lexer → parser → lowering path is total — it either accepts or rejects
//! with a well-formed, in-bounds diagnostic. It must never panic.
//!
//! Mutations are byte-level (flip/insert/delete/truncate), line-level
//! (duplicate/delete/swap), and token-level (splice keywords, operators,
//! and pathological literals such as an overflowing integer). Bases are
//! drawn from the generator ([`crate::gen::gen_candidate`]) so the fuzzer
//! explores mutations *near* realistic files, not just ASCII noise.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rbsyn_front::{lower, parse, Diagnostic};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A static fallback base for iterations where the generator declines.
const MINI: &str = r#"model Issue do
  title: Str
  state: Str
end

define close_issue(arg0: Str) -> Issue do
  consts base, "closed", Issue

  spec "closing flips the state" do
    Issue.create({title: "open", state: "opened"})
    updated = target("open")
    assert updated.state == "closed"
  end
end
"#;

/// Tokens spliced into sources by the token-level mutation.
const SPLICE_TOKENS: [&str; 16] = [
    "do",
    "end",
    "spec",
    "define",
    "model",
    "assert",
    "target",
    "consts",
    "->",
    "==",
    "{",
    "}",
    "(",
    ")",
    "99999999999999999999999999",
    "\"unterminated",
];

/// Outcome of a fuzzing run.
pub struct FuzzReport {
    /// Iterations executed.
    pub iterations: usize,
    /// Mutants the frontend accepted (parsed and lowered).
    pub accepted: usize,
    /// Mutants rejected with a well-formed diagnostic.
    pub rejected: usize,
    /// Contract violations: panics, empty messages, out-of-bounds spans.
    pub failures: Vec<String>,
}

fn diagnostic_ok(d: &Diagnostic, src: &str) -> Result<(), String> {
    if d.message.is_empty() {
        return Err("empty diagnostic message".to_owned());
    }
    if d.span.start > d.span.end || d.span.end > src.len() {
        return Err(format!(
            "diagnostic span {}..{} out of bounds for source of {} bytes",
            d.span.start,
            d.span.end,
            src.len()
        ));
    }
    Ok(())
}

/// Runs the frontend on one source under `catch_unwind`, checking the
/// totality contract. `Ok(accepted)` on contract compliance.
fn check_one(src: &str) -> Result<bool, String> {
    let outcome = catch_unwind(AssertUnwindSafe(|| match parse(src) {
        Ok(file) => match lower(&file) {
            Ok(_) => Ok(true),
            Err(d) => diagnostic_ok(&d, src).map(|()| {
                // Rendering must be total too (it slices the source).
                let _ = d.render("fuzz.rbspec", src);
                false
            }),
        },
        Err(d) => diagnostic_ok(&d, src).map(|()| {
            let _ = d.render("fuzz.rbspec", src);
            false
        }),
    }));
    match outcome {
        Ok(r) => r,
        Err(_) => Err("frontend panicked".to_owned()),
    }
}

fn mutate(rng: &mut StdRng, base: &str) -> String {
    let mut bytes = base.as_bytes().to_vec();
    let ops = 1 + rng.gen_range(0..3u32);
    for _ in 0..ops {
        if bytes.is_empty() {
            bytes.extend_from_slice(b"spec");
        }
        match rng.gen_range(0..7u32) {
            0 => {
                // Replace one byte with a random printable-or-not byte.
                let i = rng.gen_range(0..bytes.len());
                bytes[i] = rng.gen_range(0..256u32) as u8;
            }
            1 => {
                // Insert a random byte.
                let i = rng.gen_range(0..bytes.len() + 1);
                bytes.insert(i, rng.gen_range(0..256u32) as u8);
            }
            2 => {
                // Delete a short range.
                let i = rng.gen_range(0..bytes.len());
                let n = (1 + rng.gen_range(0..8usize)).min(bytes.len() - i);
                bytes.drain(i..i + n);
            }
            3 => {
                // Truncate.
                let i = rng.gen_range(0..bytes.len() + 1);
                bytes.truncate(i);
            }
            4 => {
                // Duplicate, delete, or swap whole lines.
                let text = String::from_utf8_lossy(&bytes).into_owned();
                let mut lines: Vec<&str> = text.lines().collect();
                if !lines.is_empty() {
                    match rng.gen_range(0..3u32) {
                        0 => {
                            let i = rng.gen_range(0..lines.len());
                            let l = lines[i];
                            lines.insert(i, l);
                        }
                        1 => {
                            let i = rng.gen_range(0..lines.len());
                            lines.remove(i);
                        }
                        _ => {
                            let i = rng.gen_range(0..lines.len());
                            let j = rng.gen_range(0..lines.len());
                            lines.swap(i, j);
                        }
                    }
                }
                bytes = lines.join("\n").into_bytes();
            }
            5 => {
                // Splice a token at a random position.
                let tok = SPLICE_TOKENS[rng.gen_range(0..SPLICE_TOKENS.len())];
                let i = rng.gen_range(0..bytes.len() + 1);
                bytes.splice(i..i, tok.bytes());
            }
            _ => {
                // Splice a token in place of a short range.
                let tok = SPLICE_TOKENS[rng.gen_range(0..SPLICE_TOKENS.len())];
                let i = rng.gen_range(0..bytes.len());
                let n = (1 + rng.gen_range(0..6usize)).min(bytes.len() - i);
                bytes.splice(i..i + n, tok.bytes());
            }
        }
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

/// Fuzzes the frontend for `iterations` mutants derived from `seed`.
/// Every 20th iteration refreshes the mutation base with a freshly
/// generated file (falling back to a static one); the rest mutate the
/// current base. Failures collect the offending source (truncated) with
/// the violated contract.
pub fn run_fuzz(seed: u64, iterations: usize) -> FuzzReport {
    // Panics are expected to be *absent*; keep the default hook quiet so
    // a violating iteration doesn't spew a backtrace per mutant.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    let mut rng = StdRng::seed_from_u64(seed ^ 0x6675_7a7a); // "fuzz"
    let mut report = FuzzReport {
        iterations,
        accepted: 0,
        rejected: 0,
        failures: Vec::new(),
    };
    let mut base = MINI.to_owned();
    for i in 0..iterations {
        if i % 20 == 0 {
            let fresh_seed = rng.next_u64();
            base = (0..8)
                .find_map(|attempt| crate::gen::gen_candidate(fresh_seed, 0, attempt))
                .map(|c| c.text)
                .unwrap_or_else(|| MINI.to_owned());
        }
        let src = mutate(&mut rng, &base);
        match check_one(&src) {
            Ok(true) => report.accepted += 1,
            Ok(false) => report.rejected += 1,
            Err(why) => {
                let excerpt: String = src.chars().take(200).collect();
                report
                    .failures
                    .push(format!("iteration {i}: {why}\n  source: {excerpt:?}"));
            }
        }
    }

    std::panic::set_hook(prev_hook);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mini_base_is_accepted() {
        assert_eq!(check_one(MINI), Ok(true));
    }

    #[test]
    fn garbage_is_rejected_with_spanned_diagnostic() {
        assert_eq!(check_one("model do end ???"), Ok(false));
        assert_eq!(check_one(""), Ok(false));
        assert_eq!(check_one("\u{0}\u{1}\u{2}"), Ok(false));
    }

    #[test]
    fn short_fuzz_run_is_clean_and_deterministic() {
        let a = run_fuzz(42, 200);
        assert!(a.failures.is_empty(), "{:?}", a.failures);
        assert_eq!(a.accepted + a.rejected, 200);
        let b = run_fuzz(42, 200);
        assert_eq!(a.accepted, b.accepted);
        assert_eq!(a.rejected, b.rejected);
    }
}
