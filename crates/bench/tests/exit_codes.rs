//! End-to-end exit-code contract for `solve --spec`, driven through the
//! real binary so the process-level codes (not just the internal
//! mapping) are pinned: 3 = parse/lower failure, 4 = timeout,
//! 5 = search budget exhausted with no solution.

use std::path::Path;
use std::process::Command;

fn solve_spec(fixture: &str) -> std::process::Output {
    let path = Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../suite/tests/fixtures"
    ))
    .join(fixture);
    Command::new(env!("CARGO_BIN_EXE_solve"))
        .arg("--spec")
        .arg(&path)
        .output()
        .expect("solve binary runs")
}

#[test]
fn solve_spec_parse_error_exits_3() {
    let out = solve_spec("parse_error.rbspec");
    assert_eq!(
        out.status.code(),
        Some(3),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("error:"),
        "diagnostic must be rendered on stderr: {stderr}"
    );
}

#[test]
fn solve_spec_timeout_exits_4() {
    let out = solve_spec("timeout.rbspec");
    assert_eq!(
        out.status.code(),
        Some(4),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn solve_spec_no_solution_exits_5() {
    let out = solve_spec("no_solution.rbspec");
    assert_eq!(
        out.status.code(),
        Some(5),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn solve_unknown_flag_exits_2() {
    let out = Command::new(env!("CARGO_BIN_EXE_solve"))
        .arg("--no-such-flag")
        .output()
        .expect("solve binary runs");
    assert_eq!(
        out.status.code(),
        Some(2),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}
