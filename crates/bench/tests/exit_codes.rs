//! End-to-end exit-code contract for `solve`, driven through the real
//! binary so the process-level codes (not just the internal mapping) are
//! pinned: 1 = contained panic / other failure, 2 = usage, 3 = parse/lower
//! failure, 4 = timeout (including watchdog kills), 5 = search budget
//! exhausted with no solution, 6 = shed by admission control.
//!
//! The fault-injected legs (`chaos` module) need the `failpoints` feature:
//! `cargo test -p rbsyn-bench --features failpoints`.

use std::path::Path;
use std::process::Command;

fn solve_spec(fixture: &str) -> std::process::Output {
    let path = Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../suite/tests/fixtures"
    ))
    .join(fixture);
    Command::new(env!("CARGO_BIN_EXE_solve"))
        .arg("--spec")
        .arg(&path)
        .output()
        .expect("solve binary runs")
}

#[test]
fn solve_spec_parse_error_exits_3() {
    let out = solve_spec("parse_error.rbspec");
    assert_eq!(
        out.status.code(),
        Some(3),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("error:"),
        "diagnostic must be rendered on stderr: {stderr}"
    );
}

#[test]
fn solve_spec_timeout_exits_4() {
    let out = solve_spec("timeout.rbspec");
    assert_eq!(
        out.status.code(),
        Some(4),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn solve_spec_no_solution_exits_5() {
    let out = solve_spec("no_solution.rbspec");
    assert_eq!(
        out.status.code(),
        Some(5),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn solve_unknown_flag_exits_2() {
    let out = Command::new(env!("CARGO_BIN_EXE_solve"))
        .arg("--no-such-flag")
        .output()
        .expect("solve binary runs");
    assert_eq!(
        out.status.code(),
        Some(2),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

/// The shed path needs no fault injection: a zero global deadline is an
/// already-spent budget, so admission control deterministically sheds
/// every job and the batch exits 6.
#[test]
fn batch_zero_global_deadline_sheds_and_exits_6() {
    let out = Command::new(env!("CARGO_BIN_EXE_solve"))
        .args([
            "--all",
            "--ids",
            "S1,S2,S3",
            "--parallel",
            "1",
            "--global-deadline",
            "0",
        ])
        .output()
        .expect("solve binary runs");
    assert_eq!(
        out.status.code(),
        Some(6),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        stdout.matches("shed by admission control").count(),
        3,
        "all three jobs must be shed:\n{stdout}"
    );
}

/// `--snapshot`/`--global-deadline` would make the `--compare` byte-diff
/// meaningless; the combination is a usage error, not a silent downgrade.
#[test]
fn snapshot_with_compare_exits_2() {
    let out = Command::new(env!("CARGO_BIN_EXE_solve"))
        .args(["--all", "--compare", "--snapshot", "/tmp/never-written.bin"])
        .output()
        .expect("solve binary runs");
    assert_eq!(
        out.status.code(),
        Some(2),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

/// Fault-injected exit-code legs — compiled only with `--features
/// failpoints` (the production binary carries no injection code).
#[cfg(feature = "failpoints")]
mod chaos {
    use super::*;

    /// A panic in the second job of a batch converts to a per-job
    /// `internal error` (exit 1) while its siblings still solve.
    #[test]
    fn batch_contained_panic_exits_1_and_spares_siblings() {
        let out = Command::new(env!("CARGO_BIN_EXE_solve"))
            .args(["--all", "--ids", "S1,S2,S3", "--parallel", "1"])
            .env("RBSYN_FAILPOINTS", "batch::claim=panic@2")
            .output()
            .expect("solve binary runs");
        assert_eq!(
            out.status.code(),
            Some(1),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            stdout.contains("S2   failed  internal error"),
            "the faulted job must report a contained panic:\n{stdout}"
        );
        assert!(
            stdout.contains("S1   solved") && stdout.contains("S3   solved"),
            "sibling jobs must be unaffected:\n{stdout}"
        );
    }

    /// A panic inside candidate evaluation in single-benchmark mode is
    /// contained by the supervisor in `solve` itself: exit 1, not a
    /// process abort (which would surface as exit 101 / a signal).
    #[test]
    fn single_mode_contained_panic_exits_1() {
        let out = Command::new(env!("CARGO_BIN_EXE_solve"))
            .arg("S1")
            .env("RBSYN_FAILPOINTS", "interp::eval=panic@1")
            .output()
            .expect("solve binary runs");
        assert_eq!(
            out.status.code(),
            Some(1),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            stdout.contains("S1 failed"),
            "the failure must be reported, not aborted:\n{stdout}"
        );
    }

    /// With the interpreter stalled by injected delays, the run still
    /// exits 4 within the hard (watchdog) deadline — a stuck eval cannot
    /// outlive `timeout × grace`.
    #[test]
    fn stalled_interpreter_still_exits_4() {
        let out = Command::new(env!("CARGO_BIN_EXE_solve"))
            .arg("--spec")
            .arg(
                Path::new(concat!(
                    env!("CARGO_MANIFEST_DIR"),
                    "/../suite/tests/fixtures"
                ))
                .join("timeout.rbspec"),
            )
            .env("RBSYN_FAILPOINTS", "interp::eval=delay(10)")
            .output()
            .expect("solve binary runs");
        assert_eq!(
            out.status.code(),
            Some(4),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
}
