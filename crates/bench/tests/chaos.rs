//! Chaos suite: drives the real `solve` binary under injected faults and
//! corrupted persistence, and pins the robustness contract end to end:
//!
//! * no fault profile ever aborts the process — every failure converts to
//!   a per-job exit code (`1` contained panic, `4` watchdog/timeout,
//!   `6` shed);
//! * jobs *not* hit by a fault synthesize byte-identical programs and
//!   effort counters, panicking siblings or not;
//! * pure-delay profiles change nothing at all (stdout byte-identical);
//! * a missing, truncated or corrupted `--snapshot` degrades to a cold
//!   cache with a stderr warning — never a panic, never different
//!   programs; warm-vs-cold is visible only in the diagnostic
//!   `template_hits`/`template_misses` counters (warm runs report zero
//!   misses).
//!
//! The snapshot tests run everywhere; the fault-injection tests need the
//! `failpoints` feature (`cargo test -p rbsyn-bench --features
//! failpoints`), which the CI `chaos` job enables.

use std::path::PathBuf;
use std::process::{Command, Output};

/// The fault-matrix subset: fast solvers spanning all three search
/// features (constant/var solutions, effect-guided writes, branch
/// merging) — the same set the CI bench smoke uses.
#[cfg(feature = "failpoints")]
const IDS: &str = "S1,S2,S3,S4,A7";

fn solve(args: &[&str], failpoints: Option<&str>) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_solve"));
    cmd.args(args);
    // Never inherit a profile from the ambient environment; tests set
    // exactly the faults they mean to.
    cmd.env_remove("RBSYN_FAILPOINTS");
    if let Some(spec) = failpoints {
        cmd.env("RBSYN_FAILPOINTS", spec);
    }
    cmd.output().expect("solve binary runs")
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// A scratch file path unique to this test process.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rbsyn-chaos-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir.join(name)
}

/// Pulls `"field": N` out of the hand-rolled JSON report.
fn json_counter(json: &str, field: &str) -> u64 {
    let needle = format!("\"{field}\": ");
    let at = json.find(&needle).unwrap_or_else(|| {
        panic!("field {field:?} missing from report:\n{json}");
    });
    json[at + needle.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("counter parses")
}

// ── snapshot persistence (no fault injection needed) ─────────────────────

/// Warm round trip through the binary: a cold run saves the template
/// memo, a warm run reloads it (zero template misses), and every byte of
/// the deterministic output — programs *and* effort counters — is
/// identical. Then every corruption we can cheaply produce (truncation,
/// a flipped byte, garbage) degrades the next run to a cold cache with a
/// warning instead of a panic, still byte-identical.
#[test]
fn snapshot_round_trip_and_corruption_degrade_cleanly() {
    let snap = scratch("round-trip.bin");
    let json = scratch("round-trip.json");
    let snap_s = snap.to_str().unwrap();
    let json_s = json.to_str().unwrap();
    let args = |extra: &[&str]| -> Vec<String> {
        let mut v: Vec<String> = ["--all", "--ids", "S1,S2,S3", "--parallel", "1"]
            .iter()
            .map(|s| (*s).to_string())
            .collect();
        v.extend(extra.iter().map(|s| (*s).to_string()));
        v
    };

    // Cold: the snapshot file does not exist yet — that is a warning and
    // a cold start, not an error.
    let cold_args = args(&["--snapshot", snap_s, "--json", json_s]);
    let cold_ref: Vec<&str> = cold_args.iter().map(String::as_str).collect();
    let cold = solve(&cold_ref, None);
    assert_eq!(cold.status.code(), Some(0), "{}", stderr_of(&cold));
    assert!(
        stderr_of(&cold).contains("starting cold"),
        "missing snapshot must warn and start cold:\n{}",
        stderr_of(&cold)
    );
    assert!(snap.is_file(), "cold run must save a snapshot");
    let cold_stdout = stdout_of(&cold);
    let cold_json = std::fs::read_to_string(&json).unwrap();
    let cold_misses = json_counter(&cold_json, "template_misses");
    assert!(cold_misses > 0, "cold run must populate the template memo");

    // Warm: reloads every entry, zero misses, byte-identical output.
    let warm = solve(&cold_ref, None);
    assert_eq!(warm.status.code(), Some(0), "{}", stderr_of(&warm));
    assert!(
        stderr_of(&warm).contains("snapshot: warmed"),
        "{}",
        stderr_of(&warm)
    );
    assert_eq!(
        cold_stdout,
        stdout_of(&warm),
        "warm run must not change programs"
    );
    let warm_json = std::fs::read_to_string(&json).unwrap();
    assert_eq!(
        json_counter(&warm_json, "template_misses"),
        0,
        "a warm cache must serve every template without a miss"
    );
    assert_eq!(
        json_counter(&cold_json, "tested"),
        json_counter(&warm_json, "tested"),
        "cache state must never change the effort counters"
    );

    // Corruption matrix: flip a payload byte, truncate, replace with
    // garbage. Every variant must warn, start cold, and still solve
    // byte-identically with exit 0.
    let pristine = std::fs::read(&snap).unwrap();
    let mut flipped = pristine.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0xff;
    let corruptions: Vec<(&str, Vec<u8>)> = vec![
        ("flipped byte", flipped),
        ("truncated", pristine[..pristine.len() / 3].to_vec()),
        ("garbage", b"not a snapshot at all".to_vec()),
        ("empty", Vec::new()),
    ];
    for (label, bytes) in corruptions {
        std::fs::write(&snap, &bytes).unwrap();
        let run_args = args(&["--snapshot", snap_s]);
        let run_ref: Vec<&str> = run_args.iter().map(String::as_str).collect();
        let out = solve(&run_ref, None);
        assert_eq!(
            out.status.code(),
            Some(0),
            "{label}: corruption must not fail the run:\n{}",
            stderr_of(&out)
        );
        assert!(
            stderr_of(&out).contains("starting cold"),
            "{label}: must warn and degrade to cold:\n{}",
            stderr_of(&out)
        );
        assert_eq!(
            cold_stdout,
            stdout_of(&out),
            "{label}: corruption must never change the programs"
        );
    }
}

// ── fault injection (needs `--features failpoints`) ──────────────────────

#[cfg(feature = "failpoints")]
mod faults {
    use super::*;

    fn baseline() -> String {
        let out = solve(&["--all", "--ids", IDS, "--parallel", "1"], None);
        assert_eq!(out.status.code(), Some(0), "{}", stderr_of(&out));
        stdout_of(&out)
    }

    /// Pure-delay profiles at every delay-capable site: synthesis slows
    /// down, nothing else changes — stdout stays byte-identical and the
    /// batch still exits 0.
    #[test]
    fn delay_profiles_change_nothing() {
        let base = baseline();
        for profile in [
            "interp::eval=delay(1)%5000",
            "guards::cover=delay(2)",
            "executor::spawn=delay(1)%7",
            "batch::claim=delay(5)",
        ] {
            let out = solve(&["--all", "--ids", IDS, "--parallel", "1"], Some(profile));
            assert_eq!(out.status.code(), Some(0), "{profile}: {}", stderr_of(&out));
            assert_eq!(
                base,
                stdout_of(&out),
                "{profile}: a delay must not change any output"
            );
        }
    }

    /// Panic profiles: the job owning the fault fails with a contained
    /// `internal error` (batch exit 1), and every other job's output line
    /// is byte-for-byte the baseline line.
    #[test]
    fn panic_profiles_are_contained_per_job() {
        let base = baseline();
        // Sequential dispatch makes hit attribution deterministic:
        // `batch::claim` hit 2 is the second job (S2); the first
        // `interp::eval` hit is inside the first job (S1).
        for (profile, victim) in [
            ("batch::claim=panic@2", "S2"),
            ("interp::eval=panic@1", "S1"),
        ] {
            let out = solve(&["--all", "--ids", IDS, "--parallel", "1"], Some(profile));
            assert_eq!(
                out.status.code(),
                Some(1),
                "{profile}: a contained panic is exit 1, not an abort:\n{}",
                stderr_of(&out)
            );
            let stdout = stdout_of(&out);
            for (base_line, line) in base.lines().zip(stdout.lines()) {
                if line.starts_with(victim) {
                    assert!(
                        line.contains("failed  internal error"),
                        "{profile}: victim must report a contained panic: {line}"
                    );
                } else {
                    assert_eq!(
                        base_line, line,
                        "{profile}: jobs not hit by the fault must be unaffected"
                    );
                }
            }
        }
    }

    /// A panicking job must not poison the batch-shared snapshot cache:
    /// the run after the chaotic one still warm-loads and solves
    /// byte-identically.
    #[test]
    fn panic_does_not_corrupt_the_saved_snapshot() {
        let snap = scratch("post-panic.bin");
        let snap_s = snap.to_str().unwrap();
        let args = [
            "--all",
            "--ids",
            IDS,
            "--parallel",
            "1",
            "--snapshot",
            snap_s,
        ];
        // Chaotic cold run: S2 dies, the memo of the surviving jobs is
        // still saved.
        let chaotic = solve(&args, Some("batch::claim=panic@2"));
        assert_eq!(chaotic.status.code(), Some(1), "{}", stderr_of(&chaotic));
        assert!(
            snap.is_file(),
            "snapshot must be saved even after a contained panic"
        );
        // Clean warm run: loads what the chaotic run saved, everything
        // solves, and the output matches a clean cold baseline.
        let clean = solve(&args[..5], None);
        let warm = solve(&args, None);
        assert_eq!(warm.status.code(), Some(0), "{}", stderr_of(&warm));
        assert!(
            stderr_of(&warm).contains("snapshot: warmed"),
            "{}",
            stderr_of(&warm)
        );
        assert_eq!(stdout_of(&clean), stdout_of(&warm));
    }

    /// An injected I/O error on the snapshot read path degrades to a cold
    /// start exactly like real corruption does.
    #[test]
    fn injected_snapshot_read_error_degrades_to_cold() {
        let snap = scratch("io-error.bin");
        let snap_s = snap.to_str().unwrap();
        let args = [
            "--all",
            "--ids",
            "S1,S2",
            "--parallel",
            "1",
            "--snapshot",
            snap_s,
        ];
        let cold = solve(&args, None);
        assert_eq!(cold.status.code(), Some(0), "{}", stderr_of(&cold));
        let out = solve(&args, Some("cache::load=error"));
        assert_eq!(out.status.code(), Some(0), "{}", stderr_of(&out));
        assert!(
            stderr_of(&out).contains("starting cold"),
            "an injected read error must degrade to cold:\n{}",
            stderr_of(&out)
        );
        assert_eq!(stdout_of(&cold), stdout_of(&out));
    }
}
