//! Benchmark execution and table/figure assembly.

use rbsyn_core::{
    run_batch_with, BatchJob, BatchPolicy, BatchReport, Guidance, Options, StrategyKind,
    SynthError, Synthesizer,
};
use rbsyn_lang::contention::{self, SiteReport};
use rbsyn_suite::{all_benchmarks, Benchmark};
use rbsyn_ty::EffectPrecision;
use std::time::Duration;

/// Harness configuration (see crate docs for the environment variables).
#[derive(Clone, Debug)]
pub struct Config {
    /// Timed runs per configuration (paper: 11).
    pub runs: usize,
    /// Per-run timeout for full-guidance runs (paper: 300 s).
    pub timeout: Duration,
    /// Timeout for the guidance *ablations* (T-only / E-only / naive),
    /// which mostly just burn their whole budget (paper: same 300 s; the
    /// default here is small so `cargo bench` stays tractable — raise
    /// `RBSYN_ABLATION_TIMEOUT_SECS` for paper-faithful runs).
    pub ablation_timeout: Duration,
    /// Timeout for the coarse effect-precision runs of Fig. 8
    /// (`RBSYN_COARSE_TIMEOUT_SECS`).
    pub coarse_timeout: Duration,
    /// Benchmark ids to run (empty = all).
    pub ids: Vec<String>,
    /// Memoized search (`Options::cache`); `RBSYN_NO_CACHE=1` or
    /// `solve --no-cache` turns it off for A/B comparisons.
    pub cache: bool,
    /// Observational-equivalence pruning (`Options::obs_equiv`);
    /// `RBSYN_NO_OBS_EQUIV=1` or `solve --no-obs-equiv` turns it off for
    /// the byte-identity A/B gate.
    pub obs_equiv: bool,
    /// BDD-backed guard semantics (`Options::bdd`); `RBSYN_NO_BDD=1` or
    /// `solve --no-bdd` turns it off for the byte-identity A/B gate.
    pub bdd: bool,
    /// Intra-problem task width (`Options::intra_parallelism`;
    /// `RBSYN_INTRA` / `solve --intra N`). Any width produces
    /// byte-identical programs and effort counters.
    pub intra: usize,
    /// Work-list exploration order (`Options::strategy`;
    /// `RBSYN_STRATEGY` / `solve --strategy NAME`).
    pub strategy: StrategyKind,
}

impl Config {
    /// Reads configuration from the environment.
    pub fn from_env() -> Config {
        let runs = std::env::var("RBSYN_RUNS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(3);
        let env_secs = |name: &str| -> Option<Duration> {
            std::env::var(name)
                .ok()
                .and_then(|v| v.parse().ok())
                .map(Duration::from_secs)
        };
        let timeout = env_secs("RBSYN_TIMEOUT_SECS").unwrap_or(Duration::from_secs(60));
        let ablation_timeout = env_secs("RBSYN_ABLATION_TIMEOUT_SECS")
            .unwrap_or_else(|| timeout.min(Duration::from_secs(8)));
        let coarse_timeout = env_secs("RBSYN_COARSE_TIMEOUT_SECS")
            .unwrap_or_else(|| timeout.min(Duration::from_secs(20)));
        let ids = std::env::var("RBSYN_BENCH_IDS")
            .map(|v| {
                v.split(',')
                    .map(|s| s.trim().to_owned())
                    .filter(|s| !s.is_empty())
                    .collect()
            })
            .unwrap_or_default();
        let cache = !std::env::var("RBSYN_NO_CACHE").is_ok_and(|v| v == "1" || v == "true");
        let obs_equiv = !std::env::var("RBSYN_NO_OBS_EQUIV").is_ok_and(|v| v == "1" || v == "true");
        let bdd = !std::env::var("RBSYN_NO_BDD").is_ok_and(|v| v == "1" || v == "true");
        let intra = std::env::var("RBSYN_INTRA")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1);
        let strategy = std::env::var("RBSYN_STRATEGY")
            .ok()
            .and_then(|v| StrategyKind::parse(&v))
            .unwrap_or_default();
        Config {
            runs,
            timeout,
            ablation_timeout,
            coarse_timeout,
            ids,
            cache,
            obs_equiv,
            bdd,
            intra,
            strategy,
        }
    }

    /// The benchmarks selected by this configuration.
    pub fn benchmarks(&self) -> Vec<Benchmark> {
        let all = all_benchmarks();
        if self.ids.is_empty() {
            all
        } else {
            all.into_iter()
                .filter(|b| self.ids.contains(&b.id))
                .collect()
        }
    }
}

/// One synthesis attempt.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Wall-clock time (capped near the timeout for failures).
    pub time: Duration,
    /// Solution body (compact) when synthesis succeeded.
    pub solution: Option<String>,
    /// Solution size / paths when available.
    pub size: usize,
    /// Paths through the synthesized method.
    pub paths: usize,
    /// Whether the run timed out (vs. failed outright).
    pub timed_out: bool,
}

impl RunOutcome {
    /// Did synthesis succeed?
    pub fn succeeded(&self) -> bool {
        self.solution.is_some()
    }
}

/// Runs one benchmark once under the given guidance/precision. `cache`
/// toggles the memoized search ([`Options::cache`]); every harness path
/// honours `Config::cache`, so `RBSYN_NO_CACHE=1` A/B runs are real.
pub fn run_benchmark(
    b: &Benchmark,
    guidance: Guidance,
    precision: EffectPrecision,
    timeout: Duration,
    cache: bool,
) -> RunOutcome {
    let (env, problem) = (b.build)();
    let opts = Options {
        guidance,
        precision,
        timeout: Some(timeout),
        cache,
        ..(b.options)()
    };
    let started = std::time::Instant::now();
    match Synthesizer::new(env, problem, opts).run() {
        Ok(res) => RunOutcome {
            time: started.elapsed(),
            solution: Some(res.program.body.compact()),
            size: res.stats.solution_size,
            paths: res.stats.solution_paths,
            timed_out: false,
        },
        Err(e) => RunOutcome {
            time: started.elapsed(),
            solution: None,
            size: 0,
            paths: 0,
            timed_out: matches!(e, SynthError::Timeout),
        },
    }
}

/// Median and semi-interquartile range of a sample (Table 1's
/// `median ± SIQR` over 11 runs).
pub fn median_siqr(samples: &mut [Duration]) -> (Duration, Duration) {
    assert!(!samples.is_empty(), "median of an empty sample");
    samples.sort();
    let pick = |q: f64| -> Duration {
        let pos = q * (samples.len() - 1) as f64;
        let (lo, hi) = (pos.floor() as usize, pos.ceil() as usize);
        let frac = pos - lo as f64;
        let a = samples[lo].as_secs_f64();
        let b = samples[hi].as_secs_f64();
        Duration::from_secs_f64(a + (b - a) * frac)
    };
    let median = pick(0.5);
    let q1 = pick(0.25);
    let q3 = pick(0.75);
    let siqr = Duration::from_secs_f64((q3.as_secs_f64() - q1.as_secs_f64()) / 2.0);
    (median, siqr)
}

/// One Table 1 row.
#[derive(Clone, Debug)]
pub struct Table1Row {
    /// Group label.
    pub group: &'static str,
    /// Benchmark id.
    pub id: String,
    /// Benchmark name.
    pub name: String,
    /// Spec count.
    pub specs: usize,
    /// Assert min/max.
    pub asserts: (usize, usize),
    /// Paths through the original method.
    pub orig_paths: usize,
    /// Search-visible library methods.
    pub lib_meths: usize,
    /// Median time, full guidance; `None` = timeout/failure.
    pub te_median: Option<Duration>,
    /// SIQR for the full-guidance runs.
    pub te_siqr: Duration,
    /// Median with type guidance only.
    pub t_only: Option<Duration>,
    /// Median with effect guidance only.
    pub e_only: Option<Duration>,
    /// Median with neither.
    pub neither: Option<Duration>,
    /// Synthesized method size (AST nodes).
    pub meth_size: usize,
    /// Paths through the synthesized method.
    pub syn_paths: usize,
}

fn median_of_mode(
    b: &Benchmark,
    guidance: Guidance,
    cfg: &Config,
) -> (Option<Duration>, Duration, usize, usize) {
    let mut times = Vec::with_capacity(cfg.runs);
    let mut size = 0;
    let mut paths = 0;
    for _ in 0..cfg.runs {
        let out = run_benchmark(
            b,
            guidance,
            EffectPrecision::Precise,
            cfg.timeout,
            cfg.cache,
        );
        if !out.succeeded() {
            return (None, Duration::ZERO, 0, 0);
        }
        size = out.size;
        paths = out.paths;
        times.push(out.time);
    }
    let (median, siqr) = median_siqr(&mut times);
    (Some(median), siqr, size, paths)
}

/// Computes every Table 1 row (this is the expensive call; honours
/// `Config`).
pub fn table1_rows(cfg: &Config) -> Vec<Table1Row> {
    cfg.benchmarks()
        .iter()
        .map(|b| {
            let (te_median, te_siqr, meth_size, syn_paths) =
                median_of_mode(b, Guidance::both(), cfg);
            // Ablations: a single run each (they either finish fast or time
            // out; the paper reports medians with tiny SIQRs).
            let one = |g: Guidance| {
                let out = run_benchmark(
                    b,
                    g,
                    EffectPrecision::Precise,
                    cfg.ablation_timeout,
                    cfg.cache,
                );
                out.succeeded().then_some(out.time)
            };
            let asserts = (b.expected.asserts_min, b.expected.asserts_max);
            Table1Row {
                group: b.group.label(),
                id: b.id.clone(),
                name: b.name.clone(),
                specs: b.expected.specs,
                asserts,
                orig_paths: b.expected.orig_paths,
                lib_meths: b.lib_method_count(),
                te_median,
                te_siqr,
                t_only: one(Guidance::types_only()),
                e_only: one(Guidance::effects_only()),
                neither: one(Guidance::neither()),
                meth_size,
                syn_paths,
            }
        })
        .collect()
}

/// Formats a Table 1 row set as the paper's table.
pub fn format_table1(rows: &[Table1Row]) -> String {
    let fmt_t = |t: &Option<Duration>| match t {
        Some(d) => format!("{:.2}", d.as_secs_f64()),
        None => "-".to_owned(),
    };
    let mut out = String::new();
    out.push_str(
        "Group      ID   Name                 Specs Asserts Orig  Lib   Time(s)        Types  Effects Neither  Size Paths\n",
    );
    out.push_str("                                            min-max Paths Meth  median±SIQR\n");
    for r in rows {
        out.push_str(&format!(
            "{:<10} {:<4} {:<20} {:>5} {:>3}-{:<3} {:>5} {:>4}  {:>6}±{:<6} {:>6} {:>7} {:>7} {:>5} {:>5}\n",
            r.group,
            r.id,
            r.name,
            r.specs,
            r.asserts.0,
            r.asserts.1,
            r.orig_paths,
            r.lib_meths,
            fmt_t(&r.te_median),
            format!("{:.2}", r.te_siqr.as_secs_f64()),
            fmt_t(&r.t_only),
            fmt_t(&r.e_only),
            fmt_t(&r.neither),
            r.meth_size,
            r.syn_paths,
        ));
    }
    out
}

/// One Figure 7 series point: a benchmark solved at `time` under `mode`.
#[derive(Clone, Debug)]
pub struct Fig7Row {
    /// Guidance label.
    pub mode: &'static str,
    /// Sorted solve times (timeouts excluded) — the cactus plot series.
    pub solve_times: Vec<Duration>,
    /// Benchmarks attempted.
    pub total: usize,
}

/// Computes the Fig. 7 cactus-plot series (one timed run per benchmark per
/// mode).
pub fn fig7_rows(cfg: &Config) -> Vec<Fig7Row> {
    let benchmarks = cfg.benchmarks();
    Guidance::all()
        .into_iter()
        .map(|g| {
            let timeout = if g == Guidance::both() {
                cfg.timeout
            } else {
                cfg.ablation_timeout
            };
            let mut times: Vec<Duration> = benchmarks
                .iter()
                .filter_map(|b| {
                    let out = run_benchmark(b, g, EffectPrecision::Precise, timeout, cfg.cache);
                    out.succeeded().then_some(out.time)
                })
                .collect();
            times.sort();
            Fig7Row {
                mode: g.label(),
                solve_times: times,
                total: benchmarks.len(),
            }
        })
        .collect()
}

/// Renders Fig. 7 as text: cumulative solved counts per mode.
pub fn format_fig7(rows: &[Fig7Row]) -> String {
    let mut out = String::new();
    out.push_str("Figure 7: benchmarks solved (cumulative) vs time\n");
    for r in rows {
        out.push_str(&format!(
            "{:<12} solved {:>2}/{}",
            r.mode,
            r.solve_times.len(),
            r.total
        ));
        let series: Vec<String> = r
            .solve_times
            .iter()
            .enumerate()
            .map(|(i, t)| format!("({:.2}s,{})", t.as_secs_f64(), i + 1))
            .collect();
        out.push_str(&format!("  [{}]\n", series.join(" ")));
    }
    out
}

/// One Figure 8 row: per-benchmark medians under the three precision
/// levels.
#[derive(Clone, Debug)]
pub struct Fig8Row {
    /// Benchmark id.
    pub id: String,
    /// Median solve time per precision (Precise, Class, Purity); `None` =
    /// timeout.
    pub times: [Option<Duration>; 3],
}

/// Computes Fig. 8 (one timed run per benchmark per precision level).
pub fn fig8_rows(cfg: &Config) -> Vec<Fig8Row> {
    cfg.benchmarks()
        .iter()
        .map(|b| {
            let times = EffectPrecision::all().map(|p| {
                let timeout = if p == EffectPrecision::Precise {
                    cfg.timeout
                } else {
                    cfg.coarse_timeout
                };
                let out = run_benchmark(b, Guidance::both(), p, timeout, cfg.cache);
                out.succeeded().then_some(out.time)
            });
            Fig8Row {
                id: b.id.clone(),
                times,
            }
        })
        .collect()
}

/// Renders Fig. 8 as text.
pub fn format_fig8(rows: &[Fig8Row]) -> String {
    let fmt = |t: &Option<Duration>| match t {
        Some(d) => format!("{:>8.2}", d.as_secs_f64()),
        None => format!("{:>8}", "timeout"),
    };
    let mut out = String::new();
    out.push_str("Figure 8: synthesis time (s) vs effect-annotation precision\n");
    out.push_str(&format!(
        "{:<5} {:>8} {:>8} {:>8}\n",
        "ID", "Precise", "Class", "Purity"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<5} {} {} {}\n",
            r.id,
            fmt(&r.times[0]),
            fmt(&r.times[1]),
            fmt(&r.times[2])
        ));
    }
    out
}

// ───────────────────────── parallel batch driver ─────────────────────────

/// Converts the configured benchmark selection into [`BatchJob`]s for
/// [`rbsyn_core::run_batch`], one per benchmark, each with its own
/// `timeout` deadline. `cache` toggles the memoized search
/// (`Options::cache`).
pub fn suite_jobs(
    benchmarks: Vec<Benchmark>,
    guidance: Guidance,
    precision: EffectPrecision,
    timeout: Duration,
    cfg: &Config,
) -> Vec<BatchJob> {
    benchmarks
        .into_iter()
        .map(|b| {
            let opts = Options {
                guidance,
                precision,
                timeout: Some(timeout),
                cache: cfg.cache,
                obs_equiv: cfg.obs_equiv,
                bdd: cfg.bdd,
                intra_parallelism: cfg.intra,
                strategy: cfg.strategy,
                ..(b.options)()
            };
            // `b.build` is a shared factory closure: cheap to move,
            // shares no mutable state.
            let id = b.id.clone();
            BatchJob::new(id, move || (b.build)(), opts)
        })
        .collect()
}

/// Runs the configured suite as a parallel batch (`threads` = 0 means all
/// cores, 1 means sequential job dispatch — intra-problem tasks still run
/// at `cfg.intra` on extra pool threads).
pub fn run_suite(cfg: &Config, threads: usize) -> BatchReport {
    run_suite_on(cfg.benchmarks(), cfg, threads)
}

/// Like [`run_suite`] over an explicit benchmark list — the entry point
/// for file-driven corpora (`solve --spec-dir`), where the benchmarks come
/// from `.rbspec` files instead of the Rust registry.
pub fn run_suite_on(benchmarks: Vec<Benchmark>, cfg: &Config, threads: usize) -> BatchReport {
    run_suite_with(benchmarks, cfg, threads, &BatchPolicy::default())
}

/// Like [`run_suite_on`] with an explicit [`BatchPolicy`] — the entry
/// point for `solve --snapshot` (batch-shared warm template cache) and
/// `solve --global-deadline` (admission-control load shedding).
pub fn run_suite_with(
    benchmarks: Vec<Benchmark>,
    cfg: &Config,
    threads: usize,
    policy: &BatchPolicy,
) -> BatchReport {
    let jobs = suite_jobs(
        benchmarks,
        Guidance::both(),
        EffectPrecision::Precise,
        cfg.timeout,
        cfg,
    );
    run_batch_with(&jobs, threads, policy)
}

/// Process exit codes for synthesis outcomes — re-exported from
/// [`rbsyn_core::exit`] so `solve`, `speccheck` and `specgen` share one
/// contract: `0` solved, `1` other failure (including contained panics),
/// `2` usage error, `3` spec parse/lower error, `4` timeout (including
/// watchdog kills), `5` search exhausted without a program, `6` shed by
/// admission control.
pub use rbsyn_core::exit as exit_codes;

/// Renders a batch report's *deterministic* section: one line per job with
/// id, status, solution text and search counters — no wall-clock times.
///
/// Jobs are isolated and the per-job search is deterministic, so for runs
/// where every job finishes within its budget this output is byte-identical
/// across thread counts (a job right at its deadline boundary can flip to
/// `timeout` under heavy core contention, like any wall-clock budget).
pub fn format_batch_solutions(report: &BatchReport) -> String {
    let mut out = String::new();
    for o in &report.outcomes {
        match &o.result {
            Ok(r) => out.push_str(&format!(
                "{:<4} solved  size {:>2}  paths {:>2}  tested {:>8}  {}\n",
                o.id,
                r.stats.solution_size,
                r.stats.solution_paths,
                r.stats.search.tested,
                r.program.body.compact(),
            )),
            Err(e) => out.push_str(&format!("{:<4} failed  {e}\n", o.id)),
        }
    }
    out
}

/// Renders only the synthesized programs of a batch (id + solution text),
/// for byte-comparing runs whose *effort counters* legitimately differ —
/// the observational-equivalence on/off gate compares this section, since
/// pruning changes how much work finds the program, never the program.
pub fn format_batch_programs(report: &BatchReport) -> String {
    let mut out = String::new();
    for o in &report.outcomes {
        match &o.result {
            Ok(r) => out.push_str(&format!("{:<4} {}\n", o.id, r.program.body.compact())),
            Err(e) => out.push_str(&format!("{:<4} failed  {e}\n", o.id)),
        }
    }
    out
}

/// Renders a batch report's timing summary (non-deterministic section; keep
/// it on stderr when byte-comparing runs).
pub fn format_batch_stats(report: &BatchReport) -> String {
    let s = &report.stats;
    format!(
        "batch: {} jobs on {} thread(s) — {} solved, {} timeout, {} failed \
         ({} panicked), {} shed; \
         {} candidates tested; cache hits {} expand / {} type / {} oracle, \
         {} deduped, {} obs-pruned, {} vector hits, {} guard-dedup ({} bdd nodes); \
         phases generate {:.2}s | guard {:.2}s | merge {:.2}s | eval {:.2}s; \
         wall {:.2}s, cpu {:.2}s, cpu-ratio {:.2}x\n",
        s.jobs,
        s.threads,
        s.solved,
        s.timeouts,
        s.failures,
        s.panics,
        s.shed,
        s.tested,
        s.expand_hits,
        s.type_hits,
        s.oracle_hits,
        s.deduped,
        s.obs_pruned,
        s.vector_hits,
        s.guard_dedup,
        s.bdd_nodes,
        s.generate_time.as_secs_f64(),
        s.guard_time.as_secs_f64(),
        s.merge_time.as_secs_f64(),
        s.eval_time.as_secs_f64(),
        s.wall_clock.as_secs_f64(),
        s.cpu_time.as_secs_f64(),
        s.speedup(),
    )
}

/// Escapes a string for embedding in the hand-rolled JSON reports (the
/// workspace is dependency-free, so there is no serde).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serializes a contention snapshot (or a [`SiteReport::since`] delta) as
/// a JSON object: `{"enabled": …, "sites": [{name, acquisitions,
/// contended, wait_nanos, hold_nanos}, …]}`. Sites with zero acquisitions
/// are skipped so the `contention` feature being off yields an empty
/// `sites` list rather than nine rows of zeros. `indent` prefixes every
/// emitted line so the object nests at any depth of the hand-rolled
/// reports.
pub fn contention_json(sites: &[SiteReport], indent: &str) -> String {
    let mut out = format!("{{\n{indent}  \"enabled\": {},\n", contention::enabled());
    out.push_str(&format!("{indent}  \"sites\": ["));
    let live: Vec<&SiteReport> = sites.iter().filter(|s| s.acquisitions > 0).collect();
    for (i, s) in live.iter().enumerate() {
        let sep = if i + 1 == live.len() { "" } else { "," };
        out.push_str(&format!(
            "\n{indent}    {{\"name\": \"{}\", \"acquisitions\": {}, \"contended\": {}, \
             \"wait_nanos\": {}, \"hold_nanos\": {}}}{sep}",
            s.name, s.acquisitions, s.contended, s.wait_nanos, s.hold_nanos
        ));
    }
    if !live.is_empty() {
        out.push('\n');
        out.push_str(indent);
        out.push_str("  ");
    }
    out.push_str(&format!("]\n{indent}}}"));
    out
}

/// Renders a contention snapshot for humans: one line per touched site
/// with wait/hold milliseconds and the contended-acquisition rate. Returns
/// a one-line note instead when the `contention` feature is off.
pub fn format_contention_report(sites: &[SiteReport]) -> String {
    if !contention::enabled() {
        return "contention: telemetry off (build with --features contention)\n".to_string();
    }
    let mut out =
        String::from("contention: site                acquisitions  contended  wait_ms  hold_ms\n");
    for s in sites.iter().filter(|s| s.acquisitions > 0) {
        out.push_str(&format!(
            "contention: {:<20} {:>11} {:>10} {:>8.2} {:>8.2}\n",
            s.name,
            s.acquisitions,
            s.contended,
            s.wait_nanos as f64 / 1e6,
            s.hold_nanos as f64 / 1e6,
        ));
    }
    out
}

/// Serializes a batch report as JSON (hand-rolled — the workspace is
/// dependency-free). This is the CI bench-smoke artifact format.
pub fn batch_stats_json(report: &BatchReport) -> String {
    let s = &report.stats;
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"jobs\": {}, \"threads\": {}, \"solved\": {}, \"timeouts\": {}, \"failures\": {}, \
         \"panics\": {}, \"shed\": {},\n",
        s.jobs, s.threads, s.solved, s.timeouts, s.failures, s.panics, s.shed
    ));
    // Template-memo traffic of the batch-shared cache (`--snapshot`):
    // diagnostics only, never part of the deterministic effort counters. A
    // warm start shows zero misses; a cold start shows one miss per
    // distinct template key.
    out.push_str(&format!(
        "  \"template_hits\": {}, \"template_misses\": {},\n",
        s.template_hits, s.template_misses
    ));
    out.push_str(&format!(
        "  \"exit_code\": {},\n",
        exit_codes::for_batch(report)
    ));
    out.push_str(&format!(
        "  \"tested\": {}, \"expanded\": {}, \"popped\": {},\n",
        s.tested, s.expanded, s.popped
    ));
    out.push_str(&format!(
        "  \"deduped\": {}, \"obs_pruned\": {}, \"vector_hits\": {}, \"guard_dedup\": {}, \
         \"bdd_nodes\": {}, \"expand_hits\": {}, \"type_hits\": {}, \"oracle_hits\": {},\n",
        s.deduped,
        s.obs_pruned,
        s.vector_hits,
        s.guard_dedup,
        s.bdd_nodes,
        s.expand_hits,
        s.type_hits,
        s.oracle_hits
    ));
    // `cpu_ratio` is the old `speedup` field renamed: cpu-time over wall
    // time, which a 1-core host can report > 1 while the wall clock is
    // *worse* than sequential. Real speedups are `wall_speedup` in the
    // trajectory report (sequential wall / config wall), which needs a
    // sequential baseline a single batch run does not have.
    out.push_str(&format!(
        "  \"wall_clock_secs\": {:.6}, \"cpu_time_secs\": {:.6}, \"cpu_ratio\": {:.4},\n",
        s.wall_clock.as_secs_f64(),
        s.cpu_time.as_secs_f64(),
        s.speedup()
    ));
    out.push_str(&format!(
        "  \"generate_time_secs\": {:.6}, \"guard_time_secs\": {:.6}, \
         \"merge_time_secs\": {:.6}, \"eval_time_secs\": {:.6},\n",
        s.generate_time.as_secs_f64(),
        s.guard_time.as_secs_f64(),
        s.merge_time.as_secs_f64(),
        s.eval_time.as_secs_f64(),
    ));
    // Per-lock telemetry (process-wide counters; all zeros — and an empty
    // site list — unless built with `--features contention`).
    out.push_str(&format!(
        "  \"contention\": {},\n",
        contention_json(&contention::snapshot(), "  ")
    ));
    out.push_str("  \"results\": [\n");
    for (i, o) in report.outcomes.iter().enumerate() {
        let sep = if i + 1 == report.outcomes.len() {
            ""
        } else {
            ","
        };
        match &o.result {
            // Per-task phase timing: `generate_secs` is the phase-1
            // per-spec search time, `guard_secs` the merge-time guard
            // covering, `merge_secs` the rest of the merge call (rewrite
            // rounds, odometer, validation), `eval_secs` the
            // oracle/interpreter time across all phases — no more single
            // lumped total.
            Ok(r) => out.push_str(&format!(
                "    {{\"id\": \"{}\", \"status\": \"solved\", \"exit_code\": 0, \
                 \"elapsed_secs\": {:.6}, \
                 \"generate_secs\": {:.6}, \"guard_secs\": {:.6}, \
                 \"merge_secs\": {:.6}, \"eval_secs\": {:.6}, \
                 \"size\": {}, \"paths\": {}, \"tested\": {}, \"obs_pruned\": {}, \
                 \"vector_hits\": {}, \"guard_dedup\": {}, \"bdd_nodes\": {}, \
                 \"solution\": \"{}\"}}{sep}\n",
                json_escape(&o.id),
                o.elapsed.as_secs_f64(),
                r.stats.generate_time.as_secs_f64(),
                r.stats.guard_time.as_secs_f64(),
                r.stats.merge_time.as_secs_f64(),
                r.stats.search.eval_nanos as f64 / 1e9,
                r.stats.solution_size,
                r.stats.solution_paths,
                r.stats.search.tested,
                r.stats.search.obs_pruned,
                r.stats.search.vector_hits,
                r.stats.search.guard_dedup,
                r.stats.search.bdd_nodes,
                json_escape(&r.program.body.compact()),
            )),
            Err(e) => out.push_str(&format!(
                "    {{\"id\": \"{}\", \"status\": \"{}\", \"exit_code\": {}, \
                 \"elapsed_secs\": {:.6}, \"error\": \"{}\"}}{sep}\n",
                json_escape(&o.id),
                match exit_codes::for_error(e) {
                    exit_codes::TIMEOUT => "timeout",
                    exit_codes::SHED => "shed",
                    _ => "failed",
                },
                exit_codes::for_error(e),
                o.elapsed.as_secs_f64(),
                json_escape(&e.to_string()),
            )),
        }
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_siqr_basics() {
        let mut s = vec![
            Duration::from_millis(100),
            Duration::from_millis(200),
            Duration::from_millis(300),
        ];
        let (m, siqr) = median_siqr(&mut s);
        assert_eq!(m, Duration::from_millis(200));
        assert_eq!(siqr, Duration::from_millis(50));
        let mut one = vec![Duration::from_millis(42)];
        let (m1, s1) = median_siqr(&mut one);
        assert_eq!(m1, Duration::from_millis(42));
        assert_eq!(s1, Duration::ZERO);
    }

    #[test]
    fn config_selection() {
        let base = Config {
            runs: 1,
            timeout: Duration::from_secs(1),
            ablation_timeout: Duration::from_secs(1),
            coarse_timeout: Duration::from_secs(1),
            ids: vec!["S1".into()],
            cache: true,
            obs_equiv: true,
            bdd: true,
            intra: 1,
            strategy: StrategyKind::Paper,
        };
        assert_eq!(base.benchmarks().len(), 1);
        let all = Config {
            ids: vec![],
            ..base
        };
        assert_eq!(all.benchmarks().len(), 19);
    }

    #[test]
    fn s1_runs_fast_under_harness() {
        let b = rbsyn_suite::benchmark("S1").unwrap();
        let out = run_benchmark(
            &b,
            Guidance::both(),
            EffectPrecision::Precise,
            Duration::from_secs(30),
            true,
        );
        assert!(out.succeeded());
        assert_eq!(out.solution.as_deref(), Some("arg0"));
    }
}
