//! Experiment harness regenerating the paper's evaluation (§5): Table 1,
//! Figure 7 and Figure 8.
//!
//! Configuration comes from environment variables so `cargo bench` stays
//! hands-free while full paper-scale runs remain possible:
//!
//! * `RBSYN_RUNS` — timed runs per benchmark (paper: 11; default: 3);
//! * `RBSYN_TIMEOUT_SECS` — per-run timeout (paper: 300; default: 60);
//! * `RBSYN_BENCH_IDS` — comma-separated subset (default: all 19).

pub mod harness;

pub use harness::{
    batch_stats_json, exit_codes, fig7_rows, fig8_rows, format_batch_solutions, format_batch_stats,
    median_siqr, run_benchmark, run_suite, run_suite_on, suite_jobs, table1_rows, Config, Fig7Row,
    Fig8Row, RunOutcome, Table1Row,
};
