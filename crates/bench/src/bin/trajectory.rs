//! Perf-trajectory snapshot: runs the full benchmark suite under the
//! execution configurations this repo has grown so far — sequential,
//! inter-problem parallel (`--parallel`), intra-problem parallel
//! (`--intra`), both, the **file-driven corpus** (`benchmarks/*.rbspec`
//! through the textual frontend), (since PR 5) the
//! **observational-equivalence ablation** (`no-obs-equiv`), and (since
//! PR 7) a deterministic **1-in-20 sample of the specgen stress corpus**
//! (`generated`, 25 of the 500 pinned problems), and (since PR 8) the
//! **guard-semantics A/B leg** (`no-bdd`) — and writes
//! one JSON file (`BENCH_pr8.json` in CI) with wall-clocks, effort and
//! cache counters per configuration (including the guard pool's
//! `guard_dedup`/`bdd_nodes`), the corpus parse+lower time, and
//! (since PR 6) a per-run `contention` delta from the per-lock telemetry
//! in `rbsyn_lang::contention` (all zeros unless built with
//! `--features contention` — each run row records `contention_enabled`
//! so a stored trajectory says which build produced it). Since PR 9 the
//! top level carries a `host` header (CPU count, OS/arch, toolchain,
//! effective `RBSYN_INTERN_SHARDS`, contention-probes on/off) so stored
//! trajectories say what machine and build produced their numbers, and
//! every timing row includes the `merge` phase next to
//! generate/guard/eval.
//!
//! ```text
//! cargo run --release -p rbsyn-bench --features contention --bin trajectory -- \
//!     [--json BENCH_pr8.json] [--threads N] [--intra N] [--timeout SECS] \
//!     [--spec-dir benchmarks] [--contention-json PATH] [--require-speedup]
//! ```
//!
//! `--contention-json PATH` additionally writes a standalone contention
//! report (the CI artifact uploaded next to the trajectory file);
//! `--require-speedup` makes a multi-core host fail the run when the
//! inter-problem `parallel` configuration does not beat the sequential
//! wall clock (`wall_speedup > 1.0`) — a single-core host skips the
//! assertion with a note, since no in-process speedup is possible there.
//!
//! Two speedup figures per run: `wall_speedup` (sequential wall clock over
//! this configuration's wall clock — the number that means "faster") and
//! `cpu_ratio` (cpu time over wall time — the old, misleading `speedup`
//! field, kept under its honest name: a 1-core host can report 2.6× while
//! being slower than sequential).
//!
//! The deterministic solution sections of every configuration — including
//! the corpus run — are byte-compared against the sequential registry
//! baseline (the `no-obs-equiv` ablation compares programs only, since its
//! effort counters legitimately differ; the `no-bdd` leg compares the full
//! solution section *and* the aggregate effort counters, since the BDD
//! layer must change neither; and the `generated` row is a different
//! problem set, so its gate is solved-count only); a mismatch (or any
//! unsolved benchmark) exits nonzero, so the trajectory file doubles as
//! the parallelism determinism gate, the registry-fidelity gate, the
//! obs-equiv soundness gate, and the guard-semantics soundness gate.

use rbsyn_bench::harness::{
    contention_json, format_batch_programs, format_batch_solutions, format_contention_report,
    run_suite, run_suite_on, Config,
};
use rbsyn_core::BatchReport;
use rbsyn_lang::contention::{self, SiteReport};
use rbsyn_suite::Benchmark;
use std::path::Path;
use std::time::{Duration, Instant};

struct RunSpec {
    name: &'static str,
    threads: usize,
    intra: usize,
    /// Run over the `.rbspec` corpus instead of the Rust registry.
    corpus: bool,
    /// Run over a deterministic sample of `benchmarks/generated/` (the
    /// specgen stress corpus) instead of the Rust registry. These are not
    /// the 19 registry problems, so the row is excluded from the
    /// baseline byte-compare — its gate is "every sampled problem solves".
    generated: bool,
    /// Disable observational-equivalence pruning (the A/B ablation leg:
    /// programs must match the baseline byte-for-byte, effort may not).
    no_obs_equiv: bool,
    /// Disable the BDD-backed guard semantics (the A/B leg since PR 8:
    /// the deterministic solution section *and* the aggregate effort
    /// counters must match the baseline byte-for-byte — only
    /// `guard_dedup`/`bdd_nodes` drop to zero and the guard phase
    /// slows down).
    no_bdd: bool,
}

fn json_report(
    spec: &RunSpec,
    r: &BatchReport,
    sequential_wall_secs: Option<f64>,
    locks: &[SiteReport],
) -> String {
    let s = &r.stats;
    let wall = s.wall_clock.as_secs_f64();
    // Sequential wall over this config's wall: the honest speedup. The
    // sequential row itself reports 1.0 by construction.
    let wall_speedup = sequential_wall_secs.map_or(1.0, |base| base / wall.max(1e-9));
    format!(
        "    {{\"config\": \"{}\", \"threads\": {}, \"intra\": {}, \"source\": \"{}\", \
         \"obs_equiv\": {}, \"bdd\": {}, \"contention_enabled\": {},\n     \
         \"wall_clock_secs\": {:.6}, \"cpu_time_secs\": {:.6}, \"wall_speedup\": {:.4}, \
         \"cpu_ratio\": {:.4},\n     \
         \"solved\": {}, \"timeouts\": {}, \"failures\": {}, \"tested\": {},\n     \
         \"expand_hits\": {}, \"type_hits\": {}, \"oracle_hits\": {}, \"deduped\": {}, \
         \"obs_pruned\": {}, \"vector_hits\": {}, \"guard_dedup\": {}, \"bdd_nodes\": {},\n     \
         \"generate_time_secs\": {:.6}, \"guard_time_secs\": {:.6}, \
         \"merge_time_secs\": {:.6}, \"eval_time_secs\": {:.6},\n     \
         \"contention\": {}}}",
        spec.name,
        spec.threads,
        spec.intra,
        if spec.generated {
            "generated-sample"
        } else if spec.corpus {
            "rbspec-corpus"
        } else {
            "registry"
        },
        !spec.no_obs_equiv,
        !spec.no_bdd,
        contention::enabled(),
        wall,
        s.cpu_time.as_secs_f64(),
        wall_speedup,
        s.speedup(),
        s.solved,
        s.timeouts,
        s.failures,
        s.tested,
        s.expand_hits,
        s.type_hits,
        s.oracle_hits,
        s.deduped,
        s.obs_pruned,
        s.vector_hits,
        s.guard_dedup,
        s.bdd_nodes,
        s.generate_time.as_secs_f64(),
        s.guard_time.as_secs_f64(),
        s.merge_time.as_secs_f64(),
        s.eval_time.as_secs_f64(),
        contention_json(locks, "     "),
    )
}

/// Sampling stride for the `generated` row: every 20th file of the
/// 500-problem pinned specgen corpus, in path order — 25 problems,
/// deterministic so the row is comparable across trajectory runs.
const GENERATED_SAMPLE_STRIDE: usize = 20;

fn load_generated_sample(dir: &Path) -> Result<Vec<Benchmark>, String> {
    let paths = rbsyn_front::spec_paths(dir)?;
    paths
        .iter()
        .step_by(GENERATED_SAMPLE_STRIDE)
        .map(|p| rbsyn_front::load_file(p).map(Benchmark::from_spec))
        .collect()
}

/// Parse+lower wall time over the corpus (the frontend's own cost, kept
/// separate from synthesis time so the trajectory series can track it).
struct CorpusCost {
    files: usize,
    parse_secs: f64,
    lower_secs: f64,
}

fn measure_corpus(dir: &Path) -> Result<CorpusCost, String> {
    let paths = rbsyn_front::spec_paths(dir)?;
    let mut cost = CorpusCost {
        files: paths.len(),
        parse_secs: 0.0,
        lower_secs: 0.0,
    };
    for p in &paths {
        let source = std::fs::read_to_string(p).map_err(|e| format!("{}: {e}", p.display()))?;
        let t0 = Instant::now();
        let file =
            rbsyn_front::parse(&source).map_err(|d| d.render(&p.display().to_string(), &source))?;
        cost.parse_secs += t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        rbsyn_front::lower(&file).map_err(|d| d.render(&p.display().to_string(), &source))?;
        cost.lower_secs += t1.elapsed().as_secs_f64();
    }
    Ok(cost)
}

fn main() {
    let mut json: Option<String> = None;
    let mut threads: usize = 4;
    let mut intra: usize = 4;
    let mut timeout: Option<Duration> = None;
    let mut spec_dir = "benchmarks".to_owned();
    let mut contention_path: Option<String> = None;
    let mut require_speedup = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--json" => json = Some(value("--json")),
            "--threads" => {
                threads = value("--threads").parse().unwrap_or_else(|_| {
                    eprintln!("--threads needs a number");
                    std::process::exit(2);
                })
            }
            "--intra" => {
                intra = value("--intra").parse().unwrap_or_else(|_| {
                    eprintln!("--intra needs a number");
                    std::process::exit(2);
                })
            }
            "--timeout" => {
                timeout = Some(Duration::from_secs(
                    value("--timeout").parse().unwrap_or_else(|_| {
                        eprintln!("--timeout needs seconds");
                        std::process::exit(2);
                    }),
                ))
            }
            "--spec-dir" => spec_dir = value("--spec-dir"),
            "--contention-json" => contention_path = Some(value("--contention-json")),
            "--require-speedup" => require_speedup = true,
            other => {
                eprintln!(
                    "unknown argument {other:?} (try --json PATH, --threads N, --intra N, \
                     --timeout SECS, --spec-dir DIR, --contention-json PATH, --require-speedup)"
                );
                std::process::exit(2);
            }
        }
    }

    let mut base = Config::from_env();
    if let Some(t) = timeout {
        base.timeout = t;
    }

    // Frontend cost: parse+lower the whole corpus (fails fast on a broken
    // file — the trajectory doubles as a corpus gate).
    let corpus_cost = match measure_corpus(Path::new(&spec_dir)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("trajectory: corpus failed to parse/lower:\n{e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "trajectory: corpus {} file(s) parse {:.1} ms + lower {:.1} ms",
        corpus_cost.files,
        corpus_cost.parse_secs * 1e3,
        corpus_cost.lower_secs * 1e3
    );

    let specs = [
        RunSpec {
            name: "sequential",
            threads: 1,
            intra: 1,
            corpus: false,
            generated: false,
            no_obs_equiv: false,
            no_bdd: false,
        },
        RunSpec {
            name: "parallel",
            threads,
            intra: 1,
            corpus: false,
            generated: false,
            no_obs_equiv: false,
            no_bdd: false,
        },
        RunSpec {
            name: "intra",
            threads: 1,
            intra,
            corpus: false,
            generated: false,
            no_obs_equiv: false,
            no_bdd: false,
        },
        RunSpec {
            name: "parallel+intra",
            threads,
            intra,
            corpus: false,
            generated: false,
            no_obs_equiv: false,
            no_bdd: false,
        },
        // The file-driven corpus through the textual frontend must
        // synthesize byte-identical programs (registry fidelity).
        RunSpec {
            name: "corpus-files",
            threads,
            intra: 1,
            corpus: true,
            generated: false,
            no_obs_equiv: false,
            no_bdd: false,
        },
        // Pruning ablation: observational-equivalence dedup off must
        // synthesize byte-identical *programs* (it legitimately tests
        // more candidates — that is the point of the pruning).
        RunSpec {
            name: "no-obs-equiv",
            threads: 1,
            intra: 1,
            corpus: false,
            generated: false,
            no_obs_equiv: true,
            no_bdd: false,
        },
        // Guard-semantics A/B: the BDD layer off must synthesize the same
        // programs with the same effort counters (the canonical-semantics
        // soundness gate) — only the guard phase gets slower.
        RunSpec {
            name: "no-bdd",
            threads: 1,
            intra: 1,
            corpus: false,
            generated: false,
            no_obs_equiv: false,
            no_bdd: true,
        },
        // A deterministic 1-in-20 sample of the specgen stress corpus
        // (since PR 7): different problems than the registry, so no
        // baseline compare — the gate is that every sampled problem
        // solves within its own file-pinned budget.
        RunSpec {
            name: "generated",
            threads,
            intra: 1,
            corpus: false,
            generated: true,
            no_obs_equiv: false,
            no_bdd: false,
        },
    ];

    let mut rows: Vec<String> = Vec::new();
    let mut baseline_solutions: Option<String> = None;
    let mut baseline_programs: Option<String> = None;
    let mut baseline_effort: Option<(u64, u64, u64, u64, u64, u64)> = None;
    let mut sequential_wall: Option<f64> = None;
    let mut parallel_speedup: Option<f64> = None;
    let mut ok = true;
    for spec in &specs {
        eprintln!(
            "trajectory: {} (threads {}, intra {}{}{})…",
            spec.name,
            spec.threads,
            spec.intra,
            if spec.no_obs_equiv {
                ", obs-equiv off"
            } else {
                ""
            },
            if spec.no_bdd { ", bdd off" } else { "" }
        );
        let cfg = Config {
            intra: spec.intra,
            obs_equiv: !spec.no_obs_equiv,
            bdd: !spec.no_bdd,
            ..base.clone()
        };
        let locks_before = contention::snapshot();
        let report = if spec.generated {
            let benchmarks = match load_generated_sample(&Path::new(&spec_dir).join("generated")) {
                Ok(v) => v,
                Err(e) => {
                    eprintln!("trajectory: generated sample load failed:\n{e}");
                    std::process::exit(1);
                }
            };
            eprintln!(
                "trajectory: generated sample — {} of the pinned corpus (1 in {})",
                benchmarks.len(),
                GENERATED_SAMPLE_STRIDE
            );
            run_suite_on(benchmarks, &cfg, spec.threads)
        } else if spec.corpus {
            let benchmarks: Vec<Benchmark> =
                match rbsyn_suite::benchmarks_from_dir(Path::new(&spec_dir)) {
                    Ok(v) => v,
                    Err(e) => {
                        eprintln!("trajectory: corpus load failed:\n{e}");
                        std::process::exit(1);
                    }
                };
            run_suite_on(benchmarks, &cfg, spec.threads)
        } else {
            run_suite(&cfg, spec.threads)
        };
        eprintln!(
            "trajectory: {} — {}/{} solved in {:.2}s",
            spec.name,
            report.stats.solved,
            report.stats.jobs,
            report.stats.wall_clock.as_secs_f64()
        );
        if report.stats.solved != report.stats.jobs {
            eprintln!("trajectory: {} left benchmarks unsolved", spec.name);
            ok = false;
        }
        if spec.generated {
            // Different problem set: nothing to byte-compare against. The
            // solved-count gate above already covers it.
        } else if spec.no_obs_equiv {
            // The ablation's effort counters differ by design; its
            // *programs* must not.
            let programs = format_batch_programs(&report);
            match &baseline_programs {
                Some(base_progs) if *base_progs != programs => {
                    eprintln!(
                        "trajectory: MISMATCH — {} synthesizes different programs:\n\
                         --- baseline ---\n{base_progs}--- {} ---\n{programs}",
                        spec.name, spec.name
                    );
                    ok = false;
                }
                None => {
                    eprintln!("trajectory: no baseline before the ablation leg");
                    ok = false;
                }
                Some(_) => {}
            }
        } else if spec.no_bdd {
            // The strongest A/B gate: the BDD layer must change *nothing*
            // observable — same deterministic solution section, same
            // aggregate effort counters (`guard_dedup`/`bdd_nodes` are
            // the BDD's own telemetry and excluded by construction).
            let solutions = format_batch_solutions(&report);
            match &baseline_solutions {
                Some(base_sols) if *base_sols != solutions => {
                    eprintln!(
                        "trajectory: MISMATCH — {} diverges from the sequential baseline:\n\
                         --- sequential ---\n{base_sols}--- {} ---\n{solutions}",
                        spec.name, spec.name
                    );
                    ok = false;
                }
                None => {
                    eprintln!("trajectory: no baseline before the no-bdd leg");
                    ok = false;
                }
                Some(_) => {}
            }
            let s = &report.stats;
            let effort = (
                s.popped,
                s.expanded,
                s.tested,
                s.deduped,
                s.obs_pruned,
                s.vector_hits,
            );
            match baseline_effort {
                Some(base_eff) if base_eff != effort => {
                    eprintln!(
                        "trajectory: MISMATCH — {} effort counters differ from the baseline: \
                         {base_eff:?} vs {effort:?} \
                         (popped, expanded, tested, deduped, obs_pruned, vector_hits)",
                        spec.name
                    );
                    ok = false;
                }
                _ => {}
            }
        } else {
            let solutions = format_batch_solutions(&report);
            match &baseline_solutions {
                None => {
                    baseline_solutions = Some(solutions);
                    baseline_programs = Some(format_batch_programs(&report));
                    let s = &report.stats;
                    baseline_effort = Some((
                        s.popped,
                        s.expanded,
                        s.tested,
                        s.deduped,
                        s.obs_pruned,
                        s.vector_hits,
                    ));
                    sequential_wall = Some(report.stats.wall_clock.as_secs_f64());
                }
                Some(base_sols) if *base_sols != solutions => {
                    eprintln!(
                        "trajectory: MISMATCH — {} diverges from the sequential baseline:\n\
                         --- sequential ---\n{base_sols}--- {} ---\n{solutions}",
                        spec.name, spec.name
                    );
                    ok = false;
                }
                Some(_) => {}
            }
        }
        // Per-run lock-telemetry delta: the registry counters are
        // process-wide, so each configuration reports only what it added.
        let locks = contention::snapshot_since(&locks_before);
        if contention::enabled() {
            eprint!("{}", format_contention_report(&locks));
        }
        if spec.name == "parallel" {
            let wall = report.stats.wall_clock.as_secs_f64();
            parallel_speedup = sequential_wall.map(|base| base / wall.max(1e-9));
        }
        rows.push(json_report(spec, &report, sequential_wall, &locks));
    }

    // Wall-clocks only mean anything relative to the host's core count
    // (a 1-core machine can never show an in-process speedup).
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if require_speedup {
        match parallel_speedup {
            _ if host <= 1 => {
                eprintln!("trajectory: single-core host, skipping the wall-speedup assertion");
            }
            Some(sp) if sp > 1.0 => {
                eprintln!("trajectory: parallel wall_speedup {sp:.2}x > 1.0 — OK");
            }
            Some(sp) => {
                eprintln!(
                    "trajectory: FAIL — parallel wall_speedup {sp:.2}x on a {host}-core host \
                     (expected > 1.0)"
                );
                ok = false;
            }
            None => {
                eprintln!("trajectory: FAIL — no parallel run to assert a speedup on");
                ok = false;
            }
        }
    }
    // Host metadata header: a stored BENCH_*.json must say what machine
    // and build produced its numbers, or the series cannot be compared
    // across CI runners.
    let toolchain = std::env::var("RUSTUP_TOOLCHAIN")
        .ok()
        .filter(|t| !t.is_empty())
        .unwrap_or_else(|| "unknown".to_owned());
    let shards_env = std::env::var("RBSYN_INTERN_SHARDS")
        .ok()
        .filter(|v| !v.is_empty())
        .map_or_else(
            || "null".to_owned(),
            |v| format!("\"{}\"", rbsyn_bench::harness::json_escape(&v)),
        );
    let host_json = format!(
        "{{\"cpus\": {host}, \"os\": \"{}\", \"arch\": \"{}\", \"toolchain\": \"{}\", \
         \"intern_shards\": {}, \"intern_shards_env\": {}, \"contention_probes\": {}}}",
        std::env::consts::OS,
        std::env::consts::ARCH,
        rbsyn_bench::harness::json_escape(&toolchain),
        rbsyn_lang::intern::global_shard_count(),
        shards_env,
        contention::enabled(),
    );
    let out = format!(
        "{{\n  \"suite\": \"rbsyn 19-benchmark suite\",\n  \"benchmarks\": {},\n  \
         \"timeout_secs\": {},\n  \"host_parallelism\": {},\n  \"host\": {},\n  \
         \"programs_identical\": {},\n  \
         \"contention_enabled\": {},\n  \
         \"corpus\": {{\"dir\": \"{}\", \"files\": {}, \"parse_secs\": {:.6}, \
         \"lower_secs\": {:.6}, \"parse_lower_secs\": {:.6}}},\n  \
         \"runs\": [\n{}\n  ]\n}}\n",
        base.benchmarks().len(),
        base.timeout.as_secs(),
        host,
        host_json,
        ok,
        contention::enabled(),
        rbsyn_bench::harness::json_escape(&spec_dir),
        corpus_cost.files,
        corpus_cost.parse_secs,
        corpus_cost.lower_secs,
        corpus_cost.parse_secs + corpus_cost.lower_secs,
        rows.join(",\n")
    );
    match &json {
        Some(path) => {
            rbsyn_lang::persist::atomic_write(std::path::Path::new(path), out.as_bytes())
                .expect("write --json file");
            eprintln!("trajectory written to {path}");
        }
        None => print!("{out}"),
    }
    if let Some(path) = &contention_path {
        // Whole-process totals (every configuration summed) — the CI
        // artifact a profiling session starts from.
        let report = format!(
            "{{\n  \"contention\": {}\n}}\n",
            contention_json(&contention::snapshot(), "  ")
        );
        rbsyn_lang::persist::atomic_write(std::path::Path::new(path), report.as_bytes())
            .expect("write --contention-json file");
        eprintln!("contention report written to {path}");
    }
    std::process::exit(if ok { 0 } else { 1 });
}
