//! Perf-trajectory snapshot: runs the full benchmark suite under the
//! execution configurations this repo has grown so far — sequential,
//! inter-problem parallel (`--parallel`), intra-problem parallel
//! (`--intra`), and both — and writes one JSON file
//! (`BENCH_pr3.json` in CI) with wall-clocks and cache-hit counters per
//! configuration.
//!
//! ```text
//! cargo run --release -p rbsyn-bench --bin trajectory -- \
//!     [--json BENCH_pr3.json] [--threads N] [--intra N] [--timeout SECS]
//! ```
//!
//! The deterministic solution sections of every configuration are
//! byte-compared; a mismatch (or any unsolved benchmark) exits nonzero, so
//! the trajectory file doubles as a determinism gate.

use rbsyn_bench::harness::{format_batch_solutions, run_suite, Config};
use rbsyn_core::BatchReport;
use std::time::Duration;

struct RunSpec {
    name: &'static str,
    threads: usize,
    intra: usize,
}

fn json_report(spec: &RunSpec, r: &BatchReport) -> String {
    let s = &r.stats;
    format!(
        "    {{\"config\": \"{}\", \"threads\": {}, \"intra\": {}, \
         \"wall_clock_secs\": {:.6}, \"cpu_time_secs\": {:.6}, \"speedup\": {:.4},\n     \
         \"solved\": {}, \"timeouts\": {}, \"failures\": {}, \"tested\": {},\n     \
         \"expand_hits\": {}, \"type_hits\": {}, \"oracle_hits\": {}, \"deduped\": {},\n     \
         \"generate_time_secs\": {:.6}, \"guard_time_secs\": {:.6}}}",
        spec.name,
        spec.threads,
        spec.intra,
        s.wall_clock.as_secs_f64(),
        s.cpu_time.as_secs_f64(),
        s.speedup(),
        s.solved,
        s.timeouts,
        s.failures,
        s.tested,
        s.expand_hits,
        s.type_hits,
        s.oracle_hits,
        s.deduped,
        s.generate_time.as_secs_f64(),
        s.guard_time.as_secs_f64(),
    )
}

fn main() {
    let mut json: Option<String> = None;
    let mut threads: usize = 4;
    let mut intra: usize = 4;
    let mut timeout: Option<Duration> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--json" => json = Some(value("--json")),
            "--threads" => {
                threads = value("--threads").parse().unwrap_or_else(|_| {
                    eprintln!("--threads needs a number");
                    std::process::exit(2);
                })
            }
            "--intra" => {
                intra = value("--intra").parse().unwrap_or_else(|_| {
                    eprintln!("--intra needs a number");
                    std::process::exit(2);
                })
            }
            "--timeout" => {
                timeout = Some(Duration::from_secs(
                    value("--timeout").parse().unwrap_or_else(|_| {
                        eprintln!("--timeout needs seconds");
                        std::process::exit(2);
                    }),
                ))
            }
            other => {
                eprintln!("unknown argument {other:?} (try --json PATH, --threads N, --intra N, --timeout SECS)");
                std::process::exit(2);
            }
        }
    }

    let mut base = Config::from_env();
    if let Some(t) = timeout {
        base.timeout = t;
    }
    let specs = [
        RunSpec {
            name: "sequential",
            threads: 1,
            intra: 1,
        },
        RunSpec {
            name: "parallel",
            threads,
            intra: 1,
        },
        RunSpec {
            name: "intra",
            threads: 1,
            intra,
        },
        RunSpec {
            name: "parallel+intra",
            threads,
            intra,
        },
    ];

    let mut rows: Vec<String> = Vec::new();
    let mut baseline_solutions: Option<String> = None;
    let mut ok = true;
    for spec in &specs {
        eprintln!(
            "trajectory: {} (threads {}, intra {})…",
            spec.name, spec.threads, spec.intra
        );
        let cfg = Config {
            intra: spec.intra,
            ..base.clone()
        };
        let report = run_suite(&cfg, spec.threads);
        eprintln!(
            "trajectory: {} — {}/{} solved in {:.2}s",
            spec.name,
            report.stats.solved,
            report.stats.jobs,
            report.stats.wall_clock.as_secs_f64()
        );
        if report.stats.solved != report.stats.jobs {
            eprintln!("trajectory: {} left benchmarks unsolved", spec.name);
            ok = false;
        }
        let solutions = format_batch_solutions(&report);
        match &baseline_solutions {
            None => baseline_solutions = Some(solutions),
            Some(base_sols) if *base_sols != solutions => {
                eprintln!(
                    "trajectory: MISMATCH — {} diverges from the sequential baseline:\n\
                     --- sequential ---\n{base_sols}--- {} ---\n{solutions}",
                    spec.name, spec.name
                );
                ok = false;
            }
            Some(_) => {}
        }
        rows.push(json_report(spec, &report));
    }

    // Wall-clocks only mean anything relative to the host's core count
    // (a 1-core machine can never show an in-process speedup).
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let out = format!(
        "{{\n  \"suite\": \"rbsyn 19-benchmark suite\",\n  \"benchmarks\": {},\n  \
         \"timeout_secs\": {},\n  \"host_parallelism\": {},\n  \"programs_identical\": {},\n  \
         \"runs\": [\n{}\n  ]\n}}\n",
        base.benchmarks().len(),
        base.timeout.as_secs(),
        host,
        ok,
        rows.join(",\n")
    );
    match &json {
        Some(path) => {
            std::fs::write(path, &out).expect("write --json file");
            eprintln!("trajectory written to {path}");
        }
        None => print!("{out}"),
    }
    std::process::exit(if ok { 0 } else { 1 });
}
