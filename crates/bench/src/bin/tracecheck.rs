//! Validates a Chrome trace-event JSON file produced by `solve --trace`.
//!
//! ```text
//! cargo run -p rbsyn-bench --bin tracecheck -- out.trace.json
//! ```
//!
//! Runs the `rbsyn_trace` in-crate schema checker (well-formed JSON,
//! known event kinds, balanced span begin/end per thread, numeric
//! counter args) and then asserts the engine-level content contract: the
//! trace of a solved benchmark must contain `generate`, `guard`, `eval`
//! and `merge` spans plus at least one counter track. CI's `trace` leg
//! runs this on the artifact it uploads, so a regression in either the
//! exporter or the instrumentation fails the build rather than shipping
//! an unreadable trace.
//!
//! Exit codes: `0` valid · `1` validation failure · `2` usage/IO.

use rbsyn_trace::schema::check_chrome_trace;

/// Spans a solved run must contain — the phase-totals track guarantees
/// them even when the run was too fast for any live span to be recorded.
const REQUIRED_SPANS: [&str; 4] = ["generate", "guard", "eval", "merge"];

fn main() {
    let mut args = std::env::args().skip(1);
    let (Some(path), None) = (args.next(), args.next()) else {
        eprintln!("usage: tracecheck FILE.json");
        std::process::exit(2);
    };
    let src = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("tracecheck: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    let summary = match check_chrome_trace(&src) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("tracecheck: {path} is not a valid Chrome trace: {e}");
            std::process::exit(1);
        }
    };
    let mut ok = true;
    for name in REQUIRED_SPANS {
        if !summary.span_names.contains(name) {
            eprintln!("tracecheck: missing required span {name:?}");
            ok = false;
        }
    }
    if summary.counter_tracks.is_empty() {
        eprintln!("tracecheck: no counter track (expected at least `search-stats`)");
        ok = false;
    }
    if !ok {
        eprintln!(
            "tracecheck: {path} has spans {:?} and counter tracks {:?}",
            summary.span_names, summary.counter_tracks
        );
        std::process::exit(1);
    }
    println!(
        "tracecheck: {path} OK — {} events on {} thread(s), spans {:?}, counters {:?}",
        summary.events,
        summary.threads,
        summary.span_names.iter().collect::<Vec<_>>(),
        summary.counter_tracks.iter().collect::<Vec<_>>()
    );
}
