//! Regenerates Figure 8 (effect-annotation precision ablation) of the
//! paper.

use rbsyn_bench::harness::{fig8_rows, format_fig8, Config};

fn main() {
    let cfg = Config::from_env();
    eprintln!(
        "fig8: {}s timeout, {} benchmarks × 3 precision levels",
        cfg.timeout.as_secs(),
        cfg.benchmarks().len()
    );
    let rows = fig8_rows(&cfg);
    print!("{}", format_fig8(&rows));
}
